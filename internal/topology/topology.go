// Package topology models the cluster interconnect at the granularity that
// matters for node sharing: which switch group each node hangs off.
//
// A job confined to one switch group communicates over the crossbar; a job
// spread across groups pushes its halo exchanges and collectives through
// the uplinks, raising its effective network demand. The topology therefore
// supplies a network-stress multiplier as a function of allocation spread,
// which the simulator folds into the interference model, and a compact node
// ordering the schedulers use to keep allocations narrow.
//
// The model is a two-level tree (leaf switches under a full-bisection core),
// the common abstraction for both fat-tree and dragonfly machines at
// scheduling granularity.
package topology

import (
	"fmt"
	"sort"
)

// Topology is a two-level interconnect: Groups leaf switches with
// NodesPerGroup nodes each. Node i belongs to group i / NodesPerGroup.
type Topology struct {
	// Groups is the leaf-switch count.
	Groups int
	// NodesPerGroup is the node count per leaf switch.
	NodesPerGroup int
	// UplinkPenalty scales the network-stress growth per additional group
	// an allocation spans: factor = 1 + UplinkPenalty·(spread−1)/(Groups−1).
	// 0 makes the topology transparent; 0.6 approximates the measured
	// cost of all-to-all traffic leaving the leaf on oversubscribed trees.
	UplinkPenalty float64
}

// Default returns a topology for n nodes: leaf switches of 8 nodes (padding
// the last group) with a 0.6 uplink penalty.
func Default(n int) Topology {
	per := 8
	groups := (n + per - 1) / per
	if groups < 1 {
		groups = 1
	}
	return Topology{Groups: groups, NodesPerGroup: per, UplinkPenalty: 0.6}
}

// Validate checks the shape.
func (t Topology) Validate() error {
	if t.Groups <= 0 || t.NodesPerGroup <= 0 {
		return fmt.Errorf("topology: %d groups × %d nodes", t.Groups, t.NodesPerGroup)
	}
	if t.UplinkPenalty < 0 {
		return fmt.Errorf("topology: negative uplink penalty %g", t.UplinkPenalty)
	}
	return nil
}

// Nodes returns the machine size the topology describes.
func (t Topology) Nodes() int { return t.Groups * t.NodesPerGroup }

// GroupOf returns the leaf switch of node ni.
func (t Topology) GroupOf(ni int) int {
	if ni < 0 {
		panic(fmt.Sprintf("topology: GroupOf(%d)", ni))
	}
	g := ni / t.NodesPerGroup
	if g >= t.Groups {
		g = t.Groups - 1 // padded final group
	}
	return g
}

// Spread returns the number of distinct leaf switches an allocation spans
// (0 for an empty allocation).
func (t Topology) Spread(nodes []int) int {
	seen := map[int]bool{}
	for _, ni := range nodes {
		seen[t.GroupOf(ni)] = true
	}
	return len(seen)
}

// NetworkFactor returns the effective network-stress multiplier for an
// allocation spanning spread groups: 1 within one leaf, growing linearly to
// 1 + UplinkPenalty across the whole machine.
func (t Topology) NetworkFactor(spread int) float64 {
	if spread <= 1 || t.Groups <= 1 {
		return 1
	}
	if spread > t.Groups {
		spread = t.Groups
	}
	return 1 + t.UplinkPenalty*float64(spread-1)/float64(t.Groups-1)
}

// CompactOrder returns the given nodes reordered for locality: groups with
// the most candidate nodes first (so small jobs fit inside one leaf), nodes
// ascending within each group, group index breaking ties. Schedulers feed
// their idle list through this to minimize spread.
func (t Topology) CompactOrder(nodes []int) []int {
	byGroup := map[int][]int{}
	for _, ni := range nodes {
		g := t.GroupOf(ni)
		byGroup[g] = append(byGroup[g], ni)
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		gi, gj := groups[i], groups[j]
		if len(byGroup[gi]) != len(byGroup[gj]) {
			return len(byGroup[gi]) > len(byGroup[gj])
		}
		return gi < gj
	})
	out := make([]int, 0, len(nodes))
	for _, g := range groups {
		ns := byGroup[g]
		sort.Ints(ns)
		out = append(out, ns...)
	}
	return out
}
