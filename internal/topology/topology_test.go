package topology

import (
	"testing"
	"testing/quick"
)

func TestDefault(t *testing.T) {
	topo := Default(32)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Groups != 4 || topo.NodesPerGroup != 8 {
		t.Fatalf("Default(32) = %+v", topo)
	}
	// Non-multiples pad the last group.
	topo = Default(10)
	if topo.Groups != 2 {
		t.Fatalf("Default(10) groups = %d", topo.Groups)
	}
	if Default(1).Groups != 1 {
		t.Fatal("Default(1) malformed")
	}
}

func TestValidate(t *testing.T) {
	bad := []Topology{
		{Groups: 0, NodesPerGroup: 8},
		{Groups: 4, NodesPerGroup: 0},
		{Groups: 4, NodesPerGroup: 8, UplinkPenalty: -1},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("bad topology %d accepted", i)
		}
	}
}

func TestGroupOf(t *testing.T) {
	topo := Topology{Groups: 4, NodesPerGroup: 8}
	cases := map[int]int{0: 0, 7: 0, 8: 1, 31: 3, 35: 3 /* padded clamp */}
	for ni, want := range cases {
		if got := topo.GroupOf(ni); got != want {
			t.Errorf("GroupOf(%d) = %d, want %d", ni, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GroupOf(-1) did not panic")
		}
	}()
	topo.GroupOf(-1)
}

func TestSpread(t *testing.T) {
	topo := Topology{Groups: 4, NodesPerGroup: 8}
	cases := []struct {
		nodes []int
		want  int
	}{
		{nil, 0},
		{[]int{0, 1, 2}, 1},
		{[]int{0, 8}, 2},
		{[]int{0, 8, 16, 24}, 4},
		{[]int{7, 7, 7}, 1},
	}
	for _, c := range cases {
		if got := topo.Spread(c.nodes); got != c.want {
			t.Errorf("Spread(%v) = %d, want %d", c.nodes, got, c.want)
		}
	}
}

func TestNetworkFactor(t *testing.T) {
	topo := Topology{Groups: 4, NodesPerGroup: 8, UplinkPenalty: 0.6}
	if got := topo.NetworkFactor(1); got != 1 {
		t.Fatalf("factor(1) = %g", got)
	}
	if got := topo.NetworkFactor(4); got != 1.6 {
		t.Fatalf("factor(4) = %g", got)
	}
	mid := topo.NetworkFactor(2)
	if mid <= 1 || mid >= 1.6 {
		t.Fatalf("factor(2) = %g not between extremes", mid)
	}
	// Clamped above Groups; identity for 1-group machines.
	if topo.NetworkFactor(99) != 1.6 {
		t.Fatal("spread not clamped")
	}
	one := Topology{Groups: 1, NodesPerGroup: 8, UplinkPenalty: 0.6}
	if one.NetworkFactor(5) != 1 {
		t.Fatal("single-group machine has uplink penalty")
	}
}

func TestCompactOrder(t *testing.T) {
	topo := Topology{Groups: 4, NodesPerGroup: 2}
	// Groups: {0,1} {2,3} {4,5} {6,7}. Candidates: group 1 full, group 0
	// half, group 3 half → group 1's nodes first.
	in := []int{6, 2, 0, 3}
	out := topo.CompactOrder(in)
	if out[0] != 2 || out[1] != 3 {
		t.Fatalf("CompactOrder = %v, want group 1 (nodes 2,3) first", out)
	}
	if len(out) != 4 {
		t.Fatalf("CompactOrder dropped nodes: %v", out)
	}
	// Tie between groups 0 and 3 breaks by group index.
	if out[2] != 0 || out[3] != 6 {
		t.Fatalf("tie-break wrong: %v", out)
	}
}

// Property: CompactOrder is a permutation and never splits a group's nodes
// apart in the output.
func TestProperty_CompactOrderPermutation(t *testing.T) {
	topo := Topology{Groups: 8, NodesPerGroup: 4}
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var in []int
		for _, r := range raw {
			ni := int(r) % topo.Nodes()
			if !seen[ni] {
				seen[ni] = true
				in = append(in, ni)
			}
		}
		out := topo.CompactOrder(in)
		if len(out) != len(in) {
			return false
		}
		got := map[int]bool{}
		for _, ni := range out {
			got[ni] = true
		}
		for ni := range seen {
			if !got[ni] {
				return false
			}
		}
		// Group contiguity: once we leave a group we never return.
		visited := map[int]bool{}
		last := -1
		for _, ni := range out {
			g := topo.GroupOf(ni)
			if g != last {
				if visited[g] {
					return false
				}
				visited[g] = true
				last = g
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
