package energy

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{IdleW: -1, ActiveW: 1},
		{IdleW: 1, ActiveW: -1},
		{IdleW: 1, ActiveW: 1, SharedW: -1},
		{},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestComputeDecomposition(t *testing.T) {
	p := Params{IdleW: 100, ActiveW: 200, SharedW: 50}
	r := metrics.Result{
		Nodes:             4,
		Makespan:          1000,
		BusyNodeSeconds:   2000,
		SharedNodeSeconds: 500,
		TotalDemand:       2500,
	}
	rep, err := Compute(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IdleJoules != 4*1000*100 {
		t.Fatalf("idle = %g", rep.IdleJoules)
	}
	if rep.ActiveJoules != 2000*200 {
		t.Fatalf("active = %g", rep.ActiveJoules)
	}
	if rep.SharedJoules != 500*50 {
		t.Fatalf("shared = %g", rep.SharedJoules)
	}
	want := 400000.0 + 400000 + 25000
	if rep.TotalJoules != want {
		t.Fatalf("total = %g, want %g", rep.TotalJoules, want)
	}
	if math.Abs(rep.JoulesPerWork-want/2500) > 1e-9 {
		t.Fatalf("J/work = %g", rep.JoulesPerWork)
	}
	if math.Abs(rep.AvgPowerW-want/1000) > 1e-9 {
		t.Fatalf("avg power = %g", rep.AvgPowerW)
	}
	if math.Abs(rep.KWh()-want/3.6e6) > 1e-12 {
		t.Fatalf("kWh = %g", rep.KWh())
	}
}

func TestComputeEmptyRun(t *testing.T) {
	rep, err := Compute(DefaultParams(), metrics.Result{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJoules != 0 || rep.JoulesPerWork != 0 || rep.AvgPowerW != 0 {
		t.Fatalf("empty run report = %+v", rep)
	}
}

func TestComputeRejectsBadParams(t *testing.T) {
	if _, err := Compute(Params{IdleW: -5, ActiveW: 1}, metrics.Result{}); err == nil {
		t.Fatal("bad params accepted")
	}
}

// The economics that justify sharing: packing the same work into fewer
// node-hours lowers energy per work even though shared nodes draw more.
func TestSharingLowersEnergyPerWork(t *testing.T) {
	p := DefaultParams()
	// Exclusive: 2 jobs × 1000s on 2 nodes of a 2-node machine.
	exclusive := metrics.Result{
		Nodes: 2, Makespan: 1000, BusyNodeSeconds: 2000, TotalDemand: 2000,
	}
	// Shared: both jobs on one node at rate 0.8 → 1250s makespan, one busy
	// node, same delivered work.
	shared := metrics.Result{
		Nodes: 2, Makespan: 1250, BusyNodeSeconds: 1250,
		SharedNodeSeconds: 1250, TotalDemand: 2000,
	}
	re, err := Compute(p, exclusive)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Compute(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	if rs.JoulesPerWork >= re.JoulesPerWork {
		t.Fatalf("sharing J/work %g not below exclusive %g",
			rs.JoulesPerWork, re.JoulesPerWork)
	}
}
