// Package energy derives the energy cost of a simulation run from its
// occupancy integrals — the "benefits" side of node sharing that the
// efficiency metrics alone do not show: packing two jobs onto one node's SMT
// threads powers one node instead of two, at a small extra draw for the
// second hardware-thread layer.
//
// The power model is the standard three-level node model of HPC energy
// studies: an idle floor (fans, DIMM refresh, uncore), an active increment
// when a job runs, and a smaller increment when a second job oversubscribes
// the cores. Default values approximate a Trinity-class dual-socket node.
package energy

import (
	"fmt"

	"repro/internal/metrics"
)

// Params is the per-node power model in watts.
type Params struct {
	// IdleW is drawn by every provisioned node, always.
	IdleW float64
	// ActiveW is the additional draw of a node running one job.
	ActiveW float64
	// SharedW is the additional draw when a second job runs on the SMT
	// sibling threads (the cores are already powered; oversubscription
	// mostly raises switching activity).
	SharedW float64
}

// DefaultParams approximates a Trinity-class node: ~90 W idle, ~260 W
// additional under load, ~40 W more with both hardware threads busy.
func DefaultParams() Params {
	return Params{IdleW: 90, ActiveW: 260, SharedW: 40}
}

// Validate checks the model.
func (p Params) Validate() error {
	if p.IdleW < 0 || p.ActiveW < 0 || p.SharedW < 0 {
		return fmt.Errorf("energy: negative power (%+v)", p)
	}
	if p.IdleW+p.ActiveW <= 0 {
		return fmt.Errorf("energy: zero-power nodes (%+v)", p)
	}
	return nil
}

// Report is the energy accounting of one run.
type Report struct {
	// TotalJoules is machine energy over the run's makespan.
	TotalJoules float64
	// IdleJoules, ActiveJoules, SharedJoules decompose the total.
	IdleJoules, ActiveJoules, SharedJoules float64
	// JoulesPerWork is energy per delivered node-second of useful work —
	// the figure of merit for sharing (lower is better).
	JoulesPerWork float64
	// AvgPowerW is the machine's average draw over the makespan.
	AvgPowerW float64
}

// KWh converts the total to kilowatt-hours.
func (r Report) KWh() float64 { return r.TotalJoules / 3.6e6 }

// Compute derives the energy report from a run's metrics:
//
//	idle:   Nodes × makespan × IdleW        (provisioned nodes always draw)
//	active: busy node-seconds × ActiveW
//	shared: shared node-seconds × SharedW
//
// The result is exact given the engine's occupancy integrals; no re-run is
// needed.
func Compute(p Params, r metrics.Result) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	makespan := float64(r.Makespan)
	rep := Report{
		IdleJoules:   float64(r.Nodes) * makespan * p.IdleW,
		ActiveJoules: r.BusyNodeSeconds * p.ActiveW,
		SharedJoules: r.SharedNodeSeconds * p.SharedW,
	}
	rep.TotalJoules = rep.IdleJoules + rep.ActiveJoules + rep.SharedJoules
	if r.TotalDemand > 0 {
		rep.JoulesPerWork = rep.TotalJoules / r.TotalDemand
	}
	if makespan > 0 {
		rep.AvgPowerW = rep.TotalJoules / makespan
	}
	return rep, nil
}
