// Package sim is the batch-system simulation engine: it wires the
// discrete-event kernel, the cluster model, a scheduling policy, and the
// interference model into runnable experiments.
//
// The engine owns all state mutation. Policies only return decisions; the
// engine commits them, starts jobs, and — the part specific to node sharing —
// re-integrates every affected job's progress whenever co-location changes:
// a job's progress rate is the minimum, over the nodes it occupies, of its
// interference-model rate among that node's residents (bulk-synchronous
// semantics: the slowest node paces the whole job). Completion events are
// rescheduled on every rate change, so completions are exact up to float
// round-off.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Config assembles an engine.
type Config struct {
	// Cluster is the machine to simulate.
	Cluster cluster.Config
	// Policy is the scheduling policy under test.
	Policy sched.Policy
	// Inter is the co-run model; nil selects interference.Default().
	Inter *interference.Model
	// StrictLimits, when set, kills a job when its wall-clock execution
	// exceeds the requested walltime, as an unmodified batch system would.
	// The default (false) models the paper's limit extension: when the
	// system itself slows a job by co-allocating beside it, the limit
	// stretches by the measured inflation, so jobs are only ever killed
	// for under-requesting — which the generator never does. Strict limits
	// with sharing kill stretched jobs and waste their occupancy (ablation
	// A4).
	StrictLimits bool
	// Topo, when set, makes network interference placement-dependent: a
	// job spread across leaf switches has its effective network stress
	// scaled by the topology's uplink factor, so scattered co-locations
	// interfere more. Nil keeps the interconnect transparent.
	Topo *topology.Topology
	// LocalityAware passes the topology to the scheduling policies so
	// they order idle candidates compactly (fewest leaf switches per
	// job). Requires Topo; the F10 experiment ablates it.
	LocalityAware bool
	// SchedInterval batches scheduling onto a periodic tick (SLURM's
	// backfill runs every bf_interval seconds, 30 by default) instead of
	// reacting to every event. Zero keeps the event-driven default, which
	// bounds the best achievable responsiveness.
	SchedInterval des.Duration
	// Faults enables deterministic fault injection: per-node MTBF/MTTR
	// failures that kill every resident job (co-located victims included)
	// and per-job crash probability, with requeue under max-retries and
	// exponential backoff. Nil or inactive is bit-identical to a build
	// without the fault layer: no events, no RNG draws, no cost.
	Faults *fault.Config
}

// shareConfigurer is implemented by the sharing policies to expose their
// configuration; the engine passes it through to the scheduling context.
type shareConfigurer interface {
	ShareConfig() sched.ShareConfig
}

// runRec is the engine's bookkeeping for one running job.
type runRec struct {
	job        *job.Job
	rec        *sched.RunningJob
	completion *des.Event
	kill       *des.Event // set only under strict limits
	crash      *des.Event // set only when this attempt drew a crash
}

// Engine simulates one batch system instance.
type Engine struct {
	sim   *des.Simulator
	cl    *cluster.Cluster
	pol   sched.Policy
	inter *interference.Model
	share sched.ShareConfig
	topo  *topology.Topology
	local bool

	strictLimits  bool
	schedInterval des.Duration

	queue    []*job.Job // pending jobs, FCFS order
	held     []*job.Job // arrived but dependency-blocked
	done     map[cluster.JobID]bool
	failed   map[cluster.JobID]bool // killed/cancelled: afterok never satisfied
	running  map[cluster.JobID]*runRec
	finished []*job.Job
	rejected []*job.Job
	killed   []*job.Job
	history  []PlacementRecord

	wastedNodeSeconds float64

	submitted int
	lastEnd   des.Time // completion time of the last finished job

	// Busy/shared node-second integrals.
	lastAccount    des.Time
	busyIntegral   float64
	sharedIntegral float64

	decisionTimes []time.Duration
	schedQueued   bool

	// Fault injection and recovery. All zero-valued when Faults is off.
	injector        *fault.Injector
	retryMax        int
	backoffBase     des.Duration
	retries         map[cluster.JobID]int      // evictions suffered per job
	requeueAt       map[cluster.JobID]des.Time // eviction time of requeued jobs
	arrivalsPending int                        // submitted arrival events not yet fired
	backoffPending  int                        // requeued jobs held in backoff
	downCount       int
	downIntegral    float64
	lostNodeSeconds float64
	nodeFails       int
	nodeRepairs     int
	crashes         int
	requeues        int
	permanentFails  int
	reschedSum      float64
	reschedN        int

	// TraceFn, when set, receives one line per simulation event
	// (submission, start, completion) for debugging and the CLI's
	// --trace mode.
	TraceFn func(line string)

	// lessFn orders the pending queue for the scheduler; nil means FCFS
	// (submit time, then ID). The SLURM layer installs multifactor
	// priority here.
	lessFn func(a, b *job.Job) bool
}

// New builds an engine. It panics on invalid configuration (programming
// error at experiment setup).
func New(cfg Config) *Engine {
	if cfg.Policy == nil {
		panic("sim: Config.Policy is nil")
	}
	inter := cfg.Inter
	if inter == nil {
		inter = interference.Default()
	}
	if cfg.Topo != nil {
		if err := cfg.Topo.Validate(); err != nil {
			panic(err)
		}
	}
	if cfg.LocalityAware && cfg.Topo == nil {
		panic("sim: LocalityAware requires Topo")
	}
	e := &Engine{
		sim:           des.NewSimulator(),
		cl:            cluster.New(cfg.Cluster),
		pol:           cfg.Policy,
		inter:         inter,
		strictLimits:  cfg.StrictLimits,
		schedInterval: cfg.SchedInterval,
		topo:          cfg.Topo,
		local:         cfg.LocalityAware,
		running:       make(map[cluster.JobID]*runRec),
		done:          make(map[cluster.JobID]bool),
		failed:        make(map[cluster.JobID]bool),
		retries:       make(map[cluster.JobID]int),
		requeueAt:     make(map[cluster.JobID]des.Time),
	}
	if sc, ok := cfg.Policy.(shareConfigurer); ok {
		e.share = sc.ShareConfig()
	}
	retry := fault.Defaults()
	if cfg.Faults != nil && cfg.Faults.Active() {
		inj, err := fault.NewInjector(*cfg.Faults, cfg.Cluster.Nodes)
		if err != nil {
			panic(err)
		}
		e.injector = inj
		retry = inj.Config()
		inj.Install(e.sim, e.onNodeFail, e.onNodeRepair, e.workRemains)
	}
	e.retryMax = retry.MaxRetries
	e.backoffBase = retry.Backoff
	return e
}

// Cluster exposes the machine (read-only use expected).
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Now returns the current simulated time.
func (e *Engine) Now() des.Time { return e.sim.Now() }

// Policy returns the policy under test.
func (e *Engine) Policy() sched.Policy { return e.pol }

// Submit registers a job for arrival at j.Submit. Jobs whose node request
// exceeds the machine are recorded as rejected at arrival time. Submission
// is also legal mid-run (the interactive SLURM layer uses it) as long as
// j.Submit is not in the simulated past.
func (e *Engine) Submit(j *job.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	e.submitted++
	e.arrivalsPending++
	e.sim.Schedule(j.Submit, func(*des.Simulator) {
		e.arrivalsPending--
		if j.Nodes > e.cl.Size() {
			j.Cancel(e.sim.Now())
			e.failed[j.ID] = true
			e.rejected = append(e.rejected, j)
			e.trace("reject %s (machine has %d nodes)", j, e.cl.Size())
			e.releaseHeld()
			return
		}
		if j.App.MemPerNodeMB > e.cl.Config().MemoryPerNodeMB {
			j.Cancel(e.sim.Now())
			e.failed[j.ID] = true
			e.rejected = append(e.rejected, j)
			e.trace("reject %s (needs %d MB/node, nodes have %d MB)",
				j, j.App.MemPerNodeMB, e.cl.Config().MemoryPerNodeMB)
			e.releaseHeld()
			return
		}
		if e.depsBroken(j) {
			j.Cancel(e.sim.Now())
			e.failed[j.ID] = true
			e.rejected = append(e.rejected, j)
			e.trace("cancel %s (dependency failed)", j)
			return
		}
		if !e.depsMet(j) {
			e.held = append(e.held, j)
			e.trace("hold %s (dependencies pending)", j)
			return
		}
		e.queue = append(e.queue, j)
		e.trace("submit %s", j)
		e.requestSchedule()
	})
	return nil
}

// depsMet reports whether every dependency of j has finished.
func (e *Engine) depsMet(j *job.Job) bool {
	for _, dep := range j.After {
		if !e.done[dep] {
			return false
		}
	}
	return true
}

// releaseHeld moves dependency-satisfied held jobs into the queue and
// cancels jobs whose dependencies can no longer succeed (afterok
// semantics: a killed or cancelled predecessor dooms the dependent).
func (e *Engine) releaseHeld() {
	for {
		progressed := false
		kept := e.held[:0]
		for _, j := range e.held {
			switch {
			case e.depsBroken(j):
				j.Cancel(e.sim.Now())
				e.failed[j.ID] = true
				e.rejected = append(e.rejected, j)
				e.trace("cancel %s (dependency failed)", j)
				progressed = true // may doom transitive dependents
			case e.depsMet(j):
				e.queue = append(e.queue, j)
				e.trace("release %s (dependencies met)", j)
				e.requestSchedule()
				progressed = true
			default:
				kept = append(kept, j)
			}
		}
		e.held = append([]*job.Job(nil), kept...)
		if !progressed {
			return
		}
	}
}

// depsBroken reports whether any dependency of j terminally failed.
func (e *Engine) depsBroken(j *job.Job) bool {
	for _, dep := range j.After {
		if e.failed[dep] {
			return true
		}
	}
	return false
}

// SubmitAll submits a batch, stopping at the first invalid job.
func (e *Engine) SubmitAll(jobs []*job.Job) error {
	for _, j := range jobs {
		if err := e.Submit(j); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the simulation until the event queue drains or the horizon
// passes.
func (e *Engine) Run(until des.Time) {
	e.sim.Run(until)
	e.account(e.sim.Now())
}

// RunAll executes until no events remain.
func (e *Engine) RunAll() { e.Run(des.Forever) }

// requestSchedule queues a scheduling pass: at the current instant when
// event-driven, or at the next periodic tick when a scheduling interval is
// configured. Multiple requests per instant/tick coalesce into one pass.
func (e *Engine) requestSchedule() {
	if e.schedQueued {
		return
	}
	at := e.sim.Now()
	if e.schedInterval > 0 {
		// Align to the next tick boundary (a request exactly on a boundary
		// runs on that boundary).
		ticks := float64(at) / float64(e.schedInterval)
		next := des.Time(math.Ceil(ticks)) * des.Time(e.schedInterval)
		if next < at {
			next = at
		}
		at = next
	}
	e.schedQueued = true
	e.sim.Schedule(at, func(*des.Simulator) {
		e.schedQueued = false
		e.schedulePass()
	})
}

// schedulePass runs the policy once and commits its decisions.
func (e *Engine) schedulePass() {
	if len(e.queue) == 0 {
		return
	}
	ctx := &sched.Context{
		Now:     e.sim.Now(),
		Cluster: e.cl,
		Queue:   e.queueSnapshot(),
		Running: e.runningSnapshot(),
		Inter:   e.inter,
		Share:   e.share,
	}
	if e.local {
		ctx.Topo = e.topo
	}
	start := time.Now()
	decisions := e.pol.Schedule(ctx)
	e.decisionTimes = append(e.decisionTimes, time.Since(start))

	for _, d := range decisions {
		e.commit(d)
	}
}

// commit starts one job per the policy's decision.
func (e *Engine) commit(d sched.Decision) {
	now := e.sim.Now()
	e.account(now)
	if err := e.cl.Allocate(d.Placement); err != nil {
		// A policy returned an uncommittable placement; that is a policy
		// bug, surface it loudly.
		panic(fmt.Sprintf("sim: policy %s produced invalid placement for job %d: %v",
			e.pol.Name(), d.Job.ID, err))
	}
	e.removeFromQueue(d.Job.ID)
	if at, ok := e.requeueAt[d.Job.ID]; ok {
		e.reschedSum += float64(now - at)
		e.reschedN++
		delete(e.requeueAt, d.Job.ID)
	}
	d.Job.Start(now)

	rec := &runRec{
		job: d.Job,
		rec: &sched.RunningJob{
			Job:        d.Job,
			NodeIDs:    d.Placement.NodeIDs(),
			Exclusive:  !d.Shared,
			NominalEnd: now + d.Job.ReqWalltime,
			Rate:       1,
		},
	}
	rec.rec.PredictedEnd = rec.rec.NominalEnd
	e.running[d.Job.ID] = rec
	if e.strictLimits {
		id := d.Job.ID
		rec.kill = e.sim.Schedule(rec.rec.NominalEnd, func(*des.Simulator) {
			e.onKill(id)
		})
	}
	if e.injector != nil {
		if frac, crashes := e.injector.CrashDraw(int64(d.Job.ID), e.retries[d.Job.ID]); crashes {
			id := d.Job.ID
			rec.crash = e.sim.Schedule(now+des.Duration(frac*float64(d.Job.ReqWalltime)),
				func(*des.Simulator) { e.onJobCrash(id) })
		}
	}
	e.trace("start %s on nodes %v shared=%v", d.Job, rec.rec.NodeIDs, d.Shared)

	// Starting this job may change rates for every resident of its nodes,
	// including itself.
	e.updateRatesOnNodes(rec.rec.NodeIDs)
}

// onComplete finishes a job, releases its resources, and updates the
// co-residents it leaves behind.
func (e *Engine) onComplete(id cluster.JobID) {
	rec, ok := e.running[id]
	if !ok {
		panic(fmt.Sprintf("sim: completion for unknown job %d", id))
	}
	now := e.sim.Now()
	e.account(now)

	rec.job.Finish(now)
	if rec.kill != nil {
		e.sim.Cancel(rec.kill)
	}
	// When the kill path detected a zero-residue job and routed here, the
	// job's own completion event is still pending at this same instant.
	if rec.completion != nil {
		e.sim.Cancel(rec.completion)
	}
	if rec.crash != nil {
		e.sim.Cancel(rec.crash)
	}
	nodes, err := e.cl.Release(id)
	if err != nil {
		panic(fmt.Sprintf("sim: release job %d: %v", id, err))
	}
	delete(e.running, id)
	e.finished = append(e.finished, rec.job)
	e.done[id] = true
	e.record(rec, job.Finished)
	if now > e.lastEnd {
		e.lastEnd = now
	}
	e.trace("finish %s", rec.job)
	e.releaseHeld()

	// Survivors on the freed nodes speed up.
	e.updateRatesOnNodes(nodes)
	e.requestSchedule()
}

// onKill enforces the walltime limit: the job is terminated with its work
// discarded. A job whose residual work is round-off (completion and limit
// coincide) is treated as completed instead.
func (e *Engine) onKill(id cluster.JobID) {
	rec, ok := e.running[id]
	if !ok {
		return // completed in the same instant; the cancel raced the event
	}
	now := e.sim.Now()
	if rec.job.Remaining(now) < 1e-6 {
		e.onComplete(id)
		return
	}
	e.account(now)
	rec.job.Kill(now)
	if rec.completion != nil {
		e.sim.Cancel(rec.completion)
	}
	if rec.crash != nil {
		e.sim.Cancel(rec.crash)
	}
	nodes, err := e.cl.Release(id)
	if err != nil {
		panic(fmt.Sprintf("sim: release killed job %d: %v", id, err))
	}
	delete(e.running, id)
	e.killed = append(e.killed, rec.job)
	e.failed[id] = true
	e.record(rec, job.Killed)
	e.wastedNodeSeconds += float64(rec.job.Nodes) * float64(rec.job.EndTime()-rec.job.StartTime())
	if now > e.lastEnd {
		e.lastEnd = now
	}
	e.trace("kill %s at walltime limit (%.0fs of work lost)",
		rec.job, float64(rec.job.TrueRuntime)-rec.job.DeliveredWork())
	e.releaseHeld()

	e.updateRatesOnNodes(nodes)
	e.requestSchedule()
}

// workRemains reports whether the simulation still has workload to disturb;
// the fault injector quiesces when it returns false so RunAll terminates.
func (e *Engine) workRemains() bool {
	return e.arrivalsPending > 0 || e.backoffPending > 0 ||
		len(e.queue) > 0 || len(e.held) > 0 || len(e.running) > 0
}

// onNodeFail is the node-failure reaction: every resident job is evicted
// (co-located victims included — the risk node sharing concentrates) and the
// node goes DOWN until repaired. Backfill reservations need no explicit
// invalidation: policies are stateless per pass and replan from IdleNodes,
// which excludes down nodes.
func (e *Engine) onNodeFail(ni int) {
	n := e.cl.Node(ni)
	if n.Down() {
		return // already downed by the operator; nothing more to break
	}
	e.account(e.sim.Now())
	victims := append([]cluster.JobID(nil), n.Jobs()...)
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	e.trace("node %d failed (%d resident jobs)", ni, len(victims))
	for _, id := range victims {
		e.evict(id, "node failure")
	}
	e.cl.SetDown(ni, true)
	e.downCount++
	e.nodeFails++
	e.requestSchedule()
}

// onNodeRepair returns a failed node to service.
func (e *Engine) onNodeRepair(ni int) {
	n := e.cl.Node(ni)
	if !n.Down() {
		return // already resumed by the operator
	}
	e.account(e.sim.Now())
	e.cl.SetDown(ni, false)
	e.downCount--
	e.nodeRepairs++
	e.trace("node %d repaired", ni)
	e.requestSchedule()
}

// onJobCrash terminates one attempt by software failure. A job whose residual
// work is round-off at the crash instant completes instead.
func (e *Engine) onJobCrash(id cluster.JobID) {
	rec, ok := e.running[id]
	if !ok {
		return // completed in the same instant; the cancel raced the event
	}
	if rec.job.Remaining(e.sim.Now()) < 1e-6 {
		e.onComplete(id)
		return
	}
	e.crashes++
	e.trace("crash %s", rec.job)
	e.evict(id, "crash")
	e.requestSchedule()
}

// evict removes a running job from its nodes after a failure, charging the
// attempt's partial progress to the lost-work account, and either requeues it
// (keeping its original submit time, so it re-enters near the queue head, but
// held out for an exponential backoff) or — once the retry budget is spent —
// marks it permanently failed.
func (e *Engine) evict(id cluster.JobID, cause string) {
	rec, ok := e.running[id]
	if !ok {
		panic(fmt.Sprintf("sim: evict non-running job %d", id))
	}
	now := e.sim.Now()
	e.account(now)
	if rec.completion != nil {
		e.sim.Cancel(rec.completion)
	}
	if rec.kill != nil {
		e.sim.Cancel(rec.kill)
	}
	if rec.crash != nil {
		e.sim.Cancel(rec.crash)
	}
	lost := rec.job.Requeue(now)
	e.lostNodeSeconds += lost * float64(rec.job.Nodes)
	nodes, err := e.cl.Release(id)
	if err != nil {
		panic(fmt.Sprintf("sim: release evicted job %d: %v", id, err))
	}
	delete(e.running, id)
	e.retries[id]++
	retry := e.retries[id]

	if retry > e.retryMax {
		rec.job.Fail(now)
		e.killed = append(e.killed, rec.job)
		e.failed[id] = true
		e.permanentFails++
		e.record(rec, job.Failed)
		if now > e.lastEnd {
			e.lastEnd = now
		}
		e.trace("fail %s (%s, retries exhausted after %d attempts, %.0fs of work lost)",
			rec.job, cause, retry, lost)
		e.releaseHeld()
	} else {
		e.requeues++
		e.requeueAt[id] = now
		hold := fault.BackoffFor(e.backoffBase, retry)
		e.trace("requeue %s (%s, retry %d/%d, backoff %v, %.0fs of work lost)",
			rec.job, cause, retry, e.retryMax, hold, lost)
		if hold > 0 {
			e.backoffPending++
			j := rec.job
			e.sim.ScheduleIn(hold, func(*des.Simulator) {
				e.backoffPending--
				e.queue = append(e.queue, j)
				e.trace("release %s from backoff", j)
				e.requestSchedule()
			})
		} else {
			e.queue = append(e.queue, rec.job)
			e.requestSchedule()
		}
	}
	e.updateRatesOnNodes(nodes)
}

// FailNode forces a node failure at the current instant — the operator's
// `scontrol update State=DOWN` path. Resident jobs are evicted and requeued
// under the same retry policy as injected failures.
func (e *Engine) FailNode(ni int) error {
	if ni < 0 || ni >= e.cl.Size() {
		return fmt.Errorf("sim: node %d out of range", ni)
	}
	if e.cl.Node(ni).Down() {
		return fmt.Errorf("sim: node %d is already down", ni)
	}
	e.onNodeFail(ni)
	return nil
}

// RepairNode returns a down node to service (scontrol update State=RESUME).
func (e *Engine) RepairNode(ni int) error {
	if ni < 0 || ni >= e.cl.Size() {
		return fmt.Errorf("sim: node %d out of range", ni)
	}
	if !e.cl.Node(ni).Down() {
		return fmt.Errorf("sim: node %d is not down", ni)
	}
	e.onNodeRepair(ni)
	return nil
}

// RequeueRunning evicts one running job and requeues it (scontrol requeue).
// The eviction charges lost work and counts against the job's retry budget.
func (e *Engine) RequeueRunning(id cluster.JobID) error {
	if _, ok := e.running[id]; !ok {
		return fmt.Errorf("sim: job %d is not running", id)
	}
	e.evict(id, "operator requeue")
	e.requestSchedule()
	return nil
}

// FaultTrace returns the injected failure trace (nil without an injector).
func (e *Engine) FaultTrace() []fault.Event {
	if e.injector == nil {
		return nil
	}
	return e.injector.Trace()
}

// Retries returns how many evictions job id has suffered so far.
func (e *Engine) Retries(id cluster.JobID) int { return e.retries[id] }

// updateRatesOnNodes re-derives the progress rate of every job touching the
// given nodes and reschedules their completion events.
func (e *Engine) updateRatesOnNodes(nodes []int) {
	affected := map[cluster.JobID]bool{}
	for _, ni := range nodes {
		for _, id := range e.cl.Node(ni).Jobs() {
			affected[id] = true
		}
	}
	ids := make([]cluster.JobID, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.recomputeRate(id)
	}
}

// recomputeRate applies the interference model across all of a job's nodes.
func (e *Engine) recomputeRate(id cluster.JobID) {
	rec, ok := e.running[id]
	if !ok {
		return // foreign allocation (not engine-managed); nothing to do
	}
	now := e.sim.Now()
	rate := 1.0
	for _, ni := range rec.rec.NodeIDs {
		nodeRate := e.nodeRateFor(ni, id)
		if nodeRate < rate {
			rate = nodeRate
		}
	}
	rec.job.SetRate(now, rate)
	rec.rec.Rate = rate

	// Requested-walltime-based predicted end for the scheduler's planning:
	// remaining requested work over the current rate.
	done := float64(rec.job.TrueRuntime) - rec.job.Remaining(now)
	reqRemaining := float64(rec.job.ReqWalltime) - done
	if reqRemaining < 0 {
		reqRemaining = 0
	}
	rec.rec.PredictedEnd = now + des.Duration(reqRemaining/rate)

	// Reschedule the exact completion.
	if rec.completion != nil {
		e.sim.Cancel(rec.completion)
	}
	eta := rec.job.ETA(now)
	rec.completion = e.sim.Schedule(eta, func(*des.Simulator) {
		e.onComplete(id)
	})
}

// nodeRateFor returns the progress rate job id achieves on node ni given the
// node's full co-location set.
func (e *Engine) nodeRateFor(ni int, id cluster.JobID) float64 {
	residents := e.cl.Node(ni).Jobs()
	loads := make([]interference.Load, len(residents))
	idx := -1
	for i, rid := range residents {
		if rid == id {
			idx = i
		}
		if rr, ok := e.running[rid]; ok {
			loads[i] = interference.Load{App: rr.job.App.Name, Stress: e.effectiveStress(rr)}
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("sim: job %d not resident on node %d", id, ni))
	}
	return e.inter.NamedRates(loads)[idx]
}

// effectiveStress returns a job's stress vector adjusted for placement
// spread: with a topology configured, an allocation spanning several leaf
// switches pushes more traffic through the uplinks, raising its effective
// network demand. A job's dedicated baseline already includes its own
// communication, so the factor only changes how much it contends when
// sharing.
func (e *Engine) effectiveStress(rr *runRec) app.StressVector {
	v := rr.job.App.Stress
	if e.topo == nil {
		return v
	}
	f := e.topo.NetworkFactor(e.topo.Spread(rr.rec.NodeIDs))
	net := v[app.Network] * f
	if net > 1 {
		net = 1
	}
	v[app.Network] = net
	return v
}

// account integrates busy/shared node counts up to time t.
func (e *Engine) account(t des.Time) {
	dt := float64(t - e.lastAccount)
	if dt < 0 {
		panic(fmt.Sprintf("sim: accounting backwards from %v to %v", e.lastAccount, t))
	}
	e.busyIntegral += dt * float64(e.cl.BusyNodes())
	e.sharedIntegral += dt * float64(e.cl.SharedNodes())
	e.downIntegral += dt * float64(e.downCount)
	e.lastAccount = t
}

func (e *Engine) removeFromQueue(id cluster.JobID) {
	for i, j := range e.queue {
		if j.ID == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sim: started job %d not in queue", id))
}

// Kick forces a scheduling pass at the current instant, for callers that
// changed scheduler-visible state out of band (e.g. resuming a drained
// node).
func (e *Engine) Kick() {
	e.requestSchedule()
	e.sim.Run(e.sim.Now())
}

// SetQueueOrder installs a priority comparator for the pending queue
// (nil restores FCFS). The comparator runs on every scheduling pass, so
// age-dependent priorities re-rank continuously.
func (e *Engine) SetQueueOrder(less func(a, b *job.Job) bool) { e.lessFn = less }

// CancelPending cancels a job that is still queued. Running or finished
// jobs cannot be cancelled (the simulator does not model preemption).
func (e *Engine) CancelPending(id cluster.JobID) error {
	for i, j := range e.queue {
		if j.ID == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			j.Cancel(e.sim.Now())
			e.failed[j.ID] = true
			e.rejected = append(e.rejected, j)
			e.trace("cancel %s", j)
			e.releaseHeld()
			return nil
		}
	}
	return fmt.Errorf("sim: job %d is not pending", id)
}

// queueSnapshot returns pending jobs in scheduling order: the installed
// priority order, or FCFS (submit time, then ID) by default.
func (e *Engine) queueSnapshot() []*job.Job {
	q := make([]*job.Job, len(e.queue))
	copy(q, e.queue)
	less := e.lessFn
	if less == nil {
		less = func(a, b *job.Job) bool {
			if a.Submit != b.Submit {
				return a.Submit < b.Submit
			}
			return a.ID < b.ID
		}
	}
	sort.SliceStable(q, less2(q, less))
	return q
}

func less2(q []*job.Job, less func(a, b *job.Job) bool) func(i, j int) bool {
	return func(i, j int) bool { return less(q[i], q[j]) }
}

// runningSnapshot returns the running set ordered by job ID.
func (e *Engine) runningSnapshot() []*sched.RunningJob {
	out := make([]*sched.RunningJob, 0, len(e.running))
	for _, rec := range e.running {
		out = append(out, rec.rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job.ID < out[j].Job.ID })
	return out
}

// QueueLen returns the number of pending jobs.
func (e *Engine) QueueLen() int { return len(e.queue) }

// RunningLen returns the number of running jobs.
func (e *Engine) RunningLen() int { return len(e.running) }

// Finished returns the finished jobs in completion order.
func (e *Engine) Finished() []*job.Job { return e.finished }

// Rejected returns jobs rejected at submission (request exceeded machine).
func (e *Engine) Rejected() []*job.Job { return e.rejected }

// Killed returns jobs terminated at their walltime limit, in kill order.
func (e *Engine) Killed() []*job.Job { return e.killed }

// Held returns jobs that arrived but are still dependency-blocked. A
// non-empty held set after RunAll means a dependency references a job that
// never completed (workload bug).
func (e *Engine) Held() []*job.Job {
	out := make([]*job.Job, len(e.held))
	copy(out, e.held)
	return out
}

// PlacementRecord is the completed execution of one job: where it ran and
// when. The engine records one per finished or killed job for timeline
// rendering and accounting export.
type PlacementRecord struct {
	Job        cluster.JobID
	Name, App  string
	Nodes      []int
	Start, End des.Time
	Shared     bool
	Outcome    job.State
}

// History returns the placement records of completed (finished or killed)
// jobs, in completion order.
func (e *Engine) History() []PlacementRecord {
	out := make([]PlacementRecord, len(e.history))
	copy(out, e.history)
	return out
}

func (e *Engine) record(rec *runRec, outcome job.State) {
	e.history = append(e.history, PlacementRecord{
		Job:     rec.job.ID,
		Name:    rec.job.Name,
		App:     rec.job.App.Name,
		Nodes:   append([]int(nil), rec.rec.NodeIDs...),
		Start:   rec.job.StartTime(),
		End:     rec.job.EndTime(),
		Shared:  rec.job.EverShared(),
		Outcome: outcome,
	})
}

// Pending returns a snapshot of the queue in FCFS order.
func (e *Engine) Pending() []*job.Job { return e.queueSnapshot() }

// Running returns a snapshot of the running set ordered by job ID.
func (e *Engine) Running() []*sched.RunningJob { return e.runningSnapshot() }

// Result computes the run's metrics. Call after Run.
func (e *Engine) Result() metrics.Result {
	raw := metrics.Result{
		Policy:            e.pol.Name(),
		Submitted:         e.submitted,
		Killed:            len(e.killed),
		WastedNodeSeconds: e.wastedNodeSeconds,
		Nodes:             e.cl.Size(),
		Makespan:          e.lastEnd,
		BusyNodeSeconds:   e.busyIntegral,
		SharedNodeSeconds: e.sharedIntegral,
		NodeFailures:      e.nodeFails,
		NodeRepairs:       e.nodeRepairs,
		JobCrashes:        e.crashes,
		Requeues:          e.requeues,
		FailedJobs:        e.permanentFails,
		LostNodeSeconds:   e.lostNodeSeconds,
		DownNodeSeconds:   e.downIntegral,
	}
	if e.reschedN > 0 {
		raw.MeanRescheduleSeconds = e.reschedSum / float64(e.reschedN)
	}
	return metrics.Compute(raw, e.finished, e.decisionTimes)
}

func (e *Engine) trace(format string, args ...any) {
	if e.TraceFn != nil {
		e.TraceFn(fmt.Sprintf("[%s] %s", e.sim.Now(), fmt.Sprintf(format, args...)))
	}
}
