package sim

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/topology"
)

var (
	computeApp = app.Synthetic("cpu", app.StressVector{0.92, 0.30, 0.30, 0.20}, 200, 1000)
	membwApp   = app.Synthetic("bw", app.StressVector{0.40, 0.92, 0.40, 0.25}, 200, 1000)
)

func smallCluster() cluster.Config {
	return cluster.Config{Nodes: 4, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1000}
}

func mustPolicy(t *testing.T, name string) sched.Policy {
	t.Helper()
	p, err := sched.New(name, sched.DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func jb(id int64, a app.Model, nodes int, submit, wall, runtime des.Duration) *job.Job {
	return &job.Job{
		ID: cluster.JobID(id), Name: a.Name, App: a, Nodes: nodes,
		Submit: des.Time(submit), ReqWalltime: wall, TrueRuntime: runtime,
	}
}

func TestSingleJobExactCompletion(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	j := jb(1, computeApp, 2, 0, 1000, 800)
	if err := e.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if j.State() != job.Finished {
		t.Fatalf("job state = %v", j.State())
	}
	if j.StartTime() != 0 || j.EndTime() != 800 {
		t.Fatalf("job ran %v→%v, want 0→800", j.StartTime(), j.EndTime())
	}
	r := e.Result()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CompEfficiency-1) > 1e-9 {
		t.Fatalf("CE = %g, want exactly 1 for exclusive run", r.CompEfficiency)
	}
	if r.Makespan != 800 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	// Busy: 2 nodes × 800s.
	if math.Abs(r.BusyNodeSeconds-1600) > 1e-9 {
		t.Fatalf("busy node-seconds = %g", r.BusyNodeSeconds)
	}
	if e.Cluster().BusyThreads() != 0 {
		t.Fatal("resources leaked after completion")
	}
}

func TestFCFSQueueing(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	j1 := jb(1, computeApp, 4, 0, 1000, 1000)
	j2 := jb(2, computeApp, 4, 0, 500, 500)
	if err := e.SubmitAll([]*job.Job{j1, j2}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if j1.StartTime() != 0 {
		t.Fatalf("j1 started at %v", j1.StartTime())
	}
	if j2.StartTime() != 1000 {
		t.Fatalf("j2 started at %v, want 1000 (after j1)", j2.StartTime())
	}
	if j2.WaitTime() != 1000 {
		t.Fatalf("j2 wait = %v", j2.WaitTime())
	}
}

func TestRejectOversizedJob(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	j := jb(1, computeApp, 5, 0, 100, 100)
	if err := e.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(e.Rejected()) != 1 || j.State() != job.Cancelled {
		t.Fatalf("oversized job not rejected: state=%v", j.State())
	}
}

func TestSubmitInvalidJobErrors(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	j := jb(1, computeApp, 0, 0, 100, 100) // zero nodes
	if err := e.Submit(j); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestSharingSlowsAndRecovers(t *testing.T) {
	// Host (bw) starts first on all 4 nodes' primary layers; guest (cpu)
	// co-allocates. While shared both run below rate 1; when the guest
	// finishes the host recovers to rate 1 and its completion moves earlier
	// again.
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "sharebackfill")})
	host := jb(1, membwApp, 4, 0, 4000, 2000)
	guest := jb(2, computeApp, 4, 10, 1000, 500)
	if err := e.SubmitAll([]*job.Job{host, guest}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if host.State() != job.Finished || guest.State() != job.Finished {
		t.Fatalf("states: host=%v guest=%v", host.State(), guest.State())
	}
	if !guest.EverShared() || !host.EverShared() {
		t.Fatal("co-located jobs not marked shared")
	}
	// Guest started immediately at its submit (co-allocation).
	if guest.StartTime() != 10 {
		t.Fatalf("guest started at %v, want 10", guest.StartTime())
	}
	// Both stretched beyond dedicated runtime but finished.
	if host.Stretch() <= 1 || guest.Stretch() <= 1 {
		t.Fatalf("stretches: host=%g guest=%g, want >1", host.Stretch(), guest.Stretch())
	}
	// The host must finish sooner than a fully-shared projection (it
	// recovers after the guest leaves): end < 2000 / hostSharedRate.
	rates := e.inter.NodeRates([]app.StressVector{membwApp.Stress, computeApp.Stress})
	fullyShared := des.Time(float64(host.TrueRuntime) / rates[0])
	if host.EndTime() >= fullyShared {
		t.Fatalf("host end %v did not recover (fully-shared bound %v)", host.EndTime(), fullyShared)
	}
	// And the shared run must beat back-to-back exclusive execution.
	r := e.Result()
	if r.CompEfficiency <= 1 {
		t.Fatalf("CE = %g, want > 1 for a complementary pair", r.CompEfficiency)
	}
	if r.SharedNodeSeconds <= 0 {
		t.Fatal("no shared node-seconds recorded")
	}
}

func TestEASYBackfillEndToEnd(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	// j1 takes 3 nodes 0→1000. j2 (head) needs 4 → blocked until 1000.
	// j3 needs 1 node for 500 ≤ shadow → backfills at 0.
	j1 := jb(1, computeApp, 3, 0, 1000, 1000)
	j2 := jb(2, membwApp, 4, 1, 1000, 1000)
	j3 := jb(3, computeApp, 1, 2, 500, 500)
	if err := e.SubmitAll([]*job.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if j3.StartTime() != 2 {
		t.Fatalf("j3 started at %v, want 2 (backfilled)", j3.StartTime())
	}
	if j2.StartTime() != 1000 {
		t.Fatalf("j2 started at %v, want 1000", j2.StartTime())
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (des.Time, float64, int) {
		e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "sharefirstfit")})
		jobs := []*job.Job{
			jb(1, membwApp, 2, 0, 3000, 1500),
			jb(2, computeApp, 2, 5, 2000, 900),
			jb(3, computeApp, 1, 7, 1000, 400),
			jb(4, membwApp, 3, 11, 2500, 1200),
			jb(5, computeApp, 2, 13, 1500, 700),
		}
		if err := e.SubmitAll(jobs); err != nil {
			t.Fatal(err)
		}
		e.RunAll()
		r := e.Result()
		return r.Makespan, r.CompEfficiency, r.Finished
	}
	m1, ce1, f1 := runOnce()
	m2, ce2, f2 := runOnce()
	if m1 != m2 || ce1 != ce2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%g,%d) vs (%v,%g,%d)", m1, ce1, f1, m2, ce2, f2)
	}
}

func TestProgressConservationAcrossChurn(t *testing.T) {
	// Many overlapping jobs with sharing: every job must finish with its
	// full service demand delivered (job.Finish panics otherwise), and all
	// resources must be free at the end.
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "sharefirstfit")})
	var jobs []*job.Job
	apps := []app.Model{computeApp, membwApp}
	for i := 0; i < 30; i++ {
		a := apps[i%2]
		jobs = append(jobs, jb(int64(i+1), a, 1+i%3, des.Duration(i*97), 3000, des.Duration(300+100*(i%7))))
	}
	if err := e.SubmitAll(jobs); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	for _, j := range jobs {
		if j.State() != job.Finished {
			t.Fatalf("job %d not finished: %v", j.ID, j.State())
		}
	}
	if e.Cluster().BusyThreads() != 0 {
		t.Fatal("threads leaked")
	}
	if e.QueueLen() != 0 || e.RunningLen() != 0 {
		t.Fatal("queue/running not drained")
	}
	r := e.Result()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Finished != 30 {
		t.Fatalf("finished %d, want 30", r.Finished)
	}
}

func TestSharingBeatsExclusiveOnComplementaryMix(t *testing.T) {
	// The paper's core claim in miniature: a complementary mix completes
	// sooner (and with higher CE) under ShareBackfill than under EASY.
	mkJobs := func() []*job.Job {
		var jobs []*job.Job
		for i := 0; i < 8; i++ {
			a := computeApp
			if i%2 == 0 {
				a = membwApp
			}
			jobs = append(jobs, jb(int64(i+1), a, 2, des.Duration(i), 2000, 1000))
		}
		return jobs
	}
	run := func(policy string) (des.Time, float64) {
		e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, policy)})
		if err := e.SubmitAll(mkJobs()); err != nil {
			t.Fatal(err)
		}
		e.RunAll()
		r := e.Result()
		return r.Makespan, r.CompEfficiency
	}
	exMakespan, exCE := run("easy")
	shMakespan, shCE := run("sharebackfill")
	if shMakespan >= exMakespan {
		t.Fatalf("sharing makespan %v not below exclusive %v", shMakespan, exMakespan)
	}
	if shCE <= exCE {
		t.Fatalf("sharing CE %g not above exclusive %g", shCE, exCE)
	}
	if math.Abs(exCE-1) > 1e-9 {
		t.Fatalf("exclusive CE = %g, want exactly 1", exCE)
	}
}

func TestTraceFn(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	var lines []string
	e.TraceFn = func(l string) { lines = append(lines, l) }
	if err := e.Submit(jb(1, computeApp, 1, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(lines) < 3 { // submit, start, finish
		t.Fatalf("trace produced %d lines, want ≥3", len(lines))
	}
}

func TestNewPanicsWithoutPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without policy did not panic")
		}
	}()
	New(Config{Cluster: smallCluster()})
}

func TestDecisionTimesRecorded(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	if err := e.Submit(jb(1, computeApp, 1, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if e.Result().DecisionNanos.N == 0 {
		t.Fatal("no decision times recorded")
	}
}

func TestStrictLimitsKillStretchedJobs(t *testing.T) {
	// Host (bw) and guest (cpu) co-locate; the host's request has almost no
	// slack, so the sharing-induced stretch pushes it past its walltime.
	// Under strict limits it must be killed; with extension it finishes.
	mk := func() []*job.Job {
		host := jb(1, membwApp, 4, 0, 2100, 2000) // 5% slack only
		guest := jb(2, computeApp, 4, 10, 2000, 1500)
		return []*job.Job{host, guest}
	}
	strict := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "sharebackfill"),
		StrictLimits: true})
	if err := strict.SubmitAll(mk()); err != nil {
		t.Fatal(err)
	}
	strict.RunAll()
	if len(strict.Killed()) != 1 {
		t.Fatalf("strict limits killed %d jobs, want 1", len(strict.Killed()))
	}
	killedJob := strict.Killed()[0]
	if killedJob.State() != job.Killed {
		t.Fatalf("killed job state = %v", killedJob.State())
	}
	// The kill fires exactly at the walltime limit.
	if got := killedJob.EndTime() - killedJob.StartTime(); got != 2100 {
		t.Fatalf("killed job ran %v, want exactly its 2100s limit", got)
	}
	r := strict.Result()
	if r.Killed != 1 || r.WastedNodeSeconds != 4*2100 {
		t.Fatalf("metrics killed/wasted = %d/%g", r.Killed, r.WastedNodeSeconds)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if strict.Cluster().BusyThreads() != 0 {
		t.Fatal("killed job leaked resources")
	}

	// Same workload with extension (default): everything finishes.
	relaxed := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "sharebackfill")})
	if err := relaxed.SubmitAll(mk()); err != nil {
		t.Fatal(err)
	}
	relaxed.RunAll()
	if len(relaxed.Killed()) != 0 {
		t.Fatalf("extension killed %d jobs, want 0", len(relaxed.Killed()))
	}
}

func TestStrictLimitsNeverKillDedicatedJobs(t *testing.T) {
	// Exclusive policies cannot stretch jobs, and TrueRuntime ≤ ReqWalltime,
	// so strict limits must never fire.
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy"), StrictLimits: true})
	var jobs []*job.Job
	for i := 0; i < 20; i++ {
		wall := des.Duration(500 + 50*i)
		jobs = append(jobs, jb(int64(i+1), computeApp, 1+i%4, des.Duration(i*31), wall, wall))
	}
	if err := e.SubmitAll(jobs); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(e.Killed()) != 0 {
		t.Fatalf("dedicated jobs killed: %d", len(e.Killed()))
	}
	// Jobs whose runtime equals their walltime exactly must complete, not
	// be killed by the tie-breaking kill event.
	for _, j := range jobs {
		if j.State() != job.Finished {
			t.Fatalf("job %d state = %v", j.ID, j.State())
		}
	}
}

func TestShareConservativeEndToEnd(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "shareconservative")})
	var jobs []*job.Job
	for i := 0; i < 16; i++ {
		a := computeApp
		if i%2 == 0 {
			a = membwApp
		}
		jobs = append(jobs, jb(int64(i+1), a, 2, des.Duration(i*13), 2000, 900))
	}
	if err := e.SubmitAll(jobs); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	r := e.Result()
	if r.Finished != 16 {
		t.Fatalf("finished %d of 16", r.Finished)
	}
	if r.CompEfficiency <= 1 {
		t.Fatalf("shareconservative CE = %g, want > 1 on complementary mix", r.CompEfficiency)
	}
}

func TestTopologyPenalizesScatteredSharing(t *testing.T) {
	// Two co-located network-leaning jobs spread across all leaf switches
	// must run slower with the interconnect model than without it.
	netApp := app.Synthetic("net", app.StressVector{0.40, 0.55, 0.30, 0.70}, 200, 1000)
	run := func(topo *topology.Topology) des.Time {
		cfg := cluster.Config{Nodes: 16, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1000}
		e := New(Config{Cluster: cfg, Policy: mustPolicy(t, "sharefirstfit"), Topo: topo})
		a := jb(1, netApp, 16, 0, 10000, 2000)
		b := jb(2, netApp, 16, 1, 10000, 2000)
		// Complementarity(net, net) = 1-(0.7+0.7-1) = 0.6 ≥ 0.4 → co-allocates.
		if err := e.SubmitAll([]*job.Job{a, b}); err != nil {
			t.Fatal(err)
		}
		e.RunAll()
		return a.EndTime()
	}
	topo := topology.Default(16) // 2 groups of 8
	flat := run(nil)
	contended := run(&topo)
	if contended <= flat {
		t.Fatalf("topology did not raise contention: flat end %v, topo end %v", flat, contended)
	}
}

func TestLocalityAwarePicksCompactNodes(t *testing.T) {
	// With half of each leaf busy, a locality-aware scheduler must place a
	// small job inside one leaf; a naive one (ascending IDs) scatters it.
	topo := topology.Topology{Groups: 2, NodesPerGroup: 4, UplinkPenalty: 0.6}
	mk := func(local bool) []int {
		cfg := cluster.Config{Nodes: 8, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 10000}
		e := New(Config{Cluster: cfg, Policy: mustPolicy(t, "easy"),
			Topo: &topo, LocalityAware: local})
		// Occupy nodes 0,1 (leaf 0) and 4,5,6 (leaf 1): idle = {2,3,7};
		// leaf 0 has 2 idle, leaf 1 has 1.
		blocker1 := jb(1, computeApp, 2, 0, 100000, 100000)
		blocker2 := jb(2, computeApp, 3, 1, 100000, 100000)
		probe := jb(3, computeApp, 2, 2, 1000, 500)
		if err := e.SubmitAll([]*job.Job{blocker1, blocker2, probe}); err != nil {
			t.Fatal(err)
		}
		e.Run(10)
		for _, r := range e.Running() {
			if r.Job.ID == 3 {
				return r.NodeIDs
			}
		}
		t.Fatal("probe job not running")
		return nil
	}
	compact := mk(true)
	if topo.Spread(compact) != 1 {
		t.Fatalf("locality-aware placement %v spans %d leaves, want 1", compact, topo.Spread(compact))
	}
}

func TestJobDependencies(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	parent := jb(1, computeApp, 2, 0, 1000, 1000)
	child := jb(2, computeApp, 2, 0, 500, 500)
	child.After = []cluster.JobID{1}
	grandchild := jb(3, computeApp, 1, 0, 200, 200)
	grandchild.After = []cluster.JobID{2}
	if err := e.SubmitAll([]*job.Job{parent, child, grandchild}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	// Even though 2 idle nodes were available at t=0, the child must wait
	// for the parent to finish at t=1000, and the grandchild for the child.
	if child.StartTime() != 1000 {
		t.Fatalf("child started at %v, want 1000 (after parent)", child.StartTime())
	}
	if grandchild.StartTime() != 1500 {
		t.Fatalf("grandchild started at %v, want 1500", grandchild.StartTime())
	}
	if len(e.Held()) != 0 {
		t.Fatalf("held jobs remain: %d", len(e.Held()))
	}
}

func TestDependencyOnFailedJobCancelsChain(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	doomed := jb(1, computeApp, 99, 0, 100, 100) // rejected: machine too small
	child := jb(2, computeApp, 1, 1, 100, 100)
	child.After = []cluster.JobID{1}
	grandchild := jb(3, computeApp, 1, 2, 100, 100)
	grandchild.After = []cluster.JobID{2}
	if err := e.SubmitAll([]*job.Job{doomed, child, grandchild}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if child.State() != job.Cancelled || grandchild.State() != job.Cancelled {
		t.Fatalf("dependents not cancelled: child=%v grandchild=%v",
			child.State(), grandchild.State())
	}
	if len(e.Held()) != 0 {
		t.Fatal("cancelled dependents still held")
	}
}

func TestDependencyAlreadySatisfied(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	parent := jb(1, computeApp, 1, 0, 100, 100)
	late := jb(2, computeApp, 1, 500, 100, 100) // arrives after parent done
	late.After = []cluster.JobID{1}
	if err := e.SubmitAll([]*job.Job{parent, late}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if late.StartTime() != 500 {
		t.Fatalf("late job started at %v, want 500 (dep already met at arrival)", late.StartTime())
	}
}

func TestSchedIntervalBatchesPasses(t *testing.T) {
	// With a 100 s scheduling interval, a job submitted at t=10 onto an
	// idle machine must wait for the t=100 tick to start.
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy"),
		SchedInterval: 100})
	j := jb(1, computeApp, 1, 10, 500, 500)
	if err := e.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if j.StartTime() != 100 {
		t.Fatalf("job started at %v, want 100 (next tick)", j.StartTime())
	}
	// A submission exactly on a tick boundary runs on that boundary.
	e2 := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy"),
		SchedInterval: 100})
	j2 := jb(1, computeApp, 1, 200, 500, 500)
	if err := e2.Submit(j2); err != nil {
		t.Fatal(err)
	}
	e2.RunAll()
	if j2.StartTime() != 200 {
		t.Fatalf("boundary job started at %v, want 200", j2.StartTime())
	}
}

func TestEngineAccessorsAndCancel(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	if e.Policy().Name() != "easy" {
		t.Fatalf("Policy = %q", e.Policy().Name())
	}
	blocker := jb(1, computeApp, 4, 0, 2000, 2000)
	victim := jb(2, computeApp, 4, 1, 1000, 1000)
	if err := e.SubmitAll([]*job.Job{blocker, victim}); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("Now = %v", e.Now())
	}
	if len(e.Pending()) != 1 || e.Pending()[0].ID != 2 {
		t.Fatalf("Pending = %v", e.Pending())
	}
	if err := e.CancelPending(2); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelPending(2); err == nil {
		t.Fatal("double cancel accepted")
	}
	if err := e.CancelPending(1); err == nil {
		t.Fatal("cancelling a running job accepted")
	}
	e.RunAll()
	if len(e.Finished()) != 1 {
		t.Fatalf("Finished = %d", len(e.Finished()))
	}
	hist := e.History()
	if len(hist) != 1 || hist[0].Job != 1 || hist[0].Outcome != job.Finished {
		t.Fatalf("History = %+v", hist)
	}
	if len(hist[0].Nodes) != 4 || hist[0].Start != 0 || hist[0].End != 2000 {
		t.Fatalf("History record = %+v", hist[0])
	}
}

func TestSetQueueOrderReordersStarts(t *testing.T) {
	// Install a largest-first order: with both jobs queued behind a
	// blocker, the 3-node job must start before the earlier 1-node job.
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "firstfit")})
	e.SetQueueOrder(func(a, b *job.Job) bool {
		if a.Nodes != b.Nodes {
			return a.Nodes > b.Nodes
		}
		return a.ID < b.ID
	})
	blocker := jb(1, computeApp, 4, 0, 500, 500)
	small := jb(2, computeApp, 1, 1, 400, 400)
	large := jb(3, computeApp, 3, 2, 400, 400)
	if err := e.SubmitAll([]*job.Job{blocker, small, large}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if large.StartTime() > small.StartTime() {
		t.Fatalf("largest-first order ignored: large at %v, small at %v",
			large.StartTime(), small.StartTime())
	}
}

func TestKickSchedulesImmediately(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	e.Cluster().SetDrained(0, true)
	j := jb(1, computeApp, 4, 0, 500, 500)
	if err := e.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if j.State() != job.Pending {
		t.Fatalf("job state with drained node = %v", j.State())
	}
	e.Cluster().SetDrained(0, false)
	e.Kick()
	if j.State() != job.Running {
		t.Fatalf("job state after Kick = %v", j.State())
	}
}

func TestSubmitAllStopsAtFirstError(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "easy")})
	good := jb(1, computeApp, 1, 0, 100, 100)
	bad := jb(2, computeApp, 0, 0, 100, 100)
	if err := e.SubmitAll([]*job.Job{good, bad}); err == nil {
		t.Fatal("invalid job accepted by SubmitAll")
	}
}
