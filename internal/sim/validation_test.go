package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
	"repro/internal/queueing"
)

// With single-node jobs, exponential runtimes, Poisson arrivals, and FCFS
// over c nodes, the batch system is exactly an M/M/c queue. The simulated
// mean wait must therefore match Erlang-C — an end-to-end validation of the
// event kernel, placement, and metric accounting against independent theory.
func TestValidation_MMcWaitMatchesErlangC(t *testing.T) {
	const (
		servers     = 8
		meanService = 100.0
		rho         = 0.8
		jobCount    = 40000
	)
	lambda := rho * servers / meanService
	q := queueing.MMc{Lambda: lambda, Mu: 1 / meanService, C: servers}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	want := q.MeanWait()

	// Queue waits at ρ=0.8 are strongly autocorrelated, so single runs
	// scatter ±20% around theory; average a few independent replications
	// and require the mean to land within 10%.
	var waits []float64
	for _, seed := range []uint64{1, 2, 3} {
		cfg := cluster.Config{Nodes: servers, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1 << 20}
		e := New(Config{Cluster: cfg, Policy: mustPolicy(t, "fcfs")})
		rng := des.NewRNG(seed)
		arrivals := rng.Stream("arrivals")
		services := rng.Stream("services")
		now := 0.0
		for i := 0; i < jobCount; i++ {
			now += arrivals.Exp(1 / lambda)
			runtime := services.Exp(meanService)
			if runtime < 1e-3 {
				runtime = 1e-3
			}
			j := &job.Job{
				ID: cluster.JobID(i + 1), Name: "mmc", App: computeApp, Nodes: 1,
				ReqWalltime: des.Duration(runtime), TrueRuntime: des.Duration(runtime),
				Submit: des.Time(now),
			}
			if err := e.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		e.RunAll()
		r := e.Result()
		if r.Finished != jobCount {
			t.Fatalf("finished %d of %d", r.Finished, jobCount)
		}
		waits = append(waits, r.Wait.Mean)
	}
	got := (waits[0] + waits[1] + waits[2]) / 3
	if math.Abs(got-want) > 0.10*want {
		t.Fatalf("simulated mean wait %.2fs (runs %v) deviates from Erlang-C %.2fs by more than 10%%",
			got, waits, want)
	}
}

// The same construction at c = 1 must match the closed-form M/M/1 wait —
// an independent second anchor at a different utilization.
func TestValidation_MM1WaitMatchesTheory(t *testing.T) {
	const (
		meanService = 50.0
		rho         = 0.7
		jobCount    = 40000
	)
	lambda := rho / meanService
	want := queueing.MM1Wait(lambda, 1/meanService)

	cfg := cluster.Config{Nodes: 1, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1 << 20}
	e := New(Config{Cluster: cfg, Policy: mustPolicy(t, "fcfs")})
	rng := des.NewRNG(777)
	arrivals := rng.Stream("arrivals")
	services := rng.Stream("services")
	now := 0.0
	for i := 0; i < jobCount; i++ {
		now += arrivals.Exp(1 / lambda)
		runtime := services.Exp(meanService)
		if runtime < 1e-3 {
			runtime = 1e-3
		}
		j := &job.Job{
			ID: cluster.JobID(i + 1), Name: "mm1", App: membwApp, Nodes: 1,
			ReqWalltime: des.Duration(runtime), TrueRuntime: des.Duration(runtime),
			Submit: des.Time(now),
		}
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	got := e.Result().Wait.Mean
	if math.Abs(got-want) > 0.10*want {
		t.Fatalf("simulated M/M/1 wait %.2fs deviates from theory %.2fs by more than 10%%",
			got, want)
	}
}
