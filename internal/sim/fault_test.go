package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// faultWorkload builds a deterministic mixed workload; jobs carry mutable
// runtime state, so every engine needs a fresh copy.
func faultWorkload(n int) []*job.Job {
	apps := []app.Model{computeApp, membwApp}
	jobs := make([]*job.Job, n)
	for i := 0; i < n; i++ {
		wall := des.Duration(800 + 100*(i%5))
		jobs[i] = &job.Job{
			ID:          cluster.JobID(i + 1),
			Name:        "w",
			App:         apps[i%2],
			Nodes:       1 + i%2,
			Submit:      des.Time(30 * i),
			ReqWalltime: wall,
			TrueRuntime: wall * 3 / 4,
		}
	}
	return jobs
}

// stripTiming zeroes the only wall-clock-dependent field so results compare
// exactly across runs.
func stripTiming(r metrics.Result) metrics.Result {
	r.DecisionNanos = stats.Summary{}
	return r
}

func runFaulty(t *testing.T, policy string, faults *fault.Config, n int) (*Engine, metrics.Result) {
	t.Helper()
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, policy), Faults: faults})
	if err := e.SubmitAll(faultWorkload(n)); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	r := e.Result()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return e, r
}

// TestFaultDeterminism: the same seed must yield the same failure trace and
// the same run, draw for draw; a different seed must yield a different trace.
func TestFaultDeterminism(t *testing.T) {
	cfg := &fault.Config{Enabled: true, MTBF: 4000, MTTR: 400, CrashProb: 0.1, Seed: 7}
	e1, r1 := runFaulty(t, "sharebackfill", cfg, 40)
	e2, r2 := runFaulty(t, "sharebackfill", cfg, 40)

	if !reflect.DeepEqual(e1.FaultTrace(), e2.FaultTrace()) {
		t.Fatalf("same seed produced different failure traces:\n%v\n%v",
			e1.FaultTrace(), e2.FaultTrace())
	}
	if got, want := stripTiming(r1), stripTiming(r2); !reflect.DeepEqual(got, want) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", got, want)
	}
	if r1.NodeFailures == 0 {
		t.Fatal("fault sweep injected no node failures; test is vacuous")
	}

	other := *cfg
	other.Seed = 8
	e3, _ := runFaulty(t, "sharebackfill", &other, 40)
	if reflect.DeepEqual(e1.FaultTrace(), e3.FaultTrace()) {
		t.Fatal("different seeds produced identical failure traces")
	}
}

// TestFaultZeroCostWhenOff: a nil Faults config, a disabled one, and an
// enabled-but-rateless one must all be bit-identical to each other — the
// fault layer may not perturb existing results when off.
func TestFaultZeroCostWhenOff(t *testing.T) {
	_, base := runFaulty(t, "sharebackfill", nil, 40)
	_, disabled := runFaulty(t, "sharebackfill", &fault.Config{}, 40)
	_, rateless := runFaulty(t, "sharebackfill", &fault.Config{Enabled: true}, 40)

	if got, want := stripTiming(disabled), stripTiming(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("disabled fault config perturbed the run:\n%+v\n%+v", got, want)
	}
	if got, want := stripTiming(rateless), stripTiming(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("rateless fault config perturbed the run:\n%+v\n%+v", got, want)
	}
	if base.NodeFailures != 0 || base.Requeues != 0 || base.LostNodeSeconds != 0 {
		t.Fatalf("fault metrics nonzero without injection: %+v", base)
	}
}

// TestFaultConservationUnderChurn: under heavy node failure churn, every job
// still reaches a terminal state, no allocation leaks, every finished job
// delivered exactly its demand, and the machine ends whole (repairs fire even
// after the workload drains).
func TestFaultConservationUnderChurn(t *testing.T) {
	for _, policy := range []string{"easy", "sharebackfill"} {
		cfg := &fault.Config{Enabled: true, MTBF: 2500, MTTR: 300, CrashProb: 0.05, Seed: 3}
		e, r := runFaulty(t, policy, cfg, 60)

		if r.NodeFailures == 0 {
			t.Fatalf("%s: no failures injected; churn test is vacuous", policy)
		}
		if r.Finished+r.Killed != r.Submitted {
			t.Fatalf("%s: job conservation broken: %d finished + %d killed != %d submitted",
				policy, r.Finished, r.Killed, r.Submitted)
		}
		if e.QueueLen() != 0 || e.RunningLen() != 0 || len(e.Held()) != 0 {
			t.Fatalf("%s: jobs stranded: queue=%d running=%d held=%d",
				policy, e.QueueLen(), e.RunningLen(), len(e.Held()))
		}
		if e.Cluster().BusyThreads() != 0 {
			t.Fatalf("%s: %d threads leaked after run", policy, e.Cluster().BusyThreads())
		}
		if down := e.Cluster().DownNodes(); len(down) != 0 {
			t.Fatalf("%s: nodes %v still down after the run drained", policy, down)
		}
		if r.NodeRepairs != r.NodeFailures {
			t.Fatalf("%s: %d failures but %d repairs; machine ended broken",
				policy, r.NodeFailures, r.NodeRepairs)
		}
		for _, j := range e.Finished() {
			if math.Abs(j.DeliveredWork()-float64(j.TrueRuntime)) > 1e-6 {
				t.Fatalf("%s: finished job %d delivered %g of %v",
					policy, j.ID, j.DeliveredWork(), j.TrueRuntime)
			}
		}
		if r.Requeues > 0 && r.LostNodeSeconds <= 0 {
			t.Fatalf("%s: %d requeues but no lost work charged", policy, r.Requeues)
		}
		if r.Goodput <= 0 || r.Goodput > 1 {
			t.Fatalf("%s: goodput %g outside (0,1]", policy, r.Goodput)
		}
	}
}

// TestMaxRetriesBound: with every attempt guaranteed to crash, each job is
// retried exactly MaxRetries times and then permanently failed — requeues
// never exceed the budget.
func TestMaxRetriesBound(t *testing.T) {
	const n, maxRetries = 8, 2
	cfg := &fault.Config{Enabled: true, CrashProb: 1, MaxRetries: maxRetries, Backoff: 10, Seed: 5}
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs"), Faults: cfg})
	jobs := make([]*job.Job, n)
	for i := range jobs {
		// TrueRuntime == ReqWalltime so a crash (drawn strictly inside the
		// walltime) always lands before completion.
		jobs[i] = jb(int64(i+1), computeApp, 1, des.Duration(10*i), 1000, 1000)
	}
	if err := e.SubmitAll(jobs); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	r := e.Result()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	if r.FailedJobs != n {
		t.Fatalf("failed jobs = %d, want all %d", r.FailedJobs, n)
	}
	if want := n * maxRetries; r.Requeues != want {
		t.Fatalf("requeues = %d, want exactly %d (%d jobs × %d retries)",
			r.Requeues, want, n, maxRetries)
	}
	for _, j := range jobs {
		if j.State() != job.Failed {
			t.Fatalf("job %d state = %v, want FAILED", j.ID, j.State())
		}
		if got := e.Retries(j.ID); got != maxRetries+1 {
			t.Fatalf("job %d suffered %d evictions, want %d (retry budget + final)",
				j.ID, got, maxRetries+1)
		}
		if j.LostWork() <= 0 {
			t.Fatalf("job %d crashed %d times with no lost work", j.ID, j.Requeues())
		}
	}
	if e.Cluster().BusyThreads() != 0 {
		t.Fatal("threads leaked after retries exhausted")
	}
}

// TestOperatorFaultControls: FailNode evicts residents and requeues them,
// RepairNode restores capacity, RequeueRunning evicts one job; the run then
// completes normally.
func TestOperatorFaultControls(t *testing.T) {
	e := New(Config{Cluster: smallCluster(), Policy: mustPolicy(t, "fcfs")})
	j := jb(1, computeApp, 1, 0, 1000, 800)
	if err := e.Submit(j); err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	if j.State() != job.Running {
		t.Fatalf("job state = %v, want RUNNING", j.State())
	}
	ni := e.Running()[0].NodeIDs[0]
	if err := e.FailNode(ni); err != nil {
		t.Fatal(err)
	}
	if j.State() != job.Pending {
		t.Fatalf("victim state = %v, want PENDING after node failure", j.State())
	}
	if err := e.FailNode(ni); err == nil {
		t.Fatal("double FailNode succeeded")
	}
	if err := e.RepairNode(ni); err != nil {
		t.Fatal(err)
	}
	if err := e.RepairNode(ni); err == nil {
		t.Fatal("double RepairNode succeeded")
	}
	e.RunAll()
	if j.State() != job.Finished {
		t.Fatalf("job state = %v, want FINISHED after requeue", j.State())
	}
	if j.Requeues() != 1 || j.LostWork() <= 0 {
		t.Fatalf("requeues=%d lost=%g, want 1 eviction with charged loss",
			j.Requeues(), j.LostWork())
	}
	r := e.Result()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.MeanRescheduleSeconds <= 0 {
		t.Fatalf("mean reschedule = %g, want positive after a requeue", r.MeanRescheduleSeconds)
	}
}
