// Package parallel runs embarrassingly parallel experiment grids across a
// worker pool while preserving deterministic, sequential-equivalent output.
//
// The evaluation's sweeps are grids of independent cells (policy × load ×
// seed): each cell is a pure function of its index — it builds its own
// cluster, policy, interference model, and RNG stream from the seed, and
// shares no mutable state with any other cell. That purity is exactly what
// makes fan-out safe: the only thing a worker pool could change is the
// *order* in which cells complete, so this package reassembles results in
// grid-index order — never completion order — before they reach the caller.
// A grid run with N workers is therefore byte-identical to the same grid run
// with one worker (a property the sweep CLI's differential test enforces).
//
// Error semantics are deterministic too: the reported failure is always the
// one at the lowest grid index, and every result below that index is still
// delivered, so callers can flush the completed prefix (e.g. CSV rows)
// before exiting.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// CellError reports the lowest-index cell failure of a grid run.
type CellError struct {
	// Index is the grid index of the failing cell.
	Index int
	// Err is the cell's error.
	Err error
}

// Error implements error.
func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Workers normalizes a worker-count flag: values below 1 select
// GOMAXPROCS (use every core the runtime will schedule on).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// result carries one finished cell back to the reassembly loop.
type result[T any] struct {
	index int
	value T
	err   error
}

// Run executes fn(0), …, fn(n-1) across a pool of workers goroutines and
// returns the results in index order. fn must be safe for concurrent
// invocation on distinct indices (grid cells are pure and shared-nothing).
//
// On failure Run returns a *CellError for the lowest failing index; the
// returned slice is still fully allocated and every entry below that index
// holds its cell's result (the completed prefix).
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunOrdered(n, workers, fn, func(i int, v T) error {
		out[i] = v
		return nil
	})
	return out, err
}

// RunOrdered executes fn(0), …, fn(n-1) across a pool of workers goroutines
// and streams results to consume in strictly ascending index order as the
// completed prefix grows — the streaming form of Run, for callers that write
// rows incrementally. consume runs on the calling goroutine.
//
// If a cell fails, consume still receives every result below the lowest
// failing index, then RunOrdered returns a *CellError for that index. If
// consume itself returns an error, no further cells are consumed and that
// error is returned as-is. In both cases in-flight cells are allowed to
// finish but no new cells are started.
func RunOrdered[T any](n, workers int, fn func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	var (
		next    atomic.Int64 // next grid index to claim
		stop    atomic.Bool  // set on first failure; stops new claims
		results = make(chan result[T], workers)
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					// Stop new claims before the result is even delivered:
					// with a slow consumer the error can sit behind channel
					// backpressure, and waiting for the reassembly loop to
					// see it would let the pool keep burning cells above a
					// failure that already dooms the run.
					stop.Store(true)
				}
				results <- result[T]{index: i, value: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reassemble in grid order: stash out-of-order completions until the
	// head of the prefix arrives.
	pending := make(map[int]result[T])
	nextConsume := 0
	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // draining after a failure
		}
		// The failing worker already set stop when fn returned the error;
		// indices are claimed in ascending order, so everything below the
		// failing index is already in flight and will still be delivered.
		// The ordered scan below decides which failure is the lowest-index
		// one to report.
		pending[r.index] = r
		for {
			head, ok := pending[nextConsume]
			if !ok {
				break
			}
			delete(pending, nextConsume)
			if head.err != nil {
				// Lowest-index failure: everything below it was already
				// consumed, so this is the deterministic error to report.
				firstErr = &CellError{Index: head.index, Err: head.err}
				stop.Store(true)
				break
			}
			if err := consume(head.index, head.value); err != nil {
				firstErr = err
				stop.Store(true)
				break
			}
			nextConsume++
		}
	}
	return firstErr
}
