package parallel

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderMatchesSequential(t *testing.T) {
	cell := func(i int) (int, error) { return i * i, nil }
	want, err := Run(100, 1, cell)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		got, err := Run(100, workers, cell)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunOrderedStreamsAscending(t *testing.T) {
	// Delay cells pseudo-randomly so completion order differs from grid
	// order; the consume callback must still see strictly ascending indices.
	rng := rand.New(rand.NewPCG(1, 2))
	delays := make([]time.Duration, 64)
	for i := range delays {
		delays[i] = time.Duration(rng.Int64N(int64(2 * time.Millisecond)))
	}
	var seen []int
	err := RunOrdered(len(delays), 8, func(i int) (int, error) {
		time.Sleep(delays[i])
		return i, nil
	}, func(i, v int) error {
		if i != v {
			t.Errorf("consume(%d, %d): index/value mismatch", i, v)
		}
		seen = append(seen, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(delays) {
		t.Fatalf("consumed %d of %d cells", len(seen), len(delays))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("consume order %v not ascending at position %d", seen[:i+1], i)
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	out, err := Run(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: got (%v, %v), want empty", out, err)
	}
	if err := RunOrdered(-3, 4, func(i int) (int, error) { return 0, nil },
		func(i, v int) error { t.Fatal("consume called for n<0"); return nil }); err != nil {
		t.Fatalf("n<0: %v", err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestErrorIsLowestIndexAndPrefixDelivered(t *testing.T) {
	// Several cells fail; the reported error must be the lowest failing
	// index regardless of completion order, and every result below it must
	// reach the consumer.
	failAt := map[int]bool{23: true, 7: true, 61: true}
	boom := errors.New("boom")
	for _, workers := range []int{1, 3, 8, 64} {
		var consumed []int
		err := RunOrdered(64, workers, func(i int) (int, error) {
			if failAt[i] {
				return 0, fmt.Errorf("cell says: %w", boom)
			}
			return i, nil
		}, func(i, v int) error {
			consumed = append(consumed, i)
			return nil
		})
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %v is not a *CellError", workers, err)
		}
		if ce.Index != 7 {
			t.Fatalf("workers=%d: reported index %d, want 7 (lowest)", workers, ce.Index)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error chain lost the cell error: %v", workers, err)
		}
		if len(consumed) != 7 {
			t.Fatalf("workers=%d: consumed %v, want exactly indices 0..6", workers, consumed)
		}
		for i, v := range consumed {
			if v != i {
				t.Fatalf("workers=%d: consumed %v, want 0..6 in order", workers, consumed)
			}
		}
	}
}

func TestRunErrorKeepsPrefixResults(t *testing.T) {
	out, err := Run(20, 4, func(i int) (int, error) {
		if i == 11 {
			return 0, errors.New("nope")
		}
		return i + 1, nil
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 11 {
		t.Fatalf("error = %v, want CellError at 11", err)
	}
	if len(out) != 20 {
		t.Fatalf("result slice length %d, want full allocation 20", len(out))
	}
	for i := 0; i < 11; i++ {
		if out[i] != i+1 {
			t.Fatalf("prefix result %d = %d, want %d", i, out[i], i+1)
		}
	}
}

func TestConsumeErrorStopsRun(t *testing.T) {
	stopErr := errors.New("writer full")
	var started atomic.Int64
	err := RunOrdered(1000, 4, func(i int) (int, error) {
		started.Add(1)
		return i, nil
	}, func(i, v int) error {
		if i == 5 {
			return stopErr
		}
		return nil
	})
	if !errors.Is(err, stopErr) {
		t.Fatalf("error = %v, want the consume error", err)
	}
	if n := started.Load(); n == 1000 {
		t.Fatalf("all %d cells ran despite early consume error", n)
	}
}

func TestErrorStopsClaimingNewCells(t *testing.T) {
	var started atomic.Int64
	_, err := Run(100000, 2, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("immediate")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n == 100000 {
		t.Fatal("entire grid ran despite an index-0 failure")
	}
}

// TestFailureStopsClaimsUnderBackpressure pins the fix for a waste bug: the
// stop flag used to be set only when the reassembly loop *received* the
// error result, so with a slow consumer the error sat behind channel
// backpressure while workers kept claiming and burning cells above a
// failure that already doomed the run. Now the failing worker sets stop the
// moment fn errors, so at most the other workers' already-claimed cells
// (≤ workers−1) can still observe the failure in flight.
func TestFailureStopsClaimsUnderBackpressure(t *testing.T) {
	const (
		workers = 8
		n       = 100000
		failIdx = 5
	)
	var failed atomic.Bool
	var burned atomic.Int64 // cells entered after the failure was recorded
	err := RunOrdered(n, workers, func(i int) (int, error) {
		if i == failIdx {
			failed.Store(true)
			return 0, errors.New("boom")
		}
		if failed.Load() {
			burned.Add(1)
		}
		return i, nil
	}, func(i, v int) error {
		// Slow consumer: the backpressure that used to let the pool keep
		// claiming long after the failure.
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != failIdx {
		t.Fatalf("err = %v, want CellError at %d", err, failIdx)
	}
	if b := burned.Load(); b > workers {
		t.Fatalf("%d cells executed after the failure was recorded, want ≤ %d", b, workers)
	}
}

// TestPoolHammer drives a large grid through many workers with work that
// yields aggressively, as a -race target for the claim counter, result
// channel, and reassembly buffer.
func TestPoolHammer(t *testing.T) {
	const n = 20000
	var calls atomic.Int64
	sum := 0
	err := RunOrdered(n, 32, func(i int) (int, error) {
		calls.Add(1)
		if i%97 == 0 {
			runtime.Gosched()
		}
		return i, nil
	}, func(i, v int) error {
		sum += v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("ran %d cells, want %d", calls.Load(), n)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}
