package exp

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
)

// runF9 regenerates the walltime-accuracy sweep: the classic backfill result
// that better user estimates improve scheduling, measured here for both the
// exclusive and the sharing backfill. Each row bounds the uniform
// overestimation factor users apply to their requests.
func runF9(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F9 walltime-accuracy — effect of user overestimation on backfill",
		"overestimate", "policy", "wait mean(s)", "slowdown mean", "CE", "SE")
	ranges := []struct{ lo, hi float64 }{
		{1.05, 1.2}, // near-perfect estimates
		{1.2, 2.0},  // good
		{1.5, 3.0},  // the default habit
		{2.0, 5.0},  // wild guesses
	}
	for _, rg := range ranges {
		for _, pname := range []string{"easy", "sharebackfill"} {
			sc := canonicalScenario(o, pname, sched.DefaultShareConfig())
			sc.overMin, sc.overMax = rg.lo, rg.hi
			rs, err := seedMean(sc, o.Seeds)
			if err != nil {
				return nil, err
			}
			t.Add(
				fmt.Sprintf("%.2f–%.2f×", rg.lo, rg.hi),
				pname,
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.Mean }), 0),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Slowdown.Mean }), 2),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency }), 3),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.SchedEfficiency }), 3),
			)
		}
	}
	t.AddNote("EASY exhibits the classic overestimation paradox: padded requests finish")
	t.AddNote("early and open backfill holes, so waits improve with WORSE estimates;")
	t.AddNote("sharing dominates across the whole range and is far less estimate-sensitive")
	t.AddNote("because co-allocation consumes no reserved whole-node capacity")
	return t, nil
}
