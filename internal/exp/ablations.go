package exp

import (
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// runA1 ablates the pairing-aware candidate ranking: with it off, guests
// land on hosts in node order regardless of stress-vector fit.
func runA1(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("A1 ablation-pairing — interference-aware pairing vs arbitrary",
		"variant", "CE", "SE", "stretch mean", "shared frac")
	variants := []struct {
		name string
		mut  func(*sched.ShareConfig)
	}{
		{"pairing-aware (default)", func(c *sched.ShareConfig) {}},
		{"arbitrary order", func(c *sched.ShareConfig) { c.PairingAware = false }},
		{"arbitrary + no threshold", func(c *sched.ShareConfig) {
			c.PairingAware = false
			c.MinComplementarity = 0
		}},
	}
	var defaultCE, worstCE float64
	for i, v := range variants {
		cfg := sched.DefaultShareConfig()
		v.mut(&cfg)
		rs, err := seedMean(canonicalScenario(o, "sharebackfill", cfg), o.Seeds)
		if err != nil {
			return nil, err
		}
		ce := meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency })
		if i == 0 {
			defaultCE = ce
		}
		if i == len(variants)-1 {
			worstCE = ce
		}
		t.Add(
			v.name,
			report.F(ce, 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SchedEfficiency }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Stretch.Mean }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SharedFraction }), 3),
		)
	}
	t.AddNote("pairing quality is the mechanism: default vs fully arbitrary CE delta %s",
		report.Pct(stats.RelChange(worstCE, defaultCE)))
	return t, nil
}

// runA2 ablates the walltime-inflation accounting inside ShareBackfill: with
// it off, reservations are planned with nominal ends, so co-allocations can
// postpone the releases the queue head's reservation depends on.
func runA2(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("A2 ablation-inflation — reservation accounting on vs off",
		"variant", "CE", "wait mean(s)", "wait p95(s)", "big-job wait mean(s)")
	for _, v := range []struct {
		name string
		on   bool
	}{
		{"accounting on (default)", true},
		{"accounting off", false},
	} {
		cfg := sched.DefaultShareConfig()
		cfg.InflationAccounting = v.on
		sc := canonicalScenario(o, "sharebackfill", cfg)
		var bigWaits, waits, waitsP95, ces []float64
		for _, seed := range o.Seeds {
			sc.seed = seed
			r, finished, err := runScenarioJobs(sc)
			if err != nil {
				return nil, err
			}
			ces = append(ces, r.CompEfficiency)
			waits = append(waits, r.Wait.Mean)
			waitsP95 = append(waitsP95, r.Wait.P95)
			// Big jobs (top node-count quartile) are the ones EASY
			// reservations exist to protect.
			big := 0.0
			n := 0
			for _, j := range finished {
				if j.Nodes >= 8 {
					big += float64(j.WaitTime())
					n++
				}
			}
			if n > 0 {
				bigWaits = append(bigWaits, big/float64(n))
			}
		}
		t.Add(
			v.name,
			report.F(stats.Mean(ces), 3),
			report.F(stats.Mean(waits), 0),
			report.F(stats.Mean(waitsP95), 0),
			report.F(stats.Mean(bigWaits), 0),
		)
	}
	t.AddNote("without accounting, co-allocation silently delays the reserved queue head;")
	t.AddNote("large reserved jobs absorb the damage (their wait grows)")
	return t, nil
}

// runA3 ablates placement preference: sharing first vs exhausting idle nodes
// first.
func runA3(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("A3 ablation-prefershared — share-first vs idle-first placement",
		"variant", "CE", "SE", "util", "shared frac", "stretch mean")
	for _, v := range []struct {
		name   string
		prefer bool
	}{
		{"share-first (default)", true},
		{"idle-first", false},
	} {
		cfg := sched.DefaultShareConfig()
		cfg.PreferShared = v.prefer
		rs, err := seedMean(canonicalScenario(o, "sharebackfill", cfg), o.Seeds)
		if err != nil {
			return nil, err
		}
		t.Add(
			v.name,
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SchedEfficiency }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Utilization }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SharedFraction }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Stretch.Mean }), 3),
		)
	}
	t.AddNote("share-first converts idle SMT capacity into throughput, at some per-job stretch")
	return t, nil
}

// runA4 ablates walltime-limit extension: the paper's SLURM integration must
// stretch a job's limit by the slowdown the system itself imposed via
// co-allocation. With strict (unextended) limits, stretched jobs get killed
// at their requested walltime and their occupancy is wasted.
func runA4(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("A4 ablation-limits — walltime limit extension vs strict enforcement",
		"variant", "policy", "CE", "killed", "wasted node-h", "work lost")
	for _, v := range []struct {
		name   string
		strict bool
	}{
		{"extended limits (default)", false},
		{"strict limits", true},
	} {
		for _, pname := range []string{"easy", "sharebackfill"} {
			sc := canonicalScenario(o, pname, sched.DefaultShareConfig())
			sc.strictLimits = v.strict
			var ces, killed, wasted, lost []float64
			for _, seed := range o.Seeds {
				sc.seed = seed
				r, err := runScenario(sc)
				if err != nil {
					return nil, err
				}
				ces = append(ces, r.CompEfficiency)
				killed = append(killed, float64(r.Killed))
				wasted = append(wasted, r.WastedNodeSeconds/3600)
				if r.Submitted > 0 {
					lost = append(lost, float64(r.Killed)/float64(r.Submitted))
				}
			}
			t.Add(
				v.name,
				pname,
				report.F(stats.Mean(ces), 3),
				report.F(stats.Mean(killed), 1),
				report.F(stats.Mean(wasted), 1),
				report.Pct(stats.Mean(lost)),
			)
		}
	}
	t.AddNote("exclusive policies never kill (users overestimate walltimes and nothing")
	t.AddNote("slows their jobs); sharing under strict limits kills the jobs it stretched —")
	t.AddNote("the reason the paper's SLURM integration extends limits by the inflation factor")
	return t, nil
}
