package exp

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
)

// runF11 regenerates the scheduling-interval sensitivity sweep: SLURM's
// backfill loop runs every bf_interval seconds (30 by default) rather than
// reacting to every event, so decisions arrive late by up to one tick. The
// sweep shows how much responsiveness the sharing strategy loses as the
// interval grows — and that the efficiency gain survives realistic
// intervals.
func runF11(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F11 sched-interval — periodic vs event-driven scheduling",
		"interval", "policy", "CE", "wait mean(s)", "slowdown mean")
	for _, interval := range []float64{0, 30, 60, 120} {
		for _, pname := range []string{"easy", "sharebackfill"} {
			sc := canonicalScenario(o, pname, sched.DefaultShareConfig())
			sc.schedInterval = interval
			rs, err := seedMean(sc, o.Seeds)
			if err != nil {
				return nil, err
			}
			label := "event-driven"
			if interval > 0 {
				label = fmt.Sprintf("%.0fs", interval)
			}
			t.Add(
				label,
				pname,
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency }), 3),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.Mean }), 0),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Slowdown.Mean }), 2),
			)
		}
	}
	t.AddNote("periodic scheduling delays each start by up to one tick; the sharing gain")
	t.AddNote("persists at SLURM's production 30–120 s backfill intervals")
	return t, nil
}
