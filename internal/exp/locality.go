package exp

import (
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/topology"
)

// runF10 regenerates the topology/locality comparison: the canonical
// Trinity workload under node sharing, with the interconnect model off
// (transparent network), on with naive placement, and on with
// locality-aware placement. Scattered allocations raise the effective
// network demand of communication-heavy jobs, which poisons co-run
// pairings (lower CE) and lengthens queues; compact placement recovers
// the queueing cost.
func runF10(o Options) (*report.Table, error) {
	o = o.withDefaults()
	topo := topology.Default(o.Nodes)
	t := report.New("F10 locality — interconnect model and locality-aware placement",
		"variant", "CE", "SE", "wait mean(s)", "stretch mean")
	variants := []struct {
		name     string
		topo     *topology.Topology
		locality bool
	}{
		{"no interconnect model", nil, false},
		{"topology, naive placement", &topo, false},
		{"topology, locality-aware", &topo, true},
	}
	for _, v := range variants {
		sc := canonicalScenario(o, "sharebackfill", sched.DefaultShareConfig())
		sc.topo = v.topo
		sc.locality = v.locality
		rs, err := seedMean(sc, o.Seeds)
		if err != nil {
			return nil, err
		}
		t.Add(
			v.name,
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SchedEfficiency }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.Mean }), 0),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Stretch.Mean }), 3),
		)
	}
	t.AddNote("leaf switches of %d nodes, uplink penalty %.1f; Trinity mix",
		topo.NodesPerGroup, topo.UplinkPenalty)
	return t, nil
}
