package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/sched"
)

// fastOpts keeps experiment tests quick: one seed, small machine, short jobs.
func fastOpts() Options {
	return Options{Seeds: []uint64{7}, Nodes: 8, Jobs: 60, RuntimeScale: 0.01}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "T3", "A1", "A2", "A3", "A4", "E1", "F8", "F9", "F10", "F11", "F12", "T4"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.Name == "" || e.Run == nil {
			t.Errorf("experiment %s is underspecified: %+v", e.ID, e)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("F1")
	if err != nil || e.ID != "F1" {
		t.Fatalf("ByID(F1) = %v, %v", e.ID, err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(fastOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tbl.Title == "" || len(tbl.Columns) == 0 {
				t.Fatalf("%s table underspecified", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s row %d has %d cells, header has %d",
						e.ID, i, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestT1RowsMatchCatalogue(t *testing.T) {
	tbl, err := runT1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(app.Catalogue()) {
		t.Fatalf("T1 rows = %d, want %d", len(tbl.Rows), len(app.Catalogue()))
	}
}

func TestT2IsSquare(t *testing.T) {
	tbl, err := runT2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := len(app.Catalogue())
	if len(tbl.Rows) != n || len(tbl.Columns) != n+1 {
		t.Fatalf("T2 shape = %dx%d, want %dx%d", len(tbl.Rows), len(tbl.Columns), n, n+1)
	}
	// All matrix cells must be rates in (0, 1].
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("non-numeric matrix cell %q", cell)
			}
			if v <= 0 || v > 1 {
				t.Fatalf("rate %g outside (0,1]", v)
			}
		}
	}
}

func TestF1SharingWins(t *testing.T) {
	// Even at test scale the ordering must hold: sharing CE > exclusive CE.
	o := Options{Seeds: []uint64{7, 8}, Nodes: 16, Jobs: 120, RuntimeScale: 0.02}
	tbl, err := runF1(o)
	if err != nil {
		t.Fatal(err)
	}
	ce := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("CE cell %q", row[1])
		}
		ce[row[0]] = v
	}
	if ce["easy"] != 1.0 {
		t.Fatalf("exclusive CE = %g, want exactly 1", ce["easy"])
	}
	if ce["sharebackfill"] <= ce["easy"] {
		t.Fatalf("sharebackfill CE %g not above easy %g", ce["sharebackfill"], ce["easy"])
	}
	if ce["sharefirstfit"] <= ce["easy"] {
		t.Fatalf("sharefirstfit CE %g not above easy %g", ce["sharefirstfit"], ce["easy"])
	}
}

func TestF2SharingShortensMakespan(t *testing.T) {
	o := Options{Seeds: []uint64{7, 8}, Nodes: 16, Jobs: 120, RuntimeScale: 0.02}
	tbl, err := runF2(o)
	if err != nil {
		t.Fatal(err)
	}
	makespan := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("makespan cell %q", row[3])
		}
		makespan[row[0]] = v
	}
	if makespan["sharebackfill"] >= makespan["easy"] {
		t.Fatalf("sharing makespan %g not below exclusive %g",
			makespan["sharebackfill"], makespan["easy"])
	}
}

func TestF7SMTOffMeansNoSharing(t *testing.T) {
	tbl, err := runF7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// First row is threads/core = 1: shared fraction must be 0 and gain 0.
	row := tbl.Rows[0]
	if row[0] != "1" {
		t.Fatalf("first F7 row is %v, want SMT-off variant", row)
	}
	if row[5] != "0.000" {
		t.Fatalf("SMT-off shared fraction = %s, want 0.000", row[5])
	}
	if !strings.HasPrefix(row[4], "+0.0%") && !strings.HasPrefix(row[4], "-0.0%") {
		t.Fatalf("SMT-off CE gain = %s, want ±0.0%%", row[4])
	}
}

func TestF12FaultFreeRowIsClean(t *testing.T) {
	o := Options{Seeds: []uint64{7, 8}, Nodes: 16, Jobs: 120, RuntimeScale: 0.02}
	tbl, err := runF12(o)
	if err != nil {
		t.Fatal(err)
	}
	goodput := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("goodput cell %q", row[1])
		}
		goodput[row[0]] = v
	}
	// Without faults nothing is lost: goodput is exactly 1 for both policies.
	for _, key := range []string{"easy/none", "sharebackfill/none"} {
		if goodput[key] != 1.0 {
			t.Fatalf("%s goodput = %g, want exactly 1", key, goodput[key])
		}
	}
	// Under the harshest level both policies lose real work.
	for _, key := range []string{"easy/2h", "sharebackfill/2h"} {
		if g := goodput[key]; g <= 0 || g >= 1 {
			t.Fatalf("%s goodput = %g, want in (0,1)", key, g)
		}
	}
}

func TestScenarioRunnerRejectsBadPolicy(t *testing.T) {
	o := fastOpts()
	sc := canonicalScenario(o, "nope", sched.DefaultShareConfig())
	if _, err := runScenario(sc); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestOverheadContext(t *testing.T) {
	ctx, err := BuildOverheadContext(fastOpts(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Queue) != 25 {
		t.Fatalf("queue depth = %d", len(ctx.Queue))
	}
	if len(ctx.Running) != ctx.Cluster.Size()/2 {
		t.Fatalf("running = %d, want half the machine", len(ctx.Running))
	}
	// The context must be reusable: scheduling twice must not mutate it.
	pol, err := sched.New("sharebackfill", sched.DefaultShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	d1 := pol.Schedule(ctx)
	d2 := pol.Schedule(ctx)
	if len(d1) != len(d2) {
		t.Fatalf("Schedule not repeatable: %d vs %d decisions", len(d1), len(d2))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Seeds) == 0 || o.Nodes == 0 || o.Jobs == 0 || o.RuntimeScale == 0 {
		t.Fatalf("defaults incomplete: %+v", o)
	}
}
