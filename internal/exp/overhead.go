package exp

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/sched"
)

// BuildOverheadContext constructs the synthetic scheduling state used by the
// F3 latency measurement: a Trinity-sized machine with half its nodes
// hosting single-layer jobs (so co-allocation candidates exist) and a
// pending queue of the requested depth. Policies only read the context, so
// the same instance is timed repeatedly.
func BuildOverheadContext(o Options, depth int) (*sched.Context, error) {
	o = o.withDefaults()
	cfg := cluster.Trinity(o.Nodes)
	c := cluster.New(cfg)
	cat := app.Catalogue()

	var running []*sched.RunningJob
	id := cluster.JobID(0)
	for ni := 0; ni < c.Size()/2; ni++ {
		id++
		a := cat[ni%len(cat)]
		j := &job.Job{
			ID: id, Name: fmt.Sprintf("run-%d", id), App: a, Nodes: 1,
			ReqWalltime: 7200, TrueRuntime: 3600, Submit: 0,
		}
		if err := c.Allocate(c.LayerPlacement(id, []int{ni}, cluster.PrimaryLayer, a.MemPerNodeMB)); err != nil {
			return nil, err
		}
		j.Start(0)
		running = append(running, &sched.RunningJob{
			Job: j, NodeIDs: []int{ni}, Exclusive: false,
			NominalEnd: des.Time(3600 + 60*ni), PredictedEnd: des.Time(3600 + 60*ni), Rate: 1,
		})
	}

	queue := make([]*job.Job, 0, depth)
	for i := 0; i < depth; i++ {
		id++
		a := cat[(i*3+1)%len(cat)]
		queue = append(queue, &job.Job{
			ID: id, Name: fmt.Sprintf("q-%d", id), App: a,
			Nodes:       1 + i%8,
			ReqWalltime: des.Duration(1800 + 300*(i%10)),
			TrueRuntime: des.Duration(900 + 150*(i%10)),
			Submit:      des.Time(i),
		})
	}

	return &sched.Context{
		Now:     des.Time(depth + 1),
		Cluster: c,
		Queue:   queue,
		Running: running,
		Inter:   interference.Default(),
		Share:   sched.DefaultShareConfig(),
	}, nil
}
