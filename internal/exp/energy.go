package exp

import (
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// runE1 regenerates the energy comparison: the same closed workload under
// every policy, with machine energy derived from the occupancy integrals via
// the three-level node power model. Sharing finishes the same work in fewer
// node-hours, so it wins on energy despite the extra draw of oversubscribed
// nodes.
func runE1(o Options) (*report.Table, error) {
	o = o.withDefaults()
	p := energy.DefaultParams()
	t := report.New("E1 energy — machine energy for one closed Trinity batch",
		"policy", "energy(kWh)", "J/work", "avg power(kW)", "vs easy")
	type agg struct{ kwh, jpw, power []float64 }
	results := map[string]*agg{}
	for _, pname := range allPolicies() {
		rs, err := seedMean(closedScenario(o, pname, sched.DefaultShareConfig()), o.Seeds)
		if err != nil {
			return nil, err
		}
		a := &agg{}
		for _, r := range rs {
			rep, err := energy.Compute(p, r)
			if err != nil {
				return nil, err
			}
			a.kwh = append(a.kwh, rep.KWh())
			a.jpw = append(a.jpw, rep.JoulesPerWork)
			a.power = append(a.power, rep.AvgPowerW/1000)
		}
		results[pname] = a
	}
	base := stats.Mean(results["easy"].kwh)
	for _, pname := range allPolicies() {
		a := results[pname]
		t.Add(
			pname,
			report.F(stats.Mean(a.kwh), 1),
			report.F(stats.Mean(a.jpw), 1),
			report.F(stats.Mean(a.power), 2),
			report.Pct(stats.RelChange(base, stats.Mean(a.kwh))),
		)
	}
	t.AddNote("node power model: %g W idle + %g W active + %g W when SMT-shared",
		p.IdleW, p.ActiveW, p.SharedW)
	t.AddNote("same delivered work per run; sharing trades higher instantaneous draw for")
	t.AddNote("fewer node-hours")
	return t, nil
}
