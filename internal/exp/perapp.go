package exp

import (
	"sort"

	"repro/internal/job"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// runT4 regenerates the per-application breakdown: who pays the sharing
// stretch and who gains the wait reduction, app by app. Bandwidth-bound apps
// co-locate with compute-bound partners, so the compute apps absorb most of
// the stretch while everyone's queueing collapses.
func runT4(o Options) (*report.Table, error) {
	o = o.withDefaults()
	type appAgg struct {
		waitsEasy, waitsShare []float64
		stretches             []float64
		shared, total         int
	}
	agg := map[string]*appAgg{}
	get := func(name string) *appAgg {
		a := agg[name]
		if a == nil {
			a = &appAgg{}
			agg[name] = a
		}
		return a
	}
	collect := func(policy string, into func(a *appAgg, j *job.Job)) error {
		for _, seed := range o.Seeds {
			sc := canonicalScenario(o, policy, sched.DefaultShareConfig())
			sc.seed = seed
			_, finished, err := runScenarioJobs(sc)
			if err != nil {
				return err
			}
			for _, j := range finished {
				into(get(j.App.Name), j)
			}
		}
		return nil
	}
	if err := collect("easy", func(a *appAgg, j *job.Job) {
		a.waitsEasy = append(a.waitsEasy, float64(j.WaitTime()))
	}); err != nil {
		return nil, err
	}
	if err := collect("sharebackfill", func(a *appAgg, j *job.Job) {
		a.waitsShare = append(a.waitsShare, float64(j.WaitTime()))
		a.stretches = append(a.stretches, j.Stretch())
		a.total++
		if j.EverShared() {
			a.shared++
		}
	}); err != nil {
		return nil, err
	}

	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)

	t := report.New("T4 per-app — who pays the stretch, who gains the wait (sharebackfill vs easy)",
		"app", "jobs", "shared", "stretch mean", "wait easy(s)", "wait share(s)", "wait change")
	for _, n := range names {
		a := agg[n]
		we, ws := stats.Mean(a.waitsEasy), stats.Mean(a.waitsShare)
		change := "n/a"
		if we > 0 {
			change = report.Pct(stats.RelChange(we, ws))
		}
		sharedFrac := 0.0
		if a.total > 0 {
			sharedFrac = float64(a.shared) / float64(a.total)
		}
		t.Add(
			n,
			report.F(float64(a.total), 0),
			report.F(sharedFrac, 2),
			report.F(stats.Mean(a.stretches), 3),
			report.F(we, 0),
			report.F(ws, 0),
			change,
		)
	}
	t.AddNote("every app's wait falls under sharing; the stretch is the price, paid most by")
	t.AddNote("the apps that co-locate most")
	return t, nil
}
