// Package exp is the experiment registry: one entry per table and figure of
// the evaluation, each regenerating its rows from scratch through the
// simulator. The per-experiment index in DESIGN.md maps experiment IDs to
// the modules they exercise; EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Options tune experiment execution. The zero value is completed by
// withDefaults: 32 Trinity nodes, 3 seeds, runtimes scaled to 5% of the
// catalogue values (hours → minutes) so the full suite runs in seconds
// without changing workload shape.
type Options struct {
	// Seeds are the workload seeds to average over.
	Seeds []uint64
	// Nodes is the machine size.
	Nodes int
	// Jobs is the per-run job count (experiments may scale it).
	Jobs int
	// RuntimeScale multiplies application runtimes (see workload.Spec).
	RuntimeScale float64
	// FaultMTTR, FaultShape, and FaultCrashProb parameterize the F12
	// resilience sweep (which varies MTBF itself). Zero values default to a
	// 900 s repair time, exponential failures, and a 2% per-attempt crash
	// probability.
	FaultMTTR      float64
	FaultShape     float64
	FaultCrashProb float64
}

func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{42, 43, 44}
	}
	if o.Nodes == 0 {
		o.Nodes = 32
	}
	if o.Jobs == 0 {
		o.Jobs = 300
	}
	if o.RuntimeScale == 0 {
		o.RuntimeScale = 0.05
	}
	if o.FaultMTTR == 0 {
		o.FaultMTTR = 900
	}
	if o.FaultShape == 0 {
		o.FaultShape = 1
	}
	if o.FaultCrashProb == 0 {
		o.FaultCrashProb = 0.02
	}
	return o
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the index key, e.g. "F1".
	ID string
	// Name is the DESIGN.md slug, e.g. "comp-efficiency".
	Name string
	// Title describes what the experiment shows.
	Title string
	// Paper states the paper-anchored expectation for the result's shape.
	Paper string
	// Run regenerates the table.
	Run func(Options) (*report.Table, error)
}

// All returns the registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "app-catalogue", "Trinity mini-app characterization",
			"the mini-apps span compute-, bandwidth-, cache- and network-bound profiles", runT1},
		{"T2", "corun-matrix", "pairwise co-run progress rates and throughput gains",
			"complementary pairs gain, same-bottleneck pairs do not", runT2},
		{"F1", "comp-efficiency", "computational efficiency under high load",
			"sharing strategies ≈ +19% over standard allocation", runF1},
		{"F2", "sched-efficiency", "scheduling efficiency on a closed workload",
			"sharing strategies ≈ +25.2% over standard allocation", runF2},
		{"F3", "overhead", "scheduler decision latency vs queue depth",
			"no overhead from co-allocation", runF3},
		{"F4", "wait-slowdown", "queue wait and bounded slowdown across loads",
			"sharing cuts waits, most at high load", runF4},
		{"F5", "load-sweep", "utilization and efficiency vs offered load",
			"sharing gains grow with load; negligible when the machine is idle", runF5},
		{"F6", "mix-sensitivity", "sharing gain by workload mix",
			"bandwidth-saturating mixes gain nothing; compute-leaning and balanced mixes gain", runF6},
		{"F7", "oversub-sweep", "SMT width and memory-capacity sensitivity",
			"no SMT ⇒ no sharing; tight memory suppresses co-allocation", runF7},
		{"T3", "strategy-summary", "full per-strategy summary on the canonical scenario",
			"ShareBackfill ≥ ShareFirstFit > exclusive baselines on both efficiencies", runT3},
		{"A1", "ablation-pairing", "pairing-aware vs arbitrary co-allocation",
			"interference-aware pairing is what makes sharing profitable", runA1},
		{"A2", "ablation-inflation", "walltime-inflation accounting on vs off",
			"without accounting, co-allocation delays large reserved jobs", runA2},
		{"A3", "ablation-prefershared", "share-first vs idle-first placement",
			"share-first raises efficiency at modest stretch cost", runA3},
		{"A4", "ablation-limits", "walltime limit extension vs strict enforcement",
			"strict limits kill stretched co-located jobs and waste their occupancy", runA4},
		{"E1", "energy", "machine energy for a fixed batch of work",
			"sharing lowers total energy and energy per work despite higher node draw", runE1},
		{"F8", "fairness", "multi-user wait dispersion, FCFS vs fairshare priority",
			"fairshare shields light users from a heavy user's backlog at no efficiency cost", runF8},
		{"F9", "walltime-accuracy", "effect of user walltime overestimation on backfill",
			"EASY shows the overestimation paradox; sharing dominates and is estimate-insensitive", runF9},
		{"F10", "locality", "interconnect topology and locality-aware placement",
			"scattered allocations raise network contention; compact placement recovers the loss", runF10},
		{"F11", "sched-interval", "periodic vs event-driven scheduling passes",
			"the sharing gain survives SLURM-scale backfill intervals", runF11},
		{"F12", "resilience", "exclusive vs sharing under node failures and job crashes",
			"sharing keeps its efficiency lead under churn despite larger co-location blast radius", runF12},
		{"T4", "per-app", "per-application stretch and wait breakdown",
			"all apps gain wait; co-locating apps pay the stretch", runT4},
	}
}

// ByID looks up an experiment by ID (case-sensitive, e.g. "F1").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// scenario describes one simulation run request.
type scenario struct {
	policy  string
	share   sched.ShareConfig
	mix     workload.Mix
	arrival workload.Arrival
	load    float64
	jobs    int
	cluster cluster.Config
	scale   float64
	seed    uint64
	// strictLimits enables walltime kills (ablation A4).
	strictLimits bool
	// overMin/overMax override the walltime overestimation range (F9);
	// zero keeps the generator defaults.
	overMin, overMax float64
	// topo enables the interconnect model; locality additionally makes
	// the policies placement-locality-aware (F10).
	topo     *topology.Topology
	locality bool
	// schedInterval batches scheduling onto periodic ticks (F11); zero is
	// event-driven.
	schedInterval float64
	// faults enables fault injection (F12); nil runs failure-free.
	faults *fault.Config
}

// runScenarioJobs executes one simulation and returns its metrics along
// with the finished jobs (for experiments that slice per-job data).
func runScenarioJobs(sc scenario) (metrics.Result, []*job.Job, error) {
	pol, err := sched.New(sc.policy, sc.share)
	if err != nil {
		return metrics.Result{}, nil, err
	}
	jobs, err := workload.Generate(workload.Spec{
		Mix:             sc.mix,
		Jobs:            sc.jobs,
		Arrival:         sc.arrival,
		Load:            sc.load,
		Cluster:         sc.cluster,
		RuntimeScale:    sc.scale,
		OverestimateMin: sc.overMin,
		OverestimateMax: sc.overMax,
		Seed:            sc.seed,
	})
	if err != nil {
		return metrics.Result{}, nil, err
	}
	e := sim.New(sim.Config{
		Cluster: sc.cluster, Policy: pol, StrictLimits: sc.strictLimits,
		Topo: sc.topo, LocalityAware: sc.locality,
		SchedInterval: des.Duration(sc.schedInterval),
		Faults:        sc.faults,
	})
	if err := e.SubmitAll(jobs); err != nil {
		return metrics.Result{}, nil, err
	}
	e.RunAll()
	r := e.Result()
	if err := r.Validate(); err != nil {
		return metrics.Result{}, nil, fmt.Errorf("exp: %s seed %d: %w", sc.policy, sc.seed, err)
	}
	if r.Finished+r.Killed != r.Submitted-len(e.Rejected()) {
		return metrics.Result{}, nil, fmt.Errorf("exp: %s seed %d: %d of %d jobs unaccounted",
			sc.policy, sc.seed, r.Submitted-r.Finished-r.Killed, r.Submitted)
	}
	return r, e.Finished(), nil
}

// runScenario executes one simulation and returns its metrics.
func runScenario(sc scenario) (metrics.Result, error) {
	r, _, err := runScenarioJobs(sc)
	return r, err
}

// seedMean runs the scenario across seeds and returns per-seed results in
// seed order. Seeds fan out across all cores: each run is an isolated
// simulation (its own workload RNG stream, cluster, policy, and engine), and
// results are reassembled in seed order — never completion order — so the
// averages are bit-identical to a sequential loop.
func seedMean(sc scenario, seeds []uint64) ([]metrics.Result, error) {
	out, err := parallel.Run(len(seeds), 0, func(i int) (metrics.Result, error) {
		run := sc
		run.seed = seeds[i]
		return runScenario(run)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// meanOf extracts a mean over per-seed results.
func meanOf(rs []metrics.Result, f func(metrics.Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}

// canonicalScenario is the evaluation's standard high-load open workload
// (F1, T3, ablations): Trinity mix on 32 Trinity nodes at offered load 1.4.
func canonicalScenario(o Options, policy string, share sched.ShareConfig) scenario {
	return scenario{
		policy:  policy,
		share:   share,
		mix:     workload.TrinityMix(),
		arrival: workload.Poisson,
		load:    1.4,
		jobs:    o.Jobs,
		cluster: cluster.Trinity(o.Nodes),
		scale:   o.RuntimeScale,
		seed:    o.Seeds[0],
	}
}

// closedScenario is the makespan experiment's batch workload (F2).
func closedScenario(o Options, policy string, share sched.ShareConfig) scenario {
	sc := canonicalScenario(o, policy, share)
	sc.arrival = workload.Batch
	sc.load = 0
	sc.jobs = o.Jobs * 2 / 3
	return sc
}

// baselinePolicies and sharingPolicies order the comparison rows.
var (
	baselinePolicies = []string{"fcfs", "firstfit", "easy", "conservative"}
	sharingPolicies  = []string{"sharefirstfit", "sharebackfill", "shareconservative"}
)

// allPolicies returns baselines followed by sharing strategies.
func allPolicies() []string {
	out := append([]string{}, baselinePolicies...)
	return append(out, sharingPolicies...)
}

// sortedKeys returns map keys in sorted order (deterministic table rows).
func sortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// metricsResult shortens closure signatures in the experiment files.
type metricsResult = metrics.Result
