package exp

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/interference"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// runT1 regenerates the mini-app characterization table.
func runT1(o Options) (*report.Table, error) {
	t := report.New("T1 app-catalogue — Trinity mini-app characterization",
		"app", "cpu", "membw", "cache", "net", "bottleneck", "mem/node(GB)", "mean runtime", "typical nodes")
	for _, m := range app.Catalogue() {
		t.Add(
			m.Name,
			report.F(m.Stress[app.CPU], 2),
			report.F(m.Stress[app.MemBW], 2),
			report.F(m.Stress[app.Cache], 2),
			report.F(m.Stress[app.Network], 2),
			m.Bottleneck().String(),
			fmt.Sprintf("%d", m.MemPerNodeMB/1024),
			fmt.Sprintf("%.1fh", m.MeanRuntime/3600),
			fmt.Sprintf("%v", m.TypicalNodes),
		)
	}
	t.AddNote("stress components in [0,1] at one rank per core on a dedicated node")
	return t, nil
}

// runT2 regenerates the pairwise co-run matrix: the row app's progress rate
// when co-located with the column app, plus the pair throughput gain.
func runT2(o Options) (*report.Table, error) {
	models := app.Catalogue()
	inter := interference.Default()
	cols := []string{"app \\ co-runner"}
	for _, m := range models {
		cols = append(cols, m.Name)
	}
	t := report.New("T2 corun-matrix — progress rate of row app beside column app", cols...)
	mat := inter.CoRunMatrix(models)
	for i, m := range models {
		row := []string{m.Name}
		for j := range models {
			row = append(row, report.F(mat[i][j], 2))
		}
		t.Add(row...)
	}
	// Summary: best and worst pairings by throughput gain.
	bestGain, worstGain := -2.0, 2.0
	var bestPair, worstPair string
	for i, a := range models {
		for j, b := range models {
			if j < i {
				continue
			}
			g := inter.PairGain(a.Stress, b.Stress)
			if g > bestGain {
				bestGain, bestPair = g, a.Name+"+"+b.Name
			}
			if g < worstGain {
				worstGain, worstPair = g, a.Name+"+"+b.Name
			}
		}
	}
	t.AddNote("best pair %s (%s node throughput), worst pair %s (%s)",
		bestPair, report.Pct(bestGain), worstPair, report.Pct(worstGain))
	return t, nil
}

// runT3 regenerates the full per-strategy summary on the canonical scenario.
func runT3(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("T3 strategy-summary — canonical Trinity scenario (load 1.4, 32 nodes)",
		"policy", "CE", "SE", "util", "shared", "makespan(h)", "wait mean(s)", "slowdown mean", "stretch mean")
	ces := map[string]float64{}
	ses := map[string]float64{}
	for _, pname := range allPolicies() {
		rs, err := seedMean(canonicalScenario(o, pname, sched.DefaultShareConfig()), o.Seeds)
		if err != nil {
			return nil, err
		}
		ce := meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency })
		se := meanOf(rs, func(r metricsResult) float64 { return r.SchedEfficiency })
		ces[pname], ses[pname] = ce, se
		t.Add(
			pname,
			report.F(ce, 3),
			report.F(se, 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Utilization }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.SharedFraction }), 3),
			report.F(meanOf(rs, func(r metricsResult) float64 { return float64(r.Makespan) / 3600 }), 2),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.Mean }), 0),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Slowdown.Mean }), 2),
			report.F(meanOf(rs, func(r metricsResult) float64 { return r.Stretch.Mean }), 3),
		)
	}
	t.AddNote("sharebackfill vs easy: CE %s, SE %s (paper: +19%% CE, +25.2%% SE)",
		report.Pct(stats.RelChange(ces["easy"], ces["sharebackfill"])),
		report.Pct(stats.RelChange(ses["easy"], ses["sharebackfill"])))
	return t, nil
}
