package exp

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runF1 regenerates the headline computational-efficiency comparison: the
// canonical high-load open workload under every policy, CE relative to EASY.
func runF1(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F1 comp-efficiency — computational efficiency, Trinity mix @ load 1.4",
		"policy", "CE mean", "CE ±95%", "gain vs easy")
	ces := map[string][]float64{}
	for _, pname := range allPolicies() {
		rs, err := seedMean(canonicalScenario(o, pname, sched.DefaultShareConfig()), o.Seeds)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			ces[pname] = append(ces[pname], r.CompEfficiency)
		}
	}
	base := stats.Mean(ces["easy"])
	for _, pname := range allPolicies() {
		s := stats.Summarize(ces[pname])
		t.Add(pname, report.F(s.Mean, 3), report.F(s.CI95, 3),
			report.Pct(stats.RelChange(base, s.Mean)))
	}
	t.AddNote("paper target: sharing ≈ +19%% computational efficiency vs standard allocation")
	return t, nil
}

// runF2 regenerates the headline scheduling-efficiency comparison on a
// closed (batch) workload, where makespan is well defined.
func runF2(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F2 sched-efficiency — scheduling efficiency, closed Trinity batch",
		"policy", "SE mean", "SE ±95%", "makespan(h)", "gain vs easy")
	ses := map[string][]float64{}
	makespans := map[string][]float64{}
	for _, pname := range allPolicies() {
		rs, err := seedMean(closedScenario(o, pname, sched.DefaultShareConfig()), o.Seeds)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			ses[pname] = append(ses[pname], r.SchedEfficiency)
			makespans[pname] = append(makespans[pname], float64(r.Makespan)/3600)
		}
	}
	base := stats.Mean(ses["easy"])
	for _, pname := range allPolicies() {
		s := stats.Summarize(ses[pname])
		t.Add(pname, report.F(s.Mean, 3), report.F(s.CI95, 3),
			report.F(stats.Mean(makespans[pname]), 2),
			report.Pct(stats.RelChange(base, s.Mean)))
	}
	t.AddNote("SE = packing lower bound / makespan; values above 1 are possible under SMT sharing")
	t.AddNote("paper target: sharing ≈ +25.2%% scheduling efficiency vs standard allocation")
	return t, nil
}

// runF3 regenerates the co-allocation overhead measurement: real wall-clock
// scheduler decision latency against queue depth, exclusive vs sharing.
func runF3(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F3 overhead — scheduler decision latency (real time)",
		"queue depth", "easy", "sharebackfill", "ratio")
	depths := []int{10, 50, 100, 500, 1000}
	for _, depth := range depths {
		easyNs, err := measureDecision(o, "easy", depth)
		if err != nil {
			return nil, err
		}
		shareNs, err := measureDecision(o, "sharebackfill", depth)
		if err != nil {
			return nil, err
		}
		ratio := shareNs / easyNs
		t.Add(
			report.F(float64(depth), 0),
			report.Ns(easyNs),
			report.Ns(shareNs),
			report.F(ratio, 2),
		)
	}
	t.AddNote("median of repeated passes over a synthetic half-busy 32-node state")
	t.AddNote("paper target: no overhead from co-allocation — both policies stay sub-millisecond")
	t.AddNote("per pass with latency flat in queue depth, orders of magnitude below the")
	t.AddNote("batch system's scheduling interval")
	return t, nil
}

// measureDecision times one policy's Schedule() on a synthetic context with
// the given queue depth and returns the median latency in nanoseconds.
func measureDecision(o Options, policy string, depth int) (float64, error) {
	ctx, err := BuildOverheadContext(o, depth)
	if err != nil {
		return 0, err
	}
	pol, err := sched.New(policy, sched.DefaultShareConfig())
	if err != nil {
		return 0, err
	}
	const reps = 21
	samples := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		pol.Schedule(ctx)
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
	}
	return stats.Median(samples), nil
}

// runF4 regenerates the wait/slowdown distribution comparison across loads.
func runF4(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F4 wait-slowdown — queue wait and bounded slowdown vs load",
		"load", "policy", "wait mean(s)", "wait p95(s)", "slowdown mean", "slowdown p95")
	for _, load := range []float64{0.7, 0.9, 1.1} {
		for _, pname := range []string{"easy", "sharefirstfit", "sharebackfill"} {
			sc := canonicalScenario(o, pname, sched.DefaultShareConfig())
			sc.load = load
			rs, err := seedMean(sc, o.Seeds)
			if err != nil {
				return nil, err
			}
			t.Add(
				report.F(load, 1),
				pname,
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.Mean }), 0),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Wait.P95 }), 0),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Slowdown.Mean }), 2),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Slowdown.P95 }), 2),
			)
		}
	}
	t.AddNote("sharing absorbs queueing pressure; the gap widens as load grows")
	return t, nil
}

// runF5 regenerates the load sweep: utilization and CE per policy from an
// idle machine to deep saturation, showing where sharing starts to pay.
func runF5(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F5 load-sweep — utilization and efficiency vs offered load",
		"load", "util easy", "util share", "CE easy", "CE share", "CE gain")
	for _, load := range []float64{0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5} {
		scE := canonicalScenario(o, "easy", sched.DefaultShareConfig())
		scE.load = load
		rsE, err := seedMean(scE, o.Seeds)
		if err != nil {
			return nil, err
		}
		scS := canonicalScenario(o, "sharebackfill", sched.DefaultShareConfig())
		scS.load = load
		rsS, err := seedMean(scS, o.Seeds)
		if err != nil {
			return nil, err
		}
		ceE := meanOf(rsE, func(r metricsResult) float64 { return r.CompEfficiency })
		ceS := meanOf(rsS, func(r metricsResult) float64 { return r.CompEfficiency })
		t.Add(
			report.F(load, 1),
			report.F(meanOf(rsE, func(r metricsResult) float64 { return r.Utilization }), 3),
			report.F(meanOf(rsS, func(r metricsResult) float64 { return r.Utilization }), 3),
			report.F(ceE, 3),
			report.F(ceS, 3),
			report.Pct(stats.RelChange(ceE, ceS)),
		)
	}
	t.AddNote("with an under-committed machine there is nothing to share; gains appear with pressure")
	return t, nil
}

// runF6 regenerates the mix-sensitivity comparison: the sharing gain per
// workload composition.
func runF6(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F6 mix-sensitivity — sharing gain by workload mix",
		"mix", "CE easy", "CE share", "CE gain", "shared frac")
	for _, mix := range workload.Mixes() {
		scE := canonicalScenario(o, "easy", sched.DefaultShareConfig())
		scE.mix = mix
		rsE, err := seedMean(scE, o.Seeds)
		if err != nil {
			return nil, err
		}
		scS := canonicalScenario(o, "sharebackfill", sched.DefaultShareConfig())
		scS.mix = mix
		rsS, err := seedMean(scS, o.Seeds)
		if err != nil {
			return nil, err
		}
		ceE := meanOf(rsE, func(r metricsResult) float64 { return r.CompEfficiency })
		ceS := meanOf(rsS, func(r metricsResult) float64 { return r.CompEfficiency })
		t.Add(
			mix.Name,
			report.F(ceE, 3),
			report.F(ceS, 3),
			report.Pct(stats.RelChange(ceE, ceS)),
			report.F(meanOf(rsS, func(r metricsResult) float64 { return r.SharedFraction }), 3),
		)
	}
	t.AddNote("bandwidth/network-saturating mixes cannot share (pairings clash on the")
	t.AddNote("bottleneck); compute-leaning mixes gain through SMT pipeline slack; the")
	t.AddNote("balanced Trinity mix gains through complementary pairing")
	return t, nil
}

// runF7 regenerates the oversubscription sweep: SMT width and node memory
// sensitivity of the sharing gain.
func runF7(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F7 oversub-sweep — SMT width and memory-capacity sensitivity",
		"threads/core", "mem/node(GB)", "CE easy", "CE share", "CE gain", "shared frac")
	type variant struct {
		tpc   int
		memGB int
	}
	variants := []variant{
		{1, 128}, // SMT off: no second layer, sharing impossible
		{2, 64},  // tight memory: most pairs do not co-fit
		{2, 128}, // the evaluated configuration
		{2, 256}, // abundant memory
	}
	for _, v := range variants {
		ccfg := cluster.Config{
			Nodes: o.Nodes, CoresPerNode: 32,
			ThreadsPerCore: v.tpc, MemoryPerNodeMB: v.memGB * 1024,
		}
		scE := canonicalScenario(o, "easy", sched.DefaultShareConfig())
		scE.cluster = ccfg
		rsE, err := seedMean(scE, o.Seeds)
		if err != nil {
			return nil, err
		}
		scS := canonicalScenario(o, "sharebackfill", sched.DefaultShareConfig())
		scS.cluster = ccfg
		rsS, err := seedMean(scS, o.Seeds)
		if err != nil {
			return nil, err
		}
		ceE := meanOf(rsE, func(r metricsResult) float64 { return r.CompEfficiency })
		ceS := meanOf(rsS, func(r metricsResult) float64 { return r.CompEfficiency })
		t.Add(
			report.F(float64(v.tpc), 0),
			report.F(float64(v.memGB), 0),
			report.F(ceE, 3),
			report.F(ceS, 3),
			report.Pct(stats.RelChange(ceE, ceS)),
			report.F(meanOf(rsS, func(r metricsResult) float64 { return r.SharedFraction }), 3),
		)
	}
	t.AddNote("without SMT there is no sibling layer to donate; tight memory suppresses co-allocation")
	return t, nil
}
