package exp

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sched"
)

// runF12 regenerates the resilience sweep: the canonical high-load workload
// under progressively harsher per-node failure rates (plus a small software
// crash probability), exclusive EASY backfill vs ShareBackfill. Sharing has a
// larger blast radius — one failed node kills every job co-located there —
// so the question is whether its efficiency lead survives churn. Goodput
// divides useful work by useful + lost + wasted occupancy; lost node-hours
// are discarded partial progress, charged not dropped.
func runF12(o Options) (*report.Table, error) {
	o = o.withDefaults()
	t := report.New("F12 resilience — exclusive vs sharing under a failure sweep",
		"policy/MTBF", "goodput", "CE", "lost node-h", "requeues", "failed", "resched(s)")
	sweep := []struct {
		label string
		mtbf  float64
	}{
		{"none", 0},
		{"24h", 86400},
		{"6h", 21600},
		{"2h", 7200},
	}
	for _, lvl := range sweep {
		for _, pname := range []string{"easy", "sharebackfill"} {
			rs, err := resilienceRuns(o, pname, lvl.mtbf)
			if err != nil {
				return nil, err
			}
			t.Add(
				fmt.Sprintf("%s/%s", pname, lvl.label),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.Goodput }), 3),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.CompEfficiency }), 3),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.LostNodeSeconds / 3600 }), 1),
				report.F(meanOf(rs, func(r metricsResult) float64 { return float64(r.Requeues) }), 1),
				report.F(meanOf(rs, func(r metricsResult) float64 { return float64(r.FailedJobs) }), 1),
				report.F(meanOf(rs, func(r metricsResult) float64 { return r.MeanRescheduleSeconds }), 0),
			)
		}
	}
	t.AddNote("per-node MTBF sweep at MTTR %.0f s, crash prob %.2g/attempt; failure traces", o.FaultMTTR, o.FaultCrashProb)
	t.AddNote("are seed-paired across policies, so rows at one MTBF see identical node outages")
	return t, nil
}

// resilienceRuns executes the canonical scenario across seeds with a fault
// configuration whose seed is derived from the workload seed, so averaging
// covers failure traces as well as arrival patterns while keeping each trace
// identical across the two policies (a paired comparison).
func resilienceRuns(o Options, policy string, mtbf float64) ([]metrics.Result, error) {
	out := make([]metrics.Result, 0, len(o.Seeds))
	for _, seed := range o.Seeds {
		sc := canonicalScenario(o, policy, sched.DefaultShareConfig())
		sc.seed = seed
		if mtbf > 0 { // the "none" level runs fully fault-free as the reference
			sc.faults = &fault.Config{
				Enabled:   true,
				MTBF:      mtbf,
				MTTR:      o.FaultMTTR,
				Shape:     o.FaultShape,
				CrashProb: o.FaultCrashProb,
				Seed:      seed,
			}
			if err := sc.faults.Validate(); err != nil {
				return nil, err
			}
		}
		r, err := runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("F12 mtbf=%g: %w", mtbf, err)
		}
		out = append(out, r)
	}
	return out, nil
}
