package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runF8 regenerates the fairness comparison: a Zipf-skewed multi-user
// workload (user01 floods the queue) under node sharing, scheduled FCFS vs
// with the fairshare priority factor. Fairshare protects the light users'
// waits from the heavy user's backlog without hurting efficiency.
func runF8(o Options) (*report.Table, error) {
	o = o.withDefaults()
	const users = 6

	t := report.New("F8 fairness — multi-user waits under FCFS vs fairshare priority",
		"ordering", "CE", "wait mean(s)", "heavy-user wait(s)", "light-users wait(s)", "heavy/light")
	for _, variant := range []struct {
		name      string
		fairshare bool
	}{
		{"fcfs order", false},
		{"fairshare priority", true},
	} {
		var ces, means, heavies, lights []float64
		for _, seed := range o.Seeds {
			jobs, err := workload.Generate(workload.Spec{
				Mix:          workload.TrinityMix(),
				Jobs:         o.Jobs,
				Arrival:      workload.Poisson,
				Load:         1.4,
				Cluster:      cluster.Trinity(o.Nodes),
				RuntimeScale: o.RuntimeScale,
				Users:        users,
				Seed:         seed,
			})
			if err != nil {
				return nil, err
			}
			pol, err := sched.New("sharebackfill", sched.DefaultShareConfig())
			if err != nil {
				return nil, err
			}
			e := sim.New(sim.Config{Cluster: cluster.Trinity(o.Nodes), Policy: pol})
			if variant.fairshare {
				prio := slurm.DefaultPriorityConfig()
				prio.WeightFairshare = 5000 // dominate age so the effect is visible
				e.SetQueueOrder(prio.LessWithUsage(e.Now, o.Nodes, slurm.UsageFromEngine(e)))
			}
			if err := e.SubmitAll(jobs); err != nil {
				return nil, err
			}
			e.RunAll()
			r := e.Result()
			if err := r.Validate(); err != nil {
				return nil, err
			}
			ces = append(ces, r.CompEfficiency)
			means = append(means, r.Wait.Mean)

			byUser := map[string][]float64{}
			for _, j := range e.Finished() {
				byUser[j.User] = append(byUser[j.User], float64(j.WaitTime()))
			}
			heavy := stats.Mean(byUser["user01"])
			var lightWaits []float64
			for u := 2; u <= users; u++ {
				lightWaits = append(lightWaits, byUser[fmt.Sprintf("user%02d", u)]...)
			}
			heavies = append(heavies, heavy)
			lights = append(lights, stats.Mean(lightWaits))
		}
		heavy, light := stats.Mean(heavies), stats.Mean(lights)
		ratio := 0.0
		if light > 0 {
			ratio = heavy / light
		}
		t.Add(
			variant.name,
			report.F(stats.Mean(ces), 3),
			report.F(stats.Mean(means), 0),
			report.F(heavy, 0),
			report.F(light, 0),
			report.F(ratio, 2),
		)
	}
	t.AddNote("user01 submits the most jobs (Zipf weights); fairshare pushes the flood behind")
	t.AddNote("light users' jobs, cutting their waits sharply at a small efficiency cost")
	t.AddNote("(priority reordering constrains pairing choices)")
	return t, nil
}
