package fault

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/des"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{MTBF: -1},
		{MTBF: 100, MTTR: 0},
		{MTBF: 100, MTTR: -5},
		{Shape: -1},
		{CrashProb: -0.1},
		{CrashProb: 1.5},
		{MTBF: math.NaN()},
		{CrashProb: math.NaN()},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	good := []Config{
		{},
		{MTBF: 86400, MTTR: 900},
		{MTBF: math.Inf(1)}, // +Inf MTBF disables node failures
		{CrashProb: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
}

func TestActive(t *testing.T) {
	cases := []struct {
		c    Config
		want bool
	}{
		{Config{}, false},
		{Config{Enabled: true}, false},
		{Config{MTBF: 100, MTTR: 10}, false}, // not enabled
		{Config{Enabled: true, MTBF: 100, MTTR: 10}, true},
		{Config{Enabled: true, CrashProb: 0.5}, true},
		{Config{Enabled: true, MTBF: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Active(); got != tc.want {
			t.Errorf("Active(%+v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestDefaults(t *testing.T) {
	d := Defaults()
	if d.MaxRetries != 3 || d.Backoff != 30 || d.Shape != 1 || d.Seed != 1 {
		t.Fatalf("Defaults() = %+v", d)
	}
	// Negative sentinels mean "none", not "default".
	c := Config{MaxRetries: -1, Backoff: -1}.withDefaults()
	if c.MaxRetries != 0 || c.Backoff != 0 {
		t.Fatalf("negative sentinels not zeroed: %+v", c)
	}
}

func TestBackoffFor(t *testing.T) {
	for retry, want := range map[int]des.Duration{1: 30, 2: 60, 3: 120, 0: 0, -1: 0} {
		if got := BackoffFor(30, retry); got != want {
			t.Errorf("BackoffFor(30, %d) = %v, want %v", retry, got, want)
		}
	}
	if BackoffFor(0, 5) != 0 {
		t.Error("zero base must yield no hold")
	}
	// The doubling cap keeps huge retry counts finite and monotone.
	if BackoffFor(30, 1000) != BackoffFor(30, 21) {
		t.Error("backoff not capped")
	}
}

func TestCrashDrawDeterministicAndIndependent(t *testing.T) {
	cfg := Config{Enabled: true, CrashProb: 0.5, Seed: 9}
	a, err := NewInjector(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for id := int64(1); id <= 200; id++ {
		for attempt := 0; attempt < 3; attempt++ {
			fa, ca := a.CrashDraw(id, attempt)
			fb, cb := b.CrashDraw(id, attempt)
			if fa != fb || ca != cb {
				t.Fatalf("draw (%d,%d) differs across injectors", id, attempt)
			}
			if ca {
				crashes++
				if fa <= 0 || fa > 1 {
					t.Fatalf("crash fraction %g outside (0,1]", fa)
				}
			}
		}
	}
	// 600 draws at p=0.5: a gross deviation means the stream is broken.
	if crashes < 200 || crashes > 400 {
		t.Fatalf("crashes = %d of 600 at p=0.5", crashes)
	}
	// Disabled configurations never crash and draw nothing.
	off, err := NewInjector(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, c := off.CrashDraw(1, 0); c {
		t.Fatal("disabled injector crashed a job")
	}
}

func TestInjectorTraceDeterminism(t *testing.T) {
	cfg := Config{Enabled: true, MTBF: 500, MTTR: 50, Seed: 4}
	run := func() []Event {
		in, err := NewInjector(cfg, 8)
		if err != nil {
			t.Fatal(err)
		}
		s := des.NewSimulator()
		work := 30 // stop scheduling new failures after a while
		in.Install(s,
			func(int) { work-- },
			func(int) {},
			func() bool { return work > 0 })
		s.RunAll()
		return in.Trace()
	}
	t1, t2 := run(), run()
	if len(t1) == 0 {
		t.Fatal("no failure events at MTBF 500")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("traces differ:\n%v\n%v", t1, t2)
	}
	// Every failure is eventually repaired, in order, per node.
	downs := map[int]bool{}
	for _, e := range t1 {
		switch e.Kind {
		case NodeFail:
			if downs[e.Node] {
				t.Fatalf("node %d failed twice without repair", e.Node)
			}
			downs[e.Node] = true
		case NodeRepair:
			if !downs[e.Node] {
				t.Fatalf("node %d repaired while up", e.Node)
			}
			downs[e.Node] = false
		}
	}
	for ni, down := range downs {
		if down {
			t.Fatalf("node %d left down at end of run", ni)
		}
	}
}

func TestWeibullShapePreservesMean(t *testing.T) {
	// The Weibull scale is chosen so the mean TTF equals MTBF for any shape.
	for _, shape := range []float64{0.7, 1, 2} {
		cfg := Config{Enabled: true, MTBF: 1000, MTTR: 1, Shape: shape, Seed: 11}
		in, err := NewInjector(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum, n := 0.0, 20000
		for i := 0; i < n; i++ {
			sum += in.nodes[0].Weibull(cfg.Shape, cfg.MTBF/math.Gamma(1+1/cfg.Shape))
		}
		mean := sum / float64(n)
		if mean < 950 || mean > 1050 {
			t.Errorf("shape %g: sample mean TTF = %.0f, want ≈1000", shape, mean)
		}
	}
}
