// Package fault models node failures and job crashes for the batch-system
// simulation.
//
// Real SLURM deployments treat failure handling — requeue, drain, controller
// restart from saved state — as table stakes, and node sharing raises the
// stakes: one failed node kills every job co-located there. This package
// supplies the failure *processes*; the simulation engine owns the
// *reaction* (killing victims, requeueing under a retry policy).
//
// Failures are deterministic functions of the configuration seed. Each node
// draws its time-to-failure and time-to-repair from its own named RNG stream
// (derived via des.RNG.Stream), and each job attempt draws its crash fate
// from a stream named by job ID and attempt number. Streams make the trace
// insensitive to event interleaving: the same seed always yields the same
// failure trace, regardless of what the workload does around it.
package fault

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Config parameterizes the failure model. The zero value disables fault
// injection entirely; a disabled configuration schedules no events and draws
// no random numbers, so it is bit-identical to not having the package at all.
type Config struct {
	// Enabled master-switches the model. Both failure processes below also
	// require their own rates to be positive.
	Enabled bool
	// MTBF is the per-node mean time between failures in simulated seconds;
	// 0 (or +Inf) disables node failures.
	MTBF float64
	// MTTR is the per-node mean time to repair in simulated seconds.
	MTTR float64
	// Shape is the Weibull shape of the time-to-failure distribution:
	// 1 is exponential (memoryless), <1 models infant mortality, >1 wear-out.
	// Zero defaults to 1.
	Shape float64
	// CrashProb is the probability that one job attempt crashes before
	// completing (software failure independent of node hardware); 0 disables
	// job crashes.
	CrashProb float64
	// MaxRetries caps how many times a failed or crashed job is requeued
	// before the system gives up and marks it failed. Zero defaults to 3;
	// negative means no retries at all.
	MaxRetries int
	// Backoff is the hold applied before a requeued job re-enters the
	// queue, doubling with each retry (exponential backoff). Zero defaults
	// to 30 simulated seconds; negative disables the hold.
	Backoff des.Duration
	// Seed roots the failure RNG streams. Zero defaults to 1.
	Seed uint64
}

// withDefaults fills the defaulted fields.
func (c Config) withDefaults() Config {
	if c.Shape == 0 {
		c.Shape = 1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = 30
	}
	if c.Backoff < 0 {
		c.Backoff = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Defaults returns the default-completed zero configuration: the retry policy
// (MaxRetries 3, 30 s base backoff) the engine applies even when injection is
// off, e.g. for operator-forced failures.
func Defaults() Config { return Config{}.withDefaults() }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MTBF < 0 || math.IsNaN(c.MTBF):
		return fmt.Errorf("fault: negative MTBF %g", c.MTBF)
	case c.MTBF > 0 && !math.IsInf(c.MTBF, 1) && c.MTTR <= 0:
		return fmt.Errorf("fault: node failures need a positive MTTR, got %g", c.MTTR)
	case c.MTTR < 0 || math.IsNaN(c.MTTR):
		return fmt.Errorf("fault: negative MTTR %g", c.MTTR)
	case c.Shape < 0 || math.IsNaN(c.Shape):
		return fmt.Errorf("fault: negative Weibull shape %g", c.Shape)
	case c.CrashProb < 0 || c.CrashProb > 1 || math.IsNaN(c.CrashProb):
		return fmt.Errorf("fault: crash probability %g outside [0,1]", c.CrashProb)
	}
	return nil
}

// Active reports whether the configuration injects any faults at all.
func (c Config) Active() bool {
	if !c.Enabled {
		return false
	}
	return c.nodeFailures() || c.CrashProb > 0
}

func (c Config) nodeFailures() bool {
	return c.MTBF > 0 && !math.IsInf(c.MTBF, 1)
}

// EventKind tags one failure-trace entry.
type EventKind string

// Trace entry kinds.
const (
	NodeFail   EventKind = "fail"
	NodeRepair EventKind = "repair"
)

// Event is one entry of the failure trace: node ni changed state at T.
type Event struct {
	T    des.Time
	Node int
	Kind EventKind
}

// String renders a trace line.
func (e Event) String() string { return fmt.Sprintf("[%s] %s node %d", e.T, e.Kind, e.Node) }

// Injector drives the failure processes on a discrete-event simulator. It is
// built once per engine and owns the per-node RNG streams and the failure
// trace.
type Injector struct {
	cfg   Config
	root  *des.RNG
	nodes []*des.RNG
	trace []Event
}

// NewInjector builds an injector for a machine of the given size. The
// configuration must validate.
func NewInjector(cfg Config, nodes int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	in := &Injector{cfg: cfg, root: des.NewRNG(cfg.Seed)}
	in.nodes = make([]*des.RNG, nodes)
	for i := range in.nodes {
		in.nodes[i] = in.root.Stream(fmt.Sprintf("fault/node/%d", i))
	}
	return in, nil
}

// Config returns the injector's (default-completed) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Install schedules the first failure of every node. fail and repair are the
// engine's reaction callbacks; workRemains gates rescheduling so an otherwise
// drained simulation terminates — once no workload remains, a due failure is
// dropped instead of fired, and no further failures are scheduled. Pending
// repairs always fire, so the machine ends the run whole.
func (in *Injector) Install(s *des.Simulator, fail, repair func(node int), workRemains func() bool) {
	if !in.cfg.Enabled || !in.cfg.nodeFailures() {
		return
	}
	for ni := range in.nodes {
		in.scheduleFail(s, ni, fail, repair, workRemains)
	}
}

func (in *Injector) scheduleFail(s *des.Simulator, ni int, fail, repair func(int), workRemains func() bool) {
	ttf := in.nodes[ni].Weibull(in.cfg.Shape, in.cfg.MTBF/math.Gamma(1+1/in.cfg.Shape))
	s.ScheduleIn(des.Duration(ttf), func(s *des.Simulator) {
		if !workRemains() {
			return // quiesce: no workload left to disturb
		}
		in.trace = append(in.trace, Event{T: s.Now(), Node: ni, Kind: NodeFail})
		fail(ni)
		ttr := in.nodes[ni].Exp(in.cfg.MTTR)
		s.ScheduleIn(des.Duration(ttr), func(s *des.Simulator) {
			in.trace = append(in.trace, Event{T: s.Now(), Node: ni, Kind: NodeRepair})
			repair(ni)
			in.scheduleFail(s, ni, fail, repair, workRemains)
		})
	})
}

// CrashDraw decides whether the given attempt (0-based) of job id crashes,
// and if so at which fraction of its requested walltime. The draw is a pure
// function of (seed, id, attempt), so retries redraw independently and the
// decision does not depend on simulation state.
func (in *Injector) CrashDraw(id int64, attempt int) (frac float64, crashes bool) {
	if !in.cfg.Enabled || in.cfg.CrashProb <= 0 {
		return 0, false
	}
	r := in.root.Stream(fmt.Sprintf("fault/crash/%d/%d", id, attempt))
	if r.Float64() >= in.cfg.CrashProb {
		return 0, false
	}
	u := r.Float64()
	if u <= 0 {
		u = 0.5
	}
	return u, true
}

// MaxRetries returns the (default-completed) retry cap.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// Backoff returns the requeue hold for the given retry number (1-based):
// Backoff × 2^(retry−1), capped at 2^20 × Backoff to avoid overflow.
func (in *Injector) BackoffFor(retry int) des.Duration {
	return BackoffFor(in.cfg.Backoff, retry)
}

// BackoffFor computes the exponential requeue hold base × 2^(retry−1) for a
// 1-based retry number, capped at 2^20 doublings.
func BackoffFor(base des.Duration, retry int) des.Duration {
	if base <= 0 || retry <= 0 {
		return 0
	}
	if retry > 21 {
		retry = 21
	}
	return base * des.Duration(int64(1)<<(retry-1))
}

// Trace returns a copy of the failure trace in event order.
func (in *Injector) Trace() []Event {
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}
