package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/des"
)

// Injected fault errors. Injection sites wrap these with the path, so
// errors.Is distinguishes a deliberate fault from a real filesystem error in
// assertions.
var (
	// ErrTornWrite marks a write that persisted only a prefix of the buffer
	// (power loss or ENOSPC mid-write).
	ErrTornWrite = errors.New("vfs: injected torn write")
	// ErrSyncFailed marks an injected fsync failure. Once a file's sync has
	// failed, later syncs of the same file keep failing unless the profile
	// opts into transient semantics — after a real fsync error the kernel
	// may have dropped the dirty pages, so "retry fsync and trust success"
	// is exactly the bug this models.
	ErrSyncFailed = errors.New("vfs: injected fsync failure")
	// ErrCrashed marks operations refused after a crash point fired: the
	// process is "dead" as far as this FS is concerned.
	ErrCrashed = errors.New("vfs: crashed (injected crash point)")
)

// FaultProfile configures a Faulty FS. All probabilities are per operation
// in [0, 1]; zero disables that fault class. The same (seed, profile,
// operation sequence) always produces the same faults.
type FaultProfile struct {
	// Seed feeds the named des RNG streams that drive every draw.
	Seed uint64
	// TornWriteProb is the chance a Write persists only a random prefix and
	// fails. The prefix length is drawn from the same stream.
	TornWriteProb float64
	// SyncFailProb is the chance a File.Sync (or SyncDir) fails.
	SyncFailProb float64
	// SyncFailTransient makes a failed sync heal on retry. The default
	// (false) is fail-once-then-fail-forever per file: after one lost fsync
	// the file's durability can no longer be trusted.
	SyncFailTransient bool
	// BitFlipProb is the chance a read (Read or ReadFile) returns data with
	// one bit flipped — injected bit rot.
	BitFlipProb float64
	// CrashProb is the chance any mutating operation becomes a crash point:
	// the operation fails and every later operation returns ErrCrashed.
	CrashProb float64
}

// FaultStats counts the faults a Faulty FS has injected.
type FaultStats struct {
	TornWrites int64
	SyncFails  int64
	BitFlips   int64
	Crashes    int64
}

// Faulty wraps an inner FS and injects deterministic storage faults. Beyond
// the probabilistic profile it supports scripted faults (FailSyncs,
// CrashAfterWrites) for tests that need a fault at an exact operation.
// Safe for concurrent use.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	profile FaultProfile
	torn    *des.RNG
	syncs   *des.RNG
	flips   *des.RNG
	crash   *des.RNG
	stats   FaultStats

	crashed    bool
	brokenSync map[string]bool // files whose sync has failed, now failing forever

	failSyncs   int // scripted: fail the next n syncs
	crashWrites int // scripted: crash after n more writes (-1 = off)
	tearWrites  int // scripted: tear the next n writes
}

// NewFaulty wraps inner with deterministic fault injection. Each fault
// class draws from its own named stream of p.Seed, so e.g. enabling bit
// flips does not perturb the torn-write schedule.
func NewFaulty(inner FS, p FaultProfile) *Faulty {
	root := des.NewRNG(p.Seed)
	return &Faulty{
		inner:       inner,
		profile:     p,
		torn:        root.Stream("vfs/torn-write"),
		syncs:       root.Stream("vfs/sync-fail"),
		flips:       root.Stream("vfs/bit-flip"),
		crash:       root.Stream("vfs/crash-point"),
		brokenSync:  make(map[string]bool),
		crashWrites: -1,
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// FailSyncs scripts the next n Sync/SyncDir calls to fail (on top of the
// probabilistic profile). Scripted failures respect the fail-forever
// semantics unless the profile is transient.
func (f *Faulty) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = n
}

// TearWrites scripts the next n Writes to persist only a prefix (drawn from
// the torn-write stream) and fail with ErrTornWrite — a power loss at an
// exact append, on top of the probabilistic profile.
func (f *Faulty) TearWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearWrites = n
}

// CrashAfterWrites scripts a crash point: the n+1th Write from now fails
// with ErrCrashed after persisting nothing, and every operation after it
// fails too. n < 0 cancels a pending scripted crash.
func (f *Faulty) CrashAfterWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashWrites = n
}

// Crashed reports whether a crash point has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Revive clears the crashed state, modelling a process restart on the same
// storage. Broken-sync state persists: the files' lost writes stay lost.
func (f *Faulty) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
}

func (f *Faulty) checkCrashed() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// drawCrash decides whether this mutating operation is a crash point.
// Callers hold f.mu.
func (f *Faulty) drawCrash() bool {
	if f.profile.CrashProb > 0 && f.crash.Float64() < f.profile.CrashProb {
		f.crashed = true
		f.stats.Crashes++
		return true
	}
	return false
}

// drawSyncFail decides whether a sync of path fails. Callers hold f.mu.
func (f *Faulty) drawSyncFail(path string) bool {
	if f.brokenSync[path] {
		f.stats.SyncFails++
		return true
	}
	fail := f.failSyncs > 0
	if fail {
		f.failSyncs--
	} else {
		fail = f.profile.SyncFailProb > 0 && f.syncs.Float64() < f.profile.SyncFailProb
	}
	if fail {
		f.stats.SyncFails++
		if !f.profile.SyncFailTransient {
			f.brokenSync[path] = true
		}
	}
	return fail
}

// maybeFlip possibly flips one random bit of p in place. Callers hold f.mu.
func (f *Faulty) maybeFlip(p []byte) {
	if len(p) == 0 || f.profile.BitFlipProb <= 0 {
		return
	}
	if f.flips.Float64() < f.profile.BitFlipProb {
		i := f.flips.Intn(len(p))
		p[i] ^= 1 << uint(f.flips.Intn(8))
		f.stats.BitFlips++
	}
}

func (f *Faulty) Open(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *Faulty) Create(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	if f.drawCrash() {
		return nil, fmt.Errorf("create %s: %w", path, ErrCrashed)
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *Faulty) OpenAppend(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *Faulty) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f.maybeFlip(data)
	return data, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	if f.drawCrash() {
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Faulty) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	if f.drawCrash() {
		return fmt.Errorf("truncate %s: %w", path, ErrCrashed)
	}
	return f.inner.Truncate(path, size)
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return err
	}
	if f.drawSyncFail(dir + "/") {
		return fmt.Errorf("syncdir %s: %w", dir, ErrSyncFailed)
	}
	return f.inner.SyncDir(dir)
}

func (f *Faulty) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// faultyFile injects write/sync/read faults on one handle.
type faultyFile struct {
	fs    *Faulty
	inner File
}

func (ff *faultyFile) Name() string { return ff.inner.Name() }

func (ff *faultyFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkCrashed(); err != nil {
		return 0, err
	}
	n, err := ff.inner.Read(p)
	if n > 0 {
		ff.fs.maybeFlip(p[:n])
	}
	return n, err
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if ff.fs.crashWrites == 0 {
		ff.fs.crashWrites = -1
		ff.fs.crashed = true
		ff.fs.stats.Crashes++
		return 0, fmt.Errorf("write %s: %w", ff.inner.Name(), ErrCrashed)
	}
	if ff.fs.crashWrites > 0 {
		ff.fs.crashWrites--
	}
	torn := ff.fs.tearWrites > 0
	if torn {
		ff.fs.tearWrites--
	}
	if torn || (ff.fs.profile.TornWriteProb > 0 && ff.fs.torn.Float64() < ff.fs.profile.TornWriteProb) {
		ff.fs.stats.TornWrites++
		n := 0
		if len(p) > 0 {
			n = ff.fs.torn.Intn(len(p)) // strict prefix: at least one byte lost
		}
		if n > 0 {
			if wn, err := ff.inner.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, fmt.Errorf("write %s: %w", ff.inner.Name(), ErrTornWrite)
	}
	if ff.fs.drawCrash() {
		return 0, fmt.Errorf("write %s: %w", ff.inner.Name(), ErrCrashed)
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkCrashed(); err != nil {
		return err
	}
	if ff.fs.drawSyncFail(ff.inner.Name()) {
		return fmt.Errorf("sync %s: %w", ff.inner.Name(), ErrSyncFailed)
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error {
	// Close must always release the inner handle, crashed or not, so tests
	// do not leak descriptors; the result still reflects the crash.
	err := ff.inner.Close()
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.fs.crashed {
		return ErrCrashed
	}
	return err
}
