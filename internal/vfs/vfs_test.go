package vfs

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip sanity-checks the passthrough: create, append, read,
// rename, truncate, dir listing.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	p := filepath.Join(dir, "a.txt")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := fsys.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("world\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\nworld\n" {
		t.Fatalf("read %q", data)
	}
	if err := fsys.Truncate(p, 6); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, "b.txt")
	if err := fsys.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b.txt" {
		t.Fatalf("dir listing %v", names)
	}
	data, err = fsys.ReadFile(q)
	if err != nil || string(data) != "hello\n" {
		t.Fatalf("after truncate+rename: %q, %v", data, err)
	}
}

// TestFaultyDeterministic: the same seed and operation sequence injects the
// same faults; a different seed produces a different schedule.
func TestFaultyDeterministic(t *testing.T) {
	run := func(seed uint64) (FaultStats, []byte) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, FaultProfile{
			Seed:          seed,
			TornWriteProb: 0.3,
			SyncFailProb:  0.2,
			BitFlipProb:   0.4,
		})
		p := filepath.Join(dir, "x")
		var got []byte
		for i := 0; i < 50; i++ {
			w, err := f.OpenAppend(p)
			if err != nil {
				continue
			}
			w.Write([]byte("0123456789"))
			w.Sync()
			w.Close()
			if data, err := f.ReadFile(p); err == nil {
				got = append(got, data...)
			}
		}
		return f.Stats(), got
	}
	s1, d1 := run(7)
	s2, d2 := run(7)
	if s1 != s2 || !bytes.Equal(d1, d2) {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if s1.TornWrites == 0 || s1.SyncFails == 0 || s1.BitFlips == 0 {
		t.Fatalf("profile injected nothing: %+v", s1)
	}
	s3, _ := run(8)
	if s1 == s3 {
		t.Fatalf("different seeds produced identical fault schedules: %+v", s1)
	}
}

// TestFaultyTornWritePersistsPrefix: a torn write leaves a strict prefix of
// the buffer on disk and surfaces ErrTornWrite.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, FaultProfile{Seed: 1, TornWriteProb: 1})
	p := filepath.Join(dir, "x")
	w, err := f.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("abcdefghij")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want ErrTornWrite, got %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write persisted the whole buffer (%d bytes)", n)
	}
	w.Close()
	data, err := OS{}.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload[:n]) {
		t.Fatalf("on-disk %q is not the reported prefix %q", data, payload[:n])
	}
}

// TestFaultySyncFailForever: after one injected fsync failure the same
// file's syncs keep failing (the postgres fsync-gate semantics), while a
// transient profile heals.
func TestFaultySyncFailForever(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, FaultProfile{Seed: 1})
	f.FailSyncs(1)
	p := filepath.Join(dir, "x")
	w, err := f.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("scripted sync failure missing: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Sync(); !errors.Is(err, ErrSyncFailed) {
			t.Fatalf("sync %d healed after failure: %v", i, err)
		}
	}

	ft := NewFaulty(OS{}, FaultProfile{Seed: 1, SyncFailTransient: true})
	ft.FailSyncs(1)
	wt, err := ft.Create(filepath.Join(dir, "y"))
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	if err := wt.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("scripted transient failure missing: %v", err)
	}
	if err := wt.Sync(); err != nil {
		t.Fatalf("transient profile did not heal: %v", err)
	}
}

// TestFaultyCrashPoint: a scripted crash refuses the crashing write and all
// later operations until Revive.
func TestFaultyCrashPoint(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, FaultProfile{Seed: 1})
	p := filepath.Join(dir, "x")
	w, err := f.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.CrashAfterWrites(1)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("never")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if _, err := f.ReadFile(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read allowed: %v", err)
	}
	w.Close()
	f.Revive()
	data, err := f.ReadFile(p)
	if err != nil || string(data) != "ok" {
		t.Fatalf("after revive: %q, %v", data, err)
	}
}

// TestFaultyBitFlip: with BitFlipProb=1 every non-empty read differs from
// the stored bytes by exactly one bit.
func TestFaultyBitFlip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	w, _ := OS{}.Create(p)
	w.Write([]byte{0x00, 0x00, 0x00, 0x00})
	w.Close()
	f := NewFaulty(OS{}, FaultProfile{Seed: 3, BitFlipProb: 1})
	data, err := f.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, b := range data {
		for i := 0; i < 8; i++ {
			ones += int(b >> uint(i) & 1)
		}
	}
	if ones != 1 {
		t.Fatalf("want exactly one flipped bit, got %d (data %x)", ones, data)
	}
}
