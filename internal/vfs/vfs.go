// Package vfs is the filesystem seam under every durability path: the
// controller's write-ahead journal, snapshot compaction, the durable
// accounting writer, and HA full-resync rewrites all perform file I/O
// through the FS interface rather than the os package directly. Production
// code passes OS{}, a zero-cost passthrough; storage-robustness tests pass
// Faulty, a deterministic fault injector that produces torn writes, fsync
// failures, read-time bit rot, and crash points from named des RNG streams,
// so every "the disk lied" recovery path is exercisable from a seed.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"sort"
)

// File is the writable/readable handle surface the durability paths need.
// Sync must force written data to stable storage before returning.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with (for error messages).
	Name() string
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// FS is the filesystem operation surface of the durability layer. It is
// deliberately small: only the operations the journal, compaction, resync,
// and accounting writers actually perform, so a fault injector can cover
// all of them.
type FS interface {
	// Open opens path read-only.
	Open(path string) (File, error)
	// Create opens path truncated for writing, creating it if missing.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// ReadFile reads the whole file; a missing file returns an error
	// satisfying os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path (missing file returns an os.IsNotExist error).
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// MkdirAll creates path and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory so renames and creations inside it survive
	// power loss. Filesystems without directory fsync report an error.
	SyncDir(dir string) error
	// ReadDir lists the names of directory entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

func (OS) Open(path string) (File, error) { return os.Open(path) }

func (OS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (OS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
