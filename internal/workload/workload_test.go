package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func testSpec() Spec {
	return Spec{
		Mix:     TrinityMix(),
		Jobs:    200,
		Arrival: Poisson,
		Load:    0.8,
		Cluster: cluster.Trinity(32),
		Seed:    42,
	}
}

func TestMixesValid(t *testing.T) {
	for _, m := range Mixes() {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %q invalid: %v", m.Name, err)
		}
	}
}

func TestMixByName(t *testing.T) {
	m, err := MixByName("trinity")
	if err != nil || m.Name != "trinity" {
		t.Fatalf("MixByName(trinity) = %v, %v", m.Name, err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestMixValidation(t *testing.T) {
	good := TrinityMix()
	bad := []Mix{
		{Name: "empty"},
		{Name: "lenmismatch", Apps: good.Apps, Weights: []float64{1}},
		{Name: "negweight", Apps: good.Apps[:1], Weights: []float64{-1}},
		{Name: "zeroweight", Apps: good.Apps[:1], Weights: []float64{0}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %q accepted", m.Name)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	jobs, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if int(j.ID) != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Nodes > 32 {
			t.Fatalf("job %d requests %d nodes on a 32-node machine", i, j.Nodes)
		}
		if i > 0 && jobs[i].Submit < jobs[i-1].Submit {
			t.Fatalf("submissions not monotone at %d", i)
		}
		if j.TrueRuntime > j.ReqWalltime {
			t.Fatalf("job %d true runtime exceeds request", i)
		}
		if float64(j.ReqWalltime) > 3.0*float64(j.TrueRuntime)+1e-6 {
			t.Fatalf("job %d overestimation beyond bound: req=%v true=%v",
				i, j.ReqWalltime, j.TrueRuntime)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Submit != b[i].Submit || a[i].TrueRuntime != b[i].TrueRuntime ||
			a[i].App.Name != b[i].App.Name || a[i].Nodes != b[i].Nodes {
			t.Fatalf("job %d differs across same-seed generations", i)
		}
	}
	spec := testSpec()
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].TrueRuntime == c[i].TrueRuntime {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateBatchArrivals(t *testing.T) {
	spec := testSpec()
	spec.Arrival = Batch
	spec.Load = 0 // ignored for batch
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Submit != 0 {
			t.Fatalf("batch job submitted at %v", j.Submit)
		}
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	// Offered load ≈ total demand / (capacity × span).
	spec := testSpec()
	spec.Jobs = 3000
	spec.Load = 0.7
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	totalDemand := 0.0
	for _, j := range jobs {
		totalDemand += float64(j.Nodes) * float64(j.TrueRuntime)
	}
	span := float64(jobs[len(jobs)-1].Submit)
	offered := totalDemand / (float64(spec.Cluster.Nodes) * span)
	// Node counts are capped and runtimes floored, so allow a generous
	// tolerance; the point is the calibration is in the right regime.
	if math.Abs(offered-0.7) > 0.15 {
		t.Fatalf("offered load = %g, want ≈0.7", offered)
	}
}

func TestGenerateDailyCycle(t *testing.T) {
	spec := testSpec()
	spec.Arrival = DailyCycle
	spec.Jobs = 2000
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The cycle must modulate density: compare arrivals in the first vs
	// second half-day windows over several days.
	dayPeak, dayTrough := 0, 0
	for _, j := range jobs {
		phase := math.Mod(float64(j.Submit), 86400) / 86400
		if phase < 0.5 {
			dayPeak++
		} else {
			dayTrough++
		}
	}
	if dayPeak <= dayTrough {
		t.Fatalf("diurnal modulation missing: first-half=%d second-half=%d", dayPeak, dayTrough)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Jobs = 0 },
		func(s *Spec) { s.Load = 0 },
		func(s *Spec) { s.Load = -1 },
		func(s *Spec) { s.Cluster.Nodes = 0 },
		func(s *Spec) { s.OverestimateMin = 0.5 },
		func(s *Spec) { s.OverestimateMin = 3; s.OverestimateMax = 2 },
		func(s *Spec) { s.RuntimeScale = -1 },
		func(s *Spec) { s.Mix = Mix{Name: "empty"} },
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRuntimeScale(t *testing.T) {
	spec := testSpec()
	spec.RuntimeScale = 0.01
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, j := range jobs {
		mean += float64(j.TrueRuntime)
	}
	mean /= float64(len(jobs))
	// Catalogue means are hours; at 1% scale (with the 60 s floor) the mean
	// must be minutes, not hours.
	if mean > 600 {
		t.Fatalf("scaled mean runtime = %g s, want ≪ 600", mean)
	}
}

func TestMeanJobDemandPositive(t *testing.T) {
	d := testSpec().MeanJobDemand()
	if d <= 0 {
		t.Fatalf("MeanJobDemand = %g", d)
	}
}

func TestMixSubsetsHaveExpectedCharacter(t *testing.T) {
	cpu := CPUBoundMix()
	for _, a := range cpu.Apps {
		if a.Stress[0] < 0.7 {
			t.Errorf("cpubound mix contains %s with cpu stress %g", a.Name, a.Stress[0])
		}
	}
	mem := MemBoundMix()
	for _, a := range mem.Apps {
		if a.Stress[1] < 0.8 {
			t.Errorf("membound mix contains %s with membw stress %g", a.Name, a.Stress[1])
		}
	}
}

func TestArrivalString(t *testing.T) {
	for a, want := range map[Arrival]string{Batch: "batch", Poisson: "poisson", DailyCycle: "dailycycle"} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestUserAssignment(t *testing.T) {
	spec := testSpec()
	spec.Users = 5
	spec.Jobs = 1000
	jobs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range jobs {
		if j.User == "" {
			t.Fatal("user modelling on but job has no user")
		}
		counts[j.User]++
	}
	if len(counts) != 5 {
		t.Fatalf("distinct users = %d, want 5", len(counts))
	}
	// Zipf skew: user01 submits the most, user05 the least.
	if counts["user01"] <= counts["user05"] {
		t.Fatalf("no Zipf skew: user01=%d user05=%d", counts["user01"], counts["user05"])
	}
}

func TestNoUsersByDefault(t *testing.T) {
	jobs, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.User != "" {
			t.Fatalf("user %q assigned with user modelling off", j.User)
		}
	}
}
