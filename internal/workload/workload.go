// Package workload generates the synthetic job streams the evaluation runs.
//
// The paper evaluates with NERSC Trinity mini applications submitted to a
// SLURM batch system; we have no site trace, so this package synthesizes
// submission streams with the standard ingredients of scheduling studies:
// Poisson or diurnal arrivals calibrated to an offered load, per-application
// log-normal runtimes, node counts drawn from each app's typical sizes, and
// the habitual user walltime overestimation. Generation is deterministic in
// the seed (DESIGN.md §6).
package workload

import (
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
)

// Arrival selects the submission process.
type Arrival int

// Arrival kinds.
const (
	// Batch submits every job at t=0 (closed workload; used for makespan
	// and scheduling-efficiency experiments).
	Batch Arrival = iota
	// Poisson submits with exponential interarrivals calibrated to Load.
	Poisson
	// DailyCycle modulates Poisson arrivals with a 24 h sine (day peaks,
	// night troughs), like production submission patterns.
	DailyCycle
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Batch:
		return "batch"
	case Poisson:
		return "poisson"
	case DailyCycle:
		return "dailycycle"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Mix is a weighted application blend.
type Mix struct {
	// Name labels the mix in experiment output.
	Name string
	// Apps are the component applications.
	Apps []app.Model
	// Weights are the relative submission frequencies (same length as
	// Apps, non-negative, positive sum).
	Weights []float64
}

// Validate checks mix consistency.
func (m Mix) Validate() error {
	if len(m.Apps) == 0 {
		return fmt.Errorf("workload: mix %q has no apps", m.Name)
	}
	if len(m.Apps) != len(m.Weights) {
		return fmt.Errorf("workload: mix %q has %d apps but %d weights",
			m.Name, len(m.Apps), len(m.Weights))
	}
	total := 0.0
	for i, w := range m.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("workload: mix %q weight[%d] = %g", m.Name, i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload: mix %q has zero total weight", m.Name)
	}
	for _, a := range m.Apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("workload: mix %q: %w", m.Name, err)
		}
	}
	return nil
}

// TrinityMix returns the full Trinity mini-app catalogue, equally weighted —
// the canonical mix of the evaluation.
func TrinityMix() Mix {
	apps := app.Catalogue()
	w := make([]float64, len(apps))
	for i := range w {
		w[i] = 1
	}
	return Mix{Name: "trinity", Apps: apps, Weights: w}
}

// CPUBoundMix returns a homogeneous compute-bound mix (miniMD, UMT, GTC) —
// the mix sharing helps least.
func CPUBoundMix() Mix {
	return subsetMix("cpubound", "minimd", "umt", "gtc")
}

// MemBoundMix returns a homogeneous bandwidth-bound mix (miniFE, AMG, MILC) —
// sharing clashes on memory bandwidth.
func MemBoundMix() Mix {
	return subsetMix("membound", "minife", "amg", "milc")
}

// CommMix returns a communication-leaning mix (miniGhost, MILC, AMG).
func CommMix() Mix {
	return subsetMix("comm", "minighost", "milc", "amg")
}

func subsetMix(name string, names ...string) Mix {
	m := Mix{Name: name}
	for _, n := range names {
		a, err := app.ByName(n)
		if err != nil {
			panic(err) // catalogue names are compile-time constants here
		}
		m.Apps = append(m.Apps, a)
		m.Weights = append(m.Weights, 1)
	}
	return m
}

// Mixes returns the named evaluation mixes.
func Mixes() []Mix {
	return []Mix{TrinityMix(), CPUBoundMix(), MemBoundMix(), CommMix()}
}

// MixByName returns the named mix.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Spec parameterizes one generated workload.
type Spec struct {
	// Mix is the application blend.
	Mix Mix
	// Jobs is the number of jobs to generate.
	Jobs int
	// Arrival selects the submission process.
	Arrival Arrival
	// Load is the offered load (arrival rate × mean job demand / machine
	// capacity) for Poisson and DailyCycle arrivals; ignored for Batch.
	Load float64
	// Cluster provides machine capacity for load calibration and caps node
	// requests at the machine size.
	Cluster cluster.Config
	// OverestimateMin/Max bound the uniform walltime-request factor
	// (users request Overestimate × true runtime). Defaults 1.2–3.0.
	OverestimateMin, OverestimateMax float64
	// RuntimeScale multiplies every app's mean runtime (1 = catalogue
	// values); experiments shrink it to keep simulations fast without
	// changing workload shape.
	RuntimeScale float64
	// Users, when positive, assigns each job a submitting user drawn from
	// a Zipf-like popularity distribution (user 1 submits most — the
	// skewed reality fairshare priorities exist for). Zero disables user
	// modelling.
	Users int
	// Seed drives all randomness.
	Seed uint64
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.OverestimateMin == 0 {
		s.OverestimateMin = 1.2
	}
	if s.OverestimateMax == 0 {
		s.OverestimateMax = 3.0
	}
	if s.RuntimeScale == 0 {
		s.RuntimeScale = 1
	}
	return s
}

// Validate checks spec consistency.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if err := s.Mix.Validate(); err != nil {
		return err
	}
	if s.Jobs <= 0 {
		return fmt.Errorf("workload: %d jobs", s.Jobs)
	}
	if err := s.Cluster.Validate(); err != nil {
		return err
	}
	if s.Arrival != Batch && s.Load <= 0 {
		return fmt.Errorf("workload: open arrivals need positive load, got %g", s.Load)
	}
	if s.OverestimateMin < 1 || s.OverestimateMax < s.OverestimateMin {
		return fmt.Errorf("workload: overestimate range [%g, %g]",
			s.OverestimateMin, s.OverestimateMax)
	}
	if s.RuntimeScale <= 0 {
		return fmt.Errorf("workload: runtime scale %g", s.RuntimeScale)
	}
	return nil
}

// MeanJobDemand returns the expected node-seconds per job of the spec's mix
// (used for load calibration).
func (s Spec) MeanJobDemand() float64 {
	s = s.withDefaults()
	total := 0.0
	wsum := 0.0
	for i, a := range s.Mix.Apps {
		w := s.Mix.Weights[i]
		nodes := 0.0
		for _, n := range a.TypicalNodes {
			if n > s.Cluster.Nodes {
				n = s.Cluster.Nodes
			}
			nodes += float64(n)
		}
		nodes /= float64(len(a.TypicalNodes))
		total += w * nodes * a.MeanRuntime * s.RuntimeScale
		wsum += w
	}
	return total / wsum
}

// Generate produces the job stream. Job IDs are 1..Jobs in submission order.
func Generate(spec Spec) ([]*job.Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := des.NewRNG(spec.Seed)
	arrivalRNG := root.Stream("arrivals")
	appRNG := root.Stream("apps")
	sizeRNG := root.Stream("sizes")
	runtimeRNG := root.Stream("runtimes")
	wallRNG := root.Stream("walltimes")
	userRNG := root.Stream("users")

	var userWeights []float64
	for u := 1; u <= spec.Users; u++ {
		userWeights = append(userWeights, 1/float64(u))
	}

	// Calibrate the arrival rate so that offered load = Load:
	// λ = Load × capacity / E[demand], capacity in node-seconds per second.
	var meanInterarrival float64
	if spec.Arrival != Batch {
		lambda := spec.Load * float64(spec.Cluster.Nodes) / spec.MeanJobDemand()
		meanInterarrival = 1 / lambda
	}

	jobs := make([]*job.Job, 0, spec.Jobs)
	now := 0.0
	for i := 0; i < spec.Jobs; i++ {
		a := spec.Mix.Apps[appRNG.Choice(spec.Mix.Weights)]

		nodes := a.TypicalNodes[sizeRNG.Intn(len(a.TypicalNodes))]
		if nodes > spec.Cluster.Nodes {
			nodes = spec.Cluster.Nodes
		}

		// Log-normal runtime with the app's mean and CV; floor at 60 s.
		m := a.MeanRuntime * spec.RuntimeScale
		sigma2 := math.Log(1 + a.RuntimeCV*a.RuntimeCV)
		mu := math.Log(m) - sigma2/2
		runtime := runtimeRNG.LogNormal(mu, math.Sqrt(sigma2))
		if runtime < 60 {
			runtime = 60
		}
		wall := runtime * wallRNG.Uniform(spec.OverestimateMin, spec.OverestimateMax)

		switch spec.Arrival {
		case Batch:
			// all at t=0
		case Poisson:
			now += arrivalRNG.Exp(meanInterarrival)
		case DailyCycle:
			// Thin a faster Poisson stream against the diurnal profile
			// rate(t) = λ(1 + 0.8·sin(2πt/day)) / normalization.
			for {
				now += arrivalRNG.Exp(meanInterarrival / 1.8)
				phase := 2 * math.Pi * math.Mod(now, float64(des.Day)) / float64(des.Day)
				accept := (1 + 0.8*math.Sin(phase)) / 1.8
				if arrivalRNG.Float64() < accept {
					break
				}
			}
		}

		user := ""
		if spec.Users > 0 {
			user = fmt.Sprintf("user%02d", userRNG.Choice(userWeights)+1)
		}

		jobs = append(jobs, &job.Job{
			ID:          cluster.JobID(i + 1),
			Name:        fmt.Sprintf("%s-%d", a.Name, i+1),
			User:        user,
			App:         a,
			Nodes:       nodes,
			ReqWalltime: des.Duration(wall),
			TrueRuntime: des.Duration(runtime),
			Submit:      des.Time(now),
		})
	}
	return jobs, nil
}
