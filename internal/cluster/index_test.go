package cluster

import (
	"math/rand/v2"
	"testing"
)

// bruteIdleNodes recomputes IdleNodes the pre-index way: a full rescan using
// only per-node accessors that read the owner array directly.
func bruteIdleNodes(c *Cluster) []int {
	var out []int
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		if n.Idle() && n.Available() {
			out = append(out, i)
		}
	}
	return out
}

func bruteLayerFree(c *Cluster, ni int, l Layer) bool {
	n := c.Node(ni)
	if int(l) < 0 || int(l) >= n.ThreadsPerCore() {
		return false
	}
	return len(n.FreeSiblingThreads(int(l))) == n.Cores()
}

func bruteShareCandidates(c *Cluster, l Layer, memMB int) []int {
	var out []int
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		if n.Idle() || !n.Available() || !bruteLayerFree(c, i, l) {
			continue
		}
		if bruteMemFree(n) < memMB {
			continue
		}
		out = append(out, i)
	}
	return out
}

// bruteMemFree recomputes free memory from the per-job map, the index-free
// source of truth.
func bruteMemFree(n *Node) int {
	used := 0
	for _, id := range n.Jobs() {
		used += n.JobMemoryMB(id)
	}
	return n.MemoryMB() - used
}

func bruteBusyFreeLayerNodes(c *Cluster) []int {
	var out []int
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		if n.Idle() || !n.Available() {
			continue
		}
		for l := 0; l < n.ThreadsPerCore(); l++ {
			if bruteLayerFree(c, i, Layer(l)) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkIndex cross-checks every indexed query against a brute-force rescan.
func checkIndex(t *testing.T, c *Cluster, step int) {
	t.Helper()
	if got, want := c.IdleNodes(), bruteIdleNodes(c); !equalInts(got, want) {
		t.Fatalf("step %d: IdleNodes = %v, brute force = %v", step, got, want)
	}
	if got, want := c.CountIdle(), len(bruteIdleNodes(c)); got != want {
		t.Fatalf("step %d: CountIdle = %d, brute force = %d", step, got, want)
	}
	if got, want := c.BusyFreeLayerNodes(), bruteBusyFreeLayerNodes(c); !equalInts(got, want) {
		t.Fatalf("step %d: BusyFreeLayerNodes = %v, brute force = %v", step, got, want)
	}
	busyThreads, busyNodes, sharedNodes := 0, 0, 0
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		busyThreads += n.Threads() - n.FreeThreads()
		if !n.Idle() {
			busyNodes++
		}
		if n.SharingDegree() >= 2 {
			sharedNodes++
		}
		if got, want := n.MemFreeMB(), bruteMemFree(n); got != want {
			t.Fatalf("step %d: node %d MemFreeMB = %d, brute force = %d", step, i, got, want)
		}
		for l := 0; l < n.ThreadsPerCore(); l++ {
			if got, want := c.LayerFree(i, Layer(l)), bruteLayerFree(c, i, Layer(l)); got != want {
				t.Fatalf("step %d: LayerFree(%d, %d) = %v, brute force = %v", step, i, l, got, want)
			}
		}
	}
	if got := c.BusyThreads(); got != busyThreads {
		t.Fatalf("step %d: BusyThreads = %d, brute force = %d", step, got, busyThreads)
	}
	if got := c.BusyNodes(); got != busyNodes {
		t.Fatalf("step %d: BusyNodes = %d, brute force = %d", step, got, busyNodes)
	}
	if got := c.SharedNodes(); got != sharedNodes {
		t.Fatalf("step %d: SharedNodes = %d, brute force = %d", step, got, sharedNodes)
	}
	for l := 0; l < c.Config().ThreadsPerCore; l++ {
		for _, mem := range []int{0, 1024, 64 * 1024} {
			got := c.ShareCandidates(Layer(l), mem)
			want := bruteShareCandidates(c, Layer(l), mem)
			if !equalInts(got, want) {
				t.Fatalf("step %d: ShareCandidates(%d, %d) = %v, brute force = %v", step, l, mem, got, want)
			}
		}
	}
}

// TestProperty_IndexMatchesRescan hammers the cluster with a random but
// deterministic mix of layer/exclusive allocations, releases, drains, and
// down/repair cycles, cross-checking every indexed query against a full
// rescan after each step. This is the safety argument for the free-capacity
// index: indexed answers are exactly the rescan answers, at every reachable
// state.
func TestProperty_IndexMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	cfg := Config{Nodes: 24, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 8192}
	c := New(cfg)
	var live []JobID
	nextID := JobID(1)

	for step := 0; step < 2500; step++ {
		switch op := rng.IntN(10); {
		case op < 4: // allocate a layer placement on 1–4 usable nodes
			layer := Layer(rng.IntN(cfg.ThreadsPerCore))
			var nodes []int
			for ni := 0; ni < cfg.Nodes && len(nodes) < 1+rng.IntN(4); ni++ {
				n := c.Node(ni)
				if n.Available() && c.LayerFree(ni, layer) && n.MemFreeMB() >= 1024 {
					nodes = append(nodes, ni)
				}
			}
			if len(nodes) == 0 {
				continue
			}
			id := nextID
			nextID++
			if err := c.Allocate(c.LayerPlacement(id, nodes, layer, 1024)); err != nil {
				t.Fatalf("step %d: layer allocate: %v", step, err)
			}
			live = append(live, id)
		case op < 6: // allocate an exclusive placement on 1–2 idle nodes
			idle := c.IdleNodes()
			if len(idle) == 0 {
				continue
			}
			k := 1 + rng.IntN(2)
			if k > len(idle) {
				k = len(idle)
			}
			id := nextID
			nextID++
			if err := c.Allocate(c.ExclusivePlacement(id, idle[:k], 2048)); err != nil {
				t.Fatalf("step %d: exclusive allocate: %v", step, err)
			}
			live = append(live, id)
		case op < 8: // release a random live job
			if len(live) == 0 {
				continue
			}
			i := rng.IntN(len(live))
			if _, err := c.Release(live[i]); err != nil {
				t.Fatalf("step %d: release: %v", step, err)
			}
			live = append(live[:i], live[i+1:]...)
		case op < 9: // toggle drain on a random node
			ni := rng.IntN(cfg.Nodes)
			c.SetDrained(ni, !c.Node(ni).Drained())
		default: // down/repair a random empty node
			ni := rng.IntN(cfg.Nodes)
			n := c.Node(ni)
			if n.Down() {
				c.SetDown(ni, false)
			} else if n.SharingDegree() == 0 {
				c.SetDown(ni, true)
			}
		}
		checkIndex(t, c, step)
	}
}
