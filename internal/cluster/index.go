package cluster

import "math/bits"

// This file is the incremental free-capacity index: bitsets over node
// indices maintained on every allocation, release, drain, and repair, so the
// scheduler hot path answers "which nodes are idle?", "which busy nodes have
// a fully free SMT layer?", and "how many threads are busy?" without
// rescanning all nodes per candidate. Before the index, placeShared /
// placeGuarded spent ~60% of a simulation cell inside LayerFree's
// FreeSiblingThreads scan (one slice allocation per probe); with it, layer
// probes are an integer compare and candidate enumeration walks set bits
// only.
//
// The index is pure acceleration: every query returns exactly what a full
// rescan would (ascending node order included), a property pinned by the
// equivalence tests in index_test.go and the CLI golden files.

// nodeSet is a fixed-capacity bitset over node indices with ascending
// iteration — the index's building block.
type nodeSet struct {
	words []uint64
	count int
}

func newNodeSet(n int) *nodeSet { return &nodeSet{words: make([]uint64, (n+63)/64)} }

// set adds or removes i according to present.
func (s *nodeSet) set(i int, present bool) {
	w, b := i/64, uint64(1)<<(i%64)
	if present {
		if s.words[w]&b == 0 {
			s.words[w] |= b
			s.count++
		}
	} else if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.count--
	}
}

// has reports membership of i.
func (s *nodeSet) has(i int) bool { return s.words[i/64]&(uint64(1)<<(i%64)) != 0 }

// appendTo appends the members in ascending order to out.
func (s *nodeSet) appendTo(out []int) []int {
	for wi, w := range s.words {
		base := wi * 64
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// index holds the cluster's incremental capacity bookkeeping.
type index struct {
	// idleAvail: idle and schedulable (neither drained nor down).
	idleAvail *nodeSet
	// nonIdle: at least one allocated thread (regardless of availability).
	nonIdle *nodeSet
	// shared: two or more resident jobs.
	shared *nodeSet
	// layerFreeBusy[l]: busy, schedulable, and layer l entirely free — the
	// co-allocation candidate set.
	layerFreeBusy []*nodeSet
	// busyThreads is the cluster-wide allocated hardware-thread count.
	busyThreads int
}

func newIndex(cfg Config) *index {
	ix := &index{
		idleAvail:     newNodeSet(cfg.Nodes),
		nonIdle:       newNodeSet(cfg.Nodes),
		shared:        newNodeSet(cfg.Nodes),
		layerFreeBusy: make([]*nodeSet, cfg.ThreadsPerCore),
	}
	for l := range ix.layerFreeBusy {
		ix.layerFreeBusy[l] = newNodeSet(cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		ix.idleAvail.set(i, true)
	}
	return ix
}

// reindexNode recomputes node ni's membership in every set from the node's
// own counters. It is O(threads-per-core) and is called after any state
// change of the node (allocate, release, drain, repair).
func (c *Cluster) reindexNode(ni int) {
	n := c.nodes[ni]
	idle := n.free == len(n.owner)
	avail := !n.drained && !n.down
	c.idx.idleAvail.set(ni, idle && avail)
	c.idx.nonIdle.set(ni, !idle)
	c.idx.shared.set(ni, len(n.threads) >= 2)
	for l := 0; l < n.tpc; l++ {
		c.idx.layerFreeBusy[l].set(ni, avail && !idle && n.freeInLayer[l] == n.cores)
	}
}

// BusyFreeLayerNodes returns the busy, schedulable nodes with at least one
// entirely free hardware-thread layer, ascending — the sharing policies'
// co-allocation candidate universe.
func (c *Cluster) BusyFreeLayerNodes() []int {
	var out []int
	for wi := range c.idx.layerFreeBusy[0].words {
		var union uint64
		for _, s := range c.idx.layerFreeBusy {
			union |= s.words[wi]
		}
		base := wi * 64
		for union != 0 {
			out = append(out, base+bits.TrailingZeros64(union))
			union &= union - 1
		}
	}
	return out
}
