package cluster

import "fmt"

// Layer selects one hardware-thread layer of a node: layer 0 is the set of
// primary threads (one per core), layer 1 the set of first SMT siblings, and
// so on. The paper's sharing strategies allocate whole layers: a job runs one
// process/thread per core, and a co-allocated job binds to the sibling layer
// of the same cores, oversubscribing them through hyper-threading.
type Layer int

// Common layers on 2-way SMT machines.
const (
	PrimaryLayer   Layer = 0
	SecondaryLayer Layer = 1
)

// LayerFree reports whether every thread of the given layer is free on node
// ni. O(1) via the node's per-layer free counters — this is the scheduler's
// innermost candidate probe.
func (c *Cluster) LayerFree(ni int, l Layer) bool {
	n := c.Node(ni)
	if int(l) < 0 || int(l) >= n.tpc {
		return false
	}
	return n.freeInLayer[l] == n.cores
}

// LayerThreads returns the thread indices making up layer l on node ni.
func (c *Cluster) LayerThreads(ni int, l Layer) []int {
	n := c.Node(ni)
	if int(l) < 0 || int(l) >= n.tpc {
		panic(fmt.Sprintf("cluster: layer %d out of range (threads/core %d)", l, n.tpc))
	}
	out := make([]int, n.cores)
	for core := 0; core < n.cores; core++ {
		out[core] = core*n.tpc + int(l)
	}
	return out
}

// ExclusivePlacement builds a placement giving job id every hardware thread
// and memMB of memory on each listed node — the standard node allocation the
// paper's baselines use.
func (c *Cluster) ExclusivePlacement(id JobID, nodes []int, memPerNodeMB int) Placement {
	p := Placement{Job: id}
	for _, ni := range nodes {
		n := c.Node(ni)
		threads := make([]int, n.Threads())
		for t := range threads {
			threads[t] = t
		}
		p.Nodes = append(p.Nodes, NodePlacement{Node: ni, Threads: threads, MemoryMB: memPerNodeMB})
	}
	return p
}

// LayerPlacement builds a placement giving job id one hardware-thread layer
// and memMB of memory on each listed node — the allocation unit of the
// sharing strategies.
func (c *Cluster) LayerPlacement(id JobID, nodes []int, l Layer, memPerNodeMB int) Placement {
	p := Placement{Job: id}
	for _, ni := range nodes {
		p.Nodes = append(p.Nodes, NodePlacement{
			Node: ni, Threads: c.LayerThreads(ni, l), MemoryMB: memPerNodeMB,
		})
	}
	return p
}

// IdleNodes returns the indices of fully idle, schedulable (neither drained
// nor down) nodes, ascending. Served from the free-capacity index: the walk
// touches set bits only, not every node.
func (c *Cluster) IdleNodes() []int {
	if c.idx.idleAvail.count == 0 {
		return nil
	}
	return c.idx.idleAvail.appendTo(make([]int, 0, c.idx.idleAvail.count))
}

// CountIdle returns the number of fully idle, schedulable nodes.
func (c *Cluster) CountIdle() int { return c.idx.idleAvail.count }

// ShareCandidates returns the indices of nodes where layer l is entirely
// free, at least memMB of memory is available, and the node is not idle
// (i.e. a co-allocation target: someone is already there). Ascending order,
// enumerated from the free-capacity index.
func (c *Cluster) ShareCandidates(l Layer, memMB int) []int {
	if int(l) < 0 || int(l) >= c.cfg.ThreadsPerCore {
		return nil
	}
	var out []int
	for _, i := range c.idx.layerFreeBusy[l].appendTo(nil) {
		if c.nodes[i].MemFreeMB() >= memMB {
			out = append(out, i)
		}
	}
	return out
}

// BusyThreads returns the number of allocated hardware threads cluster-wide.
func (c *Cluster) BusyThreads() int { return c.idx.busyThreads }

// BusyNodes returns the number of nodes with at least one allocated thread.
func (c *Cluster) BusyNodes() int { return c.idx.nonIdle.count }

// SharedNodes returns the number of nodes occupied by two or more jobs.
func (c *Cluster) SharedNodes() int { return c.idx.shared.count }

// Utilization returns the fraction of hardware threads allocated, in [0, 1].
func (c *Cluster) Utilization() float64 {
	total := c.cfg.TotalThreads()
	if total == 0 {
		return 0
	}
	return float64(c.BusyThreads()) / float64(total)
}

// NodeUtilization returns the fraction of nodes busy, in [0, 1].
func (c *Cluster) NodeUtilization() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	return float64(c.BusyNodes()) / float64(len(c.nodes))
}
