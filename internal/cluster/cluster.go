// Package cluster models an HPC machine at hardware-thread granularity.
//
// The model mirrors the sharing granularity studied by the paper: nodes are
// built from cores, each core exposes ThreadsPerCore hardware threads
// (2 on the evaluated SMT/hyper-threading systems), and node sharing means
// co-allocating a second job onto the sibling hardware threads of cores whose
// primary threads are already owned by another job. The package is pure
// resource accounting — it knows nothing about time, applications, or
// policies; those live in higher layers.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// JobID identifies a job for allocation accounting. IDs are assigned by the
// job layer; 0 is reserved as "no owner".
type JobID int64

// NoJob marks an unallocated hardware thread.
const NoJob JobID = 0

// Config describes a homogeneous cluster. Homogeneity matches the evaluated
// system (a uniform partition of SMT-capable nodes); heterogeneous machines
// can be modeled as multiple clusters behind one scheduler if ever needed.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the number of physical cores per node.
	CoresPerNode int
	// ThreadsPerCore is the SMT width (2 for the hyper-threading systems the
	// paper evaluates; 1 disables sharing-by-oversubscription entirely).
	ThreadsPerCore int
	// MemoryPerNodeMB is the usable memory per node in MiB. Memory is the
	// resource that most often forbids co-allocation in practice, so it is
	// tracked explicitly.
	MemoryPerNodeMB int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: config needs at least one node, got %d", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: config needs at least one core per node, got %d", c.CoresPerNode)
	case c.ThreadsPerCore <= 0:
		return fmt.Errorf("cluster: config needs at least one thread per core, got %d", c.ThreadsPerCore)
	case c.MemoryPerNodeMB <= 0:
		return fmt.Errorf("cluster: config needs positive node memory, got %d MB", c.MemoryPerNodeMB)
	}
	return nil
}

// ThreadsPerNode returns the total hardware threads a node exposes.
func (c Config) ThreadsPerNode() int { return c.CoresPerNode * c.ThreadsPerCore }

// TotalThreads returns the hardware-thread capacity of the whole machine.
func (c Config) TotalThreads() int { return c.Nodes * c.ThreadsPerNode() }

// Trinity returns a configuration modeled after a Trinity-class partition:
// dual-socket 16-core nodes (32 cores), 2-way SMT, 128 GiB of memory.
// n selects the number of nodes.
func Trinity(n int) Config {
	return Config{Nodes: n, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 128 * 1024}
}

// Node is one compute node. Hardware threads are indexed
// core*ThreadsPerCore + sibling, so the primary thread of core c is index
// c*tpc and its SMT siblings follow immediately.
type Node struct {
	id    int
	cores int
	tpc   int
	memMB int

	owner   []JobID       // per hardware thread; NoJob when free
	memUsed map[JobID]int // per-job resident memory on this node, MB
	threads map[JobID]int // per-job allocated thread count on this node
	free    int           // free hardware threads
	drained bool          // administratively removed from scheduling
	down    bool          // failed hardware: no allocations until repaired

	// Incrementally maintained counters backing the free-capacity index
	// (see index.go): per-layer free-thread counts and the node's total
	// reserved memory, so LayerFree and MemFreeMB are O(1) on the
	// scheduler's candidate-scan hot path.
	freeInLayer []int // free threads per SMT layer; layer fully free at cores
	memUsedSum  int   // total reserved memory, MB
}

func newNode(id int, cfg Config) *Node {
	n := &Node{
		id:          id,
		cores:       cfg.CoresPerNode,
		tpc:         cfg.ThreadsPerCore,
		memMB:       cfg.MemoryPerNodeMB,
		owner:       make([]JobID, cfg.ThreadsPerNode()),
		memUsed:     make(map[JobID]int),
		threads:     make(map[JobID]int),
		freeInLayer: make([]int, cfg.ThreadsPerCore),
	}
	n.free = len(n.owner)
	for l := range n.freeInLayer {
		n.freeInLayer[l] = n.cores
	}
	return n
}

// ID returns the node's index within the cluster.
func (n *Node) ID() int { return n.id }

// Cores returns the number of physical cores.
func (n *Node) Cores() int { return n.cores }

// ThreadsPerCore returns the SMT width.
func (n *Node) ThreadsPerCore() int { return n.tpc }

// Threads returns the number of hardware threads.
func (n *Node) Threads() int { return len(n.owner) }

// MemoryMB returns the node's total memory.
func (n *Node) MemoryMB() int { return n.memMB }

// FreeThreads returns the number of unallocated hardware threads.
func (n *Node) FreeThreads() int { return n.free }

// Idle reports whether no job holds any thread on the node.
func (n *Node) Idle() bool { return n.free == len(n.owner) }

// Drained reports whether the node is administratively removed from
// scheduling (running jobs keep their allocations; no new work lands).
func (n *Node) Drained() bool { return n.drained }

// Down reports whether the node is failed. Unlike draining — which lets
// running jobs finish in place — a node goes down with its residents dead;
// the engine kills and requeues them before marking the node down.
func (n *Node) Down() bool { return n.down }

// Available reports whether the node may accept new allocations: neither
// drained nor down.
func (n *Node) Available() bool { return !n.drained && !n.down }

// MemFreeMB returns the unreserved memory on the node.
func (n *Node) MemFreeMB() int { return n.memMB - n.memUsedSum }

// Owner returns the job holding hardware thread t, or NoJob.
func (n *Node) Owner(t int) JobID { return n.owner[t] }

// CoreOf returns the physical core that hardware thread t belongs to.
func (n *Node) CoreOf(t int) int { return t / n.tpc }

// SiblingOf returns the s-th sibling thread index on the same core as t.
func (n *Node) SiblingOf(t, s int) int { return n.CoreOf(t)*n.tpc + s }

// Jobs returns the IDs of jobs holding at least one thread, in ascending
// order (deterministic for scheduling and tests).
func (n *Node) Jobs() []JobID {
	ids := make([]JobID, 0, len(n.threads))
	for id := range n.threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// JobThreads returns the hardware threads job id holds on this node,
// ascending.
func (n *Node) JobThreads(id JobID) []int {
	if n.threads[id] == 0 {
		return nil
	}
	out := make([]int, 0, n.threads[id])
	for t, o := range n.owner {
		if o == id {
			out = append(out, t)
		}
	}
	return out
}

// JobMemoryMB returns the memory reserved by job id on this node.
func (n *Node) JobMemoryMB(id JobID) int { return n.memUsed[id] }

// SharingDegree returns the number of distinct jobs on the node; 0 means
// idle, 1 exclusive, ≥2 shared.
func (n *Node) SharingDegree() int { return len(n.threads) }

// FreeSiblingThreads returns the hardware threads of layer `sibling`
// (0 = primary, 1 = first SMT sibling, ...) that are currently free,
// ascending. It panics if sibling is out of range for the SMT width.
func (n *Node) FreeSiblingThreads(sibling int) []int {
	if sibling < 0 || sibling >= n.tpc {
		panic(fmt.Sprintf("cluster: sibling %d out of range (threads/core %d)", sibling, n.tpc))
	}
	var out []int
	for c := 0; c < n.cores; c++ {
		t := c*n.tpc + sibling
		if n.owner[t] == NoJob {
			out = append(out, t)
		}
	}
	return out
}

// Errors returned by allocation operations.
var (
	ErrThreadBusy  = errors.New("cluster: hardware thread already allocated")
	ErrNoMemory    = errors.New("cluster: insufficient node memory")
	ErrUnknownNode = errors.New("cluster: node index out of range")
	ErrUnknownJob  = errors.New("cluster: job holds no allocation")
	ErrBadPlace    = errors.New("cluster: malformed placement")
	ErrDrained     = errors.New("cluster: node is drained")
	ErrDown        = errors.New("cluster: node is down")
)

// NodePlacement is one node's share of a placement: which hardware threads a
// job binds to and how much node memory it reserves.
type NodePlacement struct {
	Node     int
	Threads  []int
	MemoryMB int
}

// Placement is a job's complete allocation across nodes.
type Placement struct {
	Job   JobID
	Nodes []NodePlacement
}

// TotalThreads returns the number of hardware threads the placement binds.
func (p Placement) TotalThreads() int {
	n := 0
	for _, np := range p.Nodes {
		n += len(np.Threads)
	}
	return n
}

// NodeIDs returns the distinct node indices the placement touches, in
// placement order.
func (p Placement) NodeIDs() []int {
	out := make([]int, 0, len(p.Nodes))
	for _, np := range p.Nodes {
		out = append(out, np.Node)
	}
	return out
}

// Cluster is the full machine: a set of nodes plus allocation indexes.
// It is not safe for concurrent use; the simulation is single-threaded.
type Cluster struct {
	cfg   Config
	nodes []*Node
	// jobNodes tracks which node indices each job occupies.
	jobNodes map[JobID][]int
	// idx is the incremental free-capacity index (see index.go).
	idx *index
}

// New builds a cluster from cfg. It panics on invalid configuration: cluster
// construction happens at program start from validated config, so an invalid
// config is a programming error, not an operational one.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{cfg: cfg, jobNodes: make(map[JobID][]int), idx: newIndex(cfg)}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = newNode(i, cfg)
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i. It panics if i is out of range (iteration bugs are
// programming errors).
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("%v: %d (cluster has %d nodes)", ErrUnknownNode, i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Allocate validates and commits a placement atomically: either every thread
// and memory reservation in p is applied, or the cluster is unchanged and an
// error describes the first conflict found.
func (c *Cluster) Allocate(p Placement) error {
	if p.Job == NoJob {
		return fmt.Errorf("%w: placement for NoJob", ErrBadPlace)
	}
	if len(p.Nodes) == 0 {
		return fmt.Errorf("%w: empty placement for job %d", ErrBadPlace, p.Job)
	}
	// Phase 1: validate everything.
	seenNode := make(map[int]bool, len(p.Nodes))
	for _, np := range p.Nodes {
		if np.Node < 0 || np.Node >= len(c.nodes) {
			return fmt.Errorf("%w: %d", ErrUnknownNode, np.Node)
		}
		if seenNode[np.Node] {
			return fmt.Errorf("%w: node %d listed twice for job %d", ErrBadPlace, np.Node, p.Job)
		}
		seenNode[np.Node] = true
		if c.nodes[np.Node].drained {
			return fmt.Errorf("%w: node %d", ErrDrained, np.Node)
		}
		if c.nodes[np.Node].down {
			return fmt.Errorf("%w: node %d", ErrDown, np.Node)
		}
		if len(np.Threads) == 0 {
			return fmt.Errorf("%w: no threads on node %d for job %d", ErrBadPlace, np.Node, p.Job)
		}
		if np.MemoryMB < 0 {
			return fmt.Errorf("%w: negative memory on node %d", ErrBadPlace, np.Node)
		}
		n := c.nodes[np.Node]
		seenThread := make(map[int]bool, len(np.Threads))
		for _, t := range np.Threads {
			if t < 0 || t >= n.Threads() {
				return fmt.Errorf("%w: thread %d out of range on node %d", ErrBadPlace, t, np.Node)
			}
			if seenThread[t] {
				return fmt.Errorf("%w: thread %d listed twice on node %d", ErrBadPlace, t, np.Node)
			}
			seenThread[t] = true
			if n.owner[t] != NoJob {
				return fmt.Errorf("%w: node %d thread %d held by job %d",
					ErrThreadBusy, np.Node, t, n.owner[t])
			}
		}
		if np.MemoryMB > n.MemFreeMB() {
			return fmt.Errorf("%w: node %d has %d MB free, need %d MB",
				ErrNoMemory, np.Node, n.MemFreeMB(), np.MemoryMB)
		}
	}
	// Phase 2: commit.
	for _, np := range p.Nodes {
		n := c.nodes[np.Node]
		for _, t := range np.Threads {
			n.owner[t] = p.Job
			n.freeInLayer[t%n.tpc]--
		}
		n.free -= len(np.Threads)
		n.threads[p.Job] += len(np.Threads)
		n.memUsed[p.Job] += np.MemoryMB
		n.memUsedSum += np.MemoryMB
		c.jobNodes[p.Job] = append(c.jobNodes[p.Job], np.Node)
		c.idx.busyThreads += len(np.Threads)
		c.reindexNode(np.Node)
	}
	return nil
}

// Release frees every resource held by job id across the cluster and returns
// the node indices that were touched. Releasing an unknown job returns
// ErrUnknownJob.
func (c *Cluster) Release(id JobID) ([]int, error) {
	nodes, ok := c.jobNodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: job %d", ErrUnknownJob, id)
	}
	for _, ni := range nodes {
		n := c.nodes[ni]
		for t, o := range n.owner {
			if o == id {
				n.owner[t] = NoJob
				n.free++
				n.freeInLayer[t%n.tpc]++
				c.idx.busyThreads--
			}
		}
		n.memUsedSum -= n.memUsed[id]
		delete(n.threads, id)
		delete(n.memUsed, id)
		c.reindexNode(ni)
	}
	delete(c.jobNodes, id)
	return nodes, nil
}

// JobNodes returns the node indices job id occupies, in allocation order,
// or nil if the job holds nothing.
func (c *Cluster) JobNodes(id JobID) []int {
	nodes := c.jobNodes[id]
	out := make([]int, len(nodes))
	copy(out, nodes)
	return out
}

// Holds reports whether job id currently holds any resources.
func (c *Cluster) Holds(id JobID) bool {
	_, ok := c.jobNodes[id]
	return ok
}

// SetDrained marks node ni as drained (true) or schedulable (false).
// Draining does not disturb running allocations; it only stops new
// placements from landing there.
func (c *Cluster) SetDrained(ni int, drained bool) {
	c.Node(ni).drained = drained
	c.reindexNode(ni)
}

// DrainedNodes returns the indices of drained nodes, ascending.
func (c *Cluster) DrainedNodes() []int {
	var out []int
	for i, n := range c.nodes {
		if n.drained {
			out = append(out, i)
		}
	}
	return out
}

// SetDown marks node ni as failed (true) or repaired (false). The caller —
// the simulation engine — is responsible for evicting residents first; a
// down node with live allocations would model jobs running on dead hardware,
// so SetDown panics in that case.
func (c *Cluster) SetDown(ni int, down bool) {
	n := c.Node(ni)
	if down && len(n.threads) > 0 {
		panic(fmt.Sprintf("cluster: node %d set down with %d resident jobs", ni, len(n.threads)))
	}
	n.down = down
	c.reindexNode(ni)
}

// DownNodes returns the indices of down nodes, ascending.
func (c *Cluster) DownNodes() []int {
	var out []int
	for i, n := range c.nodes {
		if n.down {
			out = append(out, i)
		}
	}
	return out
}
