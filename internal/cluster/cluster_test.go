package cluster

import (
	"errors"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Nodes: 4, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1000}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Nodes: 0, CoresPerNode: 1, ThreadsPerCore: 1, MemoryPerNodeMB: 1},
		{Nodes: 1, CoresPerNode: 0, ThreadsPerCore: 1, MemoryPerNodeMB: 1},
		{Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 0, MemoryPerNodeMB: 1},
		{Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 1, MemoryPerNodeMB: 0},
		{Nodes: -2, CoresPerNode: 1, ThreadsPerCore: 1, MemoryPerNodeMB: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := testConfig()
	if cfg.ThreadsPerNode() != 8 {
		t.Fatalf("ThreadsPerNode = %d, want 8", cfg.ThreadsPerNode())
	}
	if cfg.TotalThreads() != 32 {
		t.Fatalf("TotalThreads = %d, want 32", cfg.TotalThreads())
	}
}

func TestTrinityConfig(t *testing.T) {
	cfg := Trinity(16)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Trinity config invalid: %v", err)
	}
	if cfg.Nodes != 16 || cfg.CoresPerNode != 32 || cfg.ThreadsPerCore != 2 {
		t.Fatalf("Trinity config = %+v", cfg)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestFreshClusterState(t *testing.T) {
	c := New(testConfig())
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	if got := len(c.IdleNodes()); got != 4 {
		t.Fatalf("IdleNodes = %d, want 4", got)
	}
	if c.BusyThreads() != 0 || c.BusyNodes() != 0 || c.SharedNodes() != 0 {
		t.Fatal("fresh cluster reports busy resources")
	}
	if c.Utilization() != 0 || c.NodeUtilization() != 0 {
		t.Fatal("fresh cluster reports nonzero utilization")
	}
	n := c.Node(0)
	if n.Threads() != 8 || n.FreeThreads() != 8 || !n.Idle() {
		t.Fatalf("fresh node state wrong: threads=%d free=%d", n.Threads(), n.FreeThreads())
	}
	if n.MemFreeMB() != 1000 {
		t.Fatalf("MemFreeMB = %d", n.MemFreeMB())
	}
}

func TestExclusiveAllocateRelease(t *testing.T) {
	c := New(testConfig())
	p := c.ExclusivePlacement(1, []int{0, 2}, 500)
	if err := c.Allocate(p); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if c.BusyNodes() != 2 || c.BusyThreads() != 16 {
		t.Fatalf("busy nodes/threads = %d/%d, want 2/16", c.BusyNodes(), c.BusyThreads())
	}
	if got := c.JobNodes(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("JobNodes = %v", got)
	}
	if !c.Holds(1) {
		t.Fatal("Holds(1) = false after allocation")
	}
	if c.Node(0).MemFreeMB() != 500 {
		t.Fatalf("node 0 MemFree = %d, want 500", c.Node(0).MemFreeMB())
	}
	nodes, err := c.Release(1)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("Release touched %d nodes, want 2", len(nodes))
	}
	if c.BusyThreads() != 0 || c.Holds(1) {
		t.Fatal("resources not fully released")
	}
	if c.Node(0).MemFreeMB() != 1000 {
		t.Fatal("memory not released")
	}
}

func TestAllocateConflicts(t *testing.T) {
	c := New(testConfig())
	if err := c.Allocate(c.ExclusivePlacement(1, []int{0}, 100)); err != nil {
		t.Fatal(err)
	}
	err := c.Allocate(c.ExclusivePlacement(2, []int{0}, 100))
	if !errors.Is(err, ErrThreadBusy) {
		t.Fatalf("double-allocation error = %v, want ErrThreadBusy", err)
	}
	// Failed allocation must not leave partial state.
	if c.Node(0).SharingDegree() != 1 {
		t.Fatal("failed allocation mutated node state")
	}
}

func TestAllocateMemoryGuard(t *testing.T) {
	c := New(testConfig())
	if err := c.Allocate(c.LayerPlacement(1, []int{0}, PrimaryLayer, 800)); err != nil {
		t.Fatal(err)
	}
	err := c.Allocate(c.LayerPlacement(2, []int{0}, SecondaryLayer, 300))
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("memory overcommit error = %v, want ErrNoMemory", err)
	}
	if err := c.Allocate(c.LayerPlacement(2, []int{0}, SecondaryLayer, 200)); err != nil {
		t.Fatalf("fitting co-allocation rejected: %v", err)
	}
}

func TestAllocateAtomicityAcrossNodes(t *testing.T) {
	c := New(testConfig())
	// Occupy node 1 fully so a multi-node placement over {0,1} must fail.
	if err := c.Allocate(c.ExclusivePlacement(9, []int{1}, 0)); err != nil {
		t.Fatal(err)
	}
	err := c.Allocate(c.ExclusivePlacement(2, []int{0, 1}, 0))
	if err == nil {
		t.Fatal("conflicting multi-node placement accepted")
	}
	if !c.Node(0).Idle() {
		t.Fatal("failed multi-node placement left residue on node 0")
	}
	if c.Holds(2) {
		t.Fatal("failed placement registered job")
	}
}

func TestBadPlacements(t *testing.T) {
	c := New(testConfig())
	cases := []struct {
		name string
		p    Placement
	}{
		{"no-job", Placement{Job: NoJob, Nodes: []NodePlacement{{Node: 0, Threads: []int{0}}}}},
		{"empty", Placement{Job: 1}},
		{"bad-node", Placement{Job: 1, Nodes: []NodePlacement{{Node: 99, Threads: []int{0}}}}},
		{"neg-node", Placement{Job: 1, Nodes: []NodePlacement{{Node: -1, Threads: []int{0}}}}},
		{"no-threads", Placement{Job: 1, Nodes: []NodePlacement{{Node: 0}}}},
		{"bad-thread", Placement{Job: 1, Nodes: []NodePlacement{{Node: 0, Threads: []int{99}}}}},
		{"neg-thread", Placement{Job: 1, Nodes: []NodePlacement{{Node: 0, Threads: []int{-1}}}}},
		{"dup-thread", Placement{Job: 1, Nodes: []NodePlacement{{Node: 0, Threads: []int{1, 1}}}}},
		{"neg-mem", Placement{Job: 1, Nodes: []NodePlacement{{Node: 0, Threads: []int{0}, MemoryMB: -5}}}},
		{"dup-node", Placement{Job: 1, Nodes: []NodePlacement{
			{Node: 0, Threads: []int{0}}, {Node: 0, Threads: []int{1}}}}},
	}
	for _, tc := range cases {
		if err := c.Allocate(tc.p); err == nil {
			t.Errorf("%s: bad placement accepted", tc.name)
		}
	}
	if c.BusyThreads() != 0 {
		t.Fatal("rejected placements left residue")
	}
}

func TestReleaseUnknownJob(t *testing.T) {
	c := New(testConfig())
	if _, err := c.Release(42); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Release(unknown) = %v, want ErrUnknownJob", err)
	}
}

func TestLayerHelpers(t *testing.T) {
	c := New(testConfig())
	threads := c.LayerThreads(0, PrimaryLayer)
	want := []int{0, 2, 4, 6}
	for i := range want {
		if threads[i] != want[i] {
			t.Fatalf("primary layer threads = %v, want %v", threads, want)
		}
	}
	threads = c.LayerThreads(0, SecondaryLayer)
	want = []int{1, 3, 5, 7}
	for i := range want {
		if threads[i] != want[i] {
			t.Fatalf("secondary layer threads = %v, want %v", threads, want)
		}
	}
	if !c.LayerFree(0, PrimaryLayer) || !c.LayerFree(0, SecondaryLayer) {
		t.Fatal("layers of idle node not free")
	}
	if c.LayerFree(0, Layer(5)) {
		t.Fatal("out-of-range layer reported free")
	}
}

func TestLayerSharing(t *testing.T) {
	c := New(testConfig())
	if err := c.Allocate(c.LayerPlacement(1, []int{0}, PrimaryLayer, 400)); err != nil {
		t.Fatal(err)
	}
	if c.LayerFree(0, PrimaryLayer) {
		t.Fatal("primary layer still free after allocation")
	}
	if !c.LayerFree(0, SecondaryLayer) {
		t.Fatal("secondary layer not free")
	}
	if err := c.Allocate(c.LayerPlacement(2, []int{0}, SecondaryLayer, 400)); err != nil {
		t.Fatalf("co-allocation failed: %v", err)
	}
	n := c.Node(0)
	if n.SharingDegree() != 2 {
		t.Fatalf("SharingDegree = %d, want 2", n.SharingDegree())
	}
	if c.SharedNodes() != 1 {
		t.Fatalf("SharedNodes = %d, want 1", c.SharedNodes())
	}
	if n.FreeThreads() != 0 {
		t.Fatalf("FreeThreads = %d, want 0", n.FreeThreads())
	}
	// Jobs listed deterministically.
	jobs := n.Jobs()
	if len(jobs) != 2 || jobs[0] != 1 || jobs[1] != 2 {
		t.Fatalf("Jobs = %v", jobs)
	}
	// Releasing job 1 leaves job 2 intact on the secondary layer.
	if _, err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if n.SharingDegree() != 1 {
		t.Fatalf("SharingDegree after release = %d", n.SharingDegree())
	}
	got := n.JobThreads(2)
	if len(got) != 4 || got[0] != 1 {
		t.Fatalf("job 2 threads after co-runner release = %v", got)
	}
}

func TestShareCandidates(t *testing.T) {
	c := New(testConfig())
	// Node 0: primary layer occupied → candidate for secondary.
	if err := c.Allocate(c.LayerPlacement(1, []int{0}, PrimaryLayer, 400)); err != nil {
		t.Fatal(err)
	}
	// Node 1: fully occupied → not a candidate.
	if err := c.Allocate(c.ExclusivePlacement(2, []int{1}, 100)); err != nil {
		t.Fatal(err)
	}
	// Node 2: primary occupied but memory nearly exhausted.
	if err := c.Allocate(c.LayerPlacement(3, []int{2}, PrimaryLayer, 950)); err != nil {
		t.Fatal(err)
	}
	// Node 3: idle → not a candidate (sharing targets busy nodes).
	got := c.ShareCandidates(SecondaryLayer, 300)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("ShareCandidates = %v, want [0]", got)
	}
	// With a smaller memory need node 2 qualifies too.
	got = c.ShareCandidates(SecondaryLayer, 50)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ShareCandidates = %v, want [0 2]", got)
	}
}

func TestNodeThreadGeometry(t *testing.T) {
	c := New(testConfig())
	n := c.Node(0)
	if n.CoreOf(0) != 0 || n.CoreOf(1) != 0 || n.CoreOf(2) != 1 || n.CoreOf(7) != 3 {
		t.Fatal("CoreOf geometry wrong")
	}
	if n.SiblingOf(2, 1) != 3 || n.SiblingOf(3, 0) != 2 {
		t.Fatal("SiblingOf geometry wrong")
	}
}

func TestFreeSiblingThreadsPanicsOutOfRange(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("FreeSiblingThreads(9) did not panic")
		}
	}()
	c.Node(0).FreeSiblingThreads(9)
}

func TestNodePanicsOutOfRange(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Node(99) did not panic")
		}
	}()
	c.Node(99)
}

func TestPlacementHelpers(t *testing.T) {
	c := New(testConfig())
	p := c.ExclusivePlacement(1, []int{0, 3}, 10)
	if p.TotalThreads() != 16 {
		t.Fatalf("TotalThreads = %d, want 16", p.TotalThreads())
	}
	ids := p.NodeIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Fatalf("NodeIDs = %v", ids)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	c := New(testConfig()) // 32 threads total
	if err := c.Allocate(c.LayerPlacement(1, []int{0, 1}, PrimaryLayer, 0)); err != nil {
		t.Fatal(err)
	}
	// 8 of 32 threads busy.
	if got := c.Utilization(); got != 0.25 {
		t.Fatalf("Utilization = %g, want 0.25", got)
	}
	if got := c.NodeUtilization(); got != 0.5 {
		t.Fatalf("NodeUtilization = %g, want 0.5", got)
	}
}

// Property: any sequence of layer allocations and releases conserves
// resources — free threads plus allocated threads equals capacity, and no
// thread has two owners (guaranteed by construction, checked via counts).
func TestProperty_Conservation(t *testing.T) {
	type op struct {
		Alloc bool
		Node  uint8
		Layer uint8
		Mem   uint16
	}
	f := func(ops []op) bool {
		cfg := testConfig()
		c := New(cfg)
		active := map[JobID]bool{}
		next := JobID(1)
		for _, o := range ops {
			if o.Alloc || len(active) == 0 {
				ni := int(o.Node) % cfg.Nodes
				l := Layer(int(o.Layer) % cfg.ThreadsPerCore)
				mem := int(o.Mem) % (cfg.MemoryPerNodeMB + 100)
				p := c.LayerPlacement(next, []int{ni}, l, mem)
				if err := c.Allocate(p); err == nil {
					active[next] = true
					next++
				}
			} else {
				// Release the smallest active job.
				var victim JobID = -1
				for id := range active {
					if victim == -1 || id < victim {
						victim = id
					}
				}
				if victim != -1 {
					if _, err := c.Release(victim); err != nil {
						return false
					}
					delete(active, victim)
				}
			}
			// Invariant: per-node free + owned == capacity, memory within bounds.
			for i := 0; i < c.Size(); i++ {
				n := c.Node(i)
				owned := 0
				for _, id := range n.Jobs() {
					owned += len(n.JobThreads(id))
				}
				if owned+n.FreeThreads() != n.Threads() {
					return false
				}
				if n.MemFreeMB() < 0 || n.MemFreeMB() > n.MemoryMB() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDrain(t *testing.T) {
	c := New(testConfig())
	c.SetDrained(1, true)
	if !c.Node(1).Drained() {
		t.Fatal("node not marked drained")
	}
	// Drained nodes vanish from scheduling queries.
	for _, ni := range c.IdleNodes() {
		if ni == 1 {
			t.Fatal("drained node listed idle")
		}
	}
	if c.CountIdle() != 3 {
		t.Fatalf("CountIdle = %d, want 3", c.CountIdle())
	}
	got := c.DrainedNodes()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("DrainedNodes = %v", got)
	}
	// Allocation on a drained node is refused.
	err := c.Allocate(c.ExclusivePlacement(1, []int{1}, 0))
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("allocate on drained node: %v, want ErrDrained", err)
	}
	// Resume restores scheduling.
	c.SetDrained(1, false)
	if c.CountIdle() != 4 {
		t.Fatal("resume did not restore the node")
	}
}

func TestDrainDoesNotDisturbRunningJob(t *testing.T) {
	c := New(testConfig())
	if err := c.Allocate(c.LayerPlacement(7, []int{2}, PrimaryLayer, 100)); err != nil {
		t.Fatal(err)
	}
	c.SetDrained(2, true)
	// The running allocation is intact and releasable.
	if c.Node(2).SharingDegree() != 1 {
		t.Fatal("drain disturbed running allocation")
	}
	if _, err := c.Release(7); err != nil {
		t.Fatal(err)
	}
	// ShareCandidates must skip the drained node even when its layer frees.
	if err := c.Allocate(c.LayerPlacement(8, []int{3}, PrimaryLayer, 100)); err != nil {
		t.Fatal(err)
	}
	c.SetDrained(3, true)
	if got := c.ShareCandidates(SecondaryLayer, 10); len(got) != 0 {
		t.Fatalf("ShareCandidates includes drained node: %v", got)
	}
}
