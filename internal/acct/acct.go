// Package acct is the job-accounting layer: per-job completion records in a
// JSON-lines format (the role sacct/slurmdbd play for SLURM), with a reader
// and aggregate summaries. Accounting files let completed runs be analyzed
// (or re-analyzed) without re-simulation, and give the tooling a stable
// interchange format.
package acct

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/job"
	"repro/internal/report"
	"repro/internal/stats"
)

// Record is one job's accounting entry.
type Record struct {
	JobID   int64   `json:"job_id"`
	Name    string  `json:"name"`
	App     string  `json:"app"`
	Nodes   int     `json:"nodes"`
	Submit  float64 `json:"submit"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Limit   float64 `json:"limit"`
	State   string  `json:"state"` // FINISHED | KILLED | CANCELLED | FAILED
	Shared  bool    `json:"shared"`
	Stretch float64 `json:"stretch,omitempty"` // execution / dedicated runtime
	Work    float64 `json:"work"`              // delivered node-seconds
	// Requeues and Lost record the job's failure history: how many times it
	// was evicted and requeued, and the node-seconds of partial progress
	// those evictions discarded.
	Requeues int     `json:"requeues,omitempty"`
	Lost     float64 `json:"lost,omitempty"`
}

// FromJob builds the accounting record of a completed (finished, killed,
// cancelled, or failed) job. It panics on pending/running jobs: accounting
// happens at completion.
func FromJob(j *job.Job) Record {
	r := Record{
		JobID:    int64(j.ID),
		Name:     j.Name,
		App:      j.App.Name,
		Nodes:    j.Nodes,
		Submit:   float64(j.Submit),
		Limit:    float64(j.ReqWalltime),
		State:    j.State().String(),
		Requeues: j.Requeues(),
		Lost:     float64(j.Nodes) * j.LostWork(),
	}
	switch j.State() {
	case job.Finished:
		r.Start = float64(j.StartTime())
		r.End = float64(j.EndTime())
		r.Shared = j.EverShared()
		r.Stretch = j.Stretch()
		r.Work = float64(j.Nodes) * j.DeliveredWork()
	case job.Killed:
		r.Start = float64(j.StartTime())
		r.End = float64(j.EndTime())
		r.Shared = j.EverShared()
		r.Work = 0 // killed work is discarded
	case job.Cancelled:
		r.End = float64(j.EndTime())
	case job.Failed:
		// A failed job's last attempt was requeued before the give-up, so
		// its start is reset; only the end (give-up time) is meaningful.
		r.End = float64(j.EndTime())
		r.Shared = j.EverShared()
	default:
		panic(fmt.Sprintf("acct: job %d still %v", j.ID, j.State()))
	}
	return r
}

// FromJobs converts a batch, sorted by job ID.
func FromJobs(jobs []*job.Job) []Record {
	out := make([]Record, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, FromJob(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].JobID < out[k].JobID })
	return out
}

// Write serializes records as JSON lines.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("acct: encode job %d: %w", r.JobID, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines accounting stream.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("acct: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("acct: read: %w", err)
	}
	return out, nil
}

// Summary aggregates records per application into a rendered table: counts,
// waits, stretches, and delivered node-hours.
func Summary(records []Record) *report.Table {
	type agg struct {
		count, shared, killed int
		waits, stretches      []float64
		nodeHours             float64
	}
	byApp := map[string]*agg{}
	for _, r := range records {
		a := byApp[r.App]
		if a == nil {
			a = &agg{}
			byApp[r.App] = a
		}
		a.count++
		if r.Shared {
			a.shared++
		}
		switch r.State {
		case "KILLED", "FAILED":
			a.killed++
		case "FINISHED":
			a.waits = append(a.waits, r.Start-r.Submit)
			if r.Stretch > 0 {
				a.stretches = append(a.stretches, r.Stretch)
			}
			a.nodeHours += r.Work / 3600
		}
	}
	apps := make([]string, 0, len(byApp))
	for name := range byApp {
		apps = append(apps, name)
	}
	sort.Strings(apps)

	t := report.New("accounting summary by application",
		"app", "jobs", "shared", "killed", "wait mean(s)", "stretch mean", "node-hours")
	for _, name := range apps {
		a := byApp[name]
		t.Add(
			name,
			fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%d", a.shared),
			fmt.Sprintf("%d", a.killed),
			report.F(stats.Mean(a.waits), 0),
			report.F(stats.Mean(a.stretches), 3),
			report.F(a.nodeHours, 1),
		)
	}
	return t
}
