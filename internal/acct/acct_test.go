package acct

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
)

func doneJob(t *testing.T, id int64, appName string, submit, start, end, runtime float64) *job.Job {
	t.Helper()
	a, err := app.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	j := &job.Job{
		ID: cluster.JobID(id), Name: appName, App: a, Nodes: 2,
		ReqWalltime: des.Duration(end-start) + 1000, TrueRuntime: des.Duration(runtime),
		Submit: des.Time(submit),
	}
	j.Start(des.Time(start))
	if end-start > runtime {
		j.SetRate(des.Time(start), runtime/(end-start))
	}
	j.Finish(des.Time(end))
	return j
}

func TestFromJobFinished(t *testing.T) {
	j := doneJob(t, 1, "minife", 0, 100, 300, 200)
	r := FromJob(j)
	if r.State != "FINISHED" || r.Start != 100 || r.End != 300 {
		t.Fatalf("record = %+v", r)
	}
	if r.Work != 2*200 {
		t.Fatalf("work = %g, want 400", r.Work)
	}
	if r.Stretch != 1 {
		t.Fatalf("stretch = %g", r.Stretch)
	}
}

func TestFromJobKilled(t *testing.T) {
	a, _ := app.ByName("minimd")
	j := &job.Job{ID: 2, Name: "k", App: a, Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 100, Submit: 0}
	j.Start(0)
	j.SetRate(0, 0.5)
	j.Kill(100)
	r := FromJob(j)
	if r.State != "KILLED" || r.Work != 0 {
		t.Fatalf("killed record = %+v", r)
	}
}

func TestFromJobCancelled(t *testing.T) {
	a, _ := app.ByName("amg")
	j := &job.Job{ID: 3, Name: "c", App: a, Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 50, Submit: 0}
	j.Cancel(10)
	r := FromJob(j)
	if r.State != "CANCELLED" || r.End != 10 {
		t.Fatalf("cancelled record = %+v", r)
	}
}

func TestFromJobPanicsOnRunning(t *testing.T) {
	a, _ := app.ByName("amg")
	j := &job.Job{ID: 4, Name: "r", App: a, Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 50, Submit: 0}
	j.Start(0)
	defer func() {
		if recover() == nil {
			t.Fatal("running job accounted")
		}
	}()
	FromJob(j)
}

func TestRoundTrip(t *testing.T) {
	jobs := []*job.Job{
		doneJob(t, 3, "minife", 0, 10, 110, 100),
		doneJob(t, 1, "minimd", 5, 20, 160, 100), // stretched 1.4
	}
	records := FromJobs(jobs)
	// Sorted by ID.
	if records[0].JobID != 1 || records[1].JobID != 3 {
		t.Fatalf("records not sorted: %+v", records)
	}
	var buf bytes.Buffer
	if err := Write(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records", len(back))
	}
	for i := range records {
		if back[i] != records[i] {
			t.Fatalf("record %d changed:\n in: %+v\nout: %+v", i, records[i], back[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Blank lines are fine.
	recs, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank-line read = %v, %v", recs, err)
	}
}

func TestSummary(t *testing.T) {
	jobs := []*job.Job{
		doneJob(t, 1, "minife", 0, 10, 110, 100),
		doneJob(t, 2, "minife", 0, 50, 150, 100),
		doneJob(t, 3, "minimd", 0, 0, 140, 100), // stretched
	}
	tbl := Summary(FromJobs(jobs))
	out := tbl.String()
	if !strings.Contains(out, "minife") || !strings.Contains(out, "minimd") {
		t.Fatalf("summary missing apps:\n%s", out)
	}
	// minife row: 2 jobs, wait mean (10+50)/2 = 30.
	for _, row := range tbl.Rows {
		if row[0] == "minife" {
			if row[1] != "2" {
				t.Fatalf("minife count = %s", row[1])
			}
			if row[4] != "30" {
				t.Fatalf("minife wait mean = %s", row[4])
			}
		}
	}
}
