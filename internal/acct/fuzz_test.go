package acct

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the accounting reader with arbitrary input: no panics,
// and accepted records must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add(`{"job_id":1,"name":"a","app":"minife","nodes":2,"submit":0,"start":5,"end":10,"limit":20,"state":"FINISHED","work":10}` + "\n")
	f.Add("\n\n")
	f.Add("{}")
	f.Add("not json")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, records); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized records failed to reparse: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("round trip changed record count %d → %d", len(records), len(back))
		}
		// Summaries must handle anything that parses.
		Summary(records)
	})
}
