package acct

import (
	"bufio"
	"encoding/json"
	"fmt"

	"repro/internal/vfs"
)

// LineWriter is a durable JSON-lines appender: every value becomes one line,
// Sync flushes buffers and forces the data to stable storage, and Close
// propagates every error on the way down. The accounting exporter and the
// controller's write-ahead journal both write through it — accounting data
// that vanishes in a crash defeats its purpose. File I/O goes through a
// vfs.FS so storage faults are injectable under every durability test.
type LineWriter struct {
	f   vfs.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// Create opens path truncated for line-writing on the real filesystem.
func Create(path string) (*LineWriter, error) {
	return CreateOn(vfs.OS{}, path)
}

// CreateOn opens path truncated for line-writing on fsys.
func CreateOn(fsys vfs.FS, path string) (*LineWriter, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("acct: open %s: %w", path, err)
	}
	return NewLineWriter(f), nil
}

// OpenAppend opens path for appending on the real filesystem, creating it
// if missing.
func OpenAppend(path string) (*LineWriter, error) {
	return OpenAppendOn(vfs.OS{}, path)
}

// OpenAppendOn opens path for appending on fsys, creating it if missing.
func OpenAppendOn(fsys vfs.FS, path string) (*LineWriter, error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("acct: open %s: %w", path, err)
	}
	return NewLineWriter(f), nil
}

// NewLineWriter wraps an already-open file handle.
func NewLineWriter(f vfs.File) *LineWriter {
	bw := bufio.NewWriter(f)
	return &LineWriter{f: f, bw: bw, enc: json.NewEncoder(bw)}
}

// Append writes one value as a JSON line.
func (w *LineWriter) Append(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return fmt.Errorf("acct: append to %s: %w", w.f.Name(), err)
	}
	return nil
}

// Sync flushes buffered lines and forces them to stable storage.
func (w *LineWriter) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("acct: flush %s: %w", w.f.Name(), err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("acct: sync %s: %w", w.f.Name(), err)
	}
	return nil
}

// Close syncs and closes, reporting the first failure.
func (w *LineWriter) Close() error {
	syncErr := w.Sync()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("acct: close %s: %w", w.f.Name(), err)
	}
	return syncErr
}

// WriteFile durably writes an accounting file: records are written, synced to
// stable storage, and the file closed, with every error checked.
func WriteFile(path string, records []Record) error {
	return WriteFileOn(vfs.OS{}, path, records)
}

// WriteFileOn is WriteFile on an explicit filesystem.
func WriteFileOn(fsys vfs.FS, path string, records []Record) error {
	w, err := CreateOn(fsys, path)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
