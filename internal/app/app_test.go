package app

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogueValid(t *testing.T) {
	cat := Catalogue()
	if len(cat) < 6 {
		t.Fatalf("catalogue has %d apps, want the Trinity set (≥6)", len(cat))
	}
	for _, m := range cat {
		if err := m.Validate(); err != nil {
			t.Errorf("catalogue model invalid: %v", err)
		}
	}
}

func TestCatalogueSortedAndCopied(t *testing.T) {
	cat := Catalogue()
	for i := 1; i < len(cat); i++ {
		if cat[i-1].Name >= cat[i].Name {
			t.Fatalf("catalogue not sorted: %q before %q", cat[i-1].Name, cat[i].Name)
		}
	}
	cat[0].Name = "mutated"
	if Catalogue()[0].Name == "mutated" {
		t.Fatal("Catalogue returns shared backing storage")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("minife")
	if err != nil {
		t.Fatalf("ByName(minife): %v", err)
	}
	if m.Name != "minife" {
		t.Fatalf("got %q", m.Name)
	}
	if _, err := ByName("no-such-app"); err == nil {
		t.Fatal("ByName accepted unknown app")
	}
}

func TestNamesMatchesCatalogue(t *testing.T) {
	names := Names()
	cat := Catalogue()
	if len(names) != len(cat) {
		t.Fatalf("Names()=%d entries, catalogue=%d", len(names), len(cat))
	}
	for i := range names {
		if names[i] != cat[i].Name {
			t.Fatalf("Names[%d]=%q, catalogue[%d]=%q", i, names[i], i, cat[i].Name)
		}
	}
}

func TestExpectedBottlenecks(t *testing.T) {
	// The catalogue must encode the suite's published characters: miniMD is
	// compute-bound, miniFE bandwidth-bound, miniGhost network-heavy among
	// its non-CPU components.
	cases := map[string]Resource{
		"minimd": CPU,
		"minife": MemBW,
		"amg":    MemBW,
		"milc":   MemBW,
		"umt":    CPU,
	}
	for name, want := range cases {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Bottleneck(); got != want {
			t.Errorf("%s bottleneck = %v, want %v", name, got, want)
		}
	}
}

func TestStressVectorValidate(t *testing.T) {
	good := StressVector{0, 0.5, 1, 0.25}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	for _, v := range []StressVector{
		{-0.1, 0, 0, 0},
		{0, 1.1, 0, 0},
	} {
		if err := v.Validate(); err == nil {
			t.Errorf("invalid vector %v accepted", v)
		}
	}
}

func TestModelValidateRejectsBadModels(t *testing.T) {
	base := Synthetic("x", StressVector{0.5, 0.5, 0.5, 0.5}, 1024, 100)
	if err := base.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	mutations := []func(*Model){
		func(m *Model) { m.Name = "" },
		func(m *Model) { m.Stress[0] = 2 },
		func(m *Model) { m.MemPerNodeMB = 0 },
		func(m *Model) { m.MeanRuntime = 0 },
		func(m *Model) { m.RuntimeCV = -1 },
		func(m *Model) { m.TypicalNodes = nil },
		func(m *Model) { m.TypicalNodes = []int{0} },
	}
	for i, mutate := range mutations {
		m := base
		m.TypicalNodes = append([]int(nil), base.TypicalNodes...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestComplementarityExtremes(t *testing.T) {
	cpu := StressVector{0.95, 0.1, 0.1, 0.1}
	bw := StressVector{0.1, 0.95, 0.1, 0.1}
	// Orthogonal bottlenecks: combined demand stays near/below capacity.
	if c := Complementarity(cpu, bw); c < 0.9 {
		t.Fatalf("orthogonal pair complementarity = %g, want ≥0.9", c)
	}
	// Identical saturating bottleneck: strongly negative fit.
	if c := Complementarity(bw, bw); c > 0.2 {
		t.Fatalf("same-bottleneck pair complementarity = %g, want ≤0.2", c)
	}
	// Complementarity is symmetric.
	if Complementarity(cpu, bw) != Complementarity(bw, cpu) {
		t.Fatal("Complementarity not symmetric")
	}
}

func TestComplementarityOrdering(t *testing.T) {
	// miniMD (compute-bound) must pair better with miniFE (bandwidth-bound)
	// than miniFE pairs with MILC (both bandwidth-bound).
	md, _ := ByName("minimd")
	fe, _ := ByName("minife")
	milc, _ := ByName("milc")
	good := Complementarity(md.Stress, fe.Stress)
	bad := Complementarity(fe.Stress, milc.Stress)
	if good <= bad {
		t.Fatalf("complementarity(minimd,minife)=%g not > complementarity(minife,milc)=%g", good, bad)
	}
}

func TestResourceString(t *testing.T) {
	cases := map[Resource]string{CPU: "cpu", MemBW: "membw", Cache: "cache", Network: "net"}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if Resource(99).String() == "" {
		t.Error("unknown resource has empty String()")
	}
}

// Property: complementarity is symmetric and bounded in [0, 1] for valid
// vectors.
func TestProperty_Complementarity(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Abs(math.Mod(x, 1))
	}
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		a := StressVector{clamp(a0), clamp(a1), clamp(a2), clamp(a3)}
		b := StressVector{clamp(b0), clamp(b1), clamp(b2), clamp(b3)}
		c := Complementarity(a, b)
		if c != Complementarity(b, a) {
			return false
		}
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: bottleneck is always the argmax component.
func TestProperty_Bottleneck(t *testing.T) {
	f := func(a0, a1, a2, a3 uint8) bool {
		v := StressVector{
			float64(a0) / 255, float64(a1) / 255, float64(a2) / 255, float64(a3) / 255,
		}
		b := v.Bottleneck()
		for r := Resource(0); r < NumResources; r++ {
			if v[r] > v[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
