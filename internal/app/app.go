// Package app models the applications whose jobs the batch system schedules.
//
// The paper evaluates node sharing with the NERSC Trinity scientific mini
// applications. We cannot run the mini-apps themselves inside a simulator, so
// each application is represented by an analytic performance model with two
// ingredients:
//
//   - a resource-stress vector: how strongly the app loads a node's core
//     pipelines, memory bandwidth, last-level cache, and network interface
//     when it runs one rank per core (the standard Trinity configuration);
//   - a memory footprint per node.
//
// The stress vectors determine everything that matters for node sharing: an
// app that leaves a resource idle can donate it to a co-located app, and two
// apps that hammer the same resource interfere. internal/interference turns
// the vectors of co-located jobs into per-job progress rates.
//
// Vector values are calibrated to the published characterizations of the
// Trinity/NERSC-8 benchmark suite (memory-bandwidth-bound miniFE/AMG/MILC,
// compute-bound miniMD, cache-sensitive SNAP/UMT, network-heavy miniGhost).
// They are approximations; DESIGN.md records this substitution.
package app

import (
	"fmt"
	"math"
	"sort"
)

// Resource enumerates the shared node resources the interference model
// tracks.
type Resource int

// The tracked resources.
const (
	CPU     Resource = iota // core pipeline / functional units
	MemBW                   // memory bandwidth
	Cache                   // last-level cache capacity
	Network                 // NIC / injection bandwidth
	NumResources
)

// String returns the resource's short name.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case MemBW:
		return "membw"
	case Cache:
		return "cache"
	case Network:
		return "net"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// StressVector quantifies how strongly an application loads each node
// resource, each component in [0, 1]: 0 = untouched, 1 = fully saturated
// when running one rank per core on a dedicated node.
type StressVector [NumResources]float64

// Validate reports whether every component lies in [0, 1].
func (v StressVector) Validate() error {
	for r, x := range v {
		if x < 0 || x > 1 || math.IsNaN(x) {
			return fmt.Errorf("app: stress %s = %g outside [0,1]", Resource(r), x)
		}
	}
	return nil
}

// Bottleneck returns the most-stressed resource.
func (v StressVector) Bottleneck() Resource {
	best := Resource(0)
	for r := Resource(1); r < NumResources; r++ {
		if v[r] > v[best] {
			best = r
		}
	}
	return best
}

// Complementarity scores how well two stress vectors fit on one node:
// 1 means the pair's combined demand never exceeds capacity on any resource,
// lower values indicate overlap on the pair's hottest shared resource.
// Sharing policies use this to pick co-location partners.
func Complementarity(a, b StressVector) float64 {
	worst := 0.0
	for r := Resource(0); r < NumResources; r++ {
		over := a[r] + b[r] - 1
		if over > worst {
			worst = over
		}
	}
	// Combined demand can exceed capacity by at most 1 (both saturating).
	return 1 - worst
}

// Model is the analytic description of one application.
type Model struct {
	// Name is the mini-app identifier, e.g. "minife".
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Stress is the resource-stress vector at one rank per core.
	Stress StressVector
	// MemPerNodeMB is the resident memory footprint per node. Footprints are
	// sized against the Trinity 128 GiB nodes so that most pairs co-fit but
	// large-memory apps forbid co-allocation (the memory guard matters).
	MemPerNodeMB int
	// MeanRuntime is the mean dedicated-node runtime in seconds used by the
	// workload generator; actual jobs draw from a log-normal around it.
	MeanRuntime float64
	// RuntimeCV is the coefficient of variation of runtime draws.
	RuntimeCV float64
	// TypicalNodes lists the node counts jobs of this app commonly request;
	// the generator picks among them.
	TypicalNodes []int
}

// Validate checks model invariants.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("app: model without name")
	}
	if err := m.Stress.Validate(); err != nil {
		return fmt.Errorf("app %s: %w", m.Name, err)
	}
	if m.MemPerNodeMB <= 0 {
		return fmt.Errorf("app %s: non-positive memory footprint %d", m.Name, m.MemPerNodeMB)
	}
	if m.MeanRuntime <= 0 {
		return fmt.Errorf("app %s: non-positive mean runtime %g", m.Name, m.MeanRuntime)
	}
	if m.RuntimeCV < 0 {
		return fmt.Errorf("app %s: negative runtime CV %g", m.Name, m.RuntimeCV)
	}
	if len(m.TypicalNodes) == 0 {
		return fmt.Errorf("app %s: no typical node counts", m.Name)
	}
	for _, n := range m.TypicalNodes {
		if n <= 0 {
			return fmt.Errorf("app %s: non-positive node count %d", m.Name, n)
		}
	}
	return nil
}

// Bottleneck returns the app's most-stressed resource.
func (m Model) Bottleneck() Resource { return m.Stress.Bottleneck() }

// catalogue is the Trinity mini-app set. Stress vectors follow the suite's
// published characteristics:
//
//	miniFE    sparse FE solve            — memory-bandwidth-bound
//	miniMD    molecular dynamics         — compute-bound
//	SNAP      Sn neutron transport       — bandwidth- and cache-heavy
//	AMG       algebraic multigrid        — bandwidth-bound, network-sensitive
//	UMT       unstructured mesh transport— compute- and cache-heavy
//	GTC       gyrokinetic turbulence     — compute-leaning mixed
//	MILC      lattice QCD                — bandwidth- and network-heavy
//	miniGhost halo-exchange stencil      — network-heavy stencil
var catalogue = []Model{
	{
		Name:         "minife",
		Description:  "implicit finite elements (sparse CG solve), memory-bandwidth-bound",
		Stress:       StressVector{0.45, 0.90, 0.55, 0.30},
		MemPerNodeMB: 48 * 1024,
		MeanRuntime:  3 * 3600, RuntimeCV: 0.35,
		TypicalNodes: []int{1, 2, 4, 8},
	},
	{
		Name:         "minimd",
		Description:  "molecular dynamics (Lennard-Jones), compute-bound",
		Stress:       StressVector{0.92, 0.35, 0.40, 0.25},
		MemPerNodeMB: 24 * 1024,
		MeanRuntime:  4 * 3600, RuntimeCV: 0.40,
		TypicalNodes: []int{1, 2, 4, 8, 16},
	},
	{
		Name:         "snap",
		Description:  "discrete-ordinates neutron transport, bandwidth- and cache-heavy",
		Stress:       StressVector{0.55, 0.80, 0.70, 0.35},
		MemPerNodeMB: 56 * 1024,
		MeanRuntime:  2.5 * 3600, RuntimeCV: 0.30,
		TypicalNodes: []int{2, 4, 8, 16},
	},
	{
		Name:         "amg",
		Description:  "algebraic multigrid solver, bandwidth-bound and network-sensitive",
		Stress:       StressVector{0.40, 0.85, 0.60, 0.55},
		MemPerNodeMB: 40 * 1024,
		MeanRuntime:  2 * 3600, RuntimeCV: 0.35,
		TypicalNodes: []int{1, 2, 4, 8},
	},
	{
		Name:         "umt",
		Description:  "unstructured-mesh deterministic transport, compute- and cache-heavy",
		Stress:       StressVector{0.80, 0.55, 0.65, 0.40},
		MemPerNodeMB: 64 * 1024,
		MeanRuntime:  5 * 3600, RuntimeCV: 0.30,
		TypicalNodes: []int{2, 4, 8},
	},
	{
		Name:         "gtc",
		Description:  "gyrokinetic toroidal turbulence, compute-leaning with scatter/gather",
		Stress:       StressVector{0.75, 0.60, 0.50, 0.45},
		MemPerNodeMB: 32 * 1024,
		MeanRuntime:  6 * 3600, RuntimeCV: 0.45,
		TypicalNodes: []int{4, 8, 16},
	},
	{
		Name:         "milc",
		Description:  "lattice QCD (staggered fermions), bandwidth- and network-heavy",
		Stress:       StressVector{0.50, 0.88, 0.45, 0.60},
		MemPerNodeMB: 36 * 1024,
		MeanRuntime:  8 * 3600, RuntimeCV: 0.50,
		TypicalNodes: []int{4, 8, 16, 32},
	},
	{
		Name:         "minighost",
		Description:  "finite-difference stencil with halo exchange, network-heavy",
		Stress:       StressVector{0.45, 0.75, 0.50, 0.70},
		MemPerNodeMB: 28 * 1024,
		MeanRuntime:  1.5 * 3600, RuntimeCV: 0.30,
		TypicalNodes: []int{1, 2, 4},
	},
}

// Catalogue returns the Trinity mini-app models, sorted by name. The slice
// is a fresh copy; callers may modify it.
func Catalogue() []Model {
	out := make([]Model, len(catalogue))
	copy(out, catalogue)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range catalogue {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("app: unknown application %q", name)
}

// Names returns the catalogue's application names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalogue))
	for _, m := range catalogue {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// Synthetic returns an app model with the given bottleneck profile, used by
// tests and the mix-sensitivity experiment to construct extreme workloads.
func Synthetic(name string, stress StressVector, memMB int, meanRuntime float64) Model {
	return Model{
		Name:         name,
		Description:  "synthetic " + name,
		Stress:       stress,
		MemPerNodeMB: memMB,
		MeanRuntime:  meanRuntime,
		RuntimeCV:    0.3,
		TypicalNodes: []int{1, 2, 4},
	}
}
