// Package report renders experiment output: aligned ASCII tables for the
// terminal and CSV for plotting, one Table per paper table or figure.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/des"
)

// Table is a titled grid with column headers and optional footnotes.
type Table struct {
	// Title heads the rendered output, e.g. "F1 computational efficiency".
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells; ragged rows are padded when rendered.
	Rows [][]string
	// Notes are printed under the table, one per line.
	Notes []string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header row first; notes become
// '#'-prefixed trailing comment rows).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // strings.Builder writes cannot fail
	return b.String()
}

// F formats a float with the given decimal places.
func F(v float64, places int) string {
	return fmt.Sprintf("%.*f", places, v)
}

// Pct formats a fraction as a signed percentage, e.g. 0.19 → "+19.0%".
func Pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}

// Dur formats a simulated duration compactly.
func Dur(d des.Duration) string {
	return d.String()
}

// Ns formats nanoseconds with a readable unit.
func Ns(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
