package report

import (
	"fmt"
	"strings"
)

// Span is one job's occupancy of one node over a time interval, the input
// to the Gantt renderer.
type Span struct {
	// Node is the node row the span paints.
	Node int
	// Start and End bound the interval in seconds.
	Start, End float64
	// Label identifies the job; the renderer cycles it through A–Z/a–z.
	Label int
}

// Gantt renders node occupancy over time as ASCII art: one row per node,
// one column per time bucket. A cell shows the job's letter when one job
// holds the node, '*' when two or more share it, and '·' when idle.
//
//	node  0 AAAAAAAABB******··
//	node  1 AAAAAAAABB******··
//
// nodes fixes the row count; width the column count; [t0, t1) the rendered
// window (t1 ≤ t0 renders the spans' full extent).
func Gantt(spans []Span, nodes, width int, t0, t1 float64) string {
	if nodes <= 0 || width <= 0 {
		return ""
	}
	if t1 <= t0 {
		t0 = 0
		for _, s := range spans {
			if s.End > t1 {
				t1 = s.End
			}
		}
		if t1 <= t0 {
			t1 = t0 + 1
		}
	}
	bucket := (t1 - t0) / float64(width)

	// occupancy[node][col]: 0 = idle, -1 = shared, else label+1.
	occ := make([][]int, nodes)
	for i := range occ {
		occ[i] = make([]int, width)
	}
	for _, s := range spans {
		if s.Node < 0 || s.Node >= nodes || s.End <= s.Start {
			continue
		}
		lo := int((s.Start - t0) / bucket)
		hi := int((s.End - t0) / bucket)
		if lo < 0 {
			lo = 0
		}
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			// Paint by bucket midpoint membership so zero-width touches
			// do not smear.
			mid := t0 + (float64(c)+0.5)*bucket
			if mid < s.Start || mid >= s.End {
				continue
			}
			switch occ[s.Node][c] {
			case 0:
				occ[s.Node][c] = s.Label + 1
			default:
				occ[s.Node][c] = -1
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time %s → %s, %c = one job, * = shared, · = idle\n",
		secs(t0), secs(t1), 'A')
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&b, "node %3d ", n)
		for c := 0; c < width; c++ {
			b.WriteRune(cellRune(occ[n][c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func cellRune(v int) rune {
	switch {
	case v == 0:
		return '·'
	case v == -1:
		return '*'
	default:
		letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
		return rune(letters[(v-1)%len(letters)])
	}
}

func secs(v float64) string {
	switch {
	case v >= 86400:
		return fmt.Sprintf("%.1fd", v/86400)
	case v >= 3600:
		return fmt.Sprintf("%.1fh", v/3600)
	case v >= 60:
		return fmt.Sprintf("%.1fm", v/60)
	default:
		return fmt.Sprintf("%.0fs", v)
	}
}

// Sparkline renders a numeric series as a block-glyph strip, normalized to
// [min, max] of the data (or [0, 1] if the series is flat at zero).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, v := range values {
		i := int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(glyphs) {
			i = len(glyphs) - 1
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}
