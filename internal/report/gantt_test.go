package report

import (
	"strings"
	"testing"
)

func TestGanttBasicPainting(t *testing.T) {
	spans := []Span{
		{Node: 0, Start: 0, End: 50, Label: 0},    // A on node 0, first half
		{Node: 1, Start: 0, End: 100, Label: 1},   // B on node 1, full width
		{Node: 0, Start: 25, End: 50, Label: 2},   // C overlaps A → '*'
		{Node: 1, Start: 200, End: 300, Label: 3}, // outside window, clipped
	}
	out := Gantt(spans, 2, 10, 0, 100)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt has %d lines:\n%s", len(lines), out)
	}
	row0 := lines[1][strings.Index(lines[1], " 0 ")+3:]
	row1 := lines[2][strings.Index(lines[2], " 1 ")+3:]
	if got := row0; got != "AA**A·····" && got != "AA**······" {
		// Columns: A alone in [0,25), shared in [25,50) → buckets 2,3 are
		// '*'; bucket 4 midpoint 45 < 50 still A... verify structurally
		// instead of exact string below.
		_ = got
	}
	// Structural checks: row 0 starts with 'A', contains '*', ends idle.
	if row0[0] != 'A' || !strings.Contains(row0, "*") || !strings.HasSuffix(row0, "·") {
		t.Fatalf("row0 = %q", row0)
	}
	// Row 1 is solid B for the window.
	if strings.Trim(row1, "B") != "" {
		t.Fatalf("row1 = %q, want all B", row1)
	}
}

func TestGanttAutoWindow(t *testing.T) {
	spans := []Span{{Node: 0, Start: 10, End: 90, Label: 0}}
	out := Gantt(spans, 1, 20, 0, 0) // t1 ≤ t0 → auto extent
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	nodeRow := rows[len(rows)-1]
	if !strings.Contains(nodeRow, "A") {
		t.Fatalf("auto-window gantt missing span:\n%s", out)
	}
	// The window ends at the last span end, so the row must finish with A.
	if !strings.HasSuffix(nodeRow, "A") {
		t.Fatalf("auto window did not extend to last span end: %q", nodeRow)
	}
}

func TestGanttDegenerateInputs(t *testing.T) {
	if Gantt(nil, 0, 10, 0, 1) != "" {
		t.Fatal("zero nodes produced output")
	}
	if Gantt(nil, 1, 0, 0, 1) != "" {
		t.Fatal("zero width produced output")
	}
	// No spans at all: all idle, no panic.
	out := Gantt(nil, 2, 5, 0, 0)
	if !strings.Contains(out, "·····") {
		t.Fatalf("empty gantt = %q", out)
	}
	// Out-of-range node and inverted span are ignored (check the node row
	// only; the legend header mentions 'A').
	out = Gantt([]Span{{Node: 9, Start: 0, End: 1, Label: 0}, {Node: 0, Start: 5, End: 2, Label: 0}},
		1, 5, 0, 10)
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Contains(rows[len(rows)-1], "A") {
		t.Fatalf("invalid spans painted: %q", out)
	}
}

func TestGanttLabelCycling(t *testing.T) {
	// Labels beyond the alphabet must still render (cycled), not panic.
	spans := []Span{{Node: 0, Start: 0, End: 10, Label: 200}}
	out := Gantt(spans, 1, 5, 0, 10)
	if strings.Contains(out, "·····") {
		t.Fatalf("high label not painted: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline non-empty")
	}
	s := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline length %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	// Flat series must not divide by zero.
	if len([]rune(Sparkline([]float64{5, 5, 5}))) != 3 {
		t.Fatal("flat sparkline wrong")
	}
}
