package report

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := New("T0 demo", "policy", "CE", "SE")
	t.Add("easy", "1.000", "0.750")
	t.Add("sharebackfill", "1.190", "0.939")
	t.AddNote("seed 42")
	return t
}

func TestRenderASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"T0 demo", "policy", "sharebackfill", "1.190", "seed 42", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Columns must be aligned: both data rows' second column starts at the
	// same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "easy") || strings.HasPrefix(l, "sharebackfill") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("found %d data lines", len(dataLines))
	}
	if strings.Index(dataLines[0], "1.000") != strings.Index(dataLines[1], "1.190") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "policy,CE,SE" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "# ") {
		t.Fatalf("note row = %q", lines[3])
	}
}

func TestRaggedRowsPad(t *testing.T) {
	tbl := New("ragged", "a", "b")
	tbl.Add("1", "2", "3") // extra cell
	tbl.Add("x")           // missing cell
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3") {
		t.Fatal("extra cell dropped")
	}
}

func TestStringEqualsRender(t *testing.T) {
	var buf bytes.Buffer
	tbl := sampleTable()
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if tbl.String() != buf.String() {
		t.Fatal("String() differs from Render output")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if Pct(0.19) != "+19.0%" {
		t.Errorf("Pct = %q", Pct(0.19))
	}
	if Pct(-0.052) != "-5.2%" {
		t.Errorf("Pct = %q", Pct(-0.052))
	}
	cases := map[float64]string{
		500:   "500ns",
		1500:  "1.50µs",
		2.5e6: "2.50ms",
		3.2e9: "3.20s",
	}
	for ns, want := range cases {
		if got := Ns(ns); got != want {
			t.Errorf("Ns(%g) = %q, want %q", ns, got, want)
		}
	}
	if Dur(90) != "00:01:30.000" {
		t.Errorf("Dur = %q", Dur(90))
	}
}
