package slurm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/acct"
)

// Crash recovery. slurmctld survives restarts by writing StateSaveLocation;
// this controller does the same with a write-ahead journal of every external
// operation (submit, cancel, advance, node state changes). The simulation is
// deterministic, so replaying the journal against a fresh controller rebuilds
// the exact pre-crash state — queue, running set, node states, and clock.
// Completions additionally append audit entries embedding the acct.Record
// format; replay skips them (they are outputs, not inputs), but they make the
// journal a complete accounting trail on their own.
//
// A snapshot compacts the log: the journal's entries are folded into
// snapshot.jsonl with an atomic tmp+rename, and the journal truncated.
// Recovery reads snapshot.jsonl then journal.jsonl; a torn final line (crash
// mid-append) is dropped, anything else malformed is an error.

// Entry is one journal line: an external operation to replay, or an audit
// record (Op "record") to skip.
type Entry struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`
	// Epoch is the HA term the entry was written under. Standalone
	// controllers leave it zero (omitted), keeping the journal format
	// byte-identical to pre-HA releases; replicated controllers stamp every
	// entry so a deposed primary's stale appends are detectable (see ha.go).
	Epoch int64 `json:"epoch,omitempty"`
	// Submit arguments; ID doubles as the expected assigned job ID, which
	// replay verifies to catch divergence.
	App      string  `json:"app,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Walltime float64 `json:"walltime,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Name     string  `json:"name,omitempty"`
	After    []int64 `json:"after,omitempty"`
	ID       int64   `json:"id,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Node     int     `json:"node,omitempty"`
	// Token is the submit idempotency token (empty when the client sent
	// none); journaling it makes submit dedupe survive crash recovery.
	Token string `json:"token,omitempty"`
	// Record is the audit payload of a completion entry.
	Record *acct.Record `json:"record,omitempty"`
}

// journal is the append side of the write-ahead log. Every append is synced
// to stable storage before the operation is acknowledged. Sequence numbers
// are assigned by the controller (which also owns the in-memory copy of the
// log for replication); the journal persists entries exactly as given.
type journal struct {
	dir   string
	w     *acct.LineWriter
	every int // compact after this many appends (0 = never)
	ops   int // appends since the last compaction

	// testAppendErr, when set, is consulted before each append; a non-nil
	// return aborts the append with that error. Tests use it to simulate a
	// failing fsync path and exercise the circuit breaker.
	testAppendErr func(Entry) error
}

func snapshotFile(dir string) string { return filepath.Join(dir, "snapshot.jsonl") }
func journalFile(dir string) string  { return filepath.Join(dir, "journal.jsonl") }

// syncDir fsyncs a directory so renames and file creations inside it survive
// power loss. Filesystems that don't support directory fsync report an error
// we deliberately ignore — on those, the rename itself is the best available.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// openJournal opens (creating if needed) the state directory and returns the
// append handle plus every recovered entry, snapshot first. A crash between
// compaction's snapshot rename and journal truncation leaves the journal's
// entries duplicated at the snapshot's tail; the strictly increasing Seq
// makes that overlap detectable, so it is dropped here instead of poisoning
// replay.
func openJournal(dir string, every int) (*journal, []Entry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("slurm: state dir: %w", err)
	}
	// A leftover compaction temp file is a crash before the rename; the
	// snapshot+journal pair is authoritative.
	os.Remove(snapshotFile(dir) + ".tmp")
	snap, err := readEntries(snapshotFile(dir))
	if err != nil {
		return nil, nil, err
	}
	tail, err := readEntries(journalFile(dir))
	if err != nil {
		return nil, nil, err
	}
	entries := snap
	for _, e := range tail {
		if len(entries) > 0 && e.Seq <= entries[len(entries)-1].Seq {
			continue // overlap from a crash mid-compaction
		}
		entries = append(entries, e)
	}
	w, err := acct.OpenAppend(journalFile(dir))
	if err != nil {
		return nil, nil, err
	}
	// Make the freshly created files' directory entries durable too: an
	// fsynced journal line in a file the directory has lost is still lost.
	syncDir(dir)
	j := &journal{dir: dir, w: w, every: every, ops: len(tail)}
	return j, entries, nil
}

// readEntries parses a JSONL entry file. A missing file yields no entries. A
// malformed final line is a torn write from a crash mid-append and is
// dropped; malformation anywhere else is corruption and errors out.
func readEntries(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("slurm: open journal %s: %w", path, err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	torn := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if torn {
			return nil, fmt.Errorf("slurm: journal %s: line %d: garbage before final line", path, lineNo-1)
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true // legal only if this turns out to be the last line
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("slurm: read journal %s: %w", path, err)
	}
	return out, nil
}

// append durably logs one entry (whose Seq the caller has already assigned),
// then compacts if the journal grew past the snapshot threshold.
func (j *journal) append(e Entry) error {
	if j.testAppendErr != nil {
		if err := j.testAppendErr(e); err != nil {
			return err
		}
	}
	if err := j.w.Append(e); err != nil {
		return err
	}
	if err := j.w.Sync(); err != nil {
		return err
	}
	j.ops++
	if j.every > 0 && j.ops >= j.every {
		return j.compact()
	}
	return nil
}

// compact folds the journal into the snapshot: write snapshot+journal to a
// temp file, sync, atomically rename over the snapshot, then truncate the
// journal. A crash at any point leaves a recoverable pair of files.
func (j *journal) compact() error {
	if err := j.w.Close(); err != nil {
		return err
	}
	snap, err := os.ReadFile(snapshotFile(j.dir))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	tail, err := os.ReadFile(journalFile(j.dir))
	if err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	tmp := snapshotFile(j.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	if _, err := f.Write(snap); err == nil {
		_, err = f.Write(tail)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("slurm: compact: %w", err)
	}
	if err := os.Rename(tmp, snapshotFile(j.dir)); err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	// Without a directory fsync the rename may not survive power loss on
	// some filesystems — the data would be safe in the temp file, but the
	// snapshot name could still point at the old content.
	syncDir(j.dir)
	w, err := acct.Create(journalFile(j.dir)) // truncate
	if err != nil {
		return err
	}
	syncDir(j.dir)
	j.w = w
	j.ops = 0
	return nil
}

// rewrite atomically replaces the journal's entire content with entries: a
// standby that accepted a full resync from the primary persists the received
// log in one step. The entries land in the snapshot (a resync is morally a
// compaction) and the live journal is truncated.
func (j *journal) rewrite(entries []Entry) error {
	if err := j.w.Close(); err != nil {
		return err
	}
	tmp := snapshotFile(j.dir) + ".tmp"
	tw, err := acct.Create(tmp)
	if err != nil {
		return fmt.Errorf("slurm: rewrite: %w", err)
	}
	for _, e := range entries {
		if err := tw.Append(e); err != nil {
			tw.Close()
			os.Remove(tmp)
			return fmt.Errorf("slurm: rewrite: %w", err)
		}
	}
	if err := tw.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("slurm: rewrite: %w", err)
	}
	if err := os.Rename(tmp, snapshotFile(j.dir)); err != nil {
		return fmt.Errorf("slurm: rewrite: %w", err)
	}
	syncDir(j.dir)
	w, err := acct.Create(journalFile(j.dir)) // truncate
	if err != nil {
		return err
	}
	syncDir(j.dir)
	j.w = w
	j.ops = 0
	return nil
}

// close releases the append handle.
func (j *journal) close() error { return j.w.Close() }
