package slurm

import (
	"bufio"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sync"

	"repro/internal/acct"
	"repro/internal/vfs"
)

// Crash recovery. slurmctld survives restarts by writing StateSaveLocation;
// this controller does the same with a write-ahead journal of every external
// operation (submit, cancel, advance, node state changes). The simulation is
// deterministic, so replaying the journal against a fresh controller rebuilds
// the exact pre-crash state — queue, running set, node states, and clock.
// Completions additionally append audit entries embedding the acct.Record
// format; replay skips them (they are outputs, not inputs), but they make the
// journal a complete accounting trail on their own.
//
// A snapshot compacts the log: the journal's entries are folded into
// snapshot.jsonl (v2 frames sealed by a manifest, see frame.go) with an
// atomic tmp+rename, and the journal truncated. Recovery reads snapshot
// then journal, verifying every record. The recovery state machine:
//
//   - clean: every record verifies → replay everything.
//   - torn tail: the journal's damage is confined to an unverifiable tail
//     (crash mid-append) → truncate it away, replay the prefix. The torn
//     bytes were never acknowledged.
//   - corrupt: a record fails verification with verifiable records after it
//     (bit rot, mid-file truncation), or a snapshot — which is written
//     atomically and can never legally be torn — is damaged at all. Policy
//     CorruptFail (default) refuses to start, naming `mini-slurm fsck`;
//     CorruptQuarantine salvages the committed prefix, copies the damaged
//     records to quarantine.jsonl, and starts read-only (DEGRADED).
//
// Recovery never silently skips a damaged record and continues past it:
// the replayed state is always a committed prefix or a loud refusal.
//
// All file I/O goes through vfs.FS so tests can inject torn writes, fsync
// failures, bit rot, and crash points on every path below.

// Entry is one journal line: an external operation to replay, or an audit
// record (Op "record") to skip.
type Entry struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`
	// Epoch is the HA term the entry was written under. Standalone
	// controllers leave it zero (omitted), keeping the journal format
	// byte-identical to pre-HA releases; replicated controllers stamp every
	// entry so a deposed primary's stale appends are detectable (see ha.go).
	Epoch int64 `json:"epoch,omitempty"`
	// Submit arguments; ID doubles as the expected assigned job ID, which
	// replay verifies to catch divergence.
	App      string  `json:"app,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Walltime float64 `json:"walltime,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Name     string  `json:"name,omitempty"`
	After    []int64 `json:"after,omitempty"`
	ID       int64   `json:"id,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Node     int     `json:"node,omitempty"`
	// Token is the submit idempotency token (empty when the client sent
	// none); journaling it makes submit dedupe survive crash recovery.
	Token string `json:"token,omitempty"`
	// Record is the audit payload of a completion entry.
	Record *acct.Record `json:"record,omitempty"`
}

// Typed journal failures. The append path and the compaction path are wrapped
// distinctly so the overload circuit breaker's operators can tell "stable
// storage refused the write" from "folding the log failed" when the
// controller enters DEGRADED mode; errors.Is works against both sentinels.
var (
	// ErrJournalAppend wraps failures to durably append an entry.
	ErrJournalAppend = errors.New("slurm: journal append failed")
	// ErrJournalCompact wraps failures to fold the journal into the
	// snapshot (or to rewrite it during an HA full resync).
	ErrJournalCompact = errors.New("slurm: journal compaction failed")
)

// journalOpError tags an underlying storage error with the path (append vs
// compact) it failed on. errors.Is matches the tag and the wrapped error.
type journalOpError struct {
	kind error
	err  error
}

func (e *journalOpError) Error() string        { return e.kind.Error() + ": " + e.err.Error() }
func (e *journalOpError) Is(target error) bool { return target == e.kind }
func (e *journalOpError) Unwrap() error        { return e.err }

func journalErr(kind, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, kind) {
		return err // already tagged (compact failures inside append)
	}
	return &journalOpError{kind: kind, err: err}
}

// journalSyncErrors counts directory-fsync failures across the process so
// soak runs can detect flaky storage (expvar "journal_sync_errors").
var journalSyncErrors = expvar.NewInt("journal_sync_errors")

var syncDirWarnOnce sync.Once

// syncDir fsyncs a directory so renames and file creations inside it survive
// power loss. Filesystems that don't support directory fsync report an error
// we tolerate — on those, the rename itself is the best available — but
// every failure is counted in journal_sync_errors and the first one is
// logged, so persistent storage flakiness is visible instead of silent.
func syncDir(fsys vfs.FS, dir string) {
	if err := fsys.SyncDir(dir); err != nil {
		journalSyncErrors.Add(1)
		syncDirWarnOnce.Do(func() {
			log.Printf("slurm: journal: directory fsync of %s failed (renames may not survive power loss; counting in journal_sync_errors): %v", dir, err)
		})
	}
}

// journal is the append side of the write-ahead log. Every append is synced
// to stable storage before the operation is acknowledged. Sequence numbers
// are assigned by the controller (which also owns the in-memory copy of the
// log for replication); the journal persists entries exactly as given.
type journal struct {
	fs     vfs.FS
	dir    string
	w      *journalWriter
	werr   error // why w is nil (a failed compact step); appends try to heal
	wedged bool  // a failed append could not be rolled back; nothing more is written
	every  int   // compact after this many appends (0 = never)
	ops    int   // appends since the last compaction

	// testAppendErr, when set, is consulted before each append; a non-nil
	// return aborts the append with that error. Tests use it to simulate a
	// failing fsync path and exercise the circuit breaker.
	testAppendErr func(Entry) error
}

func snapshotFile(dir string) string   { return filepath.Join(dir, "snapshot.jsonl") }
func journalFile(dir string) string    { return filepath.Join(dir, "journal.jsonl") }
func quarantineFile(dir string) string { return filepath.Join(dir, "quarantine.jsonl") }

// journalWriter appends entries to the live journal file in the file's
// format: v2 checksummed frames for new files, plain JSONL for a v1 file
// inherited from an earlier release (mixing formats inside one file would
// corrupt it; the next compaction rewrites it as v2).
type journalWriter struct {
	f       vfs.File
	bw      *bufio.Writer
	version int
	// committed is the byte length of the acknowledged prefix of the file;
	// pending counts bytes buffered or written past it. A failed append is
	// rolled back to committed (see journal.rollbackAppend): the flush may
	// have persisted the record even though the fsync failed, and leaving it
	// behind would collide with the retry's reissued Seq — recovery would
	// then refuse the duplicate as out-of-sequence corruption.
	committed int64
	pending   int64
}

func newJournalWriter(f vfs.File, version int) *journalWriter {
	return &journalWriter{f: f, bw: bufio.NewWriter(f), version: version}
}

// createJournalV2 truncate-creates path as an empty v2 journal: header line
// written and synced so the file is self-describing from byte zero.
func createJournalV2(fsys vfs.FS, path string) (*journalWriter, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("slurm: create journal %s: %w", path, err)
	}
	w := newJournalWriter(f, journalV2)
	if _, err := w.bw.WriteString(v2Header + "\n"); err == nil {
		w.pending = int64(len(v2Header) + 1)
		err = w.sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("slurm: init journal %s: %w", path, err)
	}
	return w, nil
}

func (w *journalWriter) append(e Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("slurm: encode entry %d: %w", e.Seq, err)
	}
	var line []byte
	if w.version == journalV2 {
		line = appendFrame(nil, payload)
	} else {
		line = append(payload, '\n')
	}
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("slurm: append to %s: %w", w.f.Name(), err)
	}
	w.pending += int64(len(line))
	return nil
}

func (w *journalWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("slurm: flush %s: %w", w.f.Name(), err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("slurm: sync %s: %w", w.f.Name(), err)
	}
	w.committed += w.pending
	w.pending = 0
	return nil
}

func (w *journalWriter) close() error {
	syncErr := w.sync()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("slurm: close %s: %w", w.f.Name(), err)
	}
	return syncErr
}

// CorruptPolicy selects what recovery does with a journal or snapshot
// record that fails verification mid-log (torn tails are always salvaged).
type CorruptPolicy string

const (
	// CorruptFail (the default) refuses to start on corruption, directing
	// the operator at `mini-slurm fsck`.
	CorruptFail CorruptPolicy = "fail"
	// CorruptQuarantine salvages the committed prefix, copies damaged
	// records to quarantine.jsonl, and starts the controller read-only
	// (DEGRADED) so an operator or an HA full resync can reconcile.
	CorruptQuarantine CorruptPolicy = "quarantine"
)

// Validate checks the policy name ("" selects CorruptFail).
func (p CorruptPolicy) Validate() error {
	switch p {
	case "", CorruptFail, CorruptQuarantine:
		return nil
	}
	return fmt.Errorf("slurm: unknown JournalCorruptPolicy %q (want FAIL or QUARANTINE)", string(p))
}

// FileDamage is one damaged record, attributed to its file, as reported by
// recovery and fsck.
type FileDamage struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Offset int64  `json:"offset"`
	Reason string `json:"reason"`
	// RawB64 carries the damaged bytes (base64) into quarantine sidecars.
	RawB64 string `json:"raw_b64,omitempty"`
}

// RecoveryInfo summarizes what opening a journal directory found and did.
type RecoveryInfo struct {
	// Entries is the number of committed entries recovered.
	Entries int
	// SnapshotVersion and JournalVersion are the on-disk formats found
	// (0 = file empty or missing).
	SnapshotVersion, JournalVersion int
	// TornBytes is the size of the unacknowledged torn tail truncated from
	// the journal (0 when the tail was clean).
	TornBytes int64
	// Quarantined reports that corruption was salvaged under
	// CorruptQuarantine: damaged records are in quarantine.jsonl and the
	// controller must run read-only.
	Quarantined bool
	// Damage lists every record that failed verification.
	Damage []FileDamage
}

// scanPath reads and verifies one file; a missing file scans as empty.
func scanPath(fsys vfs.FS, path string, wantManifest bool) (*fileScan, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &fileScan{path: path}, nil
		}
		return nil, fmt.Errorf("slurm: read journal %s: %w", path, err)
	}
	return scanFile(data, path, wantManifest), nil
}

// readEntries parses a journal file (either format version), tolerating a
// torn tail and failing loudly on any other damage. Test helper and v1
// compatibility reader.
func readEntries(path string) ([]Entry, error) {
	scan, err := scanPath(vfs.OS{}, path, false)
	if err != nil {
		return nil, err
	}
	if len(scan.damage) > 0 && !scan.torn {
		d := scan.damage[0]
		return nil, fmt.Errorf("slurm: journal %s: line %d (offset %d): %s", path, d.Line, d.Offset, d.Reason)
	}
	return scan.entries, nil
}

// foldScans merges a snapshot scan and a journal scan into the committed
// prefix. A crash between compaction's snapshot rename and journal
// truncation leaves the journal's entries duplicated at the snapshot's
// tail; the strictly increasing Seq makes the overlap detectable, so it is
// dropped instead of poisoning replay. A sequence gap — the log claims
// history it cannot connect to — makes everything from the gap on
// unreachable: those records are returned separately, never silently
// replayed.
func foldScans(snap, tail *fileScan) (entries, unreachable []Entry, gap string) {
	var last int64
	consume := func(list []Entry, src string) {
		for i, e := range list {
			if gap != "" {
				unreachable = append(unreachable, list[i:]...)
				return
			}
			if e.Seq <= last {
				continue // overlap from a crash mid-compaction
			}
			if e.Seq != last+1 {
				gap = fmt.Sprintf("%s: sequence gap (log connects through seq %d, next record is seq %d)", src, last, e.Seq)
				unreachable = append(unreachable, list[i:]...)
				return
			}
			entries = append(entries, e)
			last = e.Seq
		}
	}
	consume(snap.entries, "snapshot")
	consume(tail.entries, "journal")
	return entries, unreachable, gap
}

func damageList(file string, ds []Damage, withRaw bool) []FileDamage {
	out := make([]FileDamage, 0, len(ds))
	for _, d := range ds {
		fd := FileDamage{File: file, Line: d.Line, Offset: d.Offset, Reason: d.Reason}
		if withRaw {
			fd.RawB64 = b64(d.Raw)
		}
		out = append(out, fd)
	}
	return out
}

// openJournal opens (creating if needed) the state directory, verifies the
// snapshot+journal pair, and returns the append handle, every committed
// entry, and a recovery report. Damage handling follows the recovery state
// machine documented at the top of this file.
func openJournal(fsys vfs.FS, dir string, every int, pol CorruptPolicy) (*journal, []Entry, *RecoveryInfo, error) {
	if pol == "" {
		pol = CorruptFail
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("slurm: state dir: %w", err)
	}
	// A leftover compaction temp file is a crash before the rename; the
	// snapshot+journal pair is authoritative.
	fsys.Remove(snapshotFile(dir) + ".tmp")
	snap, err := scanPath(fsys, snapshotFile(dir), true)
	if err != nil {
		return nil, nil, nil, err
	}
	tail, err := scanPath(fsys, journalFile(dir), false)
	if err != nil {
		return nil, nil, nil, err
	}
	info := &RecoveryInfo{SnapshotVersion: snap.version, JournalVersion: tail.version}

	// Snapshots are written atomically (tmp+fsync+rename): they can never
	// legally be torn, so any damage at all is corruption.
	var quarantined []FileDamage
	if len(snap.damage) > 0 {
		if pol != CorruptQuarantine {
			d := snap.damage[0]
			return nil, nil, nil, fmt.Errorf(
				"slurm: snapshot %s corrupt: line %d (offset %d): %s (run `mini-slurm fsck` to inspect, `-repair` to salvage)",
				snap.path, d.Line, d.Offset, d.Reason)
		}
		quarantined = append(quarantined, damageList("snapshot.jsonl", snap.damage, true)...)
		// Nothing after a damaged snapshot record can be trusted to
		// connect; drop the journal's claim to extend it via the gap check
		// below (the salvaged snapshot prefix ends before the journal
		// starts, producing a sequence gap unless the overlap covers it).
	}
	if len(tail.damage) > 0 && !tail.torn {
		if pol != CorruptQuarantine {
			d := tail.damage[0]
			return nil, nil, nil, fmt.Errorf(
				"slurm: journal %s corrupt: line %d (offset %d): %s (run `mini-slurm fsck` to inspect, `-repair` to salvage)",
				tail.path, d.Line, d.Offset, d.Reason)
		}
		quarantined = append(quarantined, damageList("journal.jsonl", tail.damage, true)...)
	}

	entries, unreachable, gap := foldScans(snap, tail)
	if gap != "" {
		if pol != CorruptQuarantine && len(quarantined) == 0 {
			return nil, nil, nil, fmt.Errorf(
				"slurm: %s: %s (run `mini-slurm fsck` to inspect, `-repair` to salvage)", dir, gap)
		}
		for _, e := range unreachable {
			payload, _ := json.Marshal(e)
			quarantined = append(quarantined, FileDamage{
				File: "journal.jsonl", Reason: "unreachable after " + gap, RawB64: b64(payload),
			})
		}
	}

	// Torn journal tail: the expected crash-mid-append artifact. Truncate
	// the fragment physically — appending after it would fuse the torn
	// bytes with the next record's line and lose an acknowledged entry on
	// the following recovery.
	if tail.torn && tail.validLen < tail.size {
		info.TornBytes = tail.size - tail.validLen
		if err := fsys.Truncate(journalFile(dir), tail.validLen); err != nil {
			return nil, nil, nil, fmt.Errorf("slurm: truncate torn journal tail: %w", err)
		}
	}

	if len(quarantined) > 0 {
		info.Quarantined = true
		info.Damage = quarantined
		if err := writeQuarantine(fsys, dir, quarantined); err != nil {
			return nil, nil, nil, err
		}
	} else if len(tail.damage) > 0 {
		info.Damage = damageList("journal.jsonl", tail.damage, false)
	}

	var w *journalWriter
	if tail.validLen == 0 || tail.version == 0 {
		// Empty (or fully torn) journal: start a fresh self-describing v2 file.
		w, err = createJournalV2(fsys, journalFile(dir))
	} else {
		var f vfs.File
		f, err = fsys.OpenAppend(journalFile(dir))
		if err == nil {
			w = newJournalWriter(f, tail.version)
			w.committed = tail.validLen
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	// Make the freshly created files' directory entries durable too: an
	// fsynced journal line in a file the directory has lost is still lost.
	syncDir(fsys, dir)
	info.Entries = len(entries)
	j := &journal{fs: fsys, dir: dir, w: w, every: every, ops: len(tail.entries)}
	return j, entries, info, nil
}

// ensureWriter re-establishes the append handle after a failed compaction
// step left it closed, so a transient storage fault heals instead of
// wedging the journal until restart.
func (j *journal) ensureWriter() error {
	if j.w != nil {
		return nil
	}
	scan, err := scanPath(j.fs, journalFile(j.dir), false)
	if err != nil {
		return err
	}
	if len(scan.damage) > 0 {
		return fmt.Errorf("slurm: journal %s damaged after failed compaction (%s); refusing to append", scan.path, scan.damage[0].Reason)
	}
	if scan.validLen == 0 || scan.version == 0 {
		j.w, err = createJournalV2(j.fs, journalFile(j.dir))
		return err
	}
	f, err := j.fs.OpenAppend(journalFile(j.dir))
	if err != nil {
		return err
	}
	j.w = newJournalWriter(f, scan.version)
	j.w.committed = scan.validLen
	j.werr = nil
	return nil
}

// append durably logs one entry (whose Seq the caller has already assigned),
// then compacts if the journal grew past the snapshot threshold. Append-path
// failures wrap ErrJournalAppend; compaction failures wrap ErrJournalCompact.
func (j *journal) append(e Entry) error {
	if j.testAppendErr != nil {
		if err := j.testAppendErr(e); err != nil {
			return journalErr(ErrJournalAppend, err)
		}
	}
	if j.wedged {
		return journalErr(ErrJournalAppend,
			fmt.Errorf("slurm: journal %s wedged by an earlier failed append rollback", journalFile(j.dir)))
	}
	if err := j.ensureWriter(); err != nil {
		return journalErr(ErrJournalAppend, err)
	}
	if err := j.w.append(e); err != nil {
		return journalErr(ErrJournalAppend, j.rollbackAppend(err))
	}
	if err := j.w.sync(); err != nil {
		return journalErr(ErrJournalAppend, j.rollbackAppend(err))
	}
	j.ops++
	if j.every > 0 && j.ops >= j.every {
		return j.compact()
	}
	return nil
}

// rollbackAppend discards a failed append's possibly-persisted bytes by
// truncating the live journal back to its committed length: the flush may
// have landed the record on disk even though the fsync (or a partial write)
// failed, and the retry will reissue the same Seq — without the rollback the
// duplicate would make recovery refuse the whole journal as out-of-sequence
// corruption. The handle is closed and reopened lazily by the next append's
// ensureWriter. If the rollback itself fails the journal wedges — nothing
// more is written, and the committed prefix is what the next open finds —
// mirroring the campaign journal's policy (DESIGN §13).
func (j *journal) rollbackAppend(err error) error {
	committed := j.w.committed
	j.w.f.Close()
	j.w = nil
	if terr := j.fs.Truncate(journalFile(j.dir), committed); terr != nil {
		j.wedged = true
		return fmt.Errorf("%w (rollback failed: %v; journal wedged)", err, terr)
	}
	j.werr = err
	return err
}

// writeSnapshotAtomic writes data to the snapshot temp file, syncs it, and
// atomically renames it over the snapshot.
func (j *journal) writeSnapshotAtomic(data []byte) error {
	tmp := snapshotFile(j.dir) + ".tmp"
	f, err := j.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		j.fs.Remove(tmp)
		return err
	}
	if err := j.fs.Rename(tmp, snapshotFile(j.dir)); err != nil {
		j.fs.Remove(tmp)
		return err
	}
	// Without a directory fsync the rename may not survive power loss on
	// some filesystems — the data would be safe in the temp file, but the
	// snapshot name could still point at the old content.
	syncDir(j.fs, j.dir)
	return nil
}

// compact folds the journal into the snapshot: verify and merge both files,
// write the folded entries as a manifest-sealed v2 snapshot via tmp+rename,
// then truncate the journal (to a fresh v2 header — this is where a v1
// journal inherited from an earlier release migrates to v2). The old append
// handle stays live until the temp snapshot is durable, so a fault in the
// fold leaves the append path healthy. A crash at any point leaves a
// recoverable pair of files.
func (j *journal) compact() error {
	snap, err := scanPath(j.fs, snapshotFile(j.dir), true)
	if err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	tail, err := scanPath(j.fs, journalFile(j.dir), false)
	if err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	// Compaction rewrites history; damaged history must never be folded
	// into a "clean" snapshot. The files verified at open, so damage here
	// means the disk rotted underneath the running controller.
	if len(snap.damage) > 0 {
		return journalErr(ErrJournalCompact, fmt.Errorf("snapshot %s damaged (%s); run fsck", snap.path, snap.damage[0].Reason))
	}
	if len(tail.damage) > 0 {
		return journalErr(ErrJournalCompact, fmt.Errorf("journal %s damaged (%s); run fsck", tail.path, tail.damage[0].Reason))
	}
	entries, _, gap := foldScans(snap, tail)
	if gap != "" {
		return journalErr(ErrJournalCompact, fmt.Errorf("refusing to fold: %s", gap))
	}
	data, err := encodeSnapshot(entries)
	if err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	if err := j.writeSnapshotAtomic(data); err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	return journalErr(ErrJournalCompact, j.truncateLive())
}

// truncateLive replaces the live journal with a fresh v2 file after its
// entries have been folded into the snapshot. On failure the append handle
// is left nil with the cause recorded; the next append retries via
// ensureWriter.
func (j *journal) truncateLive() error {
	if j.w != nil {
		err := j.w.close()
		j.w = nil
		if err != nil {
			j.werr = err
			return err
		}
	}
	w, err := createJournalV2(j.fs, journalFile(j.dir))
	if err != nil {
		j.werr = err
		return err
	}
	syncDir(j.fs, j.dir)
	j.w = w
	j.werr = nil
	j.ops = 0
	return nil
}

// rewrite atomically replaces the journal's entire content with entries: a
// standby that accepted a full resync from the primary persists the received
// log in one step. The entries land in the snapshot (a resync is morally a
// compaction, and fails as one) and the live journal is truncated.
func (j *journal) rewrite(entries []Entry) error {
	data, err := encodeSnapshot(entries)
	if err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	if err := j.writeSnapshotAtomic(data); err != nil {
		return journalErr(ErrJournalCompact, err)
	}
	return journalErr(ErrJournalCompact, j.truncateLive())
}

// close releases the append handle.
func (j *journal) close() error {
	if j.w == nil {
		return nil
	}
	err := j.w.close()
	j.w = nil
	return err
}
