package slurm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/acct"
)

// Crash recovery. slurmctld survives restarts by writing StateSaveLocation;
// this controller does the same with a write-ahead journal of every external
// operation (submit, cancel, advance, node state changes). The simulation is
// deterministic, so replaying the journal against a fresh controller rebuilds
// the exact pre-crash state — queue, running set, node states, and clock.
// Completions additionally append audit entries embedding the acct.Record
// format; replay skips them (they are outputs, not inputs), but they make the
// journal a complete accounting trail on their own.
//
// A snapshot compacts the log: the journal's entries are folded into
// snapshot.jsonl with an atomic tmp+rename, and the journal truncated.
// Recovery reads snapshot.jsonl then journal.jsonl; a torn final line (crash
// mid-append) is dropped, anything else malformed is an error.

// Entry is one journal line: an external operation to replay, or an audit
// record (Op "record") to skip.
type Entry struct {
	Seq int64  `json:"seq"`
	Op  string `json:"op"`
	// Submit arguments; ID doubles as the expected assigned job ID, which
	// replay verifies to catch divergence.
	App      string  `json:"app,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Walltime float64 `json:"walltime,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Name     string  `json:"name,omitempty"`
	After    []int64 `json:"after,omitempty"`
	ID       int64   `json:"id,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Node     int     `json:"node,omitempty"`
	// Token is the submit idempotency token (empty when the client sent
	// none); journaling it makes submit dedupe survive crash recovery.
	Token string `json:"token,omitempty"`
	// Record is the audit payload of a completion entry.
	Record *acct.Record `json:"record,omitempty"`
}

// journal is the append side of the write-ahead log. Every append is synced
// to stable storage before the operation is acknowledged.
type journal struct {
	dir   string
	w     *acct.LineWriter
	seq   int64
	every int // compact after this many appends (0 = never)
	ops   int // appends since the last compaction

	// testAppendErr, when set, is consulted before each append; a non-nil
	// return aborts the append with that error. Tests use it to simulate a
	// failing fsync path and exercise the circuit breaker.
	testAppendErr func(Entry) error
}

func snapshotFile(dir string) string { return filepath.Join(dir, "snapshot.jsonl") }
func journalFile(dir string) string  { return filepath.Join(dir, "journal.jsonl") }

// openJournal opens (creating if needed) the state directory and returns the
// append handle plus every recovered entry, snapshot first.
func openJournal(dir string, every int) (*journal, []Entry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("slurm: state dir: %w", err)
	}
	snap, err := readEntries(snapshotFile(dir))
	if err != nil {
		return nil, nil, err
	}
	tail, err := readEntries(journalFile(dir))
	if err != nil {
		return nil, nil, err
	}
	entries := append(snap, tail...)
	w, err := acct.OpenAppend(journalFile(dir))
	if err != nil {
		return nil, nil, err
	}
	j := &journal{dir: dir, w: w, every: every, ops: len(tail)}
	if len(entries) > 0 {
		j.seq = entries[len(entries)-1].Seq
	}
	return j, entries, nil
}

// readEntries parses a JSONL entry file. A missing file yields no entries. A
// malformed final line is a torn write from a crash mid-append and is
// dropped; malformation anywhere else is corruption and errors out.
func readEntries(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("slurm: open journal %s: %w", path, err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	torn := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if torn {
			return nil, fmt.Errorf("slurm: journal %s: line %d: garbage before final line", path, lineNo-1)
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true // legal only if this turns out to be the last line
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("slurm: read journal %s: %w", path, err)
	}
	return out, nil
}

// append durably logs one entry, then compacts if the journal grew past the
// snapshot threshold.
func (j *journal) append(e Entry) error {
	if j.testAppendErr != nil {
		if err := j.testAppendErr(e); err != nil {
			return err
		}
	}
	j.seq++
	e.Seq = j.seq
	if err := j.w.Append(e); err != nil {
		return err
	}
	if err := j.w.Sync(); err != nil {
		return err
	}
	j.ops++
	if j.every > 0 && j.ops >= j.every {
		return j.compact()
	}
	return nil
}

// compact folds the journal into the snapshot: write snapshot+journal to a
// temp file, sync, atomically rename over the snapshot, then truncate the
// journal. A crash at any point leaves a recoverable pair of files.
func (j *journal) compact() error {
	if err := j.w.Close(); err != nil {
		return err
	}
	snap, err := os.ReadFile(snapshotFile(j.dir))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	tail, err := os.ReadFile(journalFile(j.dir))
	if err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	tmp := snapshotFile(j.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	if _, err := f.Write(snap); err == nil {
		_, err = f.Write(tail)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("slurm: compact: %w", err)
	}
	if err := os.Rename(tmp, snapshotFile(j.dir)); err != nil {
		return fmt.Errorf("slurm: compact: %w", err)
	}
	w, err := acct.Create(journalFile(j.dir)) // truncate
	if err != nil {
		return err
	}
	j.w = w
	j.ops = 0
	return nil
}

// close releases the append handle.
func (j *journal) close() error { return j.w.Close() }
