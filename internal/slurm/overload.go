package slurm

import (
	"fmt"
	"time"
)

// Overload protection. A control plane that implements clever scheduling is
// worthless if a submission storm wedges it, so the server enforces explicit
// capacity at three levels — connections, per-connection request rate, and
// concurrent in-flight work — and sheds excess load with a structured BUSY
// response carrying a retry-after hint instead of stalling the socket.
// Verbs are classed: control-plane operations (requeue, node state changes,
// cancel) are cheap in the rate limiter so an operator can always steer a
// cluster that bulk traffic has saturated, and `health` bypasses admission
// entirely so liveness probes answer even while everything else is shed.
//
// Orthogonally, a circuit breaker watches the journal append path: when
// stable storage misbehaves (full disk, dead device) the controller trips
// into a read-only DEGRADED mode — queries still served, mutations rejected —
// instead of acknowledging writes it cannot make durable. After a cooldown
// the breaker goes half-open and lets mutations probe the journal again.

// Health states reported by the `health` verb.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDraining = "draining"
	// HealthFenced marks a primary whose replication lease has lapsed: the
	// standby may have promoted, so mutations are rejected until the pair
	// reconciles (see ha.go).
	HealthFenced = "fenced"
)

// Defaults applied where OverloadConfig leaves a knob zero but the feature
// it tunes is enabled.
const (
	// DefaultRetryAfter is the hint attached to BUSY responses when the
	// rate limiter cannot compute a precise wait.
	DefaultRetryAfter = 100 * time.Millisecond
	// DefaultControlCost is the token cost of a control verb relative to a
	// bulk verb's cost of 1.
	DefaultControlCost = 0.1
	// DefaultBreakerCooldown is how long a tripped breaker stays closed to
	// mutations before going half-open.
	DefaultBreakerCooldown = 5 * time.Second
)

// OverloadConfig tunes admission control and graceful degradation. The zero
// value disables every feature, which keeps the protocol and journal
// byte-compatible with earlier releases.
type OverloadConfig struct {
	// MaxConns caps concurrent client connections (0 = unlimited). A
	// connection over the cap receives one BUSY response and is closed.
	MaxConns int
	// MaxInflight bounds requests being processed at once across all
	// connections (0 = unlimited); excess requests are shed with BUSY.
	MaxInflight int
	// RateLimit is the per-connection token refill rate in requests per
	// second (0 = unlimited).
	RateLimit float64
	// RateBurst is the token bucket depth; 0 selects max(2*RateLimit, 1).
	RateBurst float64
	// ControlCost is the token cost of control verbs (requeue, node state
	// changes, cancel); bulk verbs cost 1. 0 selects DefaultControlCost.
	ControlCost float64
	// RetryAfter is the wait hint in BUSY responses where the limiter has
	// no better estimate. 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// BreakerThreshold trips the journal circuit breaker after this many
	// consecutive append failures (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects mutations
	// before going half-open. 0 selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// HistoryLimit caps JobInfo rows in one Queue(history=true) reply when
	// the client does not pass an explicit limit (0 = unlimited).
	HistoryLimit int
	// ShedTarget enables the adaptive priority shedder (serve.go): when the
	// EWMA of recent service latency holds above this target for a full
	// ShedWindow, the lowest verb class still admitted is shed. 0 disables
	// priority shedding.
	ShedTarget time.Duration
	// ShedWindow is the sustained-pressure window of the shedder (and its
	// quiet window for stepping back down). 0 selects DefaultShedWindow.
	ShedWindow time.Duration
	// BrownoutStep enables the brownout ladder (serve.go): pressure
	// sustained this long climbs the ladder one level. Requires ShedTarget
	// (the ladder's pressure signal is the shedder). 0 disables the ladder.
	BrownoutStep time.Duration
	// BrownoutCooldown is the quiet period required before the ladder steps
	// back down one level. 0 selects 4×BrownoutStep.
	BrownoutCooldown time.Duration
	// BrownoutHistoryLimit caps history paging at BrownoutPaged and above.
	// 0 selects DefaultBrownoutHistoryLimit.
	BrownoutHistoryLimit int
	// BrownoutStaleFor is the snapshot-cache TTL at BrownoutStale and
	// above. 0 selects DefaultBrownoutStaleFor.
	BrownoutStaleFor time.Duration
}

// DefaultOverloadConfig returns production-shaped protection: generous
// enough for interactive tooling, finite everywhere.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		MaxConns:         256,
		MaxInflight:      64,
		RateLimit:        200,
		RateBurst:        400,
		RetryAfter:       DefaultRetryAfter,
		BreakerThreshold: 3,
		BreakerCooldown:  DefaultBreakerCooldown,
		HistoryLimit:     1024,
	}
}

// Validate checks the knobs for internal consistency.
func (o OverloadConfig) Validate() error {
	if o.MaxConns < 0 || o.MaxInflight < 0 || o.BreakerThreshold < 0 || o.HistoryLimit < 0 {
		return fmt.Errorf("slurm: negative overload limits")
	}
	if o.RateLimit < 0 || o.RateBurst < 0 || o.ControlCost < 0 {
		return fmt.Errorf("slurm: negative rate limit parameters")
	}
	if o.ControlCost > 1 {
		return fmt.Errorf("slurm: RateLimitControlCost %g > 1 would deprioritize control verbs", o.ControlCost)
	}
	if o.RetryAfter < 0 || o.BreakerCooldown < 0 {
		return fmt.Errorf("slurm: negative overload durations")
	}
	if o.ShedTarget < 0 || o.ShedWindow < 0 || o.BrownoutStep < 0 ||
		o.BrownoutCooldown < 0 || o.BrownoutStaleFor < 0 {
		return fmt.Errorf("slurm: negative shed/brownout durations")
	}
	if o.BrownoutHistoryLimit < 0 {
		return fmt.Errorf("slurm: negative BrownoutHistoryLimit")
	}
	if o.BrownoutStep > 0 && o.ShedTarget <= 0 {
		return fmt.Errorf("slurm: BrownoutStepAfter requires ShedTargetLatency (the ladder's pressure signal is the shedder)")
	}
	return nil
}

// shedWindow, brownoutCooldown, brownoutHistoryLimit, and brownoutStaleFor
// resolve the serve-robustness knobs' defaults.
func (o OverloadConfig) shedWindow() time.Duration {
	if o.ShedWindow > 0 {
		return o.ShedWindow
	}
	return DefaultShedWindow
}

func (o OverloadConfig) brownoutCooldown() time.Duration {
	if o.BrownoutCooldown > 0 {
		return o.BrownoutCooldown
	}
	return 4 * o.BrownoutStep
}

func (o OverloadConfig) brownoutHistoryLimit() int {
	if o.BrownoutHistoryLimit > 0 {
		return o.BrownoutHistoryLimit
	}
	return DefaultBrownoutHistoryLimit
}

func (o OverloadConfig) brownoutStaleFor() time.Duration {
	if o.BrownoutStaleFor > 0 {
		return o.BrownoutStaleFor
	}
	return DefaultBrownoutStaleFor
}

// retryAfter is the BUSY hint for shed work that has no limiter-computed wait.
func (o OverloadConfig) retryAfter() time.Duration {
	if o.RetryAfter > 0 {
		return o.RetryAfter
	}
	return DefaultRetryAfter
}

// verbCost classes a request op for the rate limiter: control verbs are
// cheap so operator actions still land on a saturated server, everything
// else (submissions, queries, time control) pays full price.
func verbCost(op string, controlCost float64) float64 {
	switch op {
	case "requeue", "down_node", "up_node", "drain_node", "resume_node", "cancel":
		if controlCost > 0 {
			return controlCost
		}
		return DefaultControlCost
	case "replicate":
		// Replication keeps the standby's lease alive; rate-limiting it would
		// let a submission storm cause a spurious failover.
		return 0
	}
	return 1
}

// tokenBucket is a standard leaky token bucket. Not safe for concurrent
// use; each connection owns one and uses it from its serve goroutine.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = 2 * rate
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take refills for elapsed time and tries to spend cost tokens. On refusal
// it reports how long the caller should wait before the bucket could cover
// the cost — the retry-after hint.
func (tb *tokenBucket) take(cost float64, now time.Time) (bool, time.Duration) {
	if elapsed := now.Sub(tb.last).Seconds(); elapsed > 0 {
		tb.tokens += elapsed * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens >= cost {
		tb.tokens -= cost
		return true, 0
	}
	wait := time.Duration((cost - tb.tokens) / tb.rate * float64(time.Second))
	return false, wait
}

// breaker is the journal circuit breaker. Callers synchronise access (the
// controller invokes it under its own mutex).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	fails   int
	tripped bool
	until   time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// failure records one journal append failure, tripping (or re-tripping, if
// half-open) the breaker once the consecutive-failure threshold is reached.
func (b *breaker) failure() {
	b.fails++
	if b.fails >= b.threshold {
		b.tripped = true
		b.until = b.now().Add(b.cooldown)
	}
}

// success records a durable append and fully closes the breaker.
func (b *breaker) success() {
	b.fails = 0
	b.tripped = false
}

// writable reports whether mutations may proceed: always when closed, and
// once the cooldown has elapsed (half-open — the next mutation probes the
// journal; its outcome re-trips or resets).
func (b *breaker) writable() bool {
	return !b.tripped || !b.now().Before(b.until)
}

// degraded reports whether the breaker is tripped (including half-open:
// health stays "degraded" until an append actually succeeds).
func (b *breaker) degraded() bool { return b.tripped }

// BusyError is returned by Client.Do when the server sheds the request.
// The embedded hint tells the caller when a retry is worth attempting.
// Shed distinguishes a priority shed (the server chose to drop this verb
// class under overload) from a plain volume shed; both are retryable.
type BusyError struct {
	RetryAfter time.Duration
	Shed       bool
}

func (e *BusyError) Error() string {
	if e.Shed {
		return fmt.Sprintf("slurm: request shed under overload, retry after %s", e.RetryAfter)
	}
	return fmt.Sprintf("slurm: server busy, retry after %s", e.RetryAfter)
}

// busyResponse builds the structured load-shedding reply. wait <= 0 falls
// back to the configured hint.
func (o OverloadConfig) busyResponse(wait time.Duration) Response {
	if wait <= 0 {
		wait = o.retryAfter()
	}
	ms := wait.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	return Response{
		Busy:         true,
		RetryAfterMS: ms,
		Error:        fmt.Sprintf("busy: retry after %dms", ms),
	}
}
