package slurm

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/vfs"
)

// stallFS injects fsync latency: every journal Sync costs a fixed sleep, the
// disk-side half of the combined-fault scenario. (The network half is the
// chaos proxy.) Deterministic — same stall every sync — so the acceptance
// run is a pure function of the seed.
type stallFS struct {
	vfs.FS
	stall time.Duration
}

type stallFile struct {
	vfs.File
	stall time.Duration
}

func (fs stallFS) Create(path string) (vfs.File, error) {
	f, err := fs.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return stallFile{f, fs.stall}, nil
}

func (fs stallFS) OpenAppend(path string) (vfs.File, error) {
	f, err := fs.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return stallFile{f, fs.stall}, nil
}

func (f stallFile) Sync() error {
	time.Sleep(f.stall)
	return f.File.Sync()
}

// TestServeChaosAcceptance is the acceptance gate for the request-robustness
// layer: an open-loop storm at roughly 2x the (fsync-stalled) controller's
// capacity, through a seeded chaos proxy injecting network delays and
// connection drops, on a journal whose every fsync stalls. Under all of that:
//
//   - control-class verbs stay under a fixed p99 bound (the operator is
//     never locked out),
//   - submit goodput stays above a floor (shedding is graceful, not a cliff),
//   - the shed/brownout machinery demonstrably engaged (otherwise the run
//     proved nothing), and
//   - after the storm stops, health probes alone walk the brownout ladder
//     back to NORMAL.
//
// Everything is seeded; run it under -race (CI does).
func TestServeChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance is a multi-second storm")
	}
	const seed = 20260808

	dir := t.TempDir()
	cfg := testControllerConfig()
	cfg.Overload = OverloadConfig{
		MaxConns:             128,
		MaxInflight:          8,
		RetryAfter:           5 * time.Millisecond,
		HistoryLimit:         256,
		ShedTarget:           4 * time.Millisecond,
		ShedWindow:           25 * time.Millisecond,
		BrownoutStep:         100 * time.Millisecond,
		BrownoutCooldown:     200 * time.Millisecond,
		BrownoutHistoryLimit: 16,
		BrownoutStaleFor:     100 * time.Millisecond,
	}
	// Every journal fsync stalls 4ms: a submit-heavy storm saturates the
	// mutation path at ~250/s, so the offered load below is ~2x capacity.
	ctl, err := OpenJournaledFS(cfg, stallFS{vfs.OS{}, 4 * time.Millisecond}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(10 * time.Second)

	px, err := chaos.Listen(addr, chaos.Config{
		Seed: seed, Name: "serve-chaos",
		Drop:      0.0005,
		DelayProb: 0.05,
		DelayMin:  time.Millisecond,
		DelayMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	res, err := RunBench(BenchConfig{
		Addr:           px.Addr(),
		Seed:           seed,
		Duration:       3 * time.Second,
		Rate:           1200, // ~480 submits/s offered against ~250/s of fsync capacity
		Conns:          24,
		DeadlineBudget: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", res)
	st := px.Stats()
	t.Logf("chaos injected: %d drops, %d delays", st.Drops, st.Delays)
	if st.Drops == 0 && st.Delays == 0 {
		t.Fatal("chaos proxy injected nothing; the run proved nothing")
	}

	// Control verbs: bounded tail. The bound is generous (shared CI boxes,
	// -race) but a cliff — a wedged controller — blows far past it.
	var control ClassStats
	for _, c := range res.Classes {
		if c.Class == "control" {
			control = c
		}
	}
	if control.Sent == 0 {
		t.Fatal("no control-class requests ran")
	}
	const controlP99Bound = 400.0 // ms
	if control.P99ms > controlP99Bound {
		t.Errorf("control p99 = %.1fms, bound %.0fms", control.P99ms, controlP99Bound)
	}

	// Submit goodput floor: graceful degradation, not a cliff. 2x overload
	// with priority shedding should still land a healthy stream of submits.
	const goodputFloor = 5.0 // submits/sec
	if res.SubmitsPerSec < goodputFloor {
		t.Errorf("submit goodput = %.1f/s, floor %.0f/s", res.SubmitsPerSec, goodputFloor)
	}

	// The machinery must have engaged: the server shed something (volume or
	// priority), or the storm was not actually overload.
	if res.Serve == nil {
		t.Fatal("health reply carried no serve counters")
	}
	if res.Serve.Busy+res.Serve.Shed+res.Serve.DeadlineExceeded == 0 {
		t.Error("no request was ever shed; offered load did not exceed capacity")
	}

	// Recovery: with the storm over, health probes alone must unwind the
	// ladder to NORMAL (if it ever climbed) and the shedder back to calm.
	probe, err := Dial(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	probe.Timeout = 5 * time.Second
	deadline := time.Now().Add(15 * time.Second)
	for {
		hr, err := probe.HealthFull()
		if err == nil && hr.Brownout == "normal" && hr.Health == HealthOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never returned to NORMAL: health=%+v err=%v", hr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
