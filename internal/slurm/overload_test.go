package slurm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- token bucket ---

func TestTokenBucketSchedule(t *testing.T) {
	t0 := time.Unix(0, 0)
	tb := newTokenBucket(10, 2, t0) // 10 tokens/s, depth 2, starts full
	if ok, _ := tb.take(1, t0); !ok {
		t.Fatal("full bucket refused first token")
	}
	if ok, _ := tb.take(1, t0); !ok {
		t.Fatal("bucket refused second token within burst")
	}
	ok, wait := tb.take(1, t0)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("wait = %v, want 100ms (1 token at 10/s)", wait)
	}
	// After 50ms, half a token has refilled: still refused, shorter wait.
	ok, wait = tb.take(1, t0.Add(50*time.Millisecond))
	if ok || wait != 50*time.Millisecond {
		t.Fatalf("after 50ms: ok=%v wait=%v, want refused/50ms", ok, wait)
	}
	// After a full second the bucket is capped at burst, not rate*elapsed.
	if ok, _ := tb.take(2, t0.Add(2*time.Second)); !ok {
		t.Fatal("bucket did not refill to burst")
	}
	if ok, _ := tb.take(0.5, t0.Add(2*time.Second)); ok {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	tb := newTokenBucket(5, 0, time.Unix(0, 0))
	if tb.burst != 10 {
		t.Fatalf("default burst = %g, want 2*rate", tb.burst)
	}
	tb = newTokenBucket(0.2, 0, time.Unix(0, 0))
	if tb.burst != 1 {
		t.Fatalf("default burst = %g, want floor of 1", tb.burst)
	}
}

func TestVerbCost(t *testing.T) {
	for _, op := range []string{"requeue", "down_node", "up_node", "drain_node", "resume_node", "cancel"} {
		if c := verbCost(op, 0); c != DefaultControlCost {
			t.Errorf("verbCost(%s) = %g, want control default", op, c)
		}
		if c := verbCost(op, 0.25); c != 0.25 {
			t.Errorf("verbCost(%s, 0.25) = %g", op, c)
		}
	}
	for _, op := range []string{"submit", "queue", "nodes", "stats", "advance", "drain", "now", "config", "bogus"} {
		if c := verbCost(op, 0.25); c != 1 {
			t.Errorf("verbCost(%s) = %g, want 1", op, c)
		}
	}
}

// --- circuit breaker ---

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	b.now = func() time.Time { return now }

	if !b.writable() || b.degraded() {
		t.Fatal("new breaker not open for business")
	}
	b.failure()
	b.failure()
	if !b.writable() {
		t.Fatal("breaker tripped before threshold")
	}
	b.failure() // third consecutive failure: trip
	if b.writable() || !b.degraded() {
		t.Fatal("breaker did not trip at threshold")
	}
	// Cooldown not yet elapsed: still closed.
	now = now.Add(4 * time.Second)
	if b.writable() {
		t.Fatal("breaker writable before cooldown elapsed")
	}
	// Cooldown elapsed: half-open (writable, still degraded until success).
	now = now.Add(2 * time.Second)
	if !b.writable() {
		t.Fatal("breaker not half-open after cooldown")
	}
	if !b.degraded() {
		t.Fatal("half-open breaker should still report degraded")
	}
	// A half-open failure re-trips immediately.
	b.failure()
	if b.writable() {
		t.Fatal("half-open failure did not re-trip")
	}
	// Success fully resets.
	now = now.Add(6 * time.Second)
	b.success()
	if !b.writable() || b.degraded() {
		t.Fatal("success did not reset breaker")
	}
}

// --- server admission ---

// overloadServer boots a server with the given overload config.
func overloadServer(t *testing.T, over OverloadConfig) (*Client, *Server, string) {
	t.Helper()
	cfg := testControllerConfig()
	cfg.Overload = over
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv, addr
}

func TestServerConnectionCap(t *testing.T) {
	cl, _, addr := overloadServer(t, OverloadConfig{MaxConns: 1, RetryAfter: 50 * time.Millisecond})
	// First connection works.
	if _, err := cl.Do(Request{Op: "now"}); err != nil {
		t.Fatal(err)
	}
	// Second is rejected with a structured BUSY carrying the hint, then
	// closed.
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	var busy *BusyError
	if _, err := cl2.Do(Request{Op: "now"}); !errors.As(err, &busy) {
		t.Fatalf("over-cap request error = %v, want BusyError", err)
	} else if busy.RetryAfter != 50*time.Millisecond {
		t.Fatalf("retry-after = %v, want 50ms", busy.RetryAfter)
	}
	if _, err := cl2.do1(Request{Op: "now"}); err == nil {
		t.Fatal("rejected connection not closed")
	}
	// The first connection is unaffected throughout.
	if _, err := cl.Do(Request{Op: "now"}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRateLimitAndVerbClasses(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Overload = OverloadConfig{RateLimit: 1, RateBurst: 2, ControlCost: 0.01}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	// Pin the server clock (before Listen — serve goroutines read it) so
	// refill is deterministic.
	var clockMu sync.Mutex
	clock := time.Unix(0, 0)
	srv.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advanceClock := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		clock = clock.Add(d)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Burst of 2 bulk requests passes, third is shed with a computed wait.
	for i := 0; i < 2; i++ {
		if _, err := cl.Do(Request{Op: "now"}); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	var busy *BusyError
	if _, err := cl.Do(Request{Op: "now"}); !errors.As(err, &busy) {
		t.Fatalf("over-rate request error = %v, want BusyError", err)
	} else if busy.RetryAfter <= 0 || busy.RetryAfter > time.Second {
		t.Fatalf("computed retry-after = %v", busy.RetryAfter)
	}
	// Control verbs cost 0.01: even with the bucket drained for bulk
	// traffic, the 0.15 tokens refilled over 150ms cover ten of them.
	advanceClock(150 * time.Millisecond)
	for i := 0; i < 10; i++ {
		// requeue of an unknown job is an application error, not BUSY —
		// it made it past admission.
		_, err := cl.Do(Request{Op: "requeue", ID: 999})
		if errors.As(err, &busy) {
			t.Fatalf("control verb %d rate-limited alongside bulk traffic", i)
		}
	}
	// Enough further control verbs exhaust even the control budget.
	foundBusy := false
	for i := 0; i < 10; i++ {
		if _, err := cl.Do(Request{Op: "requeue", ID: 999}); errors.As(err, &busy) {
			foundBusy = true
			break
		}
	}
	if !foundBusy {
		t.Fatal("control verbs never rate-limited at all")
	}
}

func TestServerInflightShedding(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{MaxInflight: 1})
	srv.sem <- struct{}{} // saturate the only slot
	var busy *BusyError
	if _, err := cl.Do(Request{Op: "queue"}); !errors.As(err, &busy) {
		t.Fatalf("error = %v, want BusyError", err)
	}
	<-srv.sem
	if _, err := cl.Do(Request{Op: "queue"}); err != nil {
		t.Fatalf("request after slot freed: %v", err)
	}
}

func TestHealthVerb(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{})
	h, err := cl.Health()
	if err != nil || h != HealthOK {
		t.Fatalf("health = %q, %v", h, err)
	}
	// While draining, health still answers — reporting it.
	srv.mu.Lock()
	srv.draining = true
	srv.mu.Unlock()
	h, err = cl.Health()
	if err != nil || h != HealthDraining {
		t.Fatalf("draining health = %q, %v", h, err)
	}
	srv.mu.Lock()
	srv.draining = false
	srv.mu.Unlock()
}

// --- degraded mode ---

// TestDegradedMode drives the journal breaker end to end over the wire: a
// failing journal trips the controller into read-only DEGRADED mode where
// queries and health still answer, mutations are rejected, and a recovered
// journal heals it after the cooldown.
func TestDegradedMode(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	cfg.Overload.BreakerThreshold = 2
	cfg.Overload.BreakerCooldown = 50 * time.Millisecond
	ctl, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Submit("minife", 1, 1800, 900, "pre"); err != nil {
		t.Fatal(err)
	}

	// Break the journal: every append now fails as a full disk would.
	ctl.mu.Lock()
	ctl.jr.testAppendErr = func(Entry) error { return fmt.Errorf("disk full") }
	ctl.mu.Unlock()

	// Two failing mutations trip the breaker (threshold 2). They error
	// but report the append failure, not degradation, on the way down.
	for i := 0; i < 2; i++ {
		if _, err := cl.Submit("minife", 1, 1800, 900, "trip"); err == nil {
			t.Fatal("submit with dead journal succeeded")
		}
	}
	// Now DEGRADED: mutations rejected up front...
	if _, err := cl.Submit("minife", 1, 1800, 900, "shed"); err == nil ||
		!strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded submit error = %v", err)
	}
	if err := cl.DrainNode(0); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded drain_node error = %v", err)
	}
	// ...queries and health still served.
	if _, err := cl.Queue(false); err != nil {
		t.Fatalf("query during degraded: %v", err)
	}
	h, err := cl.Health()
	if err != nil || h != HealthDegraded {
		t.Fatalf("health = %q, %v; want degraded", h, err)
	}

	// Heal the journal; after the cooldown the breaker goes half-open and
	// the next mutation probes, succeeds, and fully closes it.
	ctl.mu.Lock()
	ctl.jr.testAppendErr = nil
	ctl.mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	if _, err := cl.Submit("minife", 1, 1800, 900, "healed"); err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
	h, err = cl.Health()
	if err != nil || h != HealthOK {
		t.Fatalf("health after heal = %q, %v", h, err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- history pagination ---

func TestQueueHistoryPagination(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Overload.HistoryLimit = 5
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const jobs = 12
	for i := 0; i < jobs; i++ {
		if _, err := cl.Submit("minife", 1, 1800, 900, fmt.Sprintf("j%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Drain(); err != nil {
		t.Fatal(err)
	}

	// Default cap applies to history queries with no explicit limit.
	got, err := cl.Queue(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("capped history rows = %d, want 5", len(got))
	}
	// Explicit pagination walks the full set; Total reports it.
	var all []JobInfo
	for off := 0; ; off += 4 {
		page, total, err := cl.QueuePage(true, 4, off)
		if err != nil {
			t.Fatal(err)
		}
		if total != jobs {
			t.Fatalf("total = %d, want %d", total, jobs)
		}
		all = append(all, page...)
		if off+4 >= total {
			break
		}
	}
	if len(all) != jobs {
		t.Fatalf("paginated rows = %d, want %d", len(all), jobs)
	}
	seen := map[int64]bool{}
	for _, j := range all {
		if seen[j.ID] {
			t.Fatalf("job %d appeared in two pages", j.ID)
		}
		seen[j.ID] = true
	}
	// Offset past the end yields an empty page, not an error.
	page, total, err := cl.QueuePage(true, 4, 100)
	if err != nil || len(page) != 0 || total != jobs {
		t.Fatalf("past-end page = %d rows, total %d, err %v", len(page), total, err)
	}
	// Plain queue (no history) stays uncapped and unchanged.
	if _, err := cl.Submit("minife", 1, 1800, 900, "tail"); err != nil {
		t.Fatal(err)
	}
	got, err = cl.Queue(false)
	if err != nil || len(got) != 1 {
		t.Fatalf("plain queue = %d rows, err %v", len(got), err)
	}
	_ = addr
}

// TestSubmitTokenInMemory: dedupe works for in-memory controllers too.
func TestSubmitTokenInMemory(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ctl.SubmitToken("tok-a", "minife", 1, 1800, 900, "a")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ctl.SubmitToken("tok-a", "minife", 1, 1800, 900, "a")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("token resolved to %d then %d", id1, id2)
	}
	if n := len(ctl.Queue()); n != 1 {
		t.Fatalf("queue has %d jobs, want 1", n)
	}
	// Distinct tokens are distinct jobs; empty tokens never dedupe.
	id3, err := ctl.SubmitToken("tok-b", "minife", 1, 1800, 900, "b")
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("distinct tokens shared a job")
	}
	id4, _ := ctl.Submit("minife", 1, 1800, 900, "c")
	id5, _ := ctl.Submit("minife", 1, 1800, 900, "c")
	if id4 == id5 {
		t.Fatal("untokened submits deduped")
	}
}
