package slurm

import (
	"bufio"
	"encoding/json"
	"net"
	"time"
)

// Hedged requests. Tail latency on read verbs is dominated by unlucky
// requests — a GC pause, a brownout page, a slow fsync holding the server's
// accept loop — so the client can race a second attempt against the first
// once the first has been outstanding longer than the hedge delay. Reads
// are idempotent, so issuing the same query twice is safe; the loser's
// connection is closed, which unblocks its goroutine (the in-flight
// exchange fails fast on a closed socket), so a hedge never leaks.
//
// The hedge dials the *next* endpoint in the client's list when there is
// one: against an HA pair the hedge lands on the standby, which serves
// reads, turning a stalled primary into one hedge-delay of added latency
// instead of a timeout.

// HedgePolicy tunes hedged requests. The zero value (or a nil policy on the
// Client) disables hedging.
type HedgePolicy struct {
	// Delay is how long the first attempt may be outstanding before a
	// second attempt is launched in parallel. <= 0 disables hedging.
	Delay time.Duration
}

// hedgeable reports whether a request may be safely issued twice in
// parallel: read-only verbs with no server-side effects. Mutations (even
// tokened submits, which are dedup-safe but not side-effect-free on the
// journal) and time control are never hedged.
func hedgeable(req Request) bool {
	switch req.Op {
	case "queue", "nodes", "stats", "now", "health", "config":
		return true
	}
	return false
}

// hedgeOutcome is one attempt's result plus the transport it ran on, so the
// winner's connection can be adopted and the loser's closed.
type hedgeOutcome struct {
	resp  Response
	err   error
	conn  net.Conn
	sc    *bufio.Scanner
	enc   *json.Encoder
	addr  int // index into c.addrs this attempt used
	hedge bool
}

// doHedged races the current connection against a fresh one dialed after
// Hedge.Delay. Invariants: the channel is buffered to hold both outcomes,
// so a losing goroutine can always complete its send and exit; the loser's
// connection is closed as soon as a winner is chosen, which cancels its
// in-flight exchange. The client adopts the winning transport.
func (c *Client) doHedged(req Request) (Response, error) {
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return Response{}, err
		}
	}
	results := make(chan hedgeOutcome, 2)
	primary := hedgeOutcome{conn: c.conn, sc: c.sc, enc: c.enc, addr: c.cur}
	go func(o hedgeOutcome) {
		o.resp, o.err = exchange(o.conn, o.sc, o.enc, c.Timeout, req)
		results <- o
	}(primary)

	timer := time.NewTimer(c.Hedge.Delay)
	defer timer.Stop()

	var first hedgeOutcome
	var hconn net.Conn // the hedge's connection, when one was launched
	select {
	case first = <-results:
	case <-timer.C:
		// Primary is slow; race a fresh connection against it. Prefer the
		// next endpoint so a wedged server isn't asked twice.
		hidx := (c.cur + 1) % len(c.addrs)
		conn, derr := net.Dial("tcp", c.addrs[hidx])
		if derr == nil {
			expClientHedges.Add(1)
			hconn = conn
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			h := hedgeOutcome{conn: conn, sc: sc, enc: json.NewEncoder(conn), addr: hidx, hedge: true}
			go func(o hedgeOutcome) {
				o.resp, o.err = exchange(o.conn, o.sc, o.enc, c.Timeout, req)
				results <- o
			}(h)
		}
		first = <-results
	}

	if hconn == nil {
		// No race: the primary finished alone (or the hedge dial failed).
		// Its transport stays installed; on a transport error the retry
		// loop redials as it would after do1.
		return first.resp, first.err
	}

	if first.err != nil {
		// The first finisher failed; the race is still live, so give the
		// other attempt its chance before surfacing an error. Closing the
		// loser-so-far's socket cancels its exchange, so the second result
		// arrives promptly either way.
		first.conn.Close()
		second := <-results
		if second.err == nil {
			c.adopt(second)
			return second.resp, nil
		}
		second.conn.Close()
		c.conn, c.sc, c.enc = nil, nil, nil
		return first.resp, first.err
	}

	// First finisher won. Close the loser: its goroutine's exchange fails
	// fast on the closed socket and its send lands in the channel's spare
	// buffer slot, so nothing leaks.
	if first.conn == hconn {
		c.conn.Close() // primary lost
	} else {
		hconn.Close() // hedge lost (or never needed)
	}
	c.adopt(first)
	return first.resp, first.err
}

// adopt installs the winning attempt's transport as the client's connection.
// The loser's socket has already been closed by the caller.
func (c *Client) adopt(w hedgeOutcome) {
	c.conn, c.sc, c.enc, c.cur = w.conn, w.sc, w.enc, w.addr
}
