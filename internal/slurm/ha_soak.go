package slurm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
)

// Failover soak harness: concurrent clients submit tokened jobs against an
// HA pair through whatever endpoints (usually chaos proxies) the caller
// wires up, a disruption is fired mid-storm, and afterwards the survivor's
// job list is audited against every acknowledged token — the zero-lost-acks
// contract. Shared by the ha tests and the slurm-ha demo command.

// FailoverSoakConfig sizes a failover storm.
type FailoverSoakConfig struct {
	// Addrs is the comma-separated endpoint list every client dials (HA
	// pair order: primary first).
	Addrs string
	// Clients and SubmitsPerClient size the storm.
	Clients          int
	SubmitsPerClient int
	// Seed roots the per-client retry-jitter RNG streams.
	Seed uint64
	// Timeout bounds each request round trip; without it a black-holed
	// primary would stall clients instead of failing them over. 0 = 250ms.
	Timeout time.Duration
	// Disrupt, if set, is called exactly once, as soon as DisruptAt submits
	// have been acknowledged (the mid-soak partition or crash).
	Disrupt   func()
	DisruptAt int
	// App, Nodes, Walltime, Runtime shape the submitted jobs (defaults:
	// minife, 1 node, 1800s wall, 900s runtime).
	App      string
	Nodes    int
	Walltime float64
	Runtime  float64
}

func (c *FailoverSoakConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.SubmitsPerClient <= 0 {
		c.SubmitsPerClient = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.App == "" {
		c.App = "minife"
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Walltime <= 0 {
		c.Walltime = 1800
	}
	if c.Runtime <= 0 {
		c.Runtime = 900
	}
}

// FailoverSoakResult is what the storm observed.
type FailoverSoakResult struct {
	// Acked maps every token whose submit was acknowledged to the job ID it
	// was acknowledged with. Only these carry the exactly-once guarantee —
	// an unacknowledged submit may legitimately exist or not.
	Acked map[string]int64
	// Failures counts submissions that exhausted their retry budget.
	Failures int
	// Retries counts backoff sleeps across all clients.
	Retries int64
	// Elapsed is the storm's wall-clock duration.
	Elapsed time.Duration
	// Errors samples the first few exhausted-retry errors.
	Errors []string
}

// RunFailoverSoak drives the storm. It only errors on harness-level
// failures; lost submissions land in the result for the caller to judge.
func RunFailoverSoak(cfg FailoverSoakConfig) (FailoverSoakResult, error) {
	cfg.defaults()
	res := FailoverSoakResult{Acked: make(map[string]int64)}
	var (
		mu       sync.Mutex
		ackCount int64
		disrupt  sync.Once
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addrs)
			if err != nil {
				mu.Lock()
				res.Failures += cfg.SubmitsPerClient
				if len(res.Errors) < 8 {
					res.Errors = append(res.Errors, err.Error())
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			cl.Timeout = cfg.Timeout
			rng := des.NewRNG(cfg.Seed).Stream(fmt.Sprintf("ha-soak/client/%d", i))
			cl.Retry = &RetryPolicy{
				// Generous budget: a client must ride out the full window
				// between partition and promotion (about one lease) while
				// alternating endpoints.
				MaxAttempts: 60,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
				Multiplier:  2,
				Jitter:      0.3,
				Rand:        rng.Float64,
				Sleep: func(d time.Duration) {
					atomic.AddInt64(&res.Retries, 1)
					time.Sleep(d)
				},
			}
			for j := 0; j < cfg.SubmitsPerClient; j++ {
				token := fmt.Sprintf("ha-c%d-j%d", i, j)
				id, err := cl.SubmitToken(token, cfg.App, cfg.Nodes,
					des.Duration(cfg.Walltime), des.Duration(cfg.Runtime), token)
				if err != nil {
					mu.Lock()
					res.Failures++
					if len(res.Errors) < 8 {
						res.Errors = append(res.Errors, err.Error())
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				res.Acked[token] = id
				mu.Unlock()
				if cfg.Disrupt != nil && atomic.AddInt64(&ackCount, 1) == int64(cfg.DisruptAt) {
					disrupt.Do(cfg.Disrupt)
				}
			}
		}(i)
	}
	wg.Wait()
	// A tiny storm can finish before DisruptAt acks accumulate; fire late
	// rather than never so the caller's scenario still runs.
	if cfg.Disrupt != nil {
		disrupt.Do(cfg.Disrupt)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// AuditExactlyOnce checks the zero-lost-acks contract against a server:
// every acknowledged token appears exactly once in the server's full job
// list (jobs are submitted with Name = token), under the ID it was
// acknowledged with. Extra unacknowledged jobs are permitted — a submit
// whose ack was lost may still have landed.
func AuditExactlyOnce(addr string, seed uint64, acked map[string]int64) error {
	cl, err := DialRetry(addr, seed^0x4a5d)
	if err != nil {
		return fmt.Errorf("audit dial: %w", err)
	}
	defer cl.Close()
	count := make(map[string]int)
	ids := make(map[string]int64)
	const page = 512
	for off := 0; ; off += page {
		jobs, total, err := cl.QueuePage(true, page, off)
		if err != nil {
			return fmt.Errorf("audit queue: %w", err)
		}
		for _, j := range jobs {
			count[j.Name]++
			ids[j.Name] = j.ID
		}
		if off+len(jobs) >= total || len(jobs) == 0 {
			break
		}
	}
	for token, id := range acked {
		switch {
		case count[token] == 0:
			return fmt.Errorf("acknowledged submit %s (job %d) lost after failover", token, id)
		case count[token] > 1:
			return fmt.Errorf("token %s present %d times (duplicate submit)", token, count[token])
		case ids[token] != id:
			return fmt.Errorf("token %s acknowledged as job %d but server has %d",
				token, id, ids[token])
		}
	}
	return nil
}
