package slurm

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
)

func testControllerConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine = cluster.Config{Nodes: 4, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 128 * 1024}
	cfg.Partition = Partition{Name: "batch", MaxTime: des.Day, MaxNodes: 4}
	return cfg
}

func TestControllerSubmitAndDrain(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	id, err := ctl.Submit("minife", 2, 3600, 1800, "fe1")
	if err != nil {
		t.Fatal(err)
	}
	if id == cluster.NoJob {
		t.Fatal("no ID assigned")
	}
	// The job is visible and RUNNING right after submit (resources free).
	q := ctl.Queue()
	if len(q) != 1 || q[0].State != "RUNNING" {
		t.Fatalf("queue = %+v", q)
	}
	ctl.Drain()
	if got := len(ctl.Queue()); got != 0 {
		t.Fatalf("queue after drain = %d", got)
	}
	hist := ctl.History()
	if len(hist) != 1 || hist[0].State != "FINISHED" {
		t.Fatalf("history = %+v", hist)
	}
	st := ctl.Stats()
	if st.Finished != 1 {
		t.Fatalf("stats finished = %d", st.Finished)
	}
}

func TestControllerPartitionLimits(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Submit("minife", 2, 2*des.Day, 0, ""); err == nil {
		t.Fatal("over-MaxTime submission accepted")
	}
	if _, err := ctl.Submit("minife", 5, 3600, 0, ""); err == nil {
		t.Fatal("over-MaxNodes submission accepted")
	}
	if _, err := ctl.Submit("no-such-app", 1, 3600, 0, ""); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestControllerAdvance(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Submit("gtc", 4, 7200, 3600, ""); err != nil {
		t.Fatal(err)
	}
	now := ctl.Advance(1800)
	if now != 1800 {
		t.Fatalf("Advance → %v", now)
	}
	q := ctl.Queue()
	if len(q) != 1 || q[0].State != "RUNNING" {
		t.Fatalf("queue at t=1800: %+v", q)
	}
	ctl.Advance(1801)
	if len(ctl.Queue()) != 0 {
		t.Fatal("job still queued after its runtime elapsed")
	}
	// Negative advance is a no-op.
	if got := ctl.Advance(-5); got != ctl.Now() {
		t.Fatal("negative advance moved the clock")
	}
}

func TestControllerCancel(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Policy = "easy" // exclusive, so the second job stays pending
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the machine, then queue one more and cancel it.
	if _, err := ctl.Submit("gtc", 4, 7200, 3600, "big"); err != nil {
		t.Fatal(err)
	}
	id, err := ctl.Submit("minife", 2, 3600, 1800, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Cancel(id); err != nil {
		t.Fatalf("cancel pending job: %v", err)
	}
	if err := ctl.Cancel(id); err == nil {
		t.Fatal("double cancel accepted")
	}
	hist := ctl.History()
	found := false
	for _, j := range hist {
		if j.ID == int64(id) && j.State == "CANCELLED" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cancelled job missing from history: %+v", hist)
	}
}

func TestControllerNodes(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Policy = "sharefirstfit"
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Submit("minife", 4, 7200, 3600, "host"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Submit("minimd", 4, 7200, 3600, "guest"); err != nil {
		t.Fatal(err)
	}
	nodes := ctl.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	shared := 0
	for _, n := range nodes {
		if n.State == "shared" {
			shared++
			if len(n.Jobs) != 2 {
				t.Fatalf("shared node lists %d jobs", len(n.Jobs))
			}
		}
	}
	if shared != 4 {
		t.Fatalf("shared nodes = %d, want 4 (complementary pair co-allocated)", shared)
	}
}

func TestPriorityOrdering(t *testing.T) {
	c := DefaultPriorityConfig()
	// Older job outranks newer.
	older := mkPrioJob(t, 1, 2, 0)
	newer := mkPrioJob(t, 2, 2, 5000)
	less := c.Less(func() des.Time { return 10000 }, 32)
	if !less(older, newer) {
		t.Fatal("older job not prioritized")
	}
	// With FavorSmall, a small job outranks a large one at equal age.
	c2 := DefaultPriorityConfig()
	c2.FavorSmall = true
	small := mkPrioJob(t, 3, 1, 0)
	large := mkPrioJob(t, 4, 32, 0)
	less2 := c2.Less(func() des.Time { return 100 }, 32)
	if !less2(small, large) {
		t.Fatal("FavorSmall did not prioritize the small job")
	}
	// Default (favor large): large job outranks small at equal age.
	less3 := c.Less(func() des.Time { return 100 }, 32)
	if !less3(large, small) {
		t.Fatal("default size weight did not prioritize the large job")
	}
}

func TestPriorityValidate(t *testing.T) {
	bad := []PriorityConfig{
		{WeightAge: -1, MaxAge: 1},
		{WeightJobSize: -1, MaxAge: 1},
		{MaxAge: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad priority config %d accepted", i)
		}
	}
}

func TestFormatters(t *testing.T) {
	jobs := []JobInfo{
		{ID: 1, Name: "a-very-long-job-name", App: "minife", State: "RUNNING",
			Nodes: 2, Shared: true, NodeList: []int{0, 1, 2, 5}, Limit: 3600},
		{ID: 2, Name: "b", App: "minimd", State: "PENDING", Nodes: 1, Limit: 60},
	}
	out := Squeue(jobs)
	for _, frag := range []string{"JOBID", "RUNNING", "PENDING", "[0-2,5]", "yes"} {
		if !strings.Contains(out, frag) {
			t.Errorf("squeue output missing %q:\n%s", frag, out)
		}
	}
	nodes := []NodeInfo{
		{ID: 0, State: "shared", Jobs: []int64{1, 2}, FreeThreads: 0, FreeMemMB: 10},
		{ID: 1, State: "idle", FreeThreads: 8, FreeMemMB: 1024},
		{ID: 2, State: "allocated", Jobs: []int64{3}, FreeThreads: 4, FreeMemMB: 99},
	}
	out = Sinfo(nodes)
	for _, frag := range []string{"NODE", "shared", "idle", "1,2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sinfo output missing %q:\n%s", frag, out)
		}
	}
	sum := SinfoSummary(nodes)
	if !strings.Contains(sum, "3 total, 1 idle, 1 allocated, 1 shared") {
		t.Errorf("summary = %q", sum)
	}
}

func TestCompressNodeList(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "[3]"},
		{[]int{0, 1, 2}, "[0-2]"},
		{[]int{0, 2, 3, 7}, "[0,2-3,7]"},
	}
	for _, c := range cases {
		if got := compressNodeList(c.in); got != c.want {
			t.Errorf("compressNodeList(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func mkPrioJob(t *testing.T, id int64, nodes int, submit float64) *job.Job {
	t.Helper()
	a, err := app.ByName("minife")
	if err != nil {
		t.Fatal(err)
	}
	return &job.Job{
		ID: cluster.JobID(id), Name: "p", App: a, Nodes: nodes,
		ReqWalltime: 3600, TrueRuntime: 1800, Submit: des.Time(submit),
	}
}

func TestFairsharePriority(t *testing.T) {
	c := DefaultPriorityConfig()
	c.WeightFairshare = 1000
	usage := func(user string) float64 {
		if user == "hog" {
			return 0.9
		}
		return 0.1
	}
	hogJob := mkPrioJob(t, 1, 2, 0)
	hogJob.User = "hog"
	lightJob := mkPrioJob(t, 2, 2, 0)
	lightJob.User = "light"
	less := c.LessWithUsage(func() des.Time { return 100 }, 32, usage)
	if !less(lightJob, hogJob) {
		t.Fatal("fairshare did not prioritize the light user")
	}
	// Without a usage supplier the factor is inert: equal priorities fall
	// back to the ID tie-break, so the hog (lower ID) ranks first again.
	plain := c.Less(func() des.Time { return 100 }, 32)
	if !plain(hogJob, lightJob) {
		t.Fatal("fairshare applied without usage data")
	}
}

func TestUsageFromEngineShares(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Policy = "easy"
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run two jobs to completion; they have no user (empty string bucket),
	// so the usage function must report share 1 for "" and 0 for others.
	if _, err := ctl.Submit("minife", 2, 3600, 1800, "a"); err != nil {
		t.Fatal(err)
	}
	ctl.Drain()
	usage := UsageFromEngine(ctl.sys.Engine())
	if got := usage(""); got != 1 {
		t.Fatalf("usage(\"\") = %g, want 1", got)
	}
	if got := usage("nobody"); got != 0 {
		t.Fatalf("usage(nobody) = %g, want 0", got)
	}
}

func TestParseConfigFairshareKey(t *testing.T) {
	conf := "PriorityWeightFairshare=2500\nNodeName=n[1-2] CPUs=4 ThreadsPerCore=2 RealMemory=1024\n"
	cfg, err := ParseConfig(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Priority.WeightFairshare != 2500 {
		t.Fatalf("WeightFairshare = %g", cfg.Priority.WeightFairshare)
	}
}

func TestDrainAndResumeNode(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Policy = "easy"
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.DrainNode(0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.DrainNode(99); err == nil {
		t.Fatal("out-of-range drain accepted")
	}
	nodes := ctl.Nodes()
	if nodes[0].State != "drained" {
		t.Fatalf("node 0 state = %s", nodes[0].State)
	}
	// A 4-node job cannot start with one node drained…
	id, err := ctl.Submit("minife", 4, 3600, 1800, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range ctl.Queue() {
		if j.ID == int64(id) && j.State != "PENDING" {
			t.Fatalf("job started despite drained node: %s", j.State)
		}
	}
	// …and starts as soon as the node resumes.
	if err := ctl.ResumeNode(0); err != nil {
		t.Fatal(err)
	}
	for _, j := range ctl.Queue() {
		if j.ID == int64(id) && j.State != "RUNNING" {
			t.Fatalf("job not started after resume: %s", j.State)
		}
	}
}

func TestProtocolDrainResume(t *testing.T) {
	cl, _ := startServer(t)
	if err := cl.DrainNode(2); err != nil {
		t.Fatal(err)
	}
	nodes, err := cl.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if nodes[2].State != "drained" {
		t.Fatalf("node 2 = %s", nodes[2].State)
	}
	if err := cl.ResumeNode(2); err != nil {
		t.Fatal(err)
	}
	if err := cl.DrainNode(99); err == nil {
		t.Fatal("bad drain accepted over protocol")
	}
}

func TestSubmitWithDependency(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Policy = "easy"
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := ctl.Submit("minife", 2, 3600, 1800, "parent")
	if err != nil {
		t.Fatal(err)
	}
	child, err := ctl.Submit("minimd", 2, 3600, 1800, "child", parent)
	if err != nil {
		t.Fatal(err)
	}
	// Two idle nodes remain, but the child must be dependency-held.
	var childInfo *JobInfo
	for _, j := range ctl.Queue() {
		if j.ID == int64(child) {
			j := j
			childInfo = &j
		}
	}
	if childInfo == nil {
		t.Fatal("held child missing from squeue")
	}
	if childInfo.State != "PENDING" || childInfo.Reason != "Dependency" {
		t.Fatalf("child info = %+v", childInfo)
	}
	// When the parent finishes, the child runs.
	ctl.Advance(1801)
	for _, j := range ctl.Queue() {
		if j.ID == int64(child) && j.State != "RUNNING" {
			t.Fatalf("child not running after parent finished: %s", j.State)
		}
	}
	ctl.Drain()
	if ctl.Stats().Finished != 2 {
		t.Fatalf("finished = %d", ctl.Stats().Finished)
	}
}
