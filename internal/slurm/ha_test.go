package slurm

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// haNode is one member of a test pair: a journaled controller behind a
// protocol server.
type haNode struct {
	ctl  *Controller
	srv  *Server
	addr string
	dir  string
}

func startNode(t *testing.T) *haNode {
	t.Helper()
	dir := t.TempDir()
	ctl, err := OpenJournaled(testControllerConfig(), dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		ctl.Close()
	})
	return &haNode{ctl: ctl, srv: srv, addr: addr, dir: dir}
}

// startPair wires two nodes into an HA pair replicating directly (no chaos).
func startPair(t *testing.T, lease time.Duration) (a, b *haNode) {
	t.Helper()
	a, b = startNode(t), startNode(t)
	if err := a.ctl.StartHA(HAOptions{Peer: b.addr, Lease: lease}); err != nil {
		t.Fatal(err)
	}
	if err := b.ctl.StartHA(HAOptions{Standby: true, Peer: a.addr, Lease: lease}); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", d, what)
}

// TestHAReplicationMirrorsState: acknowledged mutations are on the standby —
// same engine state AND a byte-identical journal — before the ack returns.
func TestHAReplicationMirrorsState(t *testing.T) {
	a, b := startPair(t, time.Second)
	cl, err := Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit("minife", 1, 3600, 1800, "job"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Advance(7200); err != nil {
		t.Fatal(err)
	}

	// The acks above were synchronous with replication: no waiting needed.
	sa, sb := stateOf(a.ctl), stateOf(b.ctl)
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("standby state diverges from primary\nprimary %+v\nstandby %+v", sa, sb)
	}
	ja, err := os.ReadFile(journalFile(a.dir))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("standby journal not byte-identical to primary's:\nprimary %d bytes\nstandby %d bytes",
			len(ja), len(jb))
	}
	if len(ja) == 0 {
		t.Error("empty journals: replication test exercised nothing")
	}
}

// TestHAStandbyRejectsMutations: the standby serves reads and health but
// refuses writes with a role-carrying error the client can fail over on.
func TestHAStandbyRejectsMutations(t *testing.T) {
	a, b := startPair(t, time.Second)
	cl, err := Dial(b.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Submit("minife", 1, 3600, 1800, "nope")
	var np *NotPrimaryError
	if !errors.As(err, &np) {
		t.Fatalf("submit to standby: got %v, want NotPrimaryError", err)
	}
	if np.Role != RoleStandby || np.Epoch != 1 {
		t.Errorf("rejection carried role=%q epoch=%d, want standby/1", np.Role, np.Epoch)
	}
	if _, err := cl.Queue(false); err != nil {
		t.Errorf("read on standby: %v", err)
	}
	h, role, epoch, err := cl.HealthInfo()
	if err != nil || h != HealthOK || role != RoleStandby || epoch != 1 {
		t.Errorf("standby health = %q role=%q epoch=%d err=%v, want ok/standby/1", h, role, epoch, err)
	}
	clA, err := Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	h, role, epoch, err = clA.HealthInfo()
	if err != nil || h != HealthOK || role != RolePrimary || epoch != 1 {
		t.Errorf("primary health = %q role=%q epoch=%d err=%v, want ok/primary/1", h, role, epoch, err)
	}
}

// TestHAHealthByteCompatWithoutHA: with HA off, the health response must not
// grow role/epoch keys — wire byte-compatibility with earlier releases.
func TestHAHealthByteCompatWithoutHA(t *testing.T) {
	n := startNode(t) // journaled, HA never started
	conn, err := net.Dial("tcp", n.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"health"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 4096)
	k, err := conn.Read(line)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(line[:k])
	for _, key := range []string{"role", "epoch", "seq", "need_full"} {
		if strings.Contains(raw, `"`+key+`"`) {
			t.Errorf("HA-off health response leaks %q key: %s", key, raw)
		}
	}
}

// TestHAPromotionAndStaleEpochFencing: when the primary goes quiet the
// standby promotes under a bumped epoch, and the deposed primary's
// stale-epoch replication is rejected without touching the new primary's
// journal.
func TestHAPromotionAndStaleEpochFencing(t *testing.T) {
	lease := 200 * time.Millisecond
	a, b := startPair(t, lease)
	cl, err := Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Submit("minife", 1, 3600, 1800, "before"); err != nil {
		t.Fatal(err)
	}

	// Silence the primary's replication without telling the standby.
	a.ctl.StopHA()
	waitFor(t, 10*lease, "standby promotion", func() bool {
		role, _ := b.ctl.RoleEpoch()
		return role == RolePrimary
	})
	if _, epoch := b.ctl.RoleEpoch(); epoch != 2 {
		t.Errorf("promoted epoch = %d, want 2", epoch)
	}

	// The new primary must accept writes on its own (detached mode).
	clB, err := Dial(b.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	if _, err := clB.Submit("minife", 1, 3600, 1800, "after"); err != nil {
		t.Fatalf("promoted primary rejected a solo write: %v", err)
	}

	// A deposed primary replicating under the old epoch is fenced: request
	// rejected, journal byte-identical.
	before, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	stale := Request{Op: "replicate", Epoch: 1, Entries: []Entry{
		{Seq: 99, Epoch: 1, Op: "submit", App: "minife", Nodes: 1,
			Walltime: 3600, Runtime: 1800, Name: "stale", ID: 99},
	}}
	resp, err := clB.Do(stale)
	if err == nil || !strings.Contains(err.Error(), "stale epoch") {
		t.Fatalf("stale-epoch replicate: got err %v, want stale-epoch rejection", err)
	}
	if resp.Epoch != 2 {
		t.Errorf("rejection reported epoch %d, want 2 (deposed node needs it to demote)", resp.Epoch)
	}
	after, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("stale-epoch replicate mutated the new primary's journal")
	}
}

// TestHAConfigKeys: slurm.conf replication keys parse, validate, and default
// to off.
func TestHAConfigKeys(t *testing.T) {
	base := "NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n"
	cfg, err := ParseConfig(strings.NewReader(base +
		"ReplicaAddr=127.0.0.1:6819\nHALeaseSeconds=2.5\nHAHeartbeatSeconds=0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HA.Replica != "127.0.0.1:6819" ||
		cfg.HA.Lease != 2500*time.Millisecond || cfg.HA.Heartbeat != 500*time.Millisecond {
		t.Errorf("HA config = %+v", cfg.HA)
	}
	cfg, err = ParseConfig(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HA != (HAConfig{}) {
		t.Errorf("HA not zero without replication keys: %+v", cfg.HA)
	}
	if _, err := ParseConfig(strings.NewReader(base +
		"HALeaseSeconds=1\nHAHeartbeatSeconds=2\n")); err == nil {
		t.Error("heartbeat longer than lease validated")
	}
}

// TestHAFailoverChaosDeterministic is the acceptance scenario: with a fixed
// seed, chaos proxies partition the primary mid-soak; the standby promotes,
// every acknowledged submit is present exactly once, the deposed primary is
// fenced, and after healing it rejoins as a resynced standby whose journal
// replays to the new primary's exact state.
func TestHAFailoverChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover soak")
	}
	const seed = 7
	lease := 250 * time.Millisecond
	a, b := startNode(t), startNode(t)

	pCli, err := chaos.Listen(a.addr, chaos.Config{Seed: seed, Name: "cli",
		DelayProb: 0.05, DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pCli.Close()
	pAB, err := chaos.Listen(b.addr, chaos.Config{Seed: seed, Name: "ab"})
	if err != nil {
		t.Fatal(err)
	}
	defer pAB.Close()
	pBA, err := chaos.Listen(a.addr, chaos.Config{Seed: seed, Name: "ba"})
	if err != nil {
		t.Fatal(err)
	}
	defer pBA.Close()

	if err := a.ctl.StartHA(HAOptions{Peer: pAB.Addr(), Lease: lease}); err != nil {
		t.Fatal(err)
	}
	if err := b.ctl.StartHA(HAOptions{Standby: true, Peer: pBA.Addr(), Lease: lease}); err != nil {
		t.Fatal(err)
	}

	res, err := RunFailoverSoak(FailoverSoakConfig{
		Addrs:            pCli.Addr() + "," + b.addr,
		Clients:          4,
		SubmitsPerClient: 4,
		Seed:             seed,
		Timeout:          150 * time.Millisecond,
		DisruptAt:        4,
		Disrupt: func() {
			pCli.Partition()
			pAB.Partition()
			pBA.Partition()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 0 {
		t.Fatalf("%d submissions exhausted retries (errors: %v)", res.Failures, res.Errors)
	}
	if len(res.Acked) != 16 {
		t.Fatalf("acked %d submits, want 16", len(res.Acked))
	}

	// Promotion: the standby must take over within one lease of noticing.
	waitFor(t, 10*lease, "standby promotion", func() bool {
		role, _ := b.ctl.RoleEpoch()
		return role == RolePrimary
	})
	if _, epoch := b.ctl.RoleEpoch(); epoch != 2 {
		t.Errorf("promoted epoch = %d, want 2", epoch)
	}

	// Zero lost acknowledged submits, each exactly once, on the survivor.
	if err := AuditExactlyOnce(b.addr, seed, res.Acked); err != nil {
		t.Fatal(err)
	}

	// The deposed primary is fenced: health says so, mutations rejected.
	waitFor(t, 10*lease, "deposed primary fencing", func() bool {
		return a.ctl.Health() == HealthFenced
	})
	if _, err := a.ctl.Submit("minife", 1, 3600, 1800, "fenced"); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced primary submit: got %v, want ErrFenced", err)
	}

	// Stale-epoch appends leave the new primary's journal byte-identical.
	before, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	clB, err := Dial(b.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	if _, err := clB.Do(Request{Op: "replicate", Epoch: 1, Entries: []Entry{
		{Seq: 999, Epoch: 1, Op: "submit", App: "minife", Nodes: 1, Walltime: 3600, Runtime: 1800, ID: 999},
	}}); err == nil || !strings.Contains(err.Error(), "stale epoch") {
		t.Fatalf("stale replicate: got %v, want stale-epoch rejection", err)
	}
	after, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("stale-epoch replicate mutated the new primary's journal")
	}

	// Heal: the deposed node sees the higher epoch, demotes, full-resyncs.
	pCli.Heal()
	pAB.Heal()
	pBA.Heal()
	waitFor(t, 20*lease, "deposed primary demotion", func() bool {
		role, epoch := a.ctl.RoleEpoch()
		return role == RoleStandby && epoch == 2
	})
	waitFor(t, 20*lease, "follower resync", func() bool {
		return reflect.DeepEqual(stateOf(a.ctl), stateOf(b.ctl))
	})

	// Replay determinism: the new primary's journal alone rebuilds its
	// exact state (what a later restart would do).
	jb, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	d := t.TempDir()
	writeFile(t, journalFile(d), jb)
	if got, want := recoverState(t, testControllerConfig(), d), stateOf(b.ctl); !reflect.DeepEqual(got, want) {
		t.Error("replaying the survivor's journal diverges from its live state")
	}
}

// TestHAOptionsClampPacing: a heartbeat or timeout at or beyond the Lease/2
// fencing threshold would fence a healthy primary between pushes (seen with
// a conf-file HAHeartbeatSeconds combined with a shorter -lease override);
// defaults() must clamp both back inside the window.
func TestHAOptionsClampPacing(t *testing.T) {
	o := HAOptions{Lease: 800 * time.Millisecond,
		Heartbeat: 750 * time.Millisecond, Timeout: 600 * time.Millisecond}
	o.defaults()
	if o.Heartbeat >= o.Lease/2 || o.Timeout >= o.Lease/2 {
		t.Errorf("pacing not clamped inside the fencing window: heartbeat=%s timeout=%s lease=%s",
			o.Heartbeat, o.Timeout, o.Lease)
	}
	o = HAOptions{Lease: time.Second, Heartbeat: 100 * time.Millisecond, Timeout: 200 * time.Millisecond}
	o.defaults()
	if o.Heartbeat != 100*time.Millisecond || o.Timeout != 200*time.Millisecond {
		t.Errorf("valid pacing rewritten: heartbeat=%s timeout=%s", o.Heartbeat, o.Timeout)
	}
}

// TestHAEntriesSurviveJSONRoundTrip pins the replicate payload encoding:
// entries that cross the wire must journal byte-identically on both sides.
func TestHAEntriesSurviveJSONRoundTrip(t *testing.T) {
	e := Entry{Seq: 3, Epoch: 2, Op: "submit", App: "minife", Nodes: 2,
		Walltime: 3600, Runtime: 1800, Name: "x", ID: 4, Token: "tok"}
	raw, err := json.Marshal(Request{Op: "replicate", Epoch: 2, Entries: []Entry{e}})
	if err != nil {
		t.Fatal(err)
	}
	var rt Request
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt.Entries, []Entry{e}) {
		t.Errorf("entry changed across the wire: %+v vs %+v", rt.Entries[0], e)
	}
}
