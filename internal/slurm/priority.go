package slurm

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/job"
)

// PriorityConfig is the multifactor priority plugin's configuration,
// mirroring SLURM's priority/multifactor: a job's priority is a weighted sum
// of its normalized queue age and its normalized size.
type PriorityConfig struct {
	// WeightAge scales the age factor (age saturates at MaxAge).
	WeightAge float64
	// WeightJobSize scales the size factor.
	WeightJobSize float64
	// WeightFairshare scales the fairshare factor: 1 for a user who has
	// consumed nothing, falling toward 0 as the user's share of delivered
	// usage grows. Zero disables fairshare.
	WeightFairshare float64
	// FavorSmall inverts the size factor so small jobs rank first.
	FavorSmall bool
	// MaxAge is the age at which the age factor saturates at 1.
	MaxAge des.Duration
}

// DefaultPriorityConfig mirrors a common site setup: age-dominated with a
// mild large-job boost (keeps big jobs from starving behind small ones).
func DefaultPriorityConfig() PriorityConfig {
	return PriorityConfig{
		WeightAge:     1000,
		WeightJobSize: 100,
		FavorSmall:    false,
		MaxAge:        7 * des.Day,
	}
}

// Validate checks the plugin configuration.
func (c PriorityConfig) Validate() error {
	if c.WeightAge < 0 || c.WeightJobSize < 0 || c.WeightFairshare < 0 {
		return fmt.Errorf("slurm: negative priority weights (%g, %g, %g)",
			c.WeightAge, c.WeightJobSize, c.WeightFairshare)
	}
	if c.MaxAge <= 0 {
		return fmt.Errorf("slurm: priority MaxAge %v must be positive", c.MaxAge)
	}
	return nil
}

// UsageFn maps a user to their share of delivered usage in [0, 1]; the
// fairshare factor is 1 − share. A nil UsageFn disables the factor.
type UsageFn func(user string) float64

// Priority computes a job's multifactor priority at the given time on a
// machine with maxNodes nodes. Higher is more urgent.
func (c PriorityConfig) Priority(j *job.Job, now des.Time, maxNodes int) float64 {
	return c.PriorityWithUsage(j, now, maxNodes, nil)
}

// PriorityWithUsage additionally applies the fairshare factor from usage.
func (c PriorityConfig) PriorityWithUsage(j *job.Job, now des.Time, maxNodes int, usage UsageFn) float64 {
	age := float64(now-j.Submit) / float64(c.MaxAge)
	if age > 1 {
		age = 1
	}
	if age < 0 {
		age = 0
	}
	size := float64(j.Nodes) / float64(maxNodes)
	if size > 1 {
		size = 1
	}
	if c.FavorSmall {
		size = 1 - size
	}
	p := c.WeightAge*age + c.WeightJobSize*size
	if c.WeightFairshare > 0 && usage != nil {
		share := usage(j.User)
		if share < 0 {
			share = 0
		}
		if share > 1 {
			share = 1
		}
		p += c.WeightFairshare * (1 - share)
	}
	return p
}

// Less returns a queue comparator for the engine: descending priority with
// FCFS tie-breaking, evaluated against a clock callback so age factors track
// simulated time.
func (c PriorityConfig) Less(now func() des.Time, maxNodes int) func(a, b *job.Job) bool {
	return c.LessWithUsage(now, maxNodes, nil)
}

// LessWithUsage is Less with a fairshare usage supplier.
func (c PriorityConfig) LessWithUsage(now func() des.Time, maxNodes int, usage UsageFn) func(a, b *job.Job) bool {
	return func(a, b *job.Job) bool {
		t := now()
		pa := c.PriorityWithUsage(a, t, maxNodes, usage)
		pb := c.PriorityWithUsage(b, t, maxNodes, usage)
		if pa != pb {
			return pa > pb
		}
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.ID < b.ID
	}
}
