package slurm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
)

// The wire protocol is JSON lines over TCP: one Request per line from the
// client, one Response per line from the server. It is deliberately simple —
// the goal is the operational shape of a workload manager (remote
// submission, queue introspection, separate tooling processes), not RPC
// sophistication.

// Request is one client command.
type Request struct {
	// Op selects the operation: submit, cancel, queue, nodes, advance,
	// drain, stats, now, config, requeue, drain_node, resume_node,
	// down_node, up_node, health, replicate.
	Op string `json:"op"`
	// Submit arguments.
	App      string  `json:"app,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Walltime float64 `json:"walltime,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Name     string  `json:"name,omitempty"`
	// Cancel argument.
	ID int64 `json:"id,omitempty"`
	// Advance argument.
	Seconds float64 `json:"seconds,omitempty"`
	// Node argument for drain_node / resume_node.
	Node int `json:"node,omitempty"`
	// After lists dependency job IDs for submit.
	After []int64 `json:"after,omitempty"`
	// Queue argument: include finished jobs.
	History bool `json:"history,omitempty"`
	// Token is the client-supplied idempotency token for submit: the
	// controller journals it and dedupes repeats, so a retried submit
	// whose first response was lost never double-enqueues.
	Token string `json:"token,omitempty"`
	// Limit and Offset paginate queue replies (0 limit = server default).
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
	// Replication arguments (the replicate verb, primary → standby; see
	// ha.go). Epoch fences the stream; Full marks a complete log transfer.
	// All omitempty, so non-HA traffic is byte-identical to prior releases.
	Epoch   int64   `json:"epoch,omitempty"`
	Entries []Entry `json:"entries,omitempty"`
	Full    bool    `json:"full,omitempty"`
	// DeadlineMS is the request's remaining deadline budget in milliseconds,
	// relative so client and server clocks need not agree (see serve.go).
	// The server refuses work it cannot finish within the budget before
	// doing any of it. Absent (0) = no deadline, byte-identical behavior to
	// pre-deadline releases.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Response is one server reply.
type Response struct {
	OK    bool    `json:"ok"`
	Error string  `json:"error,omitempty"`
	Now   float64 `json:"now"`
	// Operation-specific payloads.
	ID      int64           `json:"id,omitempty"`
	Jobs    []JobInfo       `json:"jobs,omitempty"`
	Nodes   []NodeInfo      `json:"nodes,omitempty"`
	Stats   *metrics.Result `json:"stats,omitempty"`
	Cluster string          `json:"cluster,omitempty"`
	Policy  string          `json:"policy,omitempty"`
	// Health is the health-verb payload: ok | degraded | draining.
	Health string `json:"health,omitempty"`
	// Busy marks a shed request; RetryAfterMS hints when to retry.
	Busy         bool  `json:"busy,omitempty"`
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Total is the pre-pagination row count of a paginated queue reply.
	Total int `json:"total,omitempty"`
	// HA payloads: Role/Epoch accompany health replies and not-primary /
	// fenced errors (so clients fail over); Seq and NeedFull are the
	// replicate verb's acknowledgement. All absent while HA is off.
	Role     string `json:"role,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`
	Seq      int64  `json:"seq,omitempty"`
	NeedFull bool   `json:"need_full,omitempty"`
	// Serve-robustness payloads (see serve.go); all absent unless the
	// request carried a deadline or the server has shed/brownout features
	// on, keeping legacy traffic byte-identical. Shed marks a priority shed
	// (Busy is set too, so old clients retry it like a volume shed);
	// DeadlineExceeded marks a request refused — or abandoned mid-mutation —
	// because its budget ran out; Brownout is the ladder state on health
	// replies; Serve carries the degradation counters on health replies.
	Shed             bool           `json:"shed,omitempty"`
	DeadlineExceeded bool           `json:"deadline_exceeded,omitempty"`
	Brownout         string         `json:"brownout,omitempty"`
	Serve            *ServeCounters `json:"serve,omitempty"`
}

// Protocol hardening limits: a client that stops sending mid-line, never
// reads its responses, or sends an unbounded line must not wedge the server
// or eat its memory.
const (
	// MaxLine bounds one request or response line.
	MaxLine = 1 << 20
	// DefaultReadTimeout is how long a connection may sit idle (or dribble
	// one request) before the server drops it.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds writing one response.
	DefaultWriteTimeout = 30 * time.Second
)

// Server serves the protocol for one controller.
type Server struct {
	ctl *Controller

	// ReadTimeout and WriteTimeout override the per-request deadlines
	// (zero selects the defaults). Set before Listen.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// over is the admission-control configuration, taken from the
	// controller's Config; sem is the bounded in-flight queue (nil when
	// unlimited); now is injectable for deterministic bucket tests.
	over OverloadConfig
	sem  chan struct{}
	now  func() time.Time

	// Serve-robustness state (see serve.go): est estimates per-class
	// service time for deadline admission (always on — it only acts when a
	// request carries a budget); shed and ladder are nil unless configured;
	// cache is the BrownoutStale snapshot cache.
	est    *classEstimator
	shed   *shedder
	ladder *brownoutLadder
	cache  *staleCache

	// Degradation counters, exposed by the health verb as ServeCounters.
	nBusy     atomic.Int64
	nShed     atomic.Int64
	nDeadline atomic.Int64
	nStale    atomic.Int64

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	draining bool
	inflight sync.WaitGroup
	// wg tracks the accept loop and every per-connection goroutine so
	// Shutdown can wait for all of them to exit (no goroutine leaks).
	wg sync.WaitGroup
}

// NewServer wraps a controller. Admission control follows the controller
// configuration's Overload section; the zero OverloadConfig disables it.
func NewServer(ctl *Controller) *Server {
	s := &Server{
		ctl:   ctl,
		conns: make(map[net.Conn]bool),
		over:  ctl.Config().Overload,
		now:   time.Now,
		est:   &classEstimator{},
	}
	if s.over.MaxInflight > 0 {
		s.sem = make(chan struct{}, s.over.MaxInflight)
	}
	if s.over.ShedTarget > 0 {
		s.shed = newShedder(s.over.ShedTarget, s.over.shedWindow())
	}
	if s.over.BrownoutStep > 0 {
		s.ladder = newBrownoutLadder(s.over.BrownoutStep, s.over.brownoutCooldown(), func(level int, name string) {
			expBrownoutSteps.Add(1)
			ctl.noteBrownout(level, name)
		})
		s.cache = newStaleCache(s.over.brownoutStaleFor())
	}
	return s
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port) and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("slurm: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.over.MaxConns > 0 && len(s.conns) >= s.over.MaxConns {
			s.mu.Unlock()
			// Over the connection cap: tell the client once, then hang
			// up. Done off the accept loop so a slow peer cannot stall
			// admission of others.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rejectConn(conn)
			}()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// rejectConn answers one over-cap connection with a BUSY response and
// closes it.
func (s *Server) rejectConn(conn net.Conn) {
	defer conn.Close()
	writeTimeout := s.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = DefaultWriteTimeout
	}
	s.nBusy.Add(1)
	expBusyShed.Add(1)
	resp := s.over.busyResponse(0)
	resp.Now = float64(s.ctl.Now())
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	json.NewEncoder(conn).Encode(resp)
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	readTimeout := s.ReadTimeout
	if readTimeout <= 0 {
		readTimeout = DefaultReadTimeout
	}
	writeTimeout := s.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = DefaultWriteTimeout
	}
	var bucket *tokenBucket
	if s.over.RateLimit > 0 {
		bucket = newTokenBucket(s.over.RateLimit, s.over.RateBurst, s.now())
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	enc := json.NewEncoder(conn)
	respond := func(resp Response) bool {
		resp.Now = float64(s.ctl.Now())
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		return enc.Encode(resp) == nil
	}
	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		if !sc.Scan() {
			// An over-long line is a client bug worth reporting before
			// hanging up; everything else (EOF, timeout, shutdown) just
			// closes the connection.
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				respond(Response{Error: fmt.Sprintf("request exceeds %d bytes", MaxLine)})
			}
			return
		}
		var req Request
		parseErr := json.Unmarshal(sc.Bytes(), &req)

		// health bypasses admission control entirely: a liveness probe
		// must answer while everything else is being shed, and still
		// answers (reporting "draining") during shutdown.
		if parseErr == nil && req.Op == "health" {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			h := s.ctl.Health()
			if draining {
				h = HealthDraining
			}
			if !respond(s.healthResponse(h)) || draining {
				return
			}
			continue
		}

		// Track the request so Shutdown can drain it; never start new work
		// on a draining server.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			respond(Response{Error: "server shutting down"})
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()

		var resp Response
		if parseErr != nil {
			// Malformed lines are charged like bulk requests so a
			// garbage-spraying client cannot dodge the limiter.
			if bucket != nil {
				bucket.take(1, s.now())
			}
			resp = Response{Error: fmt.Sprintf("bad request: %v", parseErr)}
		} else {
			resp = s.admit(req, bucket)
		}
		ok := respond(resp)
		s.inflight.Done()
		if !ok {
			return
		}
	}
}

// admit is the full admission pipeline: deadline admission, brownout, the
// priority shedder, then the volume backstops (rate limit + in-flight
// bound), then dispatch. Refused requests never touch the controller.
func (s *Server) admit(req Request, bucket *tokenBucket) Response {
	now := s.now()
	class := verbClass(req.Op)
	b := requestBudget(req.DeadlineMS, now)

	// Deadline admission: refuse before any work when the remaining budget
	// cannot cover this class's estimated service time — the fsync and the
	// replication round-trip are the whole point of refusing early.
	if b.active() {
		if est := s.est.estimate(class); b.expired(now) || est > b.remaining(now) {
			s.nDeadline.Add(1)
			expDeadlineExceeded.Add(1)
			return deadlineResponse(fmt.Sprintf("%s needs ~%dms, budget has %dms",
				req.Op, est.Milliseconds(), b.remaining(now).Milliseconds()))
		}
	}

	// Brownout ladder: every admitted request feeds it a pressure sample
	// (the shedder's level), so it climbs under sustained pressure and cools
	// down once the shedder relaxes. At readonly, submit-class mutations are
	// shed outright; control verbs still land (the operator's way out).
	level := BrownoutNormal
	if s.ladder != nil {
		level = s.ladder.observe(s.pressure(now), now)
		if level >= BrownoutReadOnly && class == classSubmit {
			s.nShed.Add(1)
			expPriorityShed.Add(1)
			return s.over.shedResponse(class)
		}
	}

	// Priority shedder: lowest class first, control never.
	if s.shed != nil && class != classControl {
		if lvl := s.shed.current(now); lvl >= shedSubmits || (lvl >= shedQueries && class == classQuery) {
			s.nShed.Add(1)
			expPriorityShed.Add(1)
			return s.over.shedResponse(class)
		}
	}

	if bucket != nil {
		if ok, wait := bucket.take(verbCost(req.Op, s.over.ControlCost), s.now()); !ok {
			s.sheddingSaturated(now)
			return s.over.busyResponse(wait)
		}
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.sheddingSaturated(now)
			return s.over.busyResponse(0)
		}
	}
	start := s.now()
	resp := s.handleB(req, b, level)
	done := s.now()
	s.est.observe(class, done.Sub(start))
	if s.shed != nil {
		s.shed.observe(done.Sub(start), done)
	}
	return resp
}

// sheddingSaturated tallies a volume shed and feeds it to the adaptive
// signal as a saturation event: when the backstops are refusing work, that
// is pressure even if the requests that do run are fast.
func (s *Server) sheddingSaturated(now time.Time) {
	s.nBusy.Add(1)
	expBusyShed.Add(1)
	if s.shed != nil {
		s.shed.saturate(now)
	}
}

// pressure is the ladder's input signal: the shedder is currently shedding.
func (s *Server) pressure(now time.Time) bool {
	return s.shed != nil && s.shed.current(now) > shedNone
}

// serveCounters snapshots the degradation tallies for the health verb.
func (s *Server) serveCounters() *ServeCounters {
	sc := &ServeCounters{
		Busy:             s.nBusy.Load(),
		Shed:             s.nShed.Load(),
		DeadlineExceeded: s.nDeadline.Load(),
		StaleReads:       s.nStale.Load(),
		BrownoutState:    brownoutName(BrownoutNormal),
	}
	if s.ladder != nil {
		lvl := s.ladder.current()
		sc.BrownoutLevel = int64(lvl)
		sc.BrownoutState = brownoutName(lvl)
		sc.BrownoutSteps = s.ladder.transitions()
	}
	return sc
}

// healthResponse builds a health reply, attaching role and epoch only when
// HA is on — and brownout state plus degradation counters only when the
// serve-robustness features are on — so legacy responses stay byte-identical
// to prior releases. Health probes also feed the ladder a pressure sample:
// they bypass admission, so after load stops they are what walks the ladder
// back down to NORMAL.
func (s *Server) healthResponse(h string) Response {
	resp := Response{OK: true, Health: h}
	if on, role, epoch := s.ctl.HAInfo(); on {
		resp.Role, resp.Epoch = role, epoch
	}
	if s.ladder != nil {
		now := s.now()
		resp.Brownout = brownoutName(s.ladder.observe(s.pressure(now), now))
	}
	if s.shed != nil || s.ladder != nil {
		resp.Serve = s.serveCounters()
	}
	return resp
}

// opErr converts a mutation error into a Response. ErrNotPrimary and
// ErrFenced additionally carry the node's role and epoch, which is how a
// multi-endpoint client learns it should fail over.
func (s *Server) opErr(err error) Response {
	if errors.Is(err, ErrDeadlineExceeded) {
		// The budget ran out mid-mutation (typically: locally durable,
		// synchronous replication skipped; the heartbeat loop delivers it).
		s.nDeadline.Add(1)
		expDeadlineExceeded.Add(1)
		return deadlineResponse(err.Error())
	}
	resp := Response{Error: err.Error()}
	if errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrFenced) {
		resp.Role, resp.Epoch = s.ctl.RoleEpoch()
	}
	return resp
}

func (s *Server) handle(req Request) Response {
	return s.handleB(req, budget{}, BrownoutNormal)
}

// handleB dispatches one admitted request, threading its deadline budget
// into controller mutations and applying the brownout level to reads.
func (s *Server) handleB(req Request, b budget, level int) Response {
	switch req.Op {
	case "submit":
		after := make([]cluster.JobID, len(req.After))
		for i, a := range req.After {
			after[i] = cluster.JobID(a)
		}
		id, err := s.ctl.submitTokenB(b, req.Token, req.App, req.Nodes,
			des.Duration(req.Walltime), des.Duration(req.Runtime), req.Name, after...)
		if err != nil {
			return s.opErr(err)
		}
		return Response{OK: true, ID: int64(id)}
	case "cancel":
		if err := s.ctl.cancelB(b, cluster.JobID(req.ID)); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true, ID: req.ID}
	case "replicate":
		return s.ctl.HandleReplicate(req)
	case "queue":
		jobs, stale := s.queueSnapshot(req.History, level)
		if stale {
			s.nStale.Add(1)
			expStaleReads.Add(1)
		}
		return paginate(jobs, req, s.over, level)
	case "nodes":
		nodes, stale := s.nodesSnapshot(level)
		if stale {
			s.nStale.Add(1)
			expStaleReads.Add(1)
		}
		return Response{OK: true, Nodes: nodes}
	case "drain_node":
		if err := s.ctl.drainNodeB(b, req.Node); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "resume_node":
		if err := s.ctl.resumeNodeB(b, req.Node); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "requeue":
		if err := s.ctl.requeueB(b, cluster.JobID(req.ID)); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true, ID: req.ID}
	case "down_node":
		if err := s.ctl.downNodeB(b, req.Node); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "up_node":
		if err := s.ctl.upNodeB(b, req.Node); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "advance":
		if _, err := s.ctl.advanceB(b, des.Duration(req.Seconds)); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "drain":
		if _, err := s.ctl.drainB(b); err != nil {
			return s.opErr(err)
		}
		return Response{OK: true}
	case "stats":
		st, stale := s.statsSnapshot(level)
		if stale {
			s.nStale.Add(1)
			expStaleReads.Add(1)
		}
		return Response{OK: true, Stats: st}
	case "now":
		return Response{OK: true}
	case "health":
		return s.healthResponse(s.ctl.Health())
	case "config":
		cfg := s.ctl.Config()
		return Response{OK: true, Cluster: cfg.ClusterName, Policy: cfg.Policy}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// queueSnapshot, nodesSnapshot, and statsSnapshot are the brownout-aware
// read paths: at BrownoutStale and above they serve from the TTL snapshot
// cache (one controller lock per TTL instead of one per request), reporting
// whether the reply was a cache hit.
func (s *Server) queueSnapshot(history bool, level int) ([]JobInfo, bool) {
	fetch := func() []JobInfo {
		jobs := s.ctl.Queue()
		if history {
			jobs = append(jobs, s.ctl.History()...)
		}
		return jobs
	}
	if level >= BrownoutStale && s.cache != nil {
		return s.cache.queue(history, s.now(), fetch)
	}
	return fetch(), false
}

func (s *Server) nodesSnapshot(level int) ([]NodeInfo, bool) {
	if level >= BrownoutStale && s.cache != nil {
		return s.cache.nodeList(s.now(), s.ctl.Nodes)
	}
	return s.ctl.Nodes(), false
}

func (s *Server) statsSnapshot(level int) (*metrics.Result, bool) {
	if level >= BrownoutStale && s.cache != nil {
		return s.cache.statsResult(s.now(), s.ctl.Stats)
	}
	st := s.ctl.Stats()
	return &st, false
}

// paginate bounds one queue reply. Without explicit Limit/Offset and with
// no configured HistoryLimit the reply is unchanged (and Total omitted),
// keeping legacy responses byte-identical. At BrownoutPaged and above the
// brownout history cap clamps even explicit limits: a browned-out
// controller stops letting bulk sacct scans compete with live traffic.
func paginate(jobs []JobInfo, req Request, over OverloadConfig, level int) Response {
	limit := req.Limit
	explicit := req.Limit > 0 || req.Offset > 0
	if limit <= 0 && req.History {
		limit = over.HistoryLimit
	}
	if level >= BrownoutPaged && req.History {
		if bound := over.brownoutHistoryLimit(); limit <= 0 || limit > bound {
			limit = bound
			explicit = true // the clamp applies even to default-shaped requests
		}
	}
	if !explicit && (limit <= 0 || len(jobs) <= limit) {
		return Response{OK: true, Jobs: jobs}
	}
	total := len(jobs)
	off := req.Offset
	if off < 0 {
		off = 0
	}
	if off > total {
		off = total
	}
	jobs = jobs[off:]
	if limit > 0 && len(jobs) > limit {
		jobs = jobs[:limit]
	}
	return Response{OK: true, Jobs: jobs, Total: total}
}

// Close stops the listener and open connections immediately. In-flight
// requests are abandoned; use Shutdown for a graceful stop.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

// Shutdown stops the server gracefully: no new requests are accepted,
// requests already being processed complete and their responses are written,
// idle connections are dropped. It waits up to timeout for the in-flight
// work, closes everything, then waits for the accept loop and every
// connection goroutine to exit — after Shutdown returns, the server has
// leaked nothing.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	s.draining = true
	if s.listener != nil {
		s.listener.Close()
	}
	// Zap read deadlines so idle readers wake up and observe draining;
	// connections mid-request are past their Scan and unaffected.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
	s.Close()
	s.wg.Wait()
}

// Client is a protocol client (the sbatch/squeue/sinfo tooling). It may hold
// an ordered list of endpoints (an HA pair): dialing picks the first healthy
// one, and with a Retry policy set, transport failures and not-primary
// errors rotate to the next endpoint before retrying — transparent failover.
type Client struct {
	conn  net.Conn
	sc    *bufio.Scanner
	enc   *json.Encoder
	addrs []string
	cur   int // index into addrs of the endpoint conn points at

	// Retry, when set, makes Do resilient: BUSY responses are retried
	// after a jittered backoff that honors the server's retry-after hint,
	// transport failures on idempotent requests (reads, or submits
	// carrying a Token) redial and retry, and not-primary/fenced errors
	// fail over to the next endpoint. Nil keeps the one-shot behavior.
	Retry *RetryPolicy

	// Timeout, when positive, bounds each request round trip with a
	// connection deadline. Without it a black-holed (partitioned, not
	// refused) endpoint stalls Do until the server's own idle timeout.
	Timeout time.Duration

	// DeadlineBudget, when positive, stamps every request that does not
	// already carry one with a relative deadline (Request.DeadlineMS). The
	// budget spans the whole Do call including retries: each attempt carries
	// only what remains, and Do gives up with a DeadlineError once it is
	// spent — the client-side half of deadline propagation.
	DeadlineBudget time.Duration

	// Hedge, when set, enables hedged requests for idempotent read verbs:
	// if the primary endpoint has not answered within Hedge.Delay, a second
	// attempt races it on a fresh connection and the loser is cancelled
	// (see hedge.go).
	Hedge *HedgePolicy
}

// DeadlineError is returned by Client.Do when the request's deadline budget
// is exhausted — refused by the server as unservable in the remaining
// budget, or given up on client-side before/between attempts.
type DeadlineError struct {
	Msg string
}

func (e *DeadlineError) Error() string { return "slurm: deadline exceeded: " + e.Msg }

// maxRetryAfterMS clamps the server-supplied (and therefore, from the
// client's point of view, untrusted) retry-after hint: a hostile value must
// not overflow duration math or park a client forever.
const maxRetryAfterMS = int64(time.Minute / time.Millisecond)

func clampRetryAfterMS(ms int64) time.Duration {
	if ms < 0 {
		ms = 0
	}
	if ms > maxRetryAfterMS {
		ms = maxRetryAfterMS
	}
	return time.Duration(ms) * time.Millisecond
}

// NotPrimaryError is a structured server rejection from a node that cannot
// accept mutations in its current HA role: a standby, or a fenced primary.
// A multi-endpoint client's retry loop rotates endpoints on seeing it.
type NotPrimaryError struct {
	Role  string
	Epoch int64
	Msg   string
}

func (e *NotPrimaryError) Error() string { return fmt.Sprintf("slurm: server: %s", e.Msg) }

// splitAddrs parses a comma-separated endpoint list.
func splitAddrs(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// Dial connects to a server. addr may be a comma-separated endpoint list
// ("host:port,host:port"); the first endpoint that accepts a connection wins.
func Dial(addr string) (*Client, error) {
	addrs := splitAddrs(addr)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("slurm: no addresses in %q", addr)
	}
	c := &Client{addrs: addrs}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// DialRetry connects with the default retry policy, seeding the backoff
// jitter stream from seed.
func DialRetry(addr string, seed uint64) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.Retry = DefaultRetryPolicy(seed)
	return c, nil
}

func (c *Client) attach(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	c.conn, c.sc, c.enc = conn, sc, json.NewEncoder(conn)
}

// rotate advances to the next endpoint, so the following redial tries it
// first.
func (c *Client) rotate() {
	c.cur = (c.cur + 1) % len(c.addrs)
}

// redial replaces a broken connection, trying each endpoint starting from
// the current one; the first that accepts wins.
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var firstErr error
	for i := 0; i < len(c.addrs); i++ {
		k := (c.cur + i) % len(c.addrs)
		conn, err := net.Dial("tcp", c.addrs[k])
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("slurm: dial %s: %w", c.addrs[k], err)
			}
			continue
		}
		c.cur = k
		c.attach(conn)
		return nil
	}
	return firstErr
}

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// Do sends one request and reads one response. With a Retry policy set it
// transparently retries shed (BUSY/SHED) requests, and — for idempotent
// requests — transport failures, reconnecting as needed. With a
// DeadlineBudget set, every attempt carries the remaining budget on the
// wire and the whole call (sleeps included) gives up once it is spent.
func (c *Client) Do(req Request) (Response, error) {
	var deadline time.Time
	if c.DeadlineBudget > 0 && req.DeadlineMS == 0 {
		deadline = time.Now().Add(c.DeadlineBudget)
	}
	stamp := func() bool {
		if deadline.IsZero() {
			return true
		}
		rem := time.Until(deadline)
		if rem <= 0 {
			return false
		}
		ms := rem.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMS = ms
		return true
	}
	if !stamp() {
		return Response{}, &DeadlineError{Msg: "budget spent before sending " + req.Op}
	}
	resp, err := c.doOnce(req)
	if err == nil || c.Retry == nil {
		return resp, err
	}
	for attempt := 0; attempt < c.Retry.MaxAttempts-1; attempt++ {
		var retryAfter time.Duration
		var busy *BusyError
		var np *NotPrimaryError
		switch {
		case errors.As(err, &busy):
			retryAfter = busy.RetryAfter
		case errors.As(err, &np):
			// The node refused because of its HA role; the operation was
			// not performed, so retrying elsewhere is safe even untokened.
			// With a single endpoint there is nowhere to fail over to.
			if len(c.addrs) < 2 {
				return resp, err
			}
			c.rotate()
			if rerr := c.redial(); rerr != nil {
				err = rerr
				c.Retry.sleep(c.Retry.Delay(attempt, 0))
				continue
			}
		case isTransportError(err) && idempotentRequest(req):
			// The connection is suspect; rebuild it — against the next
			// endpoint first, if there is one, so a black-holed primary
			// doesn't eat every retry. A failed redial is itself retried
			// on the next loop iteration.
			if len(c.addrs) > 1 {
				c.rotate()
			}
			if rerr := c.redial(); rerr != nil {
				err = rerr
				c.Retry.sleep(c.Retry.Delay(attempt, 0))
				continue
			}
		default:
			return resp, err // application error (incl. deadline): not retryable
		}
		delay := c.Retry.Delay(attempt, retryAfter)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			// Sleeping would outlive the budget; surface the give-up as a
			// deadline error carrying the last server answer.
			return resp, &DeadlineError{Msg: fmt.Sprintf("budget spent retrying %s: %v", req.Op, err)}
		}
		c.Retry.sleep(delay)
		if !stamp() {
			return resp, &DeadlineError{Msg: fmt.Sprintf("budget spent retrying %s: %v", req.Op, err)}
		}
		resp, err = c.doOnce(req)
		if err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// doOnce performs one attempt, hedged for idempotent reads when a hedge
// policy is set.
func (c *Client) doOnce(req Request) (Response, error) {
	if c.Hedge != nil && c.Hedge.Delay > 0 && hedgeable(req) {
		return c.doHedged(req)
	}
	return c.do1(req)
}

func (c *Client) do1(req Request) (Response, error) {
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return Response{}, err
		}
	}
	return exchange(c.conn, c.sc, c.enc, c.Timeout, req)
}

// exchange runs one request/response round trip over an explicit transport.
// It is the common leg under do1 and the hedged path: the hedge goroutine
// captures the transport by value, so a concurrent reassignment of the
// client's fields cannot race with an in-flight attempt.
func exchange(conn net.Conn, sc *bufio.Scanner, enc *json.Encoder, timeout time.Duration, req Request) (Response, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("slurm: send: %w", err)
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Response{}, fmt.Errorf("slurm: receive: %w", err)
		}
		return Response{}, io.ErrUnexpectedEOF
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("slurm: decode: %w", err)
	}
	if resp.Busy || resp.Shed {
		return resp, &BusyError{RetryAfter: clampRetryAfterMS(resp.RetryAfterMS), Shed: resp.Shed}
	}
	if resp.DeadlineExceeded {
		return resp, &DeadlineError{Msg: resp.Error}
	}
	if resp.Error != "" {
		if resp.Role != "" {
			// Only HA role rejections carry a role; see Server.opErr.
			return resp, &NotPrimaryError{Role: resp.Role, Epoch: resp.Epoch, Msg: resp.Error}
		}
		return resp, fmt.Errorf("slurm: server: %s", resp.Error)
	}
	return resp, nil
}

// isTransportError reports whether err is a connection-level failure (as
// opposed to a structured server error).
func isTransportError(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	var oerr *net.OpError
	return errors.As(err, &oerr)
}

// Submit submits a job and returns its ID. Optional dependency IDs
// implement sbatch --dependency=afterok.
func (c *Client) Submit(app string, nodes int, wall, runtime des.Duration, name string, after ...int64) (int64, error) {
	resp, err := c.Do(Request{Op: "submit", App: app, Nodes: nodes,
		Walltime: float64(wall), Runtime: float64(runtime), Name: name, After: after})
	return resp.ID, err
}

// SubmitToken submits with a client-supplied idempotency token: the server
// dedupes repeats of the same token, so retrying after a lost response is
// safe (the original job's ID comes back instead of a duplicate job).
func (c *Client) SubmitToken(token, app string, nodes int, wall, runtime des.Duration, name string, after ...int64) (int64, error) {
	resp, err := c.Do(Request{Op: "submit", Token: token, App: app, Nodes: nodes,
		Walltime: float64(wall), Runtime: float64(runtime), Name: name, After: after})
	return resp.ID, err
}

// Cancel cancels a pending job.
func (c *Client) Cancel(id int64) error {
	_, err := c.Do(Request{Op: "cancel", ID: id})
	return err
}

// Queue lists pending and running jobs (plus history when asked).
func (c *Client) Queue(history bool) ([]JobInfo, error) {
	resp, err := c.Do(Request{Op: "queue", History: history})
	return resp.Jobs, err
}

// QueuePage lists jobs with explicit pagination and returns the page plus
// the total row count before slicing.
func (c *Client) QueuePage(history bool, limit, offset int) ([]JobInfo, int, error) {
	resp, err := c.Do(Request{Op: "queue", History: history, Limit: limit, Offset: offset})
	total := resp.Total
	if total == 0 && err == nil {
		total = len(resp.Jobs)
	}
	return resp.Jobs, total, err
}

// Health asks the server for its health state: ok | degraded | draining |
// fenced.
func (c *Client) Health() (string, error) {
	resp, err := c.Do(Request{Op: "health"})
	return resp.Health, err
}

// HealthInfo is Health plus the node's HA role and epoch (empty and zero on
// a standalone server).
func (c *Client) HealthInfo() (health, role string, epoch int64, err error) {
	resp, err := c.Do(Request{Op: "health"})
	return resp.Health, resp.Role, resp.Epoch, err
}

// HealthFull returns the entire health reply, including the brownout state
// and degradation counters a serve-features-on server attaches.
func (c *Client) HealthFull() (Response, error) {
	return c.Do(Request{Op: "health"})
}

// Nodes lists node states.
func (c *Client) Nodes() ([]NodeInfo, error) {
	resp, err := c.Do(Request{Op: "nodes"})
	return resp.Nodes, err
}

// Advance moves simulated time forward and returns the new clock.
func (c *Client) Advance(d des.Duration) (des.Time, error) {
	resp, err := c.Do(Request{Op: "advance", Seconds: float64(d)})
	return des.Time(resp.Now), err
}

// Drain runs the simulation until all work completes.
func (c *Client) Drain() (des.Time, error) {
	resp, err := c.Do(Request{Op: "drain"})
	return des.Time(resp.Now), err
}

// Stats fetches the run metrics.
func (c *Client) Stats() (metrics.Result, error) {
	resp, err := c.Do(Request{Op: "stats"})
	if err != nil {
		return metrics.Result{}, err
	}
	if resp.Stats == nil {
		return metrics.Result{}, fmt.Errorf("slurm: stats response without payload")
	}
	return *resp.Stats, nil
}

// Info fetches cluster name and policy.
func (c *Client) Info() (clusterName, policy string, err error) {
	resp, err := c.Do(Request{Op: "config"})
	return resp.Cluster, resp.Policy, err
}

// DrainNode removes a node from scheduling.
func (c *Client) DrainNode(ni int) error {
	_, err := c.Do(Request{Op: "drain_node", Node: ni})
	return err
}

// ResumeNode returns a drained node to service.
func (c *Client) ResumeNode(ni int) error {
	_, err := c.Do(Request{Op: "resume_node", Node: ni})
	return err
}

// Requeue evicts a running job back to the queue (scontrol requeue).
func (c *Client) Requeue(id int64) error {
	_, err := c.Do(Request{Op: "requeue", ID: id})
	return err
}

// DownNode forces a node down, evicting and requeueing its jobs.
func (c *Client) DownNode(ni int) error {
	_, err := c.Do(Request{Op: "down_node", Node: ni})
	return err
}

// UpNode returns a down node to service.
func (c *Client) UpNode(ni int) error {
	_, err := c.Do(Request{Op: "up_node", Node: ni})
	return err
}
