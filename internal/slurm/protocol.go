package slurm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
)

// The wire protocol is JSON lines over TCP: one Request per line from the
// client, one Response per line from the server. It is deliberately simple —
// the goal is the operational shape of a workload manager (remote
// submission, queue introspection, separate tooling processes), not RPC
// sophistication.

// Request is one client command.
type Request struct {
	// Op selects the operation: submit, cancel, queue, nodes, advance,
	// drain, stats, now, config, requeue, drain_node, resume_node,
	// down_node, up_node.
	Op string `json:"op"`
	// Submit arguments.
	App      string  `json:"app,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	Walltime float64 `json:"walltime,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Name     string  `json:"name,omitempty"`
	// Cancel argument.
	ID int64 `json:"id,omitempty"`
	// Advance argument.
	Seconds float64 `json:"seconds,omitempty"`
	// Node argument for drain_node / resume_node.
	Node int `json:"node,omitempty"`
	// After lists dependency job IDs for submit.
	After []int64 `json:"after,omitempty"`
	// Queue argument: include finished jobs.
	History bool `json:"history,omitempty"`
}

// Response is one server reply.
type Response struct {
	OK    bool    `json:"ok"`
	Error string  `json:"error,omitempty"`
	Now   float64 `json:"now"`
	// Operation-specific payloads.
	ID      int64           `json:"id,omitempty"`
	Jobs    []JobInfo       `json:"jobs,omitempty"`
	Nodes   []NodeInfo      `json:"nodes,omitempty"`
	Stats   *metrics.Result `json:"stats,omitempty"`
	Cluster string          `json:"cluster,omitempty"`
	Policy  string          `json:"policy,omitempty"`
}

// Protocol hardening limits: a client that stops sending mid-line, never
// reads its responses, or sends an unbounded line must not wedge the server
// or eat its memory.
const (
	// MaxLine bounds one request or response line.
	MaxLine = 1 << 20
	// DefaultReadTimeout is how long a connection may sit idle (or dribble
	// one request) before the server drops it.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds writing one response.
	DefaultWriteTimeout = 30 * time.Second
)

// Server serves the protocol for one controller.
type Server struct {
	ctl *Controller

	// ReadTimeout and WriteTimeout override the per-request deadlines
	// (zero selects the defaults). Set before Listen.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	draining bool
	inflight sync.WaitGroup
}

// NewServer wraps a controller.
func NewServer(ctl *Controller) *Server {
	return &Server{ctl: ctl, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr ("host:port"; ":0" picks a free port) and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("slurm: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	readTimeout := s.ReadTimeout
	if readTimeout <= 0 {
		readTimeout = DefaultReadTimeout
	}
	writeTimeout := s.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = DefaultWriteTimeout
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	enc := json.NewEncoder(conn)
	respond := func(resp Response) bool {
		resp.Now = float64(s.ctl.Now())
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		return enc.Encode(resp) == nil
	}
	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		if !sc.Scan() {
			// An over-long line is a client bug worth reporting before
			// hanging up; everything else (EOF, timeout, shutdown) just
			// closes the connection.
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				respond(Response{Error: fmt.Sprintf("request exceeds %d bytes", MaxLine)})
			}
			return
		}
		// Track the request so Shutdown can drain it; never start new work
		// on a draining server.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			respond(Response{Error: "server shutting down"})
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()

		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.handle(req)
		}
		ok := respond(resp)
		s.inflight.Done()
		if !ok {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case "submit":
		after := make([]cluster.JobID, len(req.After))
		for i, a := range req.After {
			after[i] = cluster.JobID(a)
		}
		id, err := s.ctl.Submit(req.App, req.Nodes,
			des.Duration(req.Walltime), des.Duration(req.Runtime), req.Name, after...)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, ID: int64(id)}
	case "cancel":
		if err := s.ctl.Cancel(cluster.JobID(req.ID)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, ID: req.ID}
	case "queue":
		jobs := s.ctl.Queue()
		if req.History {
			jobs = append(jobs, s.ctl.History()...)
		}
		return Response{OK: true, Jobs: jobs}
	case "nodes":
		return Response{OK: true, Nodes: s.ctl.Nodes()}
	case "drain_node":
		if err := s.ctl.DrainNode(req.Node); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "resume_node":
		if err := s.ctl.ResumeNode(req.Node); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "requeue":
		if err := s.ctl.Requeue(cluster.JobID(req.ID)); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, ID: req.ID}
	case "down_node":
		if err := s.ctl.DownNode(req.Node); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "up_node":
		if err := s.ctl.UpNode(req.Node); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "advance":
		s.ctl.Advance(des.Duration(req.Seconds))
		return Response{OK: true}
	case "drain":
		s.ctl.Drain()
		return Response{OK: true}
	case "stats":
		st := s.ctl.Stats()
		return Response{OK: true, Stats: &st}
	case "now":
		return Response{OK: true}
	case "config":
		cfg := s.ctl.Config()
		return Response{OK: true, Cluster: cfg.ClusterName, Policy: cfg.Policy}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Close stops the listener and open connections immediately. In-flight
// requests are abandoned; use Shutdown for a graceful stop.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

// Shutdown stops the server gracefully: no new requests are accepted,
// requests already being processed complete and their responses are written,
// idle connections are dropped. It waits up to timeout for the in-flight
// work, then closes everything.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	s.draining = true
	if s.listener != nil {
		s.listener.Close()
	}
	// Zap read deadlines so idle readers wake up and observe draining;
	// connections mid-request are past their Scan and unaffected.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
	s.Close()
}

// Client is a protocol client (the sbatch/squeue/sinfo tooling).
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("slurm: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads one response.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("slurm: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("slurm: receive: %w", err)
		}
		return Response{}, io.ErrUnexpectedEOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("slurm: decode: %w", err)
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("slurm: server: %s", resp.Error)
	}
	return resp, nil
}

// Submit submits a job and returns its ID. Optional dependency IDs
// implement sbatch --dependency=afterok.
func (c *Client) Submit(app string, nodes int, wall, runtime des.Duration, name string, after ...int64) (int64, error) {
	resp, err := c.Do(Request{Op: "submit", App: app, Nodes: nodes,
		Walltime: float64(wall), Runtime: float64(runtime), Name: name, After: after})
	return resp.ID, err
}

// Cancel cancels a pending job.
func (c *Client) Cancel(id int64) error {
	_, err := c.Do(Request{Op: "cancel", ID: id})
	return err
}

// Queue lists pending and running jobs (plus history when asked).
func (c *Client) Queue(history bool) ([]JobInfo, error) {
	resp, err := c.Do(Request{Op: "queue", History: history})
	return resp.Jobs, err
}

// Nodes lists node states.
func (c *Client) Nodes() ([]NodeInfo, error) {
	resp, err := c.Do(Request{Op: "nodes"})
	return resp.Nodes, err
}

// Advance moves simulated time forward and returns the new clock.
func (c *Client) Advance(d des.Duration) (des.Time, error) {
	resp, err := c.Do(Request{Op: "advance", Seconds: float64(d)})
	return des.Time(resp.Now), err
}

// Drain runs the simulation until all work completes.
func (c *Client) Drain() (des.Time, error) {
	resp, err := c.Do(Request{Op: "drain"})
	return des.Time(resp.Now), err
}

// Stats fetches the run metrics.
func (c *Client) Stats() (metrics.Result, error) {
	resp, err := c.Do(Request{Op: "stats"})
	if err != nil {
		return metrics.Result{}, err
	}
	if resp.Stats == nil {
		return metrics.Result{}, fmt.Errorf("slurm: stats response without payload")
	}
	return *resp.Stats, nil
}

// Info fetches cluster name and policy.
func (c *Client) Info() (clusterName, policy string, err error) {
	resp, err := c.Do(Request{Op: "config"})
	return resp.Cluster, resp.Policy, err
}

// DrainNode removes a node from scheduling.
func (c *Client) DrainNode(ni int) error {
	_, err := c.Do(Request{Op: "drain_node", Node: ni})
	return err
}

// ResumeNode returns a drained node to service.
func (c *Client) ResumeNode(ni int) error {
	_, err := c.Do(Request{Op: "resume_node", Node: ni})
	return err
}

// Requeue evicts a running job back to the queue (scontrol requeue).
func (c *Client) Requeue(id int64) error {
	_, err := c.Do(Request{Op: "requeue", ID: id})
	return err
}

// DownNode forces a node down, evicting and requeueing its jobs.
func (c *Client) DownNode(ni int) error {
	_, err := c.Do(Request{Op: "down_node", Node: ni})
	return err
}

// UpNode returns a down node to service.
func (c *Client) UpNode(ni int) error {
	_, err := c.Do(Request{Op: "up_node", Node: ni})
	return err
}
