package slurm

import (
	"net"
	"testing"

	"repro/internal/des"
)

// startServer boots a controller + server on a free port and returns a
// connected client.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv
}

func TestProtocolLifecycle(t *testing.T) {
	cl, _ := startServer(t)

	name, policy, err := cl.Info()
	if err != nil {
		t.Fatal(err)
	}
	if name != "trinity-sim" || policy != "sharebackfill" {
		t.Fatalf("info = %q, %q", name, policy)
	}

	id, err := cl.Submit("minife", 2, 3600, 1800, "fe1")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("no job ID")
	}

	jobs, err := cl.Queue(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != "RUNNING" {
		t.Fatalf("queue = %+v", jobs)
	}

	nodes, err := cl.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("nodes = %d", len(nodes))
	}

	now, err := cl.Advance(2000)
	if err != nil {
		t.Fatal(err)
	}
	if now != 2000 {
		t.Fatalf("advance → %v", now)
	}

	if _, err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	jobs, err = cl.Queue(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != "FINISHED" {
		t.Fatalf("history = %+v", jobs)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Finished != 1 || st.Policy != "sharebackfill" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProtocolErrors(t *testing.T) {
	cl, _ := startServer(t)
	if _, err := cl.Submit("no-such-app", 1, 100, 0, ""); err == nil {
		t.Fatal("bad submit accepted")
	}
	if err := cl.Cancel(999); err == nil {
		t.Fatal("bad cancel accepted")
	}
	if _, err := cl.Do(Request{Op: "frobnicate"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// The connection must survive errors.
	if _, err := cl.Do(Request{Op: "now"}); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestProtocolMalformedLine(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no error response to malformed request")
	}
}

func TestProtocolConcurrentClients(t *testing.T) {
	cl1, srv := startServer(t)
	addrStr := srv.listener.Addr().String()
	cl2, err := Dial(addrStr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	done := make(chan error, 2)
	submit := func(cl *Client, app string) {
		var err error
		for i := 0; i < 10; i++ {
			if _, e := cl.Submit(app, 1, 3600, 1800, ""); e != nil {
				err = e
				break
			}
		}
		done <- err
	}
	go submit(cl1, "minife")
	go submit(cl2, "minimd")
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl1.Drain(); err != nil {
		t.Fatal(err)
	}
	st, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Finished != 20 {
		t.Fatalf("finished = %d, want 20", st.Finished)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	cl, srv := startServer(t)
	srv.Close()
	// Existing client's next call fails once the connection drops.
	if _, err := cl.Advance(des.Duration(1)); err == nil {
		// The close may race the in-flight write; try once more.
		if _, err := cl.Advance(des.Duration(1)); err == nil {
			t.Fatal("client survived server close")
		}
	}
}
