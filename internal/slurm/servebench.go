package slurm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/stats"
)

// Open-loop load harness: arrivals come from a deterministic Poisson process
// that does not slow down when the server does, which is the only honest way
// to measure tail latency under overload — a closed-loop driver backs off
// with the server and flatters the percentiles (coordinated omission). The
// harness is a library so the chaos acceptance test and cmd/slurm-bench
// share one implementation, like soak.go.

// Verb mixes are drawn per-arrival from the seed's RNG: queries dominate (a
// busy cluster is mostly squeue), submits are the goodput that matters, and
// a trickle of control verbs stands in for the operator who must not be
// locked out.

// BenchConfig sizes an open-loop bench run against a listening server.
type BenchConfig struct {
	// Addr is the server (or chaos proxy in front of it) under load.
	Addr string
	// Seed roots every RNG stream: arrival times, verb mix, retry jitter.
	Seed uint64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Rate is the offered load in arrivals per second (open loop).
	Rate float64
	// Conns is the client connection pool size; it bounds concurrency, so
	// an arrival that finds every connection busy is counted as Dropped
	// rather than queued (open-loop semantics).
	Conns int
	// SubmitFrac and ControlFrac shape the verb mix; the remainder is
	// queries. Defaults 0.4 / 0.1.
	SubmitFrac  float64
	ControlFrac float64
	// DeadlineBudget, when positive, stamps every request with a relative
	// deadline so the server's deadline admission is exercised.
	DeadlineBudget time.Duration
	// HedgeDelay, when positive, enables client hedging for read verbs.
	HedgeDelay time.Duration
	// Timeout bounds each round trip (0 = 2s).
	Timeout time.Duration
	// App/Nodes/Walltime/Runtime shape submitted jobs (defaults as soak).
	App      string
	Nodes    int
	Walltime float64
	Runtime  float64
}

func (c *BenchConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 200
	}
	if c.Conns <= 0 {
		c.Conns = 16
	}
	if c.SubmitFrac <= 0 {
		c.SubmitFrac = 0.4
	}
	if c.ControlFrac <= 0 {
		c.ControlFrac = 0.1
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.App == "" {
		c.App = "minife"
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Walltime <= 0 {
		c.Walltime = 1800
	}
	if c.Runtime <= 0 {
		c.Runtime = 900
	}
}

// ClassStats is one verb class's outcome and latency profile. Latencies are
// measured per request (a successful round trip or a structured rejection
// both count — a fast SHED is the mechanism working, and its latency is part
// of the server's responsiveness story). Transport errors have no meaningful
// latency and are only counted.
type ClassStats struct {
	Class    string  `json:"class"`
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Busy     int     `json:"busy"`
	Shed     int     `json:"shed"`
	Deadline int     `json:"deadline"`
	Errors   int     `json:"errors"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	P999ms   float64 `json:"p999_ms"`
}

// BenchResult is the published artifact (BENCH_serve.json).
type BenchResult struct {
	Schema        string         `json:"schema"`
	Seed          uint64         `json:"seed"`
	OfferedRate   float64        `json:"offered_rate"`
	DurationSec   float64        `json:"duration_sec"`
	Arrivals      int            `json:"arrivals"`
	Dropped       int            `json:"dropped"` // arrivals with no free connection
	SubmitsPerSec float64        `json:"submits_per_sec"`
	Classes       []ClassStats   `json:"classes"`
	Serve         *ServeCounters `json:"serve,omitempty"` // server's own view, via health
	Health        string         `json:"health,omitempty"`
	Brownout      string         `json:"brownout,omitempty"`
}

func (r BenchResult) String() string {
	s := fmt.Sprintf("bench: %d arrivals at %.0f/s over %.1fs, %d dropped, %.1f submits/s",
		r.Arrivals, r.OfferedRate, r.DurationSec, r.Dropped, r.SubmitsPerSec)
	for _, c := range r.Classes {
		s += fmt.Sprintf("\n  %-7s sent %5d  ok %5d  busy %4d  shed %4d  ddl %4d  err %4d  p50 %6.1fms  p99 %6.1fms  p999 %6.1fms",
			c.Class, c.Sent, c.OK, c.Busy, c.Shed, c.Deadline, c.Errors, c.P50ms, c.P99ms, c.P999ms)
	}
	if r.Serve != nil {
		s += fmt.Sprintf("\n  server: busy %d shed %d deadline %d stale %d brownout %s (steps %d)",
			r.Serve.Busy, r.Serve.Shed, r.Serve.DeadlineExceeded, r.Serve.StaleReads,
			r.Serve.BrownoutState, r.Serve.BrownoutSteps)
	}
	return s
}

// benchSample is one completed request's classification.
type benchSample struct {
	class   int
	latency time.Duration
	outcome int // 0 ok, 1 busy, 2 shed, 3 deadline, 4 error
}

// RunBench drives the open-loop storm and aggregates per-class percentiles.
// It errors only on harness-level failures; every overload symptom is data.
func RunBench(cfg BenchConfig) (BenchResult, error) {
	cfg.defaults()
	res := BenchResult{Schema: "slurm-bench/v1", Seed: cfg.Seed, OfferedRate: cfg.Rate}

	// Connection pool. Each client is one-shot (Retry nil): the bench
	// measures raw per-request outcomes, and retrying inside the harness
	// would double-count latency that belongs to the client's own policy.
	pool := make(chan *Client, cfg.Conns)
	for i := 0; i < cfg.Conns; i++ {
		cl, err := Dial(cfg.Addr)
		if err != nil {
			return res, fmt.Errorf("bench: dial %d: %w", i, err)
		}
		cl.Timeout = cfg.Timeout
		cl.DeadlineBudget = cfg.DeadlineBudget
		if cfg.HedgeDelay > 0 {
			cl.Hedge = &HedgePolicy{Delay: cfg.HedgeDelay}
		}
		pool <- cl
	}
	defer func() {
		for i := 0; i < cfg.Conns; i++ {
			(<-pool).Close()
		}
	}()

	root := des.NewRNG(cfg.Seed)
	arrive := root.Stream("bench/arrivals")
	mix := root.Stream("bench/mix")

	var (
		mu      sync.Mutex
		samples []benchSample
		wg      sync.WaitGroup
	)
	record := func(s benchSample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	end := start.Add(cfg.Duration)
	submitSeq := 0
	// Open-loop pacing: arrival times are a pre-committed schedule. Sleeping
	// per-gap would silently cap the rate at the sleep granularity, so the
	// loop sleeps only when ahead of schedule and bursts to catch up when
	// behind — the offered rate is honored regardless of server speed.
	next := start
	for {
		next = next.Add(time.Duration(arrive.Exp(1/cfg.Rate) * float64(time.Second)))
		if next.After(end) {
			break
		}
		if ahead := time.Until(next); ahead > 0 {
			time.Sleep(ahead)
		}
		res.Arrivals++

		class := classQuery
		switch u := mix.Float64(); {
		case u < cfg.SubmitFrac:
			class = classSubmit
		case u < cfg.SubmitFrac+cfg.ControlFrac:
			class = classControl
		}
		var req Request
		switch class {
		case classSubmit:
			submitSeq++
			req = Request{Op: "submit", App: cfg.App, Nodes: cfg.Nodes,
				Walltime: cfg.Walltime, Runtime: cfg.Runtime,
				Name:  fmt.Sprintf("bench-%d", submitSeq),
				Token: fmt.Sprintf("bench-%d-%d", cfg.Seed, submitSeq)}
		case classControl:
			// config is read-only, classed control, and always valid —
			// the operator's "is anyone home" request.
			req = Request{Op: "config"}
		default:
			req = Request{Op: "queue", History: mix.Float64() < 0.25}
		}

		select {
		case cl := <-pool:
			wg.Add(1)
			go func(cl *Client, class int, req Request) {
				defer wg.Done()
				defer func() { pool <- cl }()
				t0 := time.Now()
				_, err := cl.Do(req)
				lat := time.Since(t0)
				s := benchSample{class: class, latency: lat}
				switch e := err.(type) {
				case nil:
					s.outcome = 0
				case *BusyError:
					s.outcome = 1
					if e.Shed {
						s.outcome = 2
					}
				case *DeadlineError:
					s.outcome = 3
				default:
					s.outcome = 4
					// The transport is suspect; drop it so the next use
					// redials lazily.
					if isTransportError(err) {
						cl.Close()
						cl.conn = nil
					}
				}
				record(s)
			}(cl, class, req)
		default:
			// Every connection busy: in an open-loop world this request is
			// abandoned, not queued — exactly what a latency-sensitive
			// client would do.
			res.Dropped++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.DurationSec = elapsed.Seconds()

	// Aggregate per class.
	okSubmits := 0
	for class := 0; class < numClasses; class++ {
		cs := ClassStats{Class: className(class)}
		var lats []float64
		for _, s := range samples {
			if s.class != class {
				continue
			}
			cs.Sent++
			switch s.outcome {
			case 0:
				cs.OK++
			case 1:
				cs.Busy++
			case 2:
				cs.Shed++
			case 3:
				cs.Deadline++
			default:
				cs.Errors++
			}
			if s.outcome != 4 {
				lats = append(lats, float64(s.latency)/float64(time.Millisecond))
			}
		}
		if class == classSubmit {
			okSubmits = cs.OK
		}
		if len(lats) > 0 {
			cs.P50ms = stats.Percentile(lats, 50)
			cs.P95ms = stats.Percentile(lats, 95)
			cs.P99ms = stats.Percentile(lats, 99)
			cs.P999ms = stats.Percentile(lats, 99.9)
		}
		res.Classes = append(res.Classes, cs)
	}
	if elapsed > 0 {
		res.SubmitsPerSec = float64(okSubmits) / elapsed.Seconds()
	}

	// The server's own counters, via the health verb (bypasses admission,
	// so it answers even if the storm left the server browned out).
	if probe, err := Dial(cfg.Addr); err == nil {
		probe.Timeout = cfg.Timeout
		if hr, err := probe.HealthFull(); err == nil {
			res.Health = hr.Health
			res.Brownout = hr.Brownout
			res.Serve = hr.Serve
		}
		probe.Close()
	}
	return res, nil
}
