package slurm

import (
	"bufio"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestProtocolFaultVerbs drives requeue / down_node / up_node end to end
// over the wire.
func TestProtocolFaultVerbs(t *testing.T) {
	cl, _ := startServer(t)

	id, err := cl.Submit("minife", 2, 3600, 1800, "victim")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := cl.Queue(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != "RUNNING" {
		t.Fatalf("queue = %+v", jobs)
	}
	ni := jobs[0].NodeList[0]

	if err := cl.DownNode(ni); err != nil {
		t.Fatal(err)
	}
	nodes, err := cl.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if nodes[ni].State != "down" {
		t.Fatalf("node %d state = %q, want down", ni, nodes[ni].State)
	}
	if err := cl.DownNode(ni); err == nil {
		t.Fatal("double down_node succeeded")
	}
	if err := cl.UpNode(ni); err != nil {
		t.Fatal(err)
	}

	// The victim was requeued by the node failure and restarts once time
	// moves; requeue it once more explicitly via the protocol.
	if _, err := cl.Advance(100); err != nil {
		t.Fatal(err)
	}
	jobs, err = cl.Queue(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != "RUNNING" {
		t.Fatalf("queue after repair = %+v", jobs)
	}
	if err := cl.Requeue(id); err != nil {
		t.Fatal(err)
	}
	if err := cl.Requeue(id); err == nil {
		t.Fatal("requeue of non-running job succeeded")
	}
	if _, err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	hist, err := cl.Queue(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].State != "FINISHED" {
		t.Fatalf("history = %+v", hist)
	}
}

// TestServerRejectsOverlongLine: a request line beyond MaxLine draws an
// error response and the connection closes instead of the server buffering
// without bound.
func TestServerRejectsOverlongLine(t *testing.T) {
	cl, _ := startServer(t)
	conn, err := net.Dial("tcp", cl.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	big := strings.Repeat("x", MaxLine+2)
	if _, err := conn.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\n"))
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	if !sc.Scan() {
		t.Fatal("no error response before close")
	}
	if !strings.Contains(sc.Text(), "exceeds") {
		t.Fatalf("response = %s", sc.Text())
	}
	if sc.Scan() {
		t.Fatal("connection not closed after over-long request")
	}
}

// TestServerReadTimeout: an idle connection is dropped once its read
// deadline passes.
func TestServerReadTimeout(t *testing.T) {
	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	srv.ReadTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read returned data; want connection closed by idle timeout")
	}
}

// TestServerGracefulShutdown: Shutdown drains cleanly — the accept loop and
// every per-connection goroutine exit — and afterwards new requests fail
// rather than hang.
func TestServerGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	cl, srv := startServer(t)
	if _, err := cl.Submit("minife", 1, 1800, 900, "pre"); err != nil {
		t.Fatal(err)
	}
	// A handful of extra idle connections: Shutdown must reap their serve
	// goroutines too, not just the accept loop.
	for i := 0; i < 4; i++ {
		extra, err := Dial(cl.conn.RemoteAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer extra.Close()
	}
	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if _, err := cl.Do(Request{Op: "now"}); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	if _, err := Dial(cl.conn.RemoteAddr().String()); err == nil {
		// A dial may still connect if the OS queues it, but a request on
		// it must fail.
		t.Log("dial after shutdown accepted by OS backlog; tolerated")
	}
	// No server goroutine may survive Shutdown (the client-side conns held
	// by this test have no goroutines of their own).
	waitGoroutines(t, before+1)
}
