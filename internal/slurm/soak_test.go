package slurm

import (
	"errors"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// soakServerConfig is deliberately undersized: 64 clients against 2
// in-flight slots and a tight per-connection rate limit guarantees heavy
// shedding, which is the point — correctness must hold under it.
func soakServerConfig() Config {
	cfg := testControllerConfig()
	cfg.Overload = OverloadConfig{
		MaxConns:    128,
		MaxInflight: 2,
		RateLimit:   50,
		RateBurst:   3,
		RetryAfter:  5 * time.Millisecond,
	}
	return cfg
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing with a full stack dump if it never does.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	var sb strings.Builder
	pprof.Lookup("goroutine").WriteTo(&sb, 1)
	t.Fatalf("goroutine leak: %d running, want <= %d\n%s",
		runtime.NumGoroutine(), want, sb.String())
}

// TestSoakOverload is the acceptance soak: ≥64 concurrent clients against a
// server capped far below the offered load. Asserts zero duplicate job IDs
// for retried submits, every health probe answered within its deadline
// while mutations are shed, bounded memory, and zero leaked goroutines
// after Shutdown.
func TestSoakOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	ctl, err := NewController(soakServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 64, 8
	res, err := RunSoak(SoakConfig{
		Addr:             addr,
		Clients:          clients,
		SubmitsPerClient: perClient,
		Seed:             42,
		HealthInterval:   5 * time.Millisecond,
		HealthDeadline:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if err := res.Ok(clients * perClient); err != nil {
		t.Fatalf("%v (errors: %v)", err, res.Errors)
	}
	// The server must actually have been overloaded — a soak that never
	// sheds proves nothing.
	if res.Retries == 0 {
		t.Fatal("soak saw zero retries; server was never overloaded")
	}

	srv.Shutdown(5 * time.Second)
	// Shutdown waits for the accept loop and every connection goroutine;
	// nothing of the server may remain.
	waitGoroutines(t, before+1)

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if grew := int64(memAfter.HeapAlloc) - int64(memBefore.HeapAlloc); grew > 256<<20 {
		t.Fatalf("heap grew by %d MiB during soak; want bounded", grew>>20)
	}
}

// TestSoakHealthDuringShedding pins the health guarantee specifically: with
// zero in-flight slots available (MaxInflight saturated by a stalled
// request), health probes still answer.
func TestSoakHealthDuringShedding(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Overload = OverloadConfig{MaxInflight: 1, RetryAfter: 10 * time.Millisecond}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	// Fill the single in-flight slot manually so every admitted request
	// would shed...
	srv.sem <- struct{}{}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// ...which it does:
	var busy *BusyError
	if _, err := cl.Do(Request{Op: "queue"}); err == nil {
		t.Fatal("queue succeeded with zero in-flight slots")
	} else if !errors.As(err, &busy) || busy.RetryAfter <= 0 {
		t.Fatalf("queue error = %v, want BusyError with retry-after", err)
	}
	// But health bypasses admission entirely:
	h, err := cl.Health()
	if err != nil || h != HealthOK {
		t.Fatalf("health = %q, %v; want %q", h, err, HealthOK)
	}
}
