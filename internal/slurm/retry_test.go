package slurm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/des"
)

// appendRaw writes raw bytes onto the end of a state dir's journal, used to
// fake a torn final line left by a crash mid-append.
func appendRaw(t *testing.T, dir, raw string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(raw); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestRetryDelaySchedule: the backoff schedule without jitter is a pure
// function of the attempt number, the growth factor, and the caps.
func TestRetryDelaySchedule(t *testing.T) {
	p := &RetryPolicy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   200 * time.Millisecond,
		Multiplier: 2,
	}
	cases := []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 10 * time.Millisecond},
		{1, 0, 20 * time.Millisecond},
		{2, 0, 40 * time.Millisecond},
		{3, 0, 80 * time.Millisecond},
		{4, 0, 160 * time.Millisecond},
		{5, 0, 200 * time.Millisecond}, // capped at MaxDelay
		{9, 0, 200 * time.Millisecond},
		// A server retry-after hint raises the wait but never lowers it.
		{0, 50 * time.Millisecond, 50 * time.Millisecond},
		{3, 50 * time.Millisecond, 80 * time.Millisecond},
		{9, time.Second, time.Second}, // hint may exceed MaxDelay
	}
	for _, c := range cases {
		if got := p.Delay(c.attempt, c.retryAfter); got != c.want {
			t.Errorf("Delay(%d, %v) = %v, want %v", c.attempt, c.retryAfter, got, c.want)
		}
	}
}

// TestRetryDelayJitterDeterministic: with the named-RNG-stream pattern the
// jittered schedule is reproducible per seed, bounded by ±Jitter, and
// distinct across seeds.
func TestRetryDelayJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		rng := des.NewRNG(seed).Stream("slurm/client-retry")
		p := &RetryPolicy{
			BaseDelay:  10 * time.Millisecond,
			MaxDelay:   time.Second,
			Multiplier: 2,
			Jitter:     0.2,
			Rand:       rng.Float64,
		}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.Delay(i, 0)
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
		base := 10 * time.Millisecond << i
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", a[i], lo, hi)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestRetryAfterIsJitterFloor: regression for the hint/jitter ordering bug.
// The old code applied the retry-after floor first and multiplied jitter in
// afterwards, so a low jitter draw scheduled the retry *before* the time the
// server said it would start accepting again. The hint must be a hard floor
// on the final, post-jitter delay for every possible draw.
func TestRetryAfterIsJitterFloor(t *testing.T) {
	hint := 100 * time.Millisecond
	for _, draw := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		p := &RetryPolicy{
			BaseDelay:  time.Millisecond,
			MaxDelay:   time.Second,
			Multiplier: 2,
			Jitter:     0.2,
			Rand:       func() float64 { return draw },
		}
		for attempt := 0; attempt < 6; attempt++ {
			if got := p.Delay(attempt, hint); got < hint {
				t.Errorf("draw %.3f attempt %d: Delay = %v, below the %v server hint",
					draw, attempt, got, hint)
			}
		}
	}
	// Once the backoff itself exceeds the hint, the client's own jittered
	// schedule governs (the floor binds, it doesn't replace).
	p := &RetryPolicy{
		BaseDelay:  400 * time.Millisecond,
		MaxDelay:   time.Second,
		Multiplier: 2,
		Jitter:     0.2,
		Rand:       func() float64 { return 0.5 }, // jitter factor exactly 1
	}
	if got := p.Delay(0, hint); got != 400*time.Millisecond {
		t.Errorf("backoff above hint: Delay = %v, want 400ms", got)
	}
}

// TestRetryGiveUp: a client whose budget is exhausted stops retrying and
// surfaces the BUSY error with its hint.
func TestRetryGiveUp(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{MaxInflight: 1, RetryAfter: time.Millisecond})
	srv.sem <- struct{}{} // permanently saturated: every request sheds
	var sleeps []time.Duration
	cl.Retry = &RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Millisecond,
		Multiplier:  2,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	var busy *BusyError
	if _, err := cl.Do(Request{Op: "queue"}); !errors.As(err, &busy) {
		t.Fatalf("error = %v, want BusyError after give-up", err)
	}
	if len(sleeps) != 3 {
		t.Fatalf("slept %d times, want MaxAttempts-1 = 3", len(sleeps))
	}
	// Every sleep honored the server's retry-after floor.
	for i, d := range sleeps {
		if d < time.Millisecond {
			t.Fatalf("sleep %d = %v, below the 1ms retry-after hint", i, d)
		}
	}
}

// TestRetryBusyThenSuccess: a request shed while the server is saturated
// succeeds transparently once capacity frees up.
func TestRetryBusyThenSuccess(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{MaxInflight: 1, RetryAfter: time.Millisecond})
	srv.sem <- struct{}{}
	released := false
	cl.Retry = &RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Microsecond,
		Multiplier:  1,
		Sleep: func(time.Duration) {
			if !released {
				<-srv.sem // free the slot after the first shed
				released = true
			}
		},
	}
	if _, err := cl.Do(Request{Op: "queue"}); err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if !released {
		t.Fatal("request never shed; test proved nothing")
	}
}

// TestRetryTransportRedial: a connection killed under an idempotent request
// is transparently re-dialed; a tokened submit retried across the break
// dedupes to the original job.
func TestRetryTransportRedial(t *testing.T) {
	cl, _, _ := overloadServer(t, OverloadConfig{})
	cl.Retry = &RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Microsecond,
		Multiplier:  1,
		Sleep:       func(time.Duration) {},
	}
	id, err := cl.SubmitToken("tok-redial", "minife", 1, 1800, 900, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Kill the transport under the client.
	cl.conn.Close()
	again, err := cl.SubmitToken("tok-redial", "minife", 1, 1800, 900, "a")
	if err != nil {
		t.Fatalf("tokened submit across dead connection: %v", err)
	}
	if again != id {
		t.Fatalf("retried submit created job %d, original was %d", again, id)
	}
	// An untokened submit must NOT be retried over a broken transport —
	// the client cannot know whether the server executed it.
	cl.conn.Close()
	if _, err := cl.Submit("minife", 1, 1800, 900, "b"); err == nil {
		t.Fatal("untokened submit retried across transport failure")
	}
	// The connection is usable again afterwards (readonly ops do redial).
	if _, err := cl.Queue(false); err != nil {
		t.Fatalf("queue after redial: %v", err)
	}
}

// TestIdempotencyAcrossRecovery: submit with a token, crash the controller
// (journal handle abandoned mid-flight as in journal_test.go), restart from
// the same state directory, and retry the submit — the dedupe map must have
// survived via the journal, so no duplicate job appears.
func TestIdempotencyAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()

	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.SubmitToken("tok-crash", "minife", 2, 3600, 1800, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	c1.Advance(100)
	// Crash: no Close, no flush beyond the per-op WAL sync.

	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	again, err := c2.SubmitToken("tok-crash", "minife", 2, 3600, 1800, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Fatalf("post-recovery retry created job %d, original was %d", again, id)
	}
	if n := len(c2.Queue()); n != 1 {
		t.Fatalf("queue after recovery + retry = %d jobs, want 1", n)
	}
	// A fresh token still creates fresh work.
	if _, err := c2.SubmitToken("tok-new", "minife", 1, 1800, 900, "new"); err != nil {
		t.Fatal(err)
	}
	if n := len(c2.Queue()); n != 2 {
		t.Fatalf("queue = %d jobs, want 2", n)
	}
}

// TestIdempotencyTornSubmit: if the crash tore the tokened submit's journal
// line (the client never got an ack), recovery drops it and a retry of the
// same token legitimately creates the job.
func TestIdempotencyTornSubmit(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SubmitToken("tok-full", "minife", 1, 1800, 900, "acked"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append of a second tokened submit: a torn,
	// unacknowledged final line.
	appendRaw(t, dir, `{"seq":99,"op":"submit","app":"minife","nodes":1,"token":"tok-to`)

	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := len(c2.Queue()); n != 1 {
		t.Fatalf("recovered queue = %d jobs, want 1", n)
	}
	// The torn token was never acknowledged, so its retry must create a
	// new job rather than dedupe against nothing.
	if _, err := c2.SubmitToken("tok-torn", "minife", 1, 1800, 900, "retried"); err != nil {
		t.Fatal(err)
	}
	if n := len(c2.Queue()); n != 2 {
		t.Fatalf("queue after retry = %d jobs, want 2", n)
	}
}
