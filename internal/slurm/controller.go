package slurm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/job"
	"repro/internal/metrics"
)

// Controller is the slurmctld-equivalent: it owns a batch-system instance,
// admits interactive submissions against partition limits, orders the queue
// by multifactor priority, and answers queue/node introspection. Time is
// simulated; clients advance it explicitly (Advance), which is what lets a
// whole day of batch operation replay in milliseconds.
//
// All methods are safe for concurrent use (the protocol server fields many
// connections against one controller).
type Controller struct {
	mu  sync.Mutex
	cfg Config
	sys *core.System
}

// NewController builds a controller from a validated configuration.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	share := cfg.Share
	sys, err := core.NewSystem(core.Config{
		Machine: cfg.Machine,
		Policy:  cfg.Policy,
		Sharing: &share,
	})
	if err != nil {
		return nil, err
	}
	engine := sys.Engine()
	if cfg.Priority.WeightFairshare > 0 {
		engine.SetQueueOrder(cfg.Priority.LessWithUsage(
			engine.Now, cfg.Machine.Nodes, UsageFromEngine(engine)))
	} else {
		engine.SetQueueOrder(cfg.Priority.Less(engine.Now, cfg.Machine.Nodes))
	}
	return &Controller{cfg: cfg, sys: sys}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Now returns the simulated clock.
func (c *Controller) Now() des.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Now()
}

// Submit admits a job at the current simulated time. Partition limits are
// enforced here, as slurmctld does at submission. Optional dependency IDs
// implement sbatch --dependency=afterok.
func (c *Controller) Submit(appName string, nodes int, wall, runtime des.Duration, name string, after ...cluster.JobID) (cluster.JobID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Partition.MaxTime > 0 && wall > c.cfg.Partition.MaxTime {
		return cluster.NoJob, fmt.Errorf("slurm: walltime %v exceeds partition MaxTime %v",
			wall, c.cfg.Partition.MaxTime)
	}
	maxNodes := c.cfg.Partition.MaxNodes
	if maxNodes == 0 {
		maxNodes = c.cfg.Machine.Nodes
	}
	if nodes > maxNodes {
		return cluster.NoJob, fmt.Errorf("slurm: %d nodes exceeds partition MaxNodes %d",
			nodes, maxNodes)
	}
	id, err := c.sys.Submit(core.JobSpec{
		App: appName, Nodes: nodes, Walltime: wall, Runtime: runtime, Name: name,
		After: after,
	})
	if err != nil {
		return cluster.NoJob, err
	}
	// Flush the arrival event so the job is immediately visible in squeue
	// (and can start right away if resources are free).
	c.sys.RunUntil(c.sys.Now())
	return id, nil
}

// Cancel cancels a pending job.
func (c *Controller) Cancel(id cluster.JobID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Engine().CancelPending(id)
}

// Advance moves the simulated clock forward by d, executing every event in
// the window.
func (c *Controller) Advance(d des.Duration) des.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		return c.sys.Now()
	}
	c.sys.RunUntil(c.sys.Now() + d)
	return c.sys.Now()
}

// Drain runs the simulation until all submitted work completes.
func (c *Controller) Drain() des.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sys.Run()
	return c.sys.Now()
}

// Stats computes the evaluation metrics for the work so far.
func (c *Controller) Stats() metrics.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Metrics()
}

// DrainNode removes a node from scheduling (running jobs finish in place;
// no new work lands) — scontrol update State=DRAIN.
func (c *Controller) DrainNode(ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.sys.Cluster()
	if ni < 0 || ni >= cl.Size() {
		return fmt.Errorf("slurm: node %d out of range (cluster has %d nodes)", ni, cl.Size())
	}
	cl.SetDrained(ni, true)
	return nil
}

// ResumeNode returns a drained node to service and kicks the scheduler so
// waiting work can use it immediately.
func (c *Controller) ResumeNode(ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.sys.Cluster()
	if ni < 0 || ni >= cl.Size() {
		return fmt.Errorf("slurm: node %d out of range (cluster has %d nodes)", ni, cl.Size())
	}
	cl.SetDrained(ni, false)
	c.sys.Engine().Kick()
	return nil
}

// JobInfo is one squeue row.
type JobInfo struct {
	ID       int64   `json:"id"`
	Name     string  `json:"name"`
	App      string  `json:"app"`
	State    string  `json:"state"`
	Nodes    int     `json:"nodes"`
	Submit   float64 `json:"submit"`
	Start    float64 `json:"start,omitempty"`
	End      float64 `json:"end,omitempty"`
	Limit    float64 `json:"limit"`
	NodeList []int   `json:"nodelist,omitempty"`
	Shared   bool    `json:"shared,omitempty"`
	Priority float64 `json:"priority"`
	// Reason explains why a pending job is not running ("Dependency" for
	// dependency-held jobs), mirroring squeue's REASON column.
	Reason string `json:"reason,omitempty"`
}

// Queue returns pending and running jobs, running first (like squeue's
// default sort), pending in priority order.
func (c *Controller) Queue() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.sys.Now()
	var out []JobInfo
	for _, r := range c.sys.Running() {
		out = append(out, JobInfo{
			ID: int64(r.Job.ID), Name: r.Job.Name, App: r.Job.App.Name,
			State: r.Job.State().String(), Nodes: r.Job.Nodes,
			Submit: float64(r.Job.Submit), Start: float64(r.Job.StartTime()),
			Limit: float64(r.Job.ReqWalltime), NodeList: r.NodeIDs,
			Shared:   !r.Exclusive,
			Priority: c.cfg.Priority.Priority(r.Job, now, c.cfg.Machine.Nodes),
		})
	}
	for _, j := range c.sys.Pending() {
		out = append(out, JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			Priority: c.cfg.Priority.Priority(j, now, c.cfg.Machine.Nodes),
		})
	}
	for _, j := range c.sys.Held() {
		out = append(out, JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			Reason: "Dependency",
		})
	}
	return out
}

// History returns finished and cancelled jobs (sacct-like).
func (c *Controller) History() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []JobInfo
	add := func(j *job.Job) {
		info := JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			End: float64(j.EndTime()),
		}
		if j.State() == job.Finished {
			info.Start = float64(j.StartTime())
			info.Shared = j.EverShared()
		}
		out = append(out, info)
	}
	for _, j := range c.sys.Finished() {
		add(j)
	}
	for _, j := range c.sys.Engine().Rejected() {
		add(j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// NodeInfo is one sinfo row.
type NodeInfo struct {
	ID          int     `json:"id"`
	State       string  `json:"state"` // idle | allocated | shared
	Jobs        []int64 `json:"jobs,omitempty"`
	FreeThreads int     `json:"free_threads"`
	FreeMemMB   int     `json:"free_mem_mb"`
}

// Nodes returns per-node allocation state.
func (c *Controller) Nodes() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.sys.Cluster()
	out := make([]NodeInfo, 0, cl.Size())
	for i := 0; i < cl.Size(); i++ {
		n := cl.Node(i)
		state := "idle"
		switch {
		case n.Drained() && n.Idle():
			state = "drained"
		case n.Drained():
			state = "draining"
		case n.SharingDegree() >= 2:
			state = "shared"
		case !n.Idle():
			state = "allocated"
		}
		var jobs []int64
		for _, id := range n.Jobs() {
			jobs = append(jobs, int64(id))
		}
		out = append(out, NodeInfo{
			ID: i, State: state, Jobs: jobs,
			FreeThreads: n.FreeThreads(), FreeMemMB: n.MemFreeMB(),
		})
	}
	return out
}
