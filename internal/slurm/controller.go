package slurm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/acct"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/vfs"
)

// Controller is the slurmctld-equivalent: it owns a batch-system instance,
// admits interactive submissions against partition limits, orders the queue
// by multifactor priority, and answers queue/node introspection. Time is
// simulated; clients advance it explicitly (Advance), which is what lets a
// whole day of batch operation replay in milliseconds.
//
// A controller opened with OpenJournaled additionally write-ahead-journals
// every external operation, so a crashed or killed controller restarts into
// exactly the state it died with (see journal.go).
//
// All methods are safe for concurrent use (the protocol server fields many
// connections against one controller).
type Controller struct {
	mu  sync.Mutex
	cfg Config
	sys *core.System

	// Journaling state; jr is nil for an in-memory-only controller.
	jr       *journal
	finSeen  int
	killSeen int
	rejSeen  int

	// seq is the last assigned journal sequence number; entries is the
	// complete in-memory operation log (kept only when journaling or HA is
	// on). The disk snapshot is a compaction — a concatenation, never a
	// discard — so the in-memory copy mirrors what disk already retains and
	// is what the primary streams to a standby (including full resyncs).
	seq     int64
	entries []Entry

	// tokens maps client-supplied submit idempotency tokens to the job ID
	// they created. Tokens ride in the journal's submit entries, so the
	// dedupe map survives crash recovery.
	tokens map[string]cluster.JobID
	// br is the journal circuit breaker (nil when disabled): consecutive
	// append failures trip the controller into read-only DEGRADED mode.
	br *breaker
	// quarantined pins the controller read-only (DEGRADED): recovery under
	// JournalCorruptPolicy=QUARANTINE salvaged a corrupt log, so the state
	// is a committed prefix, safe to read but not to extend. Cleared only by
	// an HA full resync (which rewrites the log from the primary's copy).
	quarantined bool
	// recovery is what opening the journal found (nil for in-memory
	// controllers).
	recovery *RecoveryInfo

	// HA pair state (see ha.go). epoch is the fencing term: zero while HA
	// is off (so journal entries stay byte-compatible), ≥1 once StartHA has
	// run, bumped by every promotion.
	haOn      bool
	haStopped bool
	haOpts    HAOptions
	haStop    chan struct{}
	haWG      sync.WaitGroup
	epoch     int64
	standby   bool
	needFull  bool      // follower requires a full resync (set on demotion)
	lastHeard time.Time // follower: last replicate/heartbeat from the primary
	repl      *replicator
}

// buildSystem constructs the simulation core for a validated configuration,
// with the queue ordered by the configured multifactor priority.
func buildSystem(cfg Config) (*core.System, error) {
	share := cfg.Share
	var faults *fault.Config
	if cfg.Fault.Active() {
		f := cfg.Fault
		faults = &f
	}
	sys, err := core.NewSystem(core.Config{
		Machine: cfg.Machine,
		Policy:  cfg.Policy,
		Sharing: &share,
		Faults:  faults,
	})
	if err != nil {
		return nil, err
	}
	engine := sys.Engine()
	if cfg.Priority.WeightFairshare > 0 {
		engine.SetQueueOrder(cfg.Priority.LessWithUsage(
			engine.Now, cfg.Machine.Nodes, UsageFromEngine(engine)))
	} else {
		engine.SetQueueOrder(cfg.Priority.Less(engine.Now, cfg.Machine.Nodes))
	}
	return sys, nil
}

// NewController builds a controller from a validated configuration.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := buildSystem(cfg)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, sys: sys, tokens: make(map[string]cluster.JobID)}
	if cfg.Overload.BreakerThreshold > 0 {
		c.br = newBreaker(cfg.Overload.BreakerThreshold, cfg.Overload.BreakerCooldown)
	}
	return c, nil
}

// OpenJournaled builds a controller whose state survives crashes: every
// external operation is write-ahead-journaled under dir, and any journal
// already there is replayed first, restoring the pre-crash queue, node, and
// clock state. snapshotEvery bounds the live journal: after that many
// appends it is compacted into the snapshot (0 = never compact). The same
// configuration must be supplied across restarts; the simulation is
// deterministic, so replay reproduces the original run exactly.
func OpenJournaled(cfg Config, dir string, snapshotEvery int) (*Controller, error) {
	return OpenJournaledFS(cfg, vfs.OS{}, dir, snapshotEvery)
}

// OpenJournaledFS is OpenJournaled on an explicit filesystem, the seam the
// storage-fault tests inject a vfs.Faulty through. Recovery follows the
// state machine in journal.go: a torn journal tail is truncated and the
// committed prefix replayed; corruption either refuses to open
// (JournalCorruptPolicy=FAIL, the default) or salvages the committed prefix
// and starts the controller read-only DEGRADED with the damaged records
// preserved in quarantine.jsonl (QUARANTINE).
func OpenJournaledFS(cfg Config, fsys vfs.FS, dir string, snapshotEvery int) (*Controller, error) {
	c, err := NewController(cfg)
	if err != nil {
		return nil, err
	}
	j, entries, info, err := openJournal(fsys, dir, snapshotEvery, cfg.JournalCorruptPolicy)
	if err != nil {
		return nil, err
	}
	if err := c.replay(entries); err != nil {
		j.close()
		return nil, err
	}
	// Completions reproduced by replay were already journaled before the
	// crash; start auditing after them.
	c.finSeen = len(c.sys.Finished())
	c.killSeen = len(c.sys.Engine().Killed())
	c.rejSeen = len(c.sys.Engine().Rejected())
	c.entries = entries
	if len(entries) > 0 {
		c.seq = entries[len(entries)-1].Seq
	}
	c.jr = j
	c.recovery = info
	c.quarantined = info.Quarantined
	return c, nil
}

// Recovery reports what opening the journal found (nil for in-memory
// controllers).
func (c *Controller) Recovery() *RecoveryInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovery
}

// replay re-applies recovered journal entries in order. Audit entries are
// skipped; any operation that errors or assigns a different job ID than the
// original run means the journal and configuration have diverged.
func (c *Controller) replay(entries []Entry) error {
	for _, e := range entries {
		// Recover the fencing term: the effective epoch is the highest ever
		// journaled, so a restarted deposed primary cannot forget it was
		// deposed.
		if e.Epoch > c.epoch {
			c.epoch = e.Epoch
		}
		var err error
		switch e.Op {
		case "record":
			continue
		case "epoch":
			continue // promotion marker; handled by the epoch scan above
		case "brownout":
			continue // degradation audit trail, not an input
		case "submit":
			after := make([]cluster.JobID, len(e.After))
			for i, a := range e.After {
				after[i] = cluster.JobID(a)
			}
			// The journaled ID is authoritative: a submit whose append
			// failed (and was rolled back) still burned a live ID, so the
			// counter may trail the log. Fast-forward, then require an exact
			// match — a journal ID *behind* the counter is real divergence.
			c.sys.SyncNextJobID(cluster.JobID(e.ID))
			var id cluster.JobID
			id, err = c.applySubmit(e.App, e.Nodes,
				des.Duration(e.Walltime), des.Duration(e.Runtime), e.Name, after)
			if err == nil && int64(id) != e.ID {
				err = fmt.Errorf("job ID diverged: got %d, journal has %d", id, e.ID)
			}
			if err == nil && e.Token != "" {
				// Restore the idempotency mapping: a retried submit after
				// recovery must dedupe exactly as before the crash.
				c.tokens[e.Token] = id
			}
		case "cancel":
			err = c.sys.Engine().CancelPending(cluster.JobID(e.ID))
		case "advance":
			c.applyAdvance(des.Duration(e.Seconds))
		case "drain":
			c.sys.Run()
		case "drain_node":
			err = c.applyDrainNode(e.Node)
		case "resume_node":
			err = c.applyResumeNode(e.Node)
		case "requeue":
			err = c.applyRequeue(cluster.JobID(e.ID))
		case "down_node":
			err = c.applyDownNode(e.Node)
		case "up_node":
			err = c.applyUpNode(e.Node)
		default:
			err = fmt.Errorf("unknown op %q", e.Op)
		}
		if err != nil {
			return fmt.Errorf("slurm: replay entry %d (%s): %w", e.Seq, e.Op, err)
		}
	}
	return nil
}

// ErrDegraded is returned for mutations while the journal circuit breaker
// is tripped: the controller cannot make writes durable, so it serves
// queries only rather than acknowledging work it could lose.
var ErrDegraded = fmt.Errorf("slurm: controller degraded (journal unavailable), mutations rejected")

// checkWritable gates mutations: a standby serves reads only, a primary
// whose replication lease has lapsed is fenced, and a tripped journal
// breaker means read-only DEGRADED. Callers hold c.mu.
func (c *Controller) checkWritable() error {
	if c.standby {
		return ErrNotPrimary
	}
	if c.repl != nil && c.repl.leaseLost(time.Now()) {
		return ErrFenced
	}
	if c.quarantined {
		return ErrDegraded
	}
	if c.br != nil && !c.br.writable() {
		return ErrDegraded
	}
	return nil
}

// Health reports the controller's health: "degraded" while the journal
// breaker is tripped, "fenced" for a primary whose replication lease has
// lapsed, "ok" otherwise. (The protocol server layers "draining" on top
// during shutdown.)
func (c *Controller) Health() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quarantined {
		return HealthDegraded
	}
	if c.br != nil && c.br.degraded() {
		return HealthDegraded
	}
	if !c.standby && c.repl != nil && c.repl.leaseLost(time.Now()) {
		return HealthFenced
	}
	return HealthOK
}

// log durably appends one operation entry (plus audit records for any
// completions it caused), then replicates everything the standby is missing.
// Callers hold c.mu. Replication failures come back wrapped in
// errReplication so callers can tell "not locally durable" from "locally
// durable but not yet on the standby".
func (c *Controller) log(e Entry) error {
	return c.logB(budget{}, e)
}

// logB is log with the request's deadline budget threaded through: once the
// entry is locally durable, an already-expired budget skips the synchronous
// replication round-trip — the client stopped waiting, so nobody reads the
// ack it would buy, and the heartbeat loop pushes the pending entry within
// one Heartbeat anyway. The caller gets ErrDeadlineExceeded (wrapped), which
// is not an acknowledgement, so HA's ack-after-replication promise holds.
func (c *Controller) logB(b budget, e Entry) error {
	if err := c.logLocal(e); err != nil {
		return err
	}
	if c.repl != nil && b.expired(time.Now()) {
		return fmt.Errorf("%w: %s committed locally, replication deferred to heartbeat", ErrDeadlineExceeded, e.Op)
	}
	return c.replicateLocked()
}

// checkBudget refuses a mutation whose deadline budget is already spent,
// before it costs an apply, an fsync, or a replication round-trip. Callers
// hold c.mu.
func (c *Controller) checkBudget(b budget) error {
	if b.expired(time.Now()) {
		return fmt.Errorf("%w: budget spent before work began", ErrDeadlineExceeded)
	}
	return nil
}

// noteBrownout journals one brownout ladder transition (Op:"brownout",
// skipped on replay like audit records) so post-incident analysis can line
// degradation up against the operation log. Best-effort: an append failure
// already surfaces through the breaker and journal_sync_errors; a follower
// journals only what the primary streams, so standbys skip it.
func (c *Controller) noteBrownout(level int, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if (c.jr == nil && !c.haOn) || c.standby {
		return
	}
	c.logLocal(Entry{Op: "brownout", Name: name, ID: int64(level)})
}

// logLocal appends one entry and the pending completion audits to the local
// journal and the in-memory log, feeding the circuit breaker with the
// outcome. Callers hold c.mu. Without a journal and without HA the log is
// not retained at all (in-memory controllers stay cheap).
func (c *Controller) logLocal(e Entry) error {
	if c.jr == nil && !c.haOn {
		return nil
	}
	err := c.appendEntry(e)
	if err == nil {
		err = c.auditCompletions()
	}
	if c.br != nil {
		if err != nil {
			c.br.failure()
		} else {
			c.br.success()
		}
	}
	return err
}

// appendEntry stamps seq and epoch on one entry, persists it, and records it
// in the in-memory log. Callers hold c.mu.
func (c *Controller) appendEntry(e Entry) error {
	e.Seq = c.seq + 1
	if c.haOn && e.Epoch == 0 {
		e.Epoch = c.epoch
	}
	if c.jr != nil {
		if err := c.jr.append(e); err != nil {
			return err
		}
	}
	c.seq = e.Seq
	c.entries = append(c.entries, e)
	return nil
}

// auditCompletions journals an acct.Record for every job that reached a
// terminal state since the last audit.
func (c *Controller) auditCompletions() error {
	audit := func(jobs []*job.Job, seen *int) error {
		for ; *seen < len(jobs); *seen++ {
			rec := acct.FromJob(jobs[*seen])
			if err := c.appendEntry(Entry{Op: "record", Record: &rec}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := audit(c.sys.Finished(), &c.finSeen); err != nil {
		return err
	}
	if err := audit(c.sys.Engine().Killed(), &c.killSeen); err != nil {
		return err
	}
	return audit(c.sys.Engine().Rejected(), &c.rejSeen)
}

// Close stops HA replication, then flushes and releases the journal (no-op
// without one).
func (c *Controller) Close() error {
	c.StopHA()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jr == nil {
		return nil
	}
	err := c.jr.close()
	c.jr = nil
	return err
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Now returns the simulated clock.
func (c *Controller) Now() des.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Now()
}

// Submit admits a job at the current simulated time. Partition limits are
// enforced here, as slurmctld does at submission. Optional dependency IDs
// implement sbatch --dependency=afterok.
func (c *Controller) Submit(appName string, nodes int, wall, runtime des.Duration, name string, after ...cluster.JobID) (cluster.JobID, error) {
	return c.SubmitToken("", appName, nodes, wall, runtime, name, after...)
}

// SubmitToken is Submit with a client-supplied idempotency token. A repeat
// of an already-accepted token returns the original job's ID without
// enqueueing anything, so a client whose submit response was lost can retry
// safely. The token is journaled with the submit entry, making the dedupe
// durable across crash recovery.
func (c *Controller) SubmitToken(token, appName string, nodes int, wall, runtime des.Duration, name string, after ...cluster.JobID) (cluster.JobID, error) {
	return c.submitTokenB(budget{}, token, appName, nodes, wall, runtime, name, after...)
}

// submitTokenB is SubmitToken with the request's deadline budget: an
// already-spent budget is refused before the apply and the fsync, and a
// budget that expires between the local commit and replication skips the
// synchronous replication round-trip (see logB).
func (c *Controller) submitTokenB(b budget, token, appName string, nodes int, wall, runtime des.Duration, name string, after ...cluster.JobID) (cluster.JobID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if token != "" {
		if id, ok := c.tokens[token]; ok {
			return id, nil
		}
	}
	if err := c.checkBudget(b); err != nil {
		return cluster.NoJob, err
	}
	if err := c.checkWritable(); err != nil {
		return cluster.NoJob, err
	}
	id, err := c.applySubmit(appName, nodes, wall, runtime, name, after)
	if err != nil {
		return cluster.NoJob, err
	}
	deps := make([]int64, len(after))
	for i, a := range after {
		deps[i] = int64(a)
	}
	err = c.logB(b, Entry{Op: "submit", App: appName, Nodes: nodes,
		Walltime: float64(wall), Runtime: float64(runtime), Name: name,
		After: deps, ID: int64(id), Token: token})
	// Register the token once the submit is locally durable, even if
	// replication to the standby failed or was deferred past the deadline:
	// the job exists here, so a retry of the same token must dedupe rather
	// than double-enqueue. (A deadline error from logB means the entry WAS
	// committed locally — the pre-work budget check runs before the apply.)
	if token != "" && (err == nil || errors.Is(err, errReplication) || errors.Is(err, ErrDeadlineExceeded)) {
		c.tokens[token] = id
	}
	return id, err
}

func (c *Controller) applySubmit(appName string, nodes int, wall, runtime des.Duration, name string, after []cluster.JobID) (cluster.JobID, error) {
	if c.cfg.Partition.MaxTime > 0 && wall > c.cfg.Partition.MaxTime {
		return cluster.NoJob, fmt.Errorf("slurm: walltime %v exceeds partition MaxTime %v",
			wall, c.cfg.Partition.MaxTime)
	}
	maxNodes := c.cfg.Partition.MaxNodes
	if maxNodes == 0 {
		maxNodes = c.cfg.Machine.Nodes
	}
	if nodes > maxNodes {
		return cluster.NoJob, fmt.Errorf("slurm: %d nodes exceeds partition MaxNodes %d",
			nodes, maxNodes)
	}
	id, err := c.sys.Submit(core.JobSpec{
		App: appName, Nodes: nodes, Walltime: wall, Runtime: runtime, Name: name,
		After: after,
	})
	if err != nil {
		return cluster.NoJob, err
	}
	// Flush the arrival event so the job is immediately visible in squeue
	// (and can start right away if resources are free).
	c.sys.RunUntil(c.sys.Now())
	return id, nil
}

// Cancel cancels a pending job.
func (c *Controller) Cancel(id cluster.JobID) error {
	return c.cancelB(budget{}, id)
}

func (c *Controller) cancelB(b budget, id cluster.JobID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.sys.Engine().CancelPending(id); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "cancel", ID: int64(id)})
}

// Advance moves the simulated clock forward by d, executing every event in
// the window.
func (c *Controller) Advance(d des.Duration) des.Time {
	now, _ := c.AdvanceChecked(d)
	return now
}

// AdvanceChecked is Advance with durability errors surfaced: it rejects
// while the controller is DEGRADED and reports a failed journal append.
func (c *Controller) AdvanceChecked(d des.Duration) (des.Time, error) {
	return c.advanceB(budget{}, d)
}

func (c *Controller) advanceB(b budget, d des.Duration) (des.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return c.sys.Now(), err
	}
	if err := c.checkWritable(); err != nil {
		return c.sys.Now(), err
	}
	if d < 0 {
		return c.sys.Now(), nil
	}
	c.applyAdvance(d)
	err := c.logB(b, Entry{Op: "advance", Seconds: float64(d)})
	return c.sys.Now(), err
}

func (c *Controller) applyAdvance(d des.Duration) {
	c.sys.RunUntil(c.sys.Now() + d)
}

// Drain runs the simulation until all submitted work completes.
func (c *Controller) Drain() des.Time {
	now, _ := c.DrainChecked()
	return now
}

// DrainChecked is Drain with durability errors surfaced, as AdvanceChecked.
func (c *Controller) DrainChecked() (des.Time, error) {
	return c.drainB(budget{})
}

func (c *Controller) drainB(b budget) (des.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return c.sys.Now(), err
	}
	if err := c.checkWritable(); err != nil {
		return c.sys.Now(), err
	}
	c.sys.Run()
	err := c.logB(b, Entry{Op: "drain"})
	return c.sys.Now(), err
}

// Requeue evicts a running job and returns it to the queue — scontrol
// requeue. Lost progress is charged and the eviction counts against the
// job's retry budget.
func (c *Controller) Requeue(id cluster.JobID) error {
	return c.requeueB(budget{}, id)
}

func (c *Controller) requeueB(b budget, id cluster.JobID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.applyRequeue(id); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "requeue", ID: int64(id)})
}

func (c *Controller) applyRequeue(id cluster.JobID) error {
	if err := c.sys.Engine().RequeueRunning(id); err != nil {
		return err
	}
	c.sys.RunUntil(c.sys.Now())
	return nil
}

// DownNode forces a node down — scontrol update State=DOWN. Resident jobs
// are evicted and requeued.
func (c *Controller) DownNode(ni int) error {
	return c.downNodeB(budget{}, ni)
}

func (c *Controller) downNodeB(b budget, ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.applyDownNode(ni); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "down_node", Node: ni})
}

func (c *Controller) applyDownNode(ni int) error {
	if err := c.sys.Engine().FailNode(ni); err != nil {
		return err
	}
	c.sys.RunUntil(c.sys.Now())
	return nil
}

// UpNode returns a down node to service — scontrol update State=RESUME on a
// DOWN node.
func (c *Controller) UpNode(ni int) error {
	return c.upNodeB(budget{}, ni)
}

func (c *Controller) upNodeB(b budget, ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.applyUpNode(ni); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "up_node", Node: ni})
}

func (c *Controller) applyUpNode(ni int) error {
	if err := c.sys.Engine().RepairNode(ni); err != nil {
		return err
	}
	c.sys.RunUntil(c.sys.Now())
	return nil
}

// Stats computes the evaluation metrics for the work so far.
func (c *Controller) Stats() metrics.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Metrics()
}

// DrainNode removes a node from scheduling (running jobs finish in place;
// no new work lands) — scontrol update State=DRAIN.
func (c *Controller) DrainNode(ni int) error {
	return c.drainNodeB(budget{}, ni)
}

func (c *Controller) drainNodeB(b budget, ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.applyDrainNode(ni); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "drain_node", Node: ni})
}

func (c *Controller) applyDrainNode(ni int) error {
	cl := c.sys.Cluster()
	if ni < 0 || ni >= cl.Size() {
		return fmt.Errorf("slurm: node %d out of range (cluster has %d nodes)", ni, cl.Size())
	}
	cl.SetDrained(ni, true)
	return nil
}

// ResumeNode returns a drained node to service and kicks the scheduler so
// waiting work can use it immediately.
func (c *Controller) ResumeNode(ni int) error {
	return c.resumeNodeB(budget{}, ni)
}

func (c *Controller) resumeNodeB(b budget, ni int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkBudget(b); err != nil {
		return err
	}
	if err := c.checkWritable(); err != nil {
		return err
	}
	if err := c.applyResumeNode(ni); err != nil {
		return err
	}
	return c.logB(b, Entry{Op: "resume_node", Node: ni})
}

func (c *Controller) applyResumeNode(ni int) error {
	cl := c.sys.Cluster()
	if ni < 0 || ni >= cl.Size() {
		return fmt.Errorf("slurm: node %d out of range (cluster has %d nodes)", ni, cl.Size())
	}
	cl.SetDrained(ni, false)
	c.sys.Engine().Kick()
	return nil
}

// JobInfo is one squeue row.
type JobInfo struct {
	ID       int64   `json:"id"`
	Name     string  `json:"name"`
	App      string  `json:"app"`
	State    string  `json:"state"`
	Nodes    int     `json:"nodes"`
	Submit   float64 `json:"submit"`
	Start    float64 `json:"start,omitempty"`
	End      float64 `json:"end,omitempty"`
	Limit    float64 `json:"limit"`
	NodeList []int   `json:"nodelist,omitempty"`
	Shared   bool    `json:"shared,omitempty"`
	Priority float64 `json:"priority"`
	// Reason explains why a pending job is not running ("Dependency" for
	// dependency-held jobs), mirroring squeue's REASON column.
	Reason string `json:"reason,omitempty"`
}

// Queue returns pending and running jobs, running first (like squeue's
// default sort), pending in priority order.
func (c *Controller) Queue() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.sys.Now()
	var out []JobInfo
	for _, r := range c.sys.Running() {
		out = append(out, JobInfo{
			ID: int64(r.Job.ID), Name: r.Job.Name, App: r.Job.App.Name,
			State: r.Job.State().String(), Nodes: r.Job.Nodes,
			Submit: float64(r.Job.Submit), Start: float64(r.Job.StartTime()),
			Limit: float64(r.Job.ReqWalltime), NodeList: r.NodeIDs,
			Shared:   !r.Exclusive,
			Priority: c.cfg.Priority.Priority(r.Job, now, c.cfg.Machine.Nodes),
		})
	}
	for _, j := range c.sys.Pending() {
		out = append(out, JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			Priority: c.cfg.Priority.Priority(j, now, c.cfg.Machine.Nodes),
		})
	}
	for _, j := range c.sys.Held() {
		out = append(out, JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			Reason: "Dependency",
		})
	}
	return out
}

// History returns finished and cancelled jobs (sacct-like).
func (c *Controller) History() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []JobInfo
	add := func(j *job.Job) {
		info := JobInfo{
			ID: int64(j.ID), Name: j.Name, App: j.App.Name,
			State: j.State().String(), Nodes: j.Nodes,
			Submit: float64(j.Submit), Limit: float64(j.ReqWalltime),
			End: float64(j.EndTime()),
		}
		if j.State() == job.Finished {
			info.Start = float64(j.StartTime())
			info.Shared = j.EverShared()
		}
		out = append(out, info)
	}
	for _, j := range c.sys.Finished() {
		add(j)
	}
	for _, j := range c.sys.Engine().Killed() {
		add(j)
	}
	for _, j := range c.sys.Engine().Rejected() {
		add(j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// NodeInfo is one sinfo row.
type NodeInfo struct {
	ID          int     `json:"id"`
	State       string  `json:"state"` // idle | allocated | shared
	Jobs        []int64 `json:"jobs,omitempty"`
	FreeThreads int     `json:"free_threads"`
	FreeMemMB   int     `json:"free_mem_mb"`
}

// Nodes returns per-node allocation state.
func (c *Controller) Nodes() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.sys.Cluster()
	out := make([]NodeInfo, 0, cl.Size())
	for i := 0; i < cl.Size(); i++ {
		n := cl.Node(i)
		state := "idle"
		switch {
		case n.Down():
			state = "down"
		case n.Drained() && n.Idle():
			state = "drained"
		case n.Drained():
			state = "draining"
		case n.SharingDegree() >= 2:
			state = "shared"
		case !n.Idle():
			state = "allocated"
		}
		var jobs []int64
		for _, id := range n.Jobs() {
			jobs = append(jobs, int64(id))
		}
		out = append(out, NodeInfo{
			ID: i, State: state, Jobs: jobs,
			FreeThreads: n.FreeThreads(), FreeMemMB: n.MemFreeMB(),
		})
	}
	return out
}
