package slurm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
)

// --- shedder units -----------------------------------------------------

// TestShedderHysteresis: the level climbs one class per sustained window of
// pressure and descends one class per sustained window of quiet — never
// faster, and never on a single slow sample.
func TestShedderHysteresis(t *testing.T) {
	window := 100 * time.Millisecond
	s := newShedder(10*time.Millisecond, window)
	t0 := time.Unix(1000, 0)

	// One slow observation: pressure starts, but no step yet.
	s.observe(50*time.Millisecond, t0)
	if got := s.current(t0); got != shedNone {
		t.Fatalf("level after one slow sample = %d, want %d", got, shedNone)
	}
	// Sustained pressure for a full window: one step, not two.
	s.observe(50*time.Millisecond, t0.Add(window))
	if got := s.current(t0.Add(window)); got != shedQueries {
		t.Fatalf("level after sustained window = %d, want %d", got, shedQueries)
	}
	// Another full window: second step, capped at shedSubmits.
	s.observe(50*time.Millisecond, t0.Add(2*window))
	s.observe(50*time.Millisecond, t0.Add(3*window))
	if got := s.current(t0.Add(3 * time.Duration(window))); got != shedSubmits {
		t.Fatalf("level after two windows = %d, want %d", got, shedSubmits)
	}
	// Fast completions now: quiet must be sustained a full window per step.
	tq := t0.Add(4 * window)
	s.observe(time.Microsecond, tq)
	for i := 0; i < 20; i++ {
		s.observe(time.Microsecond, tq.Add(time.Duration(i)*window/10))
	}
	if got := s.current(tq.Add(3 * window)); got >= shedSubmits {
		t.Fatalf("level did not descend after sustained quiet: %d", got)
	}
}

// TestShedderIdleDecay: once shedding stops completions entirely, the
// latency EWMA must decay across quiet windows so the shedder can unwedge
// itself — current() alone, with no new observations, walks the level down.
func TestShedderIdleDecay(t *testing.T) {
	window := 50 * time.Millisecond
	s := newShedder(time.Millisecond, window)
	t0 := time.Unix(2000, 0)
	// Drive to max shed level.
	for i := 0; i <= 4; i++ {
		s.observe(time.Second, t0.Add(time.Duration(i)*window))
	}
	if got := s.current(t0.Add(4 * window)); got != shedSubmits {
		t.Fatalf("setup failed: level %d, want %d", got, shedSubmits)
	}
	// No observations at all (everything shed); far in the future the decay
	// must have brought the signal — and the level — all the way down.
	if got := s.current(t0.Add(100 * window)); got != shedNone {
		t.Fatalf("idle shedder never recovered: level %d", got)
	}
}

// TestShedderSaturationIsPressure: volume sheds count as pressure even when
// every request that does run is fast.
func TestShedderSaturationIsPressure(t *testing.T) {
	window := 100 * time.Millisecond
	s := newShedder(time.Hour, window) // latency can never exceed target
	t0 := time.Unix(3000, 0)
	s.saturate(t0)
	s.saturate(t0.Add(window / 2))
	s.saturate(t0.Add(window))
	if got := s.current(t0.Add(window)); got != shedQueries {
		t.Fatalf("sustained saturation did not raise level: %d", got)
	}
}

// --- brownout ladder property -----------------------------------------

// TestBrownoutLadderNeverFlaps is the flap-freedom property test: across a
// deterministic pseudo-random schedule of pressure bursts and quiet gaps,
// the ladder (1) moves at most one level per observation, (2) climbs only
// after pressure sustained ≥ step, and (3) descends only after quiet
// sustained ≥ cooldown. Timestamps are simulated, so the property holds
// exactly, not probabilistically.
func TestBrownoutLadderNeverFlaps(t *testing.T) {
	const step, cooldown = 100 * time.Millisecond, 400 * time.Millisecond
	rng := des.NewRNG(11).Stream("serve/ladder-prop")

	b := newBrownoutLadder(step, cooldown, nil)
	now := time.Unix(5000, 0)
	prev := BrownoutNormal
	var pressSince, quietSince time.Time // our own shadow of the hysteresis

	for i := 0; i < 5000; i++ {
		pressure := rng.Float64() < 0.5
		now = now.Add(time.Duration(rng.Uniform(float64(time.Millisecond), float64(60*time.Millisecond))))
		got := b.observe(pressure, now)

		if diff := got - prev; diff > 1 || diff < -1 {
			t.Fatalf("step %d: level jumped %d -> %d", i, prev, got)
		}
		if got > prev {
			if pressSince.IsZero() || now.Sub(pressSince) < step {
				t.Fatalf("step %d: climbed after %v of pressure (< step %v)", i, now.Sub(pressSince), step)
			}
		}
		if got < prev {
			if quietSince.IsZero() || now.Sub(quietSince) < cooldown {
				t.Fatalf("step %d: descended after %v of quiet (< cooldown %v)", i, now.Sub(quietSince), cooldown)
			}
		}

		// Maintain the shadow clocks the way the contract describes them.
		if pressure {
			quietSince = time.Time{}
			if pressSince.IsZero() || got > prev {
				pressSince = now
			}
		} else {
			pressSince = time.Time{}
			if quietSince.IsZero() || got < prev {
				quietSince = now
			}
		}
		prev = got
	}
}

// TestBrownoutLadderMonotoneUnderSustainedPressure: constant pressure climbs
// normal → paged → stale → readonly with no intermediate descent, then
// constant quiet unwinds fully, one cooldown per level.
func TestBrownoutLadderMonotoneUnderSustainedPressure(t *testing.T) {
	const step, cooldown = 10 * time.Millisecond, 40 * time.Millisecond
	b := newBrownoutLadder(step, cooldown, nil)
	now := time.Unix(6000, 0)
	seen := []int{BrownoutNormal}
	for i := 0; i < 100; i++ {
		now = now.Add(2 * time.Millisecond)
		lvl := b.observe(true, now)
		if lvl < seen[len(seen)-1] {
			t.Fatalf("level descended under sustained pressure: %d -> %d", seen[len(seen)-1], lvl)
		}
		if lvl != seen[len(seen)-1] {
			seen = append(seen, lvl)
		}
	}
	want := []int{BrownoutNormal, BrownoutPaged, BrownoutStale, BrownoutReadOnly}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("climb order %v, want %v", seen, want)
	}
	// Quiet: no descent before one full cooldown.
	lvl := b.observe(false, now.Add(time.Millisecond))
	lvl = b.observe(false, now.Add(cooldown-time.Millisecond))
	if lvl != BrownoutReadOnly {
		t.Fatalf("descended before cooldown: %d", lvl)
	}
	for i := 1; i <= 3; i++ {
		lvl = b.observe(false, now.Add(time.Duration(i)*cooldown+2*time.Millisecond))
	}
	if lvl != BrownoutNormal {
		t.Fatalf("ladder did not unwind to normal: %d", lvl)
	}
}

// --- deadline admission ------------------------------------------------

// TestRequestBudget: the wire field's resolution — absent is inert, hostile
// negatives are pre-expired, and absurd values clamp instead of overflowing.
func TestRequestBudget(t *testing.T) {
	now := time.Unix(7000, 0)
	if b := requestBudget(0, now); b.active() {
		t.Fatal("zero deadline_ms must be inert")
	}
	if b := requestBudget(-50, now); !b.expired(now) {
		t.Fatal("negative deadline_ms must resolve to expired")
	}
	huge := requestBudget(1<<62, now)
	if !huge.active() || huge.remaining(now) > 25*time.Hour || huge.remaining(now) <= 0 {
		t.Fatalf("huge deadline_ms must clamp sanely, got remaining %v", huge.remaining(now))
	}
	b := requestBudget(100, now)
	if b.expired(now.Add(99 * time.Millisecond)) {
		t.Fatal("budget expired early")
	}
	if !b.expired(now.Add(100 * time.Millisecond)) {
		t.Fatal("budget did not expire on time")
	}
}

// TestDeadlineAdmissionRefusesUnservable: a request whose remaining budget
// cannot cover the class's estimated service time is refused before any
// work, with a structured deadline_exceeded response the client surfaces as
// DeadlineError.
func TestDeadlineAdmissionRefusesUnservable(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{})
	// Teach the estimator that queries take ~80ms.
	for i := 0; i < 16; i++ {
		srv.est.observe(classQuery, 80*time.Millisecond)
	}
	// 5ms of budget cannot cover 80ms of estimated work.
	var dl *DeadlineError
	if _, err := cl.Do(Request{Op: "queue", DeadlineMS: 5}); !errors.As(err, &dl) {
		t.Fatalf("unservable request error = %v, want DeadlineError", err)
	}
	if n := srv.nDeadline.Load(); n != 1 {
		t.Fatalf("deadline counter = %d, want 1", n)
	}
	// A generous budget sails through.
	if _, err := cl.Do(Request{Op: "queue", DeadlineMS: 60_000}); err != nil {
		t.Fatalf("serviceable request failed: %v", err)
	}
	// An already-expired (hostile, negative) budget is refused cheapest.
	if _, err := cl.Do(Request{Op: "queue", DeadlineMS: -1}); !errors.As(err, &dl) {
		t.Fatalf("expired-budget error = %v, want DeadlineError", err)
	}
}

// TestDeadlineBudgetRefusedBeforeMutation: an expired budget stops a
// journaled mutation before it applies or journals anything.
func TestDeadlineBudgetRefusedBeforeMutation(t *testing.T) {
	dir := t.TempDir()
	ctl, err := OpenJournaled(testControllerConfig(), dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	spent := budget{deadline: time.Now().Add(-time.Second)}
	if _, err := ctl.submitTokenB(spent, "tok-dead", "minife", 1, 1800, 900, "x"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-budget submit error = %v, want ErrDeadlineExceeded", err)
	}
	if n := len(ctl.Queue()); n != 0 {
		t.Fatalf("expired-budget submit enqueued %d jobs", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "tok-dead") {
		t.Fatal("refused mutation reached the journal")
	}
	// A live budget proceeds normally.
	alive := budget{deadline: time.Now().Add(time.Minute)}
	if _, err := ctl.submitTokenB(alive, "tok-live", "minife", 1, 1800, 900, "y"); err != nil {
		t.Fatal(err)
	}
	if n := len(ctl.Queue()); n != 1 {
		t.Fatalf("queue = %d, want 1", n)
	}
}

// TestClientDeadlineBudgetSpansRetries: with DeadlineBudget set and the
// server permanently saturated, Do gives up with a DeadlineError instead of
// sleeping past the budget.
func TestClientDeadlineBudgetSpansRetries(t *testing.T) {
	cl, srv, _ := overloadServer(t, OverloadConfig{MaxInflight: 1, RetryAfter: 20 * time.Millisecond})
	srv.sem <- struct{}{} // permanently saturated
	cl.DeadlineBudget = 50 * time.Millisecond
	cl.Retry = &RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Multiplier:  1,
		Sleep:       time.Sleep,
	}
	start := time.Now()
	var dl *DeadlineError
	if _, err := cl.Do(Request{Op: "queue"}); !errors.As(err, &dl) {
		t.Fatalf("budget-bound retries error = %v, want DeadlineError", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do slept %v, far past its 50ms budget", elapsed)
	}
}

// --- brownout behavior end to end -------------------------------------

// serveConfig returns overload knobs with the shedder and ladder on and
// windows sized for fast tests.
func serveConfig() OverloadConfig {
	return OverloadConfig{
		RetryAfter:           2 * time.Millisecond,
		ShedTarget:           5 * time.Millisecond,
		ShedWindow:           20 * time.Millisecond,
		BrownoutStep:         30 * time.Millisecond,
		BrownoutCooldown:     60 * time.Millisecond,
		BrownoutHistoryLimit: 4,
		BrownoutStaleFor:     50 * time.Millisecond,
	}
}

// TestBrownoutReadOnlyShedsSubmits: at the readonly rung submit-class verbs
// are shed with a structured SHED response while control verbs and reads
// still land.
func TestBrownoutReadOnlyShedsSubmits(t *testing.T) {
	cl, srv, _ := overloadServer(t, serveConfig())
	srv.ladder.mu.Lock()
	srv.ladder.level = BrownoutReadOnly
	srv.ladder.mu.Unlock()
	// Keep the shedder idle: this test isolates the ladder's readonly rung.
	var busy *BusyError
	_, err := cl.Do(Request{Op: "submit", App: "minife", Nodes: 1, Walltime: 1800, Runtime: 900, Name: "x"})
	if !errors.As(err, &busy) || !busy.Shed {
		t.Fatalf("submit at readonly = %v, want shed BusyError", err)
	}
	if _, err := cl.Do(Request{Op: "queue"}); err != nil {
		t.Fatalf("read at readonly failed: %v", err)
	}
	if _, err := cl.Do(Request{Op: "config"}); err != nil {
		t.Fatalf("control verb at readonly failed: %v", err)
	}
	if n := srv.nShed.Load(); n != 1 {
		t.Fatalf("shed counter = %d, want 1", n)
	}
}

// TestBrownoutPagedClampsHistory: at paged and above, history replies are
// clamped to the brownout cap even when the client asks for more; live
// queue replies are untouched (squeue must not silently hide jobs).
func TestBrownoutPagedClampsHistory(t *testing.T) {
	over := serveConfig()
	jobs := make([]JobInfo, 10)
	for i := range jobs {
		jobs[i] = JobInfo{ID: int64(i + 1)}
	}
	// Normal: explicit big limit honored.
	resp := paginate(jobs, Request{History: true, Limit: 10}, over, BrownoutNormal)
	if len(resp.Jobs) != 10 {
		t.Fatalf("normal history rows = %d, want 10", len(resp.Jobs))
	}
	// Paged: clamped to the brownout cap, Total still honest.
	resp = paginate(jobs, Request{History: true, Limit: 10}, over, BrownoutPaged)
	if len(resp.Jobs) != 4 || resp.Total != 10 {
		t.Fatalf("paged history rows = %d (total %d), want 4 (total 10)", len(resp.Jobs), resp.Total)
	}
	// Paged, live queue: no clamp.
	resp = paginate(jobs, Request{}, over, BrownoutPaged)
	if len(resp.Jobs) != 10 {
		t.Fatalf("paged live rows = %d, want 10 (live queue must not be clamped)", len(resp.Jobs))
	}
}

// TestBrownoutStaleReads: at the stale rung, reads are served from the TTL
// snapshot cache — a submit between two reads is invisible until the TTL
// lapses, and the stale-read counter ticks.
func TestBrownoutStaleReads(t *testing.T) {
	cl, srv, _ := overloadServer(t, serveConfig())
	if _, err := cl.Do(Request{Op: "submit", App: "minife", Nodes: 1, Walltime: 1800, Runtime: 900, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	srv.ladder.mu.Lock()
	srv.ladder.level = BrownoutStale
	srv.ladder.mu.Unlock()
	r1, err := cl.Do(Request{Op: "queue"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Do(Request{Op: "submit", App: "minife", Nodes: 1, Walltime: 1800, Runtime: 900, Name: "b"}); err != nil {
		t.Fatal(err)
	}
	r2, err := cl.Do(Request{Op: "queue"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Jobs) != len(r1.Jobs) {
		t.Fatalf("stale read saw the new submit: %d then %d rows", len(r1.Jobs), len(r2.Jobs))
	}
	if srv.nStale.Load() == 0 {
		t.Fatal("stale-read counter never ticked")
	}
	// After the TTL the cache refreshes.
	time.Sleep(60 * time.Millisecond)
	r3, err := cl.Do(Request{Op: "queue"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Jobs) != len(r1.Jobs)+1 {
		t.Fatalf("post-TTL read rows = %d, want %d", len(r3.Jobs), len(r1.Jobs)+1)
	}
}

// TestBrownoutJournaledAndReplayable: ladder transitions land in the journal
// as brownout entries, and a restart replays the journal cleanly (brownout
// entries are audit trail, not state).
func TestBrownoutJournaledAndReplayable(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	cfg.Overload = serveConfig()
	ctl, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Submit("minife", 1, 1800, 900, "pre"); err != nil {
		t.Fatal(err)
	}
	// Drive the ladder by hand through its callback path.
	srv.ladder.mu.Lock()
	srv.ladder.level = BrownoutPaged
	srv.ladder.steps++
	srv.ladder.mu.Unlock()
	srv.ladder.onStep(BrownoutPaged, brownoutName(BrownoutPaged))
	srv.Close()
	ctl.Close()

	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"op":"brownout"`) {
		t.Fatalf("journal has no brownout entry:\n%s", data)
	}
	ctl2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatalf("replay with brownout entries failed: %v", err)
	}
	defer ctl2.Close()
	if n := len(ctl2.Queue()); n != 1 {
		t.Fatalf("replayed queue = %d jobs, want 1", n)
	}
	_ = addr
}

// TestHealthExposesServeCounters: with serve features on, health replies
// carry the brownout state and the degradation counters.
func TestHealthExposesServeCounters(t *testing.T) {
	cl, srv, _ := overloadServer(t, serveConfig())
	srv.ladder.mu.Lock()
	srv.ladder.level = BrownoutStale
	srv.ladder.mu.Unlock()
	srv.nShed.Add(3)
	srv.nDeadline.Add(2)
	resp, err := cl.HealthFull()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Brownout == "" {
		t.Fatal("health reply missing brownout state")
	}
	if resp.Serve == nil {
		t.Fatal("health reply missing serve counters")
	}
	if resp.Serve.Shed != 3 || resp.Serve.DeadlineExceeded != 2 {
		t.Fatalf("serve counters = %+v, want shed 3, deadline 2", resp.Serve)
	}
	if resp.Serve.BrownoutState != "stale" {
		t.Fatalf("brownout state = %q, want stale", resp.Serve.BrownoutState)
	}
}

// TestHealthProbesUnwindLadder: after load stops, health probes alone (they
// bypass admission but tick the ladder) walk a browned-out server back to
// NORMAL — the recovery path the chaos acceptance test relies on.
func TestHealthProbesUnwindLadder(t *testing.T) {
	over := serveConfig()
	over.BrownoutCooldown = 20 * time.Millisecond
	cl, srv, _ := overloadServer(t, over)
	srv.ladder.mu.Lock()
	srv.ladder.level = BrownoutReadOnly
	srv.ladder.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := cl.HealthFull()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Brownout == "normal" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ladder never unwound; still at %d", srv.ladder.current())
}

// --- byte-compatibility differential ----------------------------------

// TestServeByteCompatFeaturesOff: with the serve features off and no
// deadline on the wire, raw responses must not contain any of the new JSON
// keys — clients from the previous release see byte-identical behavior.
func TestServeByteCompatFeaturesOff(t *testing.T) {
	_, _, addr := overloadServer(t, OverloadConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	newKeys := []string{"shed", "deadline_exceeded", "brownout", "serve", "deadline_ms"}
	for _, raw := range []string{
		`{"op":"health"}`,
		`{"op":"queue"}`,
		`{"op":"submit","app":"minife","nodes":1,"walltime":1800,"runtime":900,"name":"x"}`,
		`{"op":"queue","history":true}`,
		`{"op":"nodes"}`,
		`{"op":"config"}`,
		`{"op":"now"}`,
	} {
		if _, err := conn.Write([]byte(raw + "\n")); err != nil {
			t.Fatal(err)
		}
		line := make([]byte, 64*1024)
		k, err := conn.Read(line)
		if err != nil {
			t.Fatal(err)
		}
		got := string(line[:k])
		for _, key := range newKeys {
			if strings.Contains(got, `"`+key+`"`) {
				t.Errorf("features-off response to %s leaks %q key: %s", raw, key, got)
			}
		}
	}
}

// TestServeByteCompatJournalDifferential: the same deadline-free op sequence
// produces byte-identical journals whether the serve features are off or on
// (but unpressured) — enabling the features costs nothing until pressure.
func TestServeByteCompatJournalDifferential(t *testing.T) {
	runOps := func(over OverloadConfig) []byte {
		t.Helper()
		dir := t.TempDir()
		cfg := testControllerConfig()
		cfg.Overload = over
		ctl, err := OpenJournaled(cfg, dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(ctl)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.SubmitToken("tok-1", "minife", 2, 3600, 1800, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Submit("minife", 1, 1800, 900, "b"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Advance(100); err != nil {
			t.Fatal(err)
		}
		if err := cl.DrainNode(1); err != nil {
			t.Fatal(err)
		}
		if err := cl.ResumeNode(1); err != nil {
			t.Fatal(err)
		}
		cl.Close()
		srv.Close()
		ctl.Close()
		data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	off := runOps(OverloadConfig{})
	on := runOps(serveConfig())
	if string(off) != string(on) {
		t.Fatalf("journals diverged:\n--- features off ---\n%s\n--- features on ---\n%s", off, on)
	}
}

// TestServeCountersJSONShape: the counters marshal under the documented keys
// (the bench artifact and operators depend on them).
func TestServeCountersJSONShape(t *testing.T) {
	blob, err := json.Marshal(ServeCounters{BrownoutState: "normal"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"busy", "shed", "deadline_exceeded", "stale_reads", "brownout_level", "brownout_state", "brownout_steps"} {
		if !strings.Contains(string(blob), `"`+key+`"`) {
			t.Errorf("ServeCounters JSON missing %q: %s", key, blob)
		}
	}
}
