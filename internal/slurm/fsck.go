package slurm

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/vfs"
)

// Offline verification and repair of a controller state directory, exposed
// as the `mini-slurm fsck` subcommand and used online by the HA promotion
// gate: a standby whose local log fails verification must not become
// primary on it — it full-resyncs from the peer instead.

func b64(p []byte) string { return base64.StdEncoding.EncodeToString(p) }

// FsckFile is the verification result for one file of the pair.
type FsckFile struct {
	Path     string
	Version  int // 0 = missing/empty
	Entries  int
	ValidLen int64
	Size     int64
	Torn     bool
	Damage   []Damage
}

func fsckFile(s *fileScan) FsckFile {
	return FsckFile{
		Path:     s.path,
		Version:  s.version,
		Entries:  len(s.entries),
		ValidLen: s.validLen,
		Size:     s.size,
		Torn:     s.torn,
		Damage:   s.damage,
	}
}

// FsckReport is the result of verifying a state directory.
type FsckReport struct {
	Dir      string
	Snapshot FsckFile
	Journal  FsckFile
	// Committed is the length of the replayable committed prefix after
	// folding snapshot and journal.
	Committed int
	// Gap, when non-empty, describes a sequence gap that makes later
	// records unreachable.
	Gap string
	// Unreachable counts structurally valid records stranded after a gap.
	Unreachable int
	// Torn reports journal damage confined to an unverifiable tail — the
	// benign crash-mid-append artifact that recovery salvages automatically.
	Torn bool
	// Corrupt reports damage recovery will not silently salvage: any
	// snapshot damage, mid-log journal damage, or a sequence gap.
	Corrupt bool
}

// Clean reports a fully verified directory (no damage of any kind).
func (r *FsckReport) Clean() bool { return !r.Torn && !r.Corrupt }

// Summary renders the report as a human-readable multi-line string.
func (r *FsckReport) Summary() string {
	var b strings.Builder
	status := "clean"
	switch {
	case r.Corrupt:
		status = "CORRUPT"
	case r.Torn:
		status = "torn tail (auto-salvageable)"
	}
	fmt.Fprintf(&b, "fsck %s: %s\n", r.Dir, status)
	file := func(name string, f FsckFile) {
		if f.Version == 0 {
			fmt.Fprintf(&b, "  %s: missing or empty\n", name)
			return
		}
		fmt.Fprintf(&b, "  %s: v%d, %d entries, %d/%d bytes verified\n",
			name, f.Version, f.Entries, f.ValidLen, f.Size)
		for _, d := range f.Damage {
			fmt.Fprintf(&b, "    line %d (offset %d): %s\n", d.Line, d.Offset, d.Reason)
		}
	}
	file("snapshot", r.Snapshot)
	file("journal", r.Journal)
	fmt.Fprintf(&b, "  committed entries: %d\n", r.Committed)
	if r.Gap != "" {
		fmt.Fprintf(&b, "  %s: %d record(s) unreachable\n", r.Gap, r.Unreachable)
	}
	return b.String()
}

// Fsck verifies the snapshot+journal pair in dir without modifying anything.
func Fsck(fsys vfs.FS, dir string) (*FsckReport, error) {
	snap, err := scanPath(fsys, snapshotFile(dir), true)
	if err != nil {
		return nil, err
	}
	tail, err := scanPath(fsys, journalFile(dir), false)
	if err != nil {
		return nil, err
	}
	entries, unreachable, gap := foldScans(snap, tail)
	r := &FsckReport{
		Dir:         dir,
		Snapshot:    fsckFile(snap),
		Journal:     fsckFile(tail),
		Committed:   len(entries),
		Gap:         gap,
		Unreachable: len(unreachable),
	}
	// Snapshots are written atomically, so "torn" snapshot damage is still
	// corruption; only the journal's torn tail is benign.
	r.Corrupt = len(snap.damage) > 0 || (len(tail.damage) > 0 && !tail.torn) || gap != ""
	r.Torn = !r.Corrupt && tail.torn
	return r, nil
}

// FsckRepair salvages dir: the committed prefix is rewritten as a clean v2
// snapshot (atomic tmp+rename) plus a fresh empty v2 journal, and every
// damaged or unreachable record is preserved in quarantine.jsonl. Returns
// the pre-repair report. Repairing a clean directory only migrates it to v2.
func FsckRepair(fsys vfs.FS, dir string) (*FsckReport, error) {
	snap, err := scanPath(fsys, snapshotFile(dir), true)
	if err != nil {
		return nil, err
	}
	tail, err := scanPath(fsys, journalFile(dir), false)
	if err != nil {
		return nil, err
	}
	entries, unreachable, gap := foldScans(snap, tail)
	r := &FsckReport{
		Dir:         dir,
		Snapshot:    fsckFile(snap),
		Journal:     fsckFile(tail),
		Committed:   len(entries),
		Gap:         gap,
		Unreachable: len(unreachable),
	}
	r.Corrupt = len(snap.damage) > 0 || (len(tail.damage) > 0 && !tail.torn) || gap != ""
	r.Torn = !r.Corrupt && tail.torn

	var quarantined []FileDamage
	quarantined = append(quarantined, damageList("snapshot.jsonl", snap.damage, true)...)
	quarantined = append(quarantined, damageList("journal.jsonl", tail.damage, true)...)
	for _, e := range unreachable {
		payload, _ := json.Marshal(e)
		quarantined = append(quarantined, FileDamage{
			File: "journal.jsonl", Reason: "unreachable after " + gap, RawB64: b64(payload),
		})
	}
	if len(quarantined) > 0 {
		if err := writeQuarantine(fsys, dir, quarantined); err != nil {
			return nil, err
		}
	}

	data, err := encodeSnapshot(entries)
	if err != nil {
		return nil, err
	}
	tmp := snapshotFile(dir) + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("slurm: fsck repair: %w", err)
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return nil, fmt.Errorf("slurm: fsck repair: %w", err)
	}
	if err := fsys.Rename(tmp, snapshotFile(dir)); err != nil {
		fsys.Remove(tmp)
		return nil, fmt.Errorf("slurm: fsck repair: %w", err)
	}
	w, err := createJournalV2(fsys, journalFile(dir))
	if err != nil {
		return nil, fmt.Errorf("slurm: fsck repair: %w", err)
	}
	if err := w.close(); err != nil {
		return nil, fmt.Errorf("slurm: fsck repair: %w", err)
	}
	syncDir(fsys, dir)
	return r, nil
}

// writeQuarantine durably records damaged records in dir/quarantine.jsonl
// (truncating any previous sidecar) so salvage never silently discards
// bytes: operators can inspect exactly what recovery refused to replay.
func writeQuarantine(fsys vfs.FS, dir string, ds []FileDamage) error {
	f, err := fsys.Create(quarantineFile(dir))
	if err != nil {
		return fmt.Errorf("slurm: write quarantine: %w", err)
	}
	for _, d := range ds {
		line, err := json.Marshal(d)
		if err == nil {
			_, err = f.Write(append(line, '\n'))
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("slurm: write quarantine: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("slurm: write quarantine: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("slurm: write quarantine: %w", err)
	}
	syncDir(fsys, dir)
	return nil
}
