package slurm

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestHedgeableVerbs: only side-effect-free reads may race in duplicate.
func TestHedgeableVerbs(t *testing.T) {
	for _, op := range []string{"queue", "nodes", "stats", "now", "health", "config"} {
		if !hedgeable(Request{Op: op}) {
			t.Errorf("%s should be hedgeable", op)
		}
	}
	for _, op := range []string{"submit", "cancel", "advance", "drain", "requeue",
		"down_node", "up_node", "drain_node", "resume_node", "replicate", "junk"} {
		if hedgeable(Request{Op: op}) {
			t.Errorf("%s must NOT be hedgeable", op)
		}
	}
}

// TestHedgeWinsOverStalledPrimary: the primary endpoint is a black-holed
// chaos proxy (bytes vanish, no errors — the nastiest stall); the hedge
// dials the next endpoint, wins, and the client adopts its connection. The
// goroutine count must return to baseline afterwards: the losing attempt is
// cancelled by its socket closing, never leaked.
func TestHedgeWinsOverStalledPrimary(t *testing.T) {
	before := runtime.NumGoroutine()

	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	px, err := chaos.Listen(addr, chaos.Config{Seed: 3, Name: "hedge"})
	if err != nil {
		t.Fatal(err)
	}
	px.Partition() // primary stalls silently from the very first byte

	cl, err := Dial(px.Addr() + "," + addr)
	if err != nil {
		t.Fatal(err)
	}
	cl.Timeout = 5 * time.Second
	cl.Hedge = &HedgePolicy{Delay: 30 * time.Millisecond}

	hedgesBefore := expClientHedges.Value()
	start := time.Now()
	resp, err := cl.Do(Request{Op: "queue"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read failed: %v", err)
	}
	if !resp.OK {
		t.Fatalf("hedged read not OK: %+v", resp)
	}
	if elapsed >= cl.Timeout {
		t.Fatalf("hedged read took %v — the hedge never rescued the stall", elapsed)
	}
	if expClientHedges.Value() != hedgesBefore+1 {
		t.Fatalf("hedge counter moved %d, want 1", expClientHedges.Value()-hedgesBefore)
	}
	// The client adopted the winning (direct) endpoint: the next read works
	// without waiting out another hedge delay.
	start = time.Now()
	if _, err := cl.Do(Request{Op: "nodes"}); err != nil {
		t.Fatalf("post-adoption read failed: %v", err)
	}
	if since := time.Since(start); since > 25*time.Millisecond {
		t.Fatalf("post-adoption read took %v; transport adoption did not stick", since)
	}

	cl.Close()
	px.Close()
	srv.Shutdown(5 * time.Second)
	ctl.Close()
	waitGoroutines(t, before+1)
}

// TestHedgeNotLaunchedWhenPrimaryFast: a healthy primary answers inside the
// hedge delay, so no second connection is ever dialed.
func TestHedgeNotLaunchedWhenPrimaryFast(t *testing.T) {
	cl, _, _ := overloadServer(t, OverloadConfig{})
	cl.Hedge = &HedgePolicy{Delay: time.Second}
	hedgesBefore := expClientHedges.Value()
	for i := 0; i < 10; i++ {
		if _, err := cl.Do(Request{Op: "queue"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := expClientHedges.Value(); got != hedgesBefore {
		t.Fatalf("fast primary still hedged %d times", got-hedgesBefore)
	}
}

// TestHedgeRepeatedNoLeak: many hedged reads against a stalled primary leave
// no goroutines behind — the leak check that guards loser cancellation.
func TestHedgeRepeatedNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctl, err := NewController(testControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	px, err := chaos.Listen(addr, chaos.Config{Seed: 4, Name: "hedge-leak"})
	if err != nil {
		t.Fatal(err)
	}
	px.Partition()

	for i := 0; i < 8; i++ {
		// Fresh client each round: redial starts from the stalled proxy
		// endpoint again, so every iteration exercises the full race.
		cl, err := Dial(px.Addr() + "," + addr)
		if err != nil {
			t.Fatal(err)
		}
		cl.Timeout = 5 * time.Second
		cl.Hedge = &HedgePolicy{Delay: 10 * time.Millisecond}
		if _, err := cl.Do(Request{Op: "now"}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		cl.Close()
	}

	px.Close()
	srv.Shutdown(5 * time.Second)
	ctl.Close()
	waitGoroutines(t, before+1)
}
