package slurm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Crash-during-compact property test: compact() has three externally
// distinguishable crash points — before the snapshot rename, after the
// rename but before the journal truncation, and after the truncation — and
// recovery must replay the identical state from each. The middle window is
// the subtle one: the snapshot already holds the journal's entries AND the
// journal still holds them, so recovery must drop the overlap instead of
// applying those operations twice.

// recoverState reopens a journal directory and returns the replayed state.
func recoverState(t *testing.T, cfg Config, dir string) ctlState {
	t.Helper()
	c, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	defer c.Close()
	return stateOf(c)
}

func TestCompactCrashEveryStep(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c1, err := OpenJournaled(cfg, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, c1) // enough operations to compact at least once
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(snapshotFile(dir))
	if err != nil || len(snap) == 0 {
		t.Fatalf("workload left no snapshot (err %v): need snapshot+journal to exercise the overlap", err)
	}
	tail, err := os.ReadFile(journalFile(dir))
	if err != nil || len(tail) == 0 {
		t.Fatalf("workload left no journal tail (err %v): need snapshot+journal to exercise the overlap", err)
	}

	// The reference: recovery of the untouched pair, i.e. no crash at all.
	want := recoverState(t, cfg, dir)

	// Each case mutates a fresh directory into the exact file state a crash
	// at that point of compact() leaves behind. The folded snapshot is built
	// the way compact builds it: verify both files, merge on Seq, re-encode
	// as a manifest-sealed v2 snapshot.
	entries, _, gap := foldScans(
		scanFile(snap, snapshotFile(dir), true),
		scanFile(tail, journalFile(dir), false))
	if gap != "" {
		t.Fatalf("workload files do not fold: %s", gap)
	}
	folded, err := encodeSnapshot(entries)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		name string
		set  func(d string)
	}{
		{"pre-rename", func(d string) {
			// Temp file fully written and synced; rename never happened.
			writeFile(t, filepath.Join(d, "snapshot.jsonl.tmp"), folded)
		}},
		{"post-rename-pre-truncate", func(d string) {
			// Snapshot replaced; journal still holds the folded entries.
			writeFile(t, snapshotFile(d), folded)
		}},
		{"post-truncate", func(d string) {
			// The complete compaction.
			writeFile(t, snapshotFile(d), folded)
			writeFile(t, journalFile(d), nil)
		}},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			d := t.TempDir()
			writeFile(t, snapshotFile(d), snap)
			writeFile(t, journalFile(d), tail)
			step.set(d)
			got := recoverState(t, cfg, d)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("crash %s: recovered state diverges from no-crash recovery\ngot  %+v\nwant %+v",
					step.name, got, want)
			}
		})
	}
}

// TestCompactCrashOverlapNotReplayedTwice pins the failure mode the Seq
// dedupe exists for: without it, the post-rename/pre-truncate state would
// replay the tail twice and diverge (duplicate submits shift job IDs).
func TestCompactCrashOverlapNotReplayedTwice(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit("minife", 1, 3600, 1800, "only"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	tail, err := os.ReadFile(journalFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the mid-compact crash: same entries in snapshot and journal
	// (the snapshot in its sealed form, as compact would have written it).
	scan := scanFile(tail, journalFile(dir), false)
	snapData, err := encodeSnapshot(scan.entries)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, snapshotFile(dir), snapData)
	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := len(c2.Queue()) + len(c2.History()); n != 1 {
		t.Fatalf("overlap replayed twice: %d jobs, want 1", n)
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
