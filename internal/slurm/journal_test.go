package slurm

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/acct"
)

// snapshot captures everything a restarted controller must reproduce.
type ctlState struct {
	Now     float64
	Queue   []JobInfo
	Nodes   []NodeInfo
	History []JobInfo
}

func stateOf(c *Controller) ctlState {
	return ctlState{
		Now:     float64(c.Now()),
		Queue:   c.Queue(),
		Nodes:   c.Nodes(),
		History: c.History(),
	}
}

// driveWorkload runs a representative operation mix: submissions, time
// advancement, cancellation, drain/resume, forced node failure and repair,
// and a job requeue.
func driveWorkload(t *testing.T, c *Controller) {
	t.Helper()
	id1, err := c.Submit("minife", 2, 3600, 1800, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("gtc", 2, 3600, 2400, "b"); err != nil {
		t.Fatal(err)
	}
	id3, err := c.Submit("milc", 4, 7200, 3600, "c")
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(300)
	if err := c.Cancel(id3); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainNode(3); err != nil {
		t.Fatal(err)
	}
	c.Advance(200)
	if err := c.ResumeNode(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Requeue(id1); err != nil {
		t.Fatal(err)
	}
	if err := c.DownNode(0); err != nil {
		t.Fatal(err)
	}
	c.Advance(100)
	if err := c.UpNode(0); err != nil {
		t.Fatal(err)
	}
	c.Advance(500)
}

// TestJournalCrashRecovery kills a journaled controller without any shutdown
// (handle simply abandoned, as in a crash) and verifies a fresh controller
// opened on the same state directory replays to the identical queue, node,
// history, and clock state — then keeps working.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()

	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, c1)
	want := stateOf(c1)
	// Crash: no Close, no flush beyond the per-op WAL sync.

	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := stateOf(c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", got, want)
	}

	// The recovered controller must accept new work and stay journaled.
	if _, err := c2.Submit("minife", 1, 1800, 900, "post-crash"); err != nil {
		t.Fatal(err)
	}
	c2.Drain()
	post := stateOf(c2)

	c3, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := stateOf(c3); !reflect.DeepEqual(got, post) {
		t.Fatalf("second recovery differs:\n got %+v\nwant %+v", got, post)
	}
}

// TestJournalSnapshotCompaction verifies that crossing the snapshot
// threshold folds the journal into snapshot.jsonl, truncates the journal,
// and that recovery from the compacted pair is still exact.
func TestJournalSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()

	c1, err := OpenJournaled(cfg, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, c1) // well past 4 ops
	want := stateOf(c1)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := os.Stat(filepath.Join(dir, "snapshot.jsonl"))
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	if snap.Size() == 0 {
		t.Fatal("snapshot is empty")
	}
	jr, err := os.Stat(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if jr.Size() >= snap.Size() {
		t.Fatalf("journal (%d bytes) not compacted into snapshot (%d bytes)",
			jr.Size(), snap.Size())
	}

	c2, err := OpenJournaled(cfg, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := stateOf(c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction recovery differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalTornFinalLine: a crash mid-append leaves a half-written last
// line; recovery must drop it and succeed. Corruption before the final line
// must error instead.
func TestJournalTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit("minife", 1, 1800, 900, "x"); err != nil {
		t.Fatal(err)
	}
	want := stateOf(c1)

	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"op":"adv`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	defer c2.Close()
	if got := stateOf(c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery with torn tail differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalFaultTrailAudit: completions are journaled as embedded
// acct.Record audit entries, including failure fields.
func TestJournalFaultTrailAudit(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit("minife", 1, 3600, 1800, "audited")
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(100)
	if err := c.Requeue(id); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := readEntries(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []acct.Record
	for _, e := range entries {
		if e.Op == "record" && e.Record != nil {
			recs = append(recs, *e.Record)
		}
	}
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.JobID != int64(id) || r.State != "FINISHED" {
		t.Fatalf("audit record = %+v", r)
	}
	if r.Requeues != 1 || r.Lost <= 0 {
		t.Fatalf("audit record missing failure history: %+v", r)
	}
}
