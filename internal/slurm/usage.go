package slurm

import (
	"repro/internal/sim"
)

// UsageFromEngine returns a UsageFn that computes each user's share of the
// delivered node-seconds among finished jobs. The shares are recomputed only
// when the finished count changes, so calling it from a sort comparator is
// cheap.
func UsageFromEngine(e *sim.Engine) UsageFn {
	cachedCount := -1
	var shares map[string]float64
	return func(user string) float64 {
		finished := e.Finished()
		if len(finished) != cachedCount {
			shares = make(map[string]float64)
			total := 0.0
			for _, j := range finished {
				w := j.ServiceDemand()
				shares[j.User] += w
				total += w
			}
			if total > 0 {
				for k := range shares {
					shares[k] /= total
				}
			}
			cachedCount = len(finished)
		}
		return shares[user]
	}
}
