package slurm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
)

// High availability. A controller pair runs one primary and one warm
// standby: the primary streams every journal entry to the standby over the
// wire protocol's `replicate` verb and only acknowledges a mutation once the
// standby has applied it (semi-synchronous replication). Because the
// simulation is deterministic, applying the same operation log yields the
// same state, so the standby is a pure log follower — no state transfer
// format exists beyond the journal itself.
//
// Split-brain is prevented by epoch fencing plus a lease:
//
//   - Every journal entry carries the epoch (term) it was written under.
//     Promotion bumps the epoch and journals it, so the term survives
//     crashes.
//   - The primary fences itself — rejects mutations with ErrFenced — once
//     Lease/2 elapses without a replication acknowledgement. The standby
//     promotes only after a full Lease without hearing a heartbeat. The
//     heartbeat the standby last heard was sent before the ack the primary
//     last received was processed, so the primary's half-lease deadline
//     expires at least Lease/2 before the standby's, and the old primary has
//     stopped acknowledging work before the new one starts.
//   - A deposed primary that reconnects replicates with a stale epoch; the
//     new primary rejects the append (leaving its journal byte-identical)
//     and reports the current epoch, at which point the deposed node demotes
//     itself to standby and requests a full resync.
//
// A promoted primary initially runs detached (no follower), acknowledging
// writes without replication, exactly like a standalone controller; once the
// deposed peer rejoins and catches up, replication turns strict again.

// Role names reported by the health verb.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// Replication pacing defaults.
const (
	// DefaultHALease is the failover lease: a standby promotes after this
	// long without a heartbeat; a primary fences itself after half of it
	// without an ack.
	DefaultHALease = 3 * time.Second
	// replicateBatch bounds entries per replicate request so a full resync
	// stays far under the protocol's MaxLine.
	replicateBatch = 256
)

var (
	// ErrNotPrimary is returned for mutations sent to a standby; clients
	// with an endpoint list fail over to the next endpoint on seeing it.
	ErrNotPrimary = errors.New("slurm: not primary (standby serves reads only)")
	// ErrFenced is returned for mutations on a primary whose replication
	// lease has lapsed: the standby may already have promoted, so
	// acknowledging new work here could split the brain.
	ErrFenced = errors.New("slurm: primary fenced (replication lease lost)")
	// errReplication wraps failures to replicate a locally durable entry.
	errReplication = errors.New("slurm: replication to standby failed")
)

// HAConfig is the slurm.conf side of the pair: where to push replication and
// how the lease is paced. The zero value disables HA entirely, keeping the
// wire protocol and journal format byte-compatible with standalone releases.
type HAConfig struct {
	// Replica is the peer address journal entries are pushed to ("" = off).
	Replica string
	// Lease is the failover lease (0 = DefaultHALease).
	Lease time.Duration
	// Heartbeat spaces replication heartbeats (0 = Lease/4).
	Heartbeat time.Duration
}

// Validate checks the HA knobs for internal consistency.
func (h HAConfig) Validate() error {
	if h.Lease < 0 || h.Heartbeat < 0 {
		return fmt.Errorf("slurm: negative HA durations")
	}
	lease := h.Lease
	if lease == 0 {
		lease = DefaultHALease
	}
	if h.Heartbeat != 0 && h.Heartbeat >= lease {
		return fmt.Errorf("slurm: HAHeartbeatSeconds %s must be shorter than the lease %s",
			h.Heartbeat, lease)
	}
	return nil
}

// HAOptions configures one member of the pair at runtime.
type HAOptions struct {
	// Standby starts the node as a follower: it applies replicated entries,
	// rejects client mutations, and promotes itself when the lease expires.
	Standby bool
	// Peer is the other controller's protocol address: the push target while
	// primary, and the push target after promotion while standby.
	Peer string
	// Lease is the failover lease (0 = DefaultHALease).
	Lease time.Duration
	// Heartbeat spaces replication heartbeats (0 = Lease/4).
	Heartbeat time.Duration
	// Timeout bounds one replicate round trip (0 = Lease/4).
	Timeout time.Duration
}

func (o *HAOptions) defaults() {
	if o.Lease <= 0 {
		o.Lease = DefaultHALease
	}
	// The primary fences itself after Lease/2 without an ack, so heartbeats
	// spaced at or beyond that would fence a healthy pair between pushes
	// (e.g. a conf-file heartbeat combined with a shorter -lease override).
	// Clamp pacing to stay inside the fencing window.
	if o.Heartbeat <= 0 || o.Heartbeat >= o.Lease/2 {
		o.Heartbeat = o.Lease / 4
	}
	if o.Timeout <= 0 || o.Timeout >= o.Lease/2 {
		o.Timeout = o.Lease / 4
	}
}

// StartHA turns the controller into one member of an HA pair. Call once,
// after OpenJournaled/NewController and before serving traffic. A primary
// with a configured peer is strict: mutations are acknowledged only after
// the standby confirms them, so a standby that never comes up blocks writes
// (by design — that is what -replica promises).
func (c *Controller) StartHA(o HAOptions) error {
	o.defaults()
	c.mu.Lock()
	if c.haOn {
		c.mu.Unlock()
		return fmt.Errorf("slurm: HA already started")
	}
	if o.Peer == "" {
		c.mu.Unlock()
		return fmt.Errorf("slurm: HA needs a peer address")
	}
	c.haOn = true
	c.haOpts = o
	c.haStop = make(chan struct{})
	if c.epoch == 0 {
		c.epoch = 1
	}
	if o.Standby {
		c.standby = true
		if c.quarantined {
			// A follower that recovered by quarantining damage holds only a
			// salvaged prefix; insist on a full resync before trusting it
			// with incremental entries.
			c.needFull = true
		}
		c.lastHeard = time.Now()
		c.haWG.Add(1)
		go c.promotionMonitor()
		c.mu.Unlock()
		return nil
	}
	c.startReplicatorLocked(false)
	c.mu.Unlock()
	return nil
}

// StopHA halts replication and promotion monitoring. Idempotent; called by
// Close.
func (c *Controller) StopHA() {
	c.mu.Lock()
	if !c.haOn || c.haStopped {
		c.mu.Unlock()
		return
	}
	c.haStopped = true
	close(c.haStop)
	c.mu.Unlock()
	c.haWG.Wait()
}

// HAInfo reports whether HA is on and, if so, the role and epoch.
func (c *Controller) HAInfo() (on bool, role string, epoch int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.haOn, c.roleLocked(), c.epoch
}

// RoleEpoch returns the node's role and fencing epoch.
func (c *Controller) RoleEpoch() (string, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roleLocked(), c.epoch
}

func (c *Controller) roleLocked() string {
	if c.standby {
		return RoleStandby
	}
	return RolePrimary
}

// startReplicatorLocked creates and launches the push replicator. Callers
// hold c.mu. detached marks a freshly promoted primary that has no live
// follower yet and may acknowledge writes without replication.
func (c *Controller) startReplicatorLocked(detached bool) {
	r := newReplicator(c, c.haOpts)
	r.detached.Store(detached)
	c.repl = r
	c.haWG.Add(1)
	go r.run()
}

// promotionMonitor watches the lease on a standby and promotes when the
// primary goes quiet. It exits once the node is no longer a standby.
func (c *Controller) promotionMonitor() {
	defer c.haWG.Done()
	interval := c.haOpts.Lease / 8
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.haStop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		if !c.standby {
			c.mu.Unlock()
			return
		}
		if time.Since(c.lastHeard) > c.haOpts.Lease {
			if !c.promotableLocked() {
				// Refusing promotion on a bad log: reset the lease clock so
				// the check reruns at lease pace, not every tick, while we
				// wait for the primary (or its successor) to resync us.
				c.needFull = true
				c.lastHeard = time.Now()
				c.mu.Unlock()
				continue
			}
			c.promoteLocked()
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// promotableLocked is the fsck gate: a standby about to promote verifies its
// own on-disk log first. A follower whose storage rotted (or that started
// quarantined) must not become primary on a damaged log — the cluster's
// history would silently shrink to its salvaged prefix. It stays standby and
// requests a full resync instead. Callers hold c.mu.
func (c *Controller) promotableLocked() bool {
	if c.quarantined {
		return false
	}
	if c.jr == nil {
		return true // in-memory follower: nothing on disk to verify
	}
	report, err := Fsck(c.jr.fs, c.jr.dir)
	if err != nil {
		return false
	}
	return !report.Corrupt
}

// promoteLocked turns the standby into the primary: bump and journal the
// epoch (the durable fencing token), then start pushing to the deposed peer
// so it can rejoin as a follower. Callers hold c.mu.
func (c *Controller) promoteLocked() {
	c.standby = false
	c.needFull = false
	c.epoch++
	// Journal the new term before acknowledging any write under it. A
	// failure here feeds the breaker like any append failure: the node
	// promotes but starts out DEGRADED rather than silently non-durable.
	c.logLocal(Entry{Op: "epoch", Epoch: c.epoch})
	c.startReplicatorLocked(true)
}

// demoteLocked steps a deposed primary (or an out-of-date standby) down
// under a higher epoch: stop pushing, require a full resync, and watch the
// new primary's lease. Callers hold c.mu.
func (c *Controller) demoteLocked(newEpoch int64) {
	if newEpoch > c.epoch {
		c.epoch = newEpoch
	}
	if c.standby {
		return
	}
	c.standby = true
	c.needFull = true
	c.lastHeard = time.Now()
	c.repl = nil // its run loop notices and exits
	if !c.haStopped {
		c.haWG.Add(1)
		go c.promotionMonitor()
	}
}

// HandleReplicate is the standby side of the replicate verb: validate the
// epoch, apply in-order entries, and acknowledge with the last applied
// sequence number. It also serves as the fencing point — a deposed primary's
// stale-epoch appends are rejected here without touching the journal.
func (c *Controller) HandleReplicate(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haOn {
		return Response{Error: "replication not enabled on this node"}
	}
	if req.Epoch < c.epoch {
		return Response{
			Error: fmt.Sprintf("stale epoch %d rejected (current epoch %d)", req.Epoch, c.epoch),
			Role:  c.roleLocked(), Epoch: c.epoch, Seq: c.seq,
		}
	}
	if req.Epoch > c.epoch {
		c.demoteLocked(req.Epoch)
	}
	if !c.standby {
		return Response{
			Error: fmt.Sprintf("conflicting primary at epoch %d", c.epoch),
			Role:  c.roleLocked(), Epoch: c.epoch, Seq: c.seq,
		}
	}
	c.lastHeard = time.Now()
	if req.Full {
		if err := c.resetFromLogLocked(req.Entries); err != nil {
			return Response{Error: fmt.Sprintf("full resync: %v", err),
				Role: RoleStandby, Epoch: c.epoch, Seq: c.seq}
		}
		c.needFull = false
		if req.Epoch > c.epoch {
			c.epoch = req.Epoch
		}
		return Response{OK: true, Role: RoleStandby, Epoch: c.epoch, Seq: c.seq}
	}
	if c.needFull {
		// Our log diverged (we were deposed); only a full resync is safe.
		return Response{OK: true, NeedFull: true, Role: RoleStandby, Epoch: c.epoch, Seq: c.seq}
	}
	for _, e := range req.Entries {
		if e.Seq <= c.seq {
			continue // duplicate resend after a lost ack
		}
		if e.Seq != c.seq+1 {
			break // gap; ack what we have, the primary resends from there
		}
		if err := c.applyReplicatedLocked(e); err != nil {
			return Response{Error: fmt.Sprintf("apply entry %d (%s): %v", e.Seq, e.Op, err),
				Role: RoleStandby, Epoch: c.epoch, Seq: c.seq}
		}
	}
	return Response{OK: true, Role: RoleStandby, Epoch: c.epoch, Seq: c.seq}
}

// applyReplicatedLocked applies one in-order replicated entry: run the
// operation against the engine (replay semantics, ID divergence checked),
// then persist the entry byte-identically to how the primary journaled it.
func (c *Controller) applyReplicatedLocked(e Entry) error {
	var err error
	switch e.Op {
	case "record":
		// Audit output, not an input; journaled for a complete trail.
	case "brownout":
		// Primary's degradation trail; the standby keeps its own ladder.
	case "epoch":
		if e.Epoch > c.epoch {
			c.epoch = e.Epoch
		}
	case "submit":
		after := make([]cluster.JobID, len(e.After))
		for i, a := range e.After {
			after[i] = cluster.JobID(a)
		}
		// The primary's ID is authoritative; its counter may be ahead of
		// the replicated log when a local append failed and was rolled back
		// (the burned ID is never replicated). Fast-forward, then require
		// an exact match.
		c.sys.SyncNextJobID(cluster.JobID(e.ID))
		var id cluster.JobID
		id, err = c.applySubmit(e.App, e.Nodes,
			des.Duration(e.Walltime), des.Duration(e.Runtime), e.Name, after)
		if err == nil && int64(id) != e.ID {
			err = fmt.Errorf("job ID diverged: got %d, primary has %d", id, e.ID)
		}
		if err == nil && e.Token != "" {
			// Keep the dedupe map current so a client retrying a submit
			// after failover gets the original ID, not a duplicate job.
			c.tokens[e.Token] = id
		}
	case "cancel":
		err = c.sys.Engine().CancelPending(cluster.JobID(e.ID))
	case "advance":
		c.applyAdvance(des.Duration(e.Seconds))
	case "drain":
		c.sys.Run()
	case "drain_node":
		err = c.applyDrainNode(e.Node)
	case "resume_node":
		err = c.applyResumeNode(e.Node)
	case "requeue":
		err = c.applyRequeue(cluster.JobID(e.ID))
	case "down_node":
		err = c.applyDownNode(e.Node)
	case "up_node":
		err = c.applyUpNode(e.Node)
	default:
		err = fmt.Errorf("unknown op %q", e.Op)
	}
	if err != nil {
		return err
	}
	// Replicated completions are journaled by the primary as record entries
	// that arrive in-stream; the follower must not re-audit its own copies.
	c.finSeen = len(c.sys.Finished())
	c.killSeen = len(c.sys.Engine().Killed())
	c.rejSeen = len(c.sys.Engine().Rejected())
	if c.jr != nil {
		err = c.jr.append(e)
		if c.br != nil {
			if err != nil {
				c.br.failure()
			} else {
				c.br.success()
			}
		}
		if err != nil {
			// The operation ran against the engine but the entry is not on
			// disk: this follower's journal no longer matches its state. Only
			// a full resync (which rewrites the log wholesale) makes it safe
			// to serve from again.
			c.needFull = true
			return err
		}
	}
	c.seq = e.Seq
	c.entries = append(c.entries, e)
	return nil
}

// resetFromLogLocked rebuilds the follower from scratch against the
// primary's full log: fresh engine, replay, journal rewritten atomically.
// Replay determinism makes this the complete state-transfer mechanism.
func (c *Controller) resetFromLogLocked(entries []Entry) error {
	sys, err := buildSystem(c.cfg)
	if err != nil {
		return err
	}
	c.sys = sys
	c.tokens = make(map[string]cluster.JobID)
	c.finSeen, c.killSeen, c.rejSeen = 0, 0, 0
	c.seq, c.entries = 0, nil
	if err := c.replay(entries); err != nil {
		return err
	}
	c.finSeen = len(c.sys.Finished())
	c.killSeen = len(c.sys.Engine().Killed())
	c.rejSeen = len(c.sys.Engine().Rejected())
	c.entries = append([]Entry(nil), entries...)
	if len(entries) > 0 {
		c.seq = entries[len(entries)-1].Seq
	}
	if c.jr != nil {
		err := c.jr.rewrite(entries)
		if c.br != nil {
			if err != nil {
				c.br.failure()
			} else {
				c.br.success()
			}
		}
		if err != nil {
			return err
		}
	}
	// The log was just rewritten from the primary's authoritative copy: any
	// quarantined local damage has been replaced wholesale.
	c.quarantined = false
	return nil
}

// replicateLocked pushes everything the standby is missing and, in strict
// mode, fails if the follower did not confirm the full log. Callers hold
// c.mu.
func (c *Controller) replicateLocked() error {
	r := c.repl
	if r == nil {
		return nil
	}
	r.mu.Lock()
	err := r.pushLocked()
	caughtUp := int(r.ackSeq) >= len(c.entries) && !r.needFull
	r.mu.Unlock()
	if r.detached.Load() {
		return nil // no live follower yet; solo acknowledgements allowed
	}
	if err != nil {
		return fmt.Errorf("%w: %v", errReplication, err)
	}
	if !caughtUp {
		return fmt.Errorf("%w: follower behind after push", errReplication)
	}
	return nil
}

// replicator pushes the journal to the peer and tracks the lease.
type replicator struct {
	c *Controller
	o HAOptions

	// detached marks a freshly promoted primary with no live follower: it may
	// acknowledge writes solo, and by definition holds its own lease.
	detached atomic.Bool

	mu      sync.Mutex
	cl      *Client
	ackSeq  int64
	lastAck time.Time
	// needFull records the follower's request for a full resync.
	needFull bool
}

func newReplicator(c *Controller, o HAOptions) *replicator {
	return &replicator{c: c, o: o, lastAck: time.Now()}
}

// leaseLost reports whether the primary must fence itself: more than half
// the lease has passed without a replication acknowledgement. A detached
// primary (no live follower) holds the lease by definition.
func (r *replicator) leaseLost(now time.Time) bool {
	if r.detached.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return now.Sub(r.lastAck) > r.o.Lease/2
}

// run is the heartbeat loop: every Heartbeat it pushes pending entries (or
// an empty keep-alive) so the standby's lease stays fresh and a follower
// that fell behind catches up. It exits when HA stops or the node demotes.
func (r *replicator) run() {
	defer r.c.haWG.Done()
	defer func() {
		r.mu.Lock()
		if r.cl != nil {
			r.cl.Close()
			r.cl = nil
		}
		r.mu.Unlock()
	}()
	tick := time.NewTicker(r.o.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.c.haStop:
			return
		case <-tick.C:
		}
		r.c.mu.Lock()
		if r.c.repl != r {
			r.c.mu.Unlock()
			return // demoted or replaced
		}
		r.mu.Lock()
		r.pushLocked() // persistent failure surfaces via the lease
		r.mu.Unlock()
		r.c.mu.Unlock()
	}
}

// pushLocked drives replication until the follower confirms the whole log
// (or an error). Callers hold both c.mu and r.mu; the network round trips
// happen under the controller lock deliberately — replication is part of
// the mutation critical section, and Timeout bounds the stall.
func (r *replicator) pushLocked() error {
	c := r.c
	maxRounds := len(c.entries)/replicateBatch + 4
	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("replication not converging after %d rounds", round)
		}
		if r.cl == nil {
			cl, err := Dial(r.o.Peer)
			if err != nil {
				return err
			}
			cl.Timeout = r.o.Timeout
			r.cl = cl
		}
		req := Request{Op: "replicate", Epoch: c.epoch}
		switch {
		case r.needFull:
			n := len(c.entries)
			if n > replicateBatch {
				n = replicateBatch
			}
			req.Entries, req.Full = c.entries[:n], true
		case int(r.ackSeq) < len(c.entries):
			lo := int(r.ackSeq)
			hi := lo + replicateBatch
			if hi > len(c.entries) {
				hi = len(c.entries)
			}
			req.Entries = c.entries[lo:hi]
		}
		wasFull := req.Full
		resp, err := r.cl.Do(req)
		if err != nil {
			if resp.Epoch > c.epoch {
				// A higher epoch exists: we were deposed while away.
				c.demoteLocked(resp.Epoch)
				return fmt.Errorf("deposed by epoch %d", resp.Epoch)
			}
			r.cl.Close()
			r.cl = nil
			return err
		}
		r.lastAck = time.Now()
		r.needFull = resp.NeedFull
		if r.needFull && wasFull {
			return fmt.Errorf("follower rejected full resync")
		}
		r.ackSeq = resp.Seq
		if int(r.ackSeq) > len(c.entries) {
			// Follower claims more log than we have: histories diverged.
			r.needFull = true
			continue
		}
		if !r.needFull && int(r.ackSeq) >= len(c.entries) {
			// Caught up: from here on replication is strict again.
			r.detached.Store(false)
			return nil
		}
	}
}
