package slurm

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/vfs"
)

// Storage-fault property campaign. The invariant under test is the recovery
// contract from journal.go: whatever happens to the files on disk —
// truncation at any byte offset, a flipped bit anywhere — reopening the
// directory either yields a state equal to replaying a committed prefix of
// the original workload, or refuses loudly. Never a silently divergent
// state.

// storageCampaignSeed drives the sampled parts of the campaign. CI overrides
// it via STORAGE_FAULT_SEED; failures print it so any run is reproducible.
func storageCampaignSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("STORAGE_FAULT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad STORAGE_FAULT_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// builtWorkload is a journaled workload run plus everything needed to judge
// a recovery attempt against it.
type builtWorkload struct {
	cfg       Config
	snap      []byte  // snapshot.jsonl bytes ("" when no compaction happened)
	tail      []byte  // journal.jsonl bytes
	committed []Entry // the full committed operation log
	state     ctlState
}

// buildWorkload drives the representative workload through a journaled
// controller and captures the resulting files and committed log.
// snapshotEvery > 0 leaves a snapshot+journal pair; 0 leaves journal only.
func buildWorkload(t *testing.T, snapshotEvery int) *builtWorkload {
	t.Helper()
	dir := t.TempDir()
	cfg := testControllerConfig()
	c, err := OpenJournaled(cfg, dir, snapshotEvery)
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, c)
	w := &builtWorkload{
		cfg:       cfg,
		committed: append([]Entry(nil), c.entries...),
		state:     stateOf(c),
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	w.snap, _ = os.ReadFile(snapshotFile(dir))
	w.tail, err = os.ReadFile(journalFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if snapshotEvery > 0 && len(w.snap) == 0 {
		t.Fatal("workload did not compact; campaign needs a snapshot+journal pair")
	}
	return w
}

// restore materializes the workload's files (with the given journal bytes)
// into a fresh directory.
func (w *builtWorkload) restore(t *testing.T, snap, tail []byte) string {
	t.Helper()
	d := t.TempDir()
	if len(snap) > 0 {
		writeFile(t, snapshotFile(d), snap)
	}
	writeFile(t, journalFile(d), tail)
	return d
}

// entryJSON renders an entry in its canonical journal encoding, the form in
// which equality is meaningful (in-memory entries differ from recovered ones
// in nil-vs-empty representation).
func entryJSON(t *testing.T, e Entry) string {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkPrefix asserts that a successfully recovered controller holds an
// exact prefix of the committed log — the "no silent divergence" property.
func checkPrefix(t *testing.T, ctx string, c *Controller, committed []Entry) {
	t.Helper()
	got := c.entries
	if len(got) > len(committed) {
		t.Fatalf("%s: recovered %d entries, workload committed only %d", ctx, len(got), len(committed))
	}
	for i, e := range got {
		if entryJSON(t, e) != entryJSON(t, committed[i]) {
			t.Fatalf("%s: recovered log is not a committed prefix (diverges at entry %d of %d)",
				ctx, i, len(got))
		}
	}
}

// TestJournalTruncationCampaign cuts the journal at EVERY byte offset —
// journal-only and snapshot+journal layouts — and requires recovery under
// the default FAIL policy to produce a committed prefix or refuse.
func TestJournalTruncationCampaign(t *testing.T) {
	for _, layout := range []struct {
		name          string
		snapshotEvery int
	}{
		{"journal-only", 0},
		{"snapshot-and-journal", 4},
	} {
		t.Run(layout.name, func(t *testing.T) {
			w := buildWorkload(t, layout.snapshotEvery)
			for off := 0; off <= len(w.tail); off++ {
				d := w.restore(t, w.snap, w.tail[:off])
				c, err := OpenJournaled(w.cfg, d, 0)
				if err != nil {
					continue // loud refusal is an allowed outcome
				}
				checkPrefix(t, "truncate@"+strconv.Itoa(off), c, w.committed)
				c.Close()
			}
		})
	}
}

// TestJournalBitFlipCampaign flips one bit at a seeded sample of offsets in
// the journal and the snapshot, recovering under both corruption policies.
// FAIL may refuse; QUARANTINE must come up read-only on a committed prefix
// with the damage preserved in quarantine.jsonl. Either way: never a
// silently divergent replay.
func TestJournalBitFlipCampaign(t *testing.T) {
	seed := storageCampaignSeed(t)
	w := buildWorkload(t, 4)
	rng := des.NewRNG(seed).Stream("storage/bit-flip-campaign")
	quarantineCfg := w.cfg
	quarantineCfg.JournalCorruptPolicy = CorruptQuarantine

	const flips = 150
	for i := 0; i < flips; i++ {
		// Alternate targets between the two files so both formats' defenses
		// (per-frame CRC, snapshot manifest) are exercised.
		target, name := w.tail, "journal"
		if i%2 == 1 {
			target, name = w.snap, "snapshot"
		}
		off := rng.Intn(len(target))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), target...)
		mut[off] ^= bit
		ctx := name + " flip@" + strconv.Itoa(off) + " seed=" + strconv.FormatUint(seed, 10)

		snap, tail := w.snap, mut
		if name == "snapshot" {
			snap, tail = mut, w.tail
		}

		// Default policy: refuse or recover a committed prefix.
		if c, err := OpenJournaled(w.cfg, w.restore(t, snap, tail), 0); err == nil {
			checkPrefix(t, ctx+" (fail policy)", c, w.committed)
			c.Close()
		}

		// Quarantine policy: must come up; damage means read-only DEGRADED
		// with a quarantine sidecar, and still an exact committed prefix.
		d := w.restore(t, snap, tail)
		c, err := OpenJournaled(quarantineCfg, d, 0)
		if err != nil {
			t.Fatalf("%s: quarantine policy refused to open: %v", ctx, err)
		}
		checkPrefix(t, ctx+" (quarantine policy)", c, w.committed)
		info := c.Recovery()
		if info.Quarantined {
			if c.Health() != HealthDegraded {
				t.Fatalf("%s: quarantined controller reports health %q, want degraded", ctx, c.Health())
			}
			if _, err := c.Submit("minife", 1, 1800, 900, "blocked"); !errors.Is(err, ErrDegraded) {
				t.Fatalf("%s: quarantined controller accepted a mutation (err %v)", ctx, err)
			}
			if _, err := os.Stat(quarantineFile(d)); err != nil {
				t.Fatalf("%s: quarantined without a quarantine.jsonl sidecar: %v", ctx, err)
			}
		}
		c.Close()
	}
}

// TestJournalTornTailThenAppend pins the recovered-fragment bug: after
// recovery drops a torn tail, new appends must not concatenate onto the torn
// bytes (which would fuse into one garbage line and silently lose the NEXT
// acknowledged entry on a later recovery). Recovery must physically truncate
// the fragment.
func TestJournalTornTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	cfg := testControllerConfig()
	c1, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Submit("minife", 1, 1800, 900, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: half a frame, no newline.
	f, err := os.OpenFile(journalFile(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("=000000ff 00"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Recovery().TornBytes == 0 {
		t.Fatal("recovery did not report the torn tail")
	}
	if _, err := c2.Submit("minife", 1, 1800, 900, "b"); err != nil {
		t.Fatal(err)
	}
	want := stateOf(c2)
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// The acknowledged post-recovery submit must survive the next recovery.
	c3, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := stateOf(c3); !reflect.DeepEqual(got, want) {
		t.Fatalf("entry appended after torn-tail recovery was lost:\n got %+v\nwant %+v", got, want)
	}
	if len(c3.entries) != 2 {
		t.Fatalf("recovered %d entries, want 2", len(c3.entries))
	}
}

// TestJournalV1MigrationRoundTrip: a plain-JSONL journal written by the
// pre-checksum releases loads with identical replayed state, keeps accepting
// appends in its own format, and is rewritten as a sealed v2 pair by the
// next compaction — after which recovery still reproduces the same state.
func TestJournalV1MigrationRoundTrip(t *testing.T) {
	w := buildWorkload(t, 0)

	// Render the committed log exactly as the v1 encoder did: one
	// json.Marshal line per entry.
	var v1 []byte
	for _, e := range w.committed {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		v1 = append(v1, line...)
		v1 = append(v1, '\n')
	}
	dir := t.TempDir()
	writeFile(t, journalFile(dir), v1)

	c, err := OpenJournaled(w.cfg, dir, 0)
	if err != nil {
		t.Fatalf("v1 journal rejected: %v", err)
	}
	if got := c.Recovery().JournalVersion; got != journalV1 {
		t.Fatalf("journal recognized as v%d, want v1", got)
	}
	if got := stateOf(c); !reflect.DeepEqual(got, w.state) {
		t.Fatalf("v1 replay diverges from the original run:\n got %+v\nwant %+v", got, w.state)
	}

	// Appends to a v1 file stay v1 (one format per file) until compaction
	// migrates the pair to v2.
	if _, err := c.Submit("minife", 1, 1800, 900, "post-v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.jr.compact(); err != nil {
		t.Fatal(err)
	}
	want := stateOf(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	snapScan := scanFile(readFileT(t, snapshotFile(dir)), snapshotFile(dir), true)
	if snapScan.version != journalV2 || !snapScan.manifest {
		t.Fatalf("compaction did not migrate to a sealed v2 snapshot (version %d, manifest %v)",
			snapScan.version, snapScan.manifest)
	}
	c2, err := OpenJournaled(w.cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := stateOf(c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-migration recovery diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestReadEntriesSeqInvariant: v1 parsing must cross-check sequence numbers.
// A torn fragment that happens to parse as JSON with a stale seq is dropped
// as a torn tail; an out-of-sequence record mid-file (verifiable records
// after it) is corruption and errors.
func TestReadEntriesSeqInvariant(t *testing.T) {
	line := func(seq int) string {
		return `{"seq":` + strconv.Itoa(seq) + `,"op":"advance","seconds":1}` + "\n"
	}
	dir := t.TempDir()

	// Stale-seq tail: dropped, earlier entries kept.
	p1 := filepath.Join(dir, "tail.jsonl")
	writeFile(t, p1, []byte(line(1)+line(2)+line(2)))
	got, err := readEntries(p1)
	if err != nil || len(got) != 2 {
		t.Fatalf("stale-seq tail: entries=%d err=%v, want 2 entries salvaged", len(got), err)
	}

	// Mid-file gap with valid records after it: loud error, no salvage here.
	p2 := filepath.Join(dir, "gap.jsonl")
	writeFile(t, p2, []byte(line(1)+line(5)+line(6)))
	if _, err := readEntries(p2); err == nil {
		t.Fatal("mid-file sequence gap accepted")
	}
}

// TestFsckReportAndRepair: fsck classifies mid-log damage as corrupt,
// -repair salvages the committed prefix into a clean v2 pair, quarantines
// the damaged record, and the repaired directory opens under the strict
// policy with a committed-prefix state.
func TestFsckReportAndRepair(t *testing.T) {
	w := buildWorkload(t, 0)
	// Flip a byte in the middle of the file: mid-log corruption, since valid
	// frames follow.
	mut := append([]byte(nil), w.tail...)
	mut[len(mut)/2] ^= 0x10
	dir := w.restore(t, nil, mut)

	report, err := Fsck(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Corrupt || report.Torn {
		t.Fatalf("mid-log damage classified as corrupt=%v torn=%v, want corrupt", report.Corrupt, report.Torn)
	}
	if len(report.Journal.Damage) == 0 {
		t.Fatal("fsck reported no per-record damage")
	}
	if !strings.Contains(report.Summary(), "CORRUPT") {
		t.Fatalf("summary does not flag corruption:\n%s", report.Summary())
	}
	// The strict policy refuses this directory and names fsck.
	if _, err := OpenJournaled(w.cfg, dir, 0); err == nil || !strings.Contains(err.Error(), "fsck") {
		t.Fatalf("corrupt journal under FAIL policy: err %v, want refusal naming fsck", err)
	}

	pre, err := FsckRepair(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Committed == 0 {
		t.Fatal("repair salvaged nothing")
	}
	qb, err := os.ReadFile(quarantineFile(dir))
	if err != nil || len(qb) == 0 {
		t.Fatalf("repair left no quarantine sidecar (err %v)", err)
	}
	var fd FileDamage
	if err := json.Unmarshal([]byte(strings.SplitN(string(qb), "\n", 2)[0]), &fd); err != nil {
		t.Fatalf("quarantine sidecar is not JSONL: %v", err)
	}
	if fd.Reason == "" || fd.RawB64 == "" {
		t.Fatalf("quarantine record missing reason/raw bytes: %+v", fd)
	}

	after, err := Fsck(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Clean() {
		t.Fatalf("repair left damage:\n%s", after.Summary())
	}
	c, err := OpenJournaled(w.cfg, dir, 0)
	if err != nil {
		t.Fatalf("repaired directory rejected: %v", err)
	}
	defer c.Close()
	checkPrefix(t, "post-repair", c, w.committed)
}

// TestJournalTypedErrors: the breaker's operators must be able to tell a
// failed append from a failed compaction; the two paths wrap distinct
// sentinels, and a transient compaction fault leaves the append path healthy
// (and heals on the next compact).
func TestJournalTypedErrors(t *testing.T) {
	// Append path, via the test hook the overload tests use.
	dir := t.TempDir()
	cfg := testControllerConfig()
	c, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.jr.testAppendErr = func(Entry) error { return errors.New("disk on fire") }
	_, err = c.Submit("minife", 1, 1800, 900, "x")
	if !errors.Is(err, ErrJournalAppend) || errors.Is(err, ErrJournalCompact) {
		t.Fatalf("append failure = %v, want ErrJournalAppend and not ErrJournalCompact", err)
	}
	c.jr.testAppendErr = nil
	c.Close()

	// Compaction path, via an injected fsync fault on the snapshot temp
	// file. Transient semantics so the retry can heal.
	fsys := vfs.NewFaulty(vfs.OS{}, vfs.FaultProfile{Seed: 1, SyncFailTransient: true})
	dir2 := t.TempDir()
	c2, err := OpenJournaledFS(cfg, fsys, dir2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Submit("minife", 1, 1800, 900, "y"); err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncs(1)
	err = c2.jr.compact()
	if !errors.Is(err, ErrJournalCompact) || errors.Is(err, ErrJournalAppend) {
		t.Fatalf("compact failure = %v, want ErrJournalCompact and not ErrJournalAppend", err)
	}
	// The fault hit before the old writer was closed: appends still work...
	if _, err := c2.Submit("minife", 1, 1800, 900, "z"); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	// ...and the next compaction succeeds, leaving a recoverable pair.
	if err := c2.jr.compact(); err != nil {
		t.Fatalf("compact retry: %v", err)
	}
	want := stateOf(c2)
	c3, err := OpenJournaled(cfg, dir2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := stateOf(c3); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery after compact fault+retry diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestSyncDirErrorsCounted: directory-fsync failures are tolerated but
// counted in the journal_sync_errors expvar (and logged once).
func TestSyncDirErrorsCounted(t *testing.T) {
	before := journalSyncErrors.Value()
	fsys := vfs.NewFaulty(vfs.OS{}, vfs.FaultProfile{Seed: 1, SyncFailTransient: true})
	fsys.FailSyncs(1)
	syncDir(fsys, t.TempDir())
	if got := journalSyncErrors.Value(); got != before+1 {
		t.Fatalf("journal_sync_errors = %d after a failed dir fsync, want %d", got, before+1)
	}
	syncDir(fsys, t.TempDir()) // healthy dir fsync must not count
	if got := journalSyncErrors.Value(); got != before+1 {
		t.Fatalf("journal_sync_errors = %d after a clean dir fsync, want %d", got, before+1)
	}
}

// TestHAPromotionFsckGate: a standby whose on-disk log has rotted must not
// promote on it — the cluster's acknowledged history would shrink to the
// salvaged prefix. It stays standby until the log verifies again.
func TestHAPromotionFsckGate(t *testing.T) {
	lease := 150 * time.Millisecond
	a, b := startPair(t, lease)
	cl, err := Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit("minife", 1, 3600, 1800, "job"); err != nil {
			t.Fatal(err)
		}
	}

	// Rot the standby's journal mid-file (valid frames follow the damage),
	// then silence the primary.
	good, err := os.ReadFile(journalFile(b.dir))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), good...)
	mut[len(mut)/2] ^= 0x01
	writeFile(t, journalFile(b.dir), mut)
	a.ctl.StopHA()

	// The gate must hold through several lease expiries.
	time.Sleep(5 * lease)
	if role, _ := b.ctl.RoleEpoch(); role != RoleStandby {
		t.Fatal("standby promoted on a corrupt journal")
	}

	// Restore the log; the next expiry passes fsck and promotes.
	writeFile(t, journalFile(b.dir), good)
	waitFor(t, 20*lease, "promotion after journal restored", func() bool {
		role, _ := b.ctl.RoleEpoch()
		return role == RolePrimary
	})
}

// TestHAChaosFsyncDuringCompaction is the chaos headline: the standby runs
// on fault-injecting storage whose fsyncs fail exactly around its
// compaction threshold (the append that trips compact, then the resync
// rewrites). The failed replicated append marks the follower for a full
// resync; once the faults pass, the pair must converge — same engine state,
// and byte-identical files once both logs are folded to canonical form.
func TestHAChaosFsyncDuringCompaction(t *testing.T) {
	cfg := testControllerConfig()
	lease := 400 * time.Millisecond

	// Primary on clean storage, journal-only.
	aDir := t.TempDir()
	aCtl, err := OpenJournaled(cfg, aDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer aCtl.Close()

	// Standby on faulty storage, compacting every 4 appends.
	fsys := vfs.NewFaulty(vfs.OS{}, vfs.FaultProfile{Seed: 1, SyncFailTransient: true})
	bDir := t.TempDir()
	bCtl, err := OpenJournaledFS(cfg, fsys, bDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer bCtl.Close()
	bSrv := NewServer(bCtl)
	bAddr, err := bSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bSrv.Close()

	if err := aCtl.StartHA(HAOptions{Peer: bAddr, Lease: lease}); err != nil {
		t.Fatal(err)
	}
	if err := bCtl.StartHA(HAOptions{Standby: true, Peer: "127.0.0.1:1", Lease: 10 * lease}); err != nil {
		t.Fatal(err)
	}

	submit := func(name string) {
		t.Helper()
		_, err := aCtl.Submit("minife", 1, 3600, 1800, name)
		if err != nil && !errors.Is(err, errReplication) {
			t.Fatalf("submit %s: %v", name, err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("pre" + strconv.Itoa(i))
	}
	// The next replicated append is the standby's 4th: append fsync + the
	// compaction it triggers. Script the next three fsyncs to fail — the
	// append (marks the follower for full resync), then the resync rewrites
	// until the fault window passes.
	fsys.FailSyncs(3)
	for i := 0; i < 7; i++ {
		submit("mid" + strconv.Itoa(i))
	}

	// Heartbeats drive retry and full resync; the pair must converge.
	waitFor(t, 40*lease, "pair state convergence after fsync faults", func() bool {
		return reflect.DeepEqual(stateOf(aCtl), stateOf(bCtl))
	})
	if fsys.Stats().SyncFails == 0 {
		t.Fatal("chaos run injected no fsync faults")
	}
	if h := bCtl.Health(); h != HealthOK {
		t.Fatalf("standby health after resync = %q, want ok", h)
	}

	// Byte convergence: fold each node's log to canonical form (snapshot of
	// everything + empty journal) and compare the files byte for byte.
	aCtl.Close()
	bCtl.Close()
	aSnap, aTail := canonicalize(t, cfg, aDir)
	bSnap, bTail := canonicalize(t, cfg, bDir)
	if string(aSnap) != string(bSnap) || string(aTail) != string(bTail) {
		t.Fatalf("pair not byte-convergent after resync: snapshots %d vs %d bytes, journals %d vs %d bytes",
			len(aSnap), len(bSnap), len(aTail), len(bTail))
	}
	if len(aSnap) == 0 {
		t.Fatal("canonical snapshots empty: chaos run exercised nothing")
	}
}

// canonicalize folds a directory's committed log into its canonical form —
// one sealed snapshot holding everything, one empty journal — and returns
// both files' bytes.
func canonicalize(t *testing.T, cfg Config, dir string) (snap, tail []byte) {
	t.Helper()
	j, entries, _, err := openJournal(vfs.OS{}, dir, 0, CorruptFail)
	if err != nil {
		t.Fatalf("canonicalize %s: %v", dir, err)
	}
	if err := j.rewrite(entries); err != nil {
		t.Fatalf("canonicalize %s: %v", dir, err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	return readFileT(t, snapshotFile(dir)), readFileT(t, journalFile(dir))
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJournalCorruptPolicyConfigKey: the slurm.conf key parses, validates,
// and defaults to FAIL.
func TestJournalCorruptPolicyConfigKey(t *testing.T) {
	base := "NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n"
	cfg, err := ParseConfig(strings.NewReader(base + "JournalCorruptPolicy=QUARANTINE\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.JournalCorruptPolicy != CorruptQuarantine {
		t.Fatalf("policy = %q, want quarantine", cfg.JournalCorruptPolicy)
	}
	cfg, err = ParseConfig(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.JournalCorruptPolicy != "" {
		t.Fatalf("policy defaulted to %q, want empty (FAIL)", cfg.JournalCorruptPolicy)
	}
	if _, err := ParseConfig(strings.NewReader(base + "JournalCorruptPolicy=shrug\n")); err == nil {
		t.Fatal("bad policy value validated")
	}
}
