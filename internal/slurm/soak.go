package slurm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
)

// Soak harness: many concurrent clients hammering an undersized server to
// prove the overload story end to end — submissions all land exactly once
// despite shedding and retries, and health probes answer throughout. The
// harness is a library so the `-race` soak test and the slurm-stress
// command share one implementation.

// SoakConfig sizes a soak run against an already-listening server.
type SoakConfig struct {
	// Addr is the server under load.
	Addr string
	// Clients is the number of concurrent submitting clients.
	Clients int
	// SubmitsPerClient is how many distinct jobs each client submits.
	SubmitsPerClient int
	// Seed roots the per-client retry-jitter RNG streams.
	Seed uint64
	// HealthInterval spaces liveness probes (0 = 10ms).
	HealthInterval time.Duration
	// HealthDeadline is the per-probe response deadline (0 = 1s).
	HealthDeadline time.Duration
	// App, Nodes, Walltime and Runtime shape the submitted jobs
	// (defaults: minife, 1 node, 1800s wall, 900s runtime).
	App      string
	Nodes    int
	Walltime float64
	Runtime  float64
}

func (c *SoakConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.SubmitsPerClient <= 0 {
		c.SubmitsPerClient = 8
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 10 * time.Millisecond
	}
	if c.HealthDeadline <= 0 {
		c.HealthDeadline = time.Second
	}
	if c.App == "" {
		c.App = "minife"
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Walltime <= 0 {
		c.Walltime = 1800
	}
	if c.Runtime <= 0 {
		c.Runtime = 900
	}
}

// SoakResult is what a run observed.
type SoakResult struct {
	// Submitted counts distinct tokens acknowledged with a job ID.
	Submitted int
	// Resubmits counts deliberate duplicate submissions of an
	// already-acknowledged token (simulating a client whose response was
	// lost and retried).
	Resubmits int
	// DuplicateIDs counts tokens that ever resolved to two different job
	// IDs — any non-zero value is an idempotency bug.
	DuplicateIDs int
	// Retries counts backoff sleeps across all clients (shed or failed
	// requests that were retried). A soak that exercises overload should
	// observe many.
	Retries int64
	// SubmitFailures counts submissions that exhausted their retry budget.
	SubmitFailures int
	// HealthProbes / HealthFailures count liveness probes and the ones
	// that missed their deadline or errored.
	HealthProbes   int
	HealthFailures int
	// HealthMaxLatency is the slowest successful probe.
	HealthMaxLatency time.Duration
	// ServerJobs is the server's total job count (queue + history) after
	// the storm; it must equal Submitted if nothing duplicated or leaked.
	ServerJobs int
	// Elapsed is the wall-clock duration of the storm.
	Elapsed time.Duration
	// Errors samples the first few unexpected errors.
	Errors []string
}

// Ok reports whether the run satisfied the soak invariants: every submit
// acknowledged exactly once, no duplicates server-side, every health probe
// answered.
func (r SoakResult) Ok(expectSubmits int) error {
	switch {
	case r.DuplicateIDs > 0:
		return fmt.Errorf("soak: %d tokens resolved to multiple job IDs", r.DuplicateIDs)
	case r.SubmitFailures > 0:
		return fmt.Errorf("soak: %d submissions exhausted retries", r.SubmitFailures)
	case r.Submitted != expectSubmits:
		return fmt.Errorf("soak: submitted %d, want %d", r.Submitted, expectSubmits)
	case r.ServerJobs != expectSubmits:
		return fmt.Errorf("soak: server holds %d jobs, want %d (duplicate or lost submits)",
			r.ServerJobs, expectSubmits)
	case r.HealthFailures > 0:
		return fmt.Errorf("soak: %d/%d health probes failed", r.HealthFailures, r.HealthProbes)
	case r.HealthProbes == 0:
		return fmt.Errorf("soak: no health probes ran")
	}
	return nil
}

func (r SoakResult) String() string {
	return fmt.Sprintf(
		"soak: %d submits (%d resubmits, %d dup IDs, %d retries, %d failures), "+
			"server jobs %d, health %d probes (%d failed, max %s), elapsed %s",
		r.Submitted, r.Resubmits, r.DuplicateIDs, r.Retries, r.SubmitFailures,
		r.ServerJobs, r.HealthProbes, r.HealthFailures, r.HealthMaxLatency, r.Elapsed)
}

// RunSoak drives the storm and returns what it saw. It only errors on
// harness-level failures (cannot reach the server at all); overload
// symptoms land in the result for the caller to judge via Ok.
func RunSoak(cfg SoakConfig) (SoakResult, error) {
	cfg.defaults()
	var (
		mu     sync.Mutex
		res    SoakResult
		tokens = make(map[string]int64)
	)
	addErr := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if len(res.Errors) < 8 {
			res.Errors = append(res.Errors, err.Error())
		}
	}

	// Health prober: its own connection, probing on a fixed cadence with a
	// hard per-probe deadline. health bypasses server admission control,
	// so every probe must answer even while submissions are being shed.
	stopHealth := make(chan struct{})
	healthDone := make(chan struct{})
	probe, err := Dial(cfg.Addr)
	if err != nil {
		return res, fmt.Errorf("soak: health dial: %w", err)
	}
	go func() {
		defer close(healthDone)
		defer probe.Close()
		tick := time.NewTicker(cfg.HealthInterval)
		defer tick.Stop()
		for {
			select {
			case <-stopHealth:
				return
			case <-tick.C:
			}
			start := time.Now()
			probe.conn.SetDeadline(start.Add(cfg.HealthDeadline))
			h, err := probe.Health()
			lat := time.Since(start)
			mu.Lock()
			res.HealthProbes++
			if err != nil || h == "" {
				res.HealthFailures++
			} else if lat > res.HealthMaxLatency {
				res.HealthMaxLatency = lat
			}
			mu.Unlock()
			if err != nil {
				return // connection is dead; stop probing
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				addErr(err)
				mu.Lock()
				res.SubmitFailures += cfg.SubmitsPerClient
				mu.Unlock()
				return
			}
			defer cl.Close()
			rng := des.NewRNG(cfg.Seed).Stream(fmt.Sprintf("soak/client/%d", i))
			cl.Retry = &RetryPolicy{
				MaxAttempts: 24,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Multiplier:  2,
				Jitter:      0.3,
				Rand:        rng.Float64,
				Sleep: func(d time.Duration) {
					atomic.AddInt64(&res.Retries, 1)
					time.Sleep(d)
				},
			}
			for j := 0; j < cfg.SubmitsPerClient; j++ {
				token := fmt.Sprintf("c%d-j%d", i, j)
				id, err := cl.SubmitToken(token, cfg.App, cfg.Nodes,
					des.Duration(cfg.Walltime), des.Duration(cfg.Runtime), token)
				if err != nil {
					addErr(err)
					mu.Lock()
					res.SubmitFailures++
					mu.Unlock()
					continue
				}
				mu.Lock()
				res.Submitted++
				tokens[token] = id
				mu.Unlock()
				// Every third job, replay the submit as a client whose
				// response was lost would: same token, must dedupe to the
				// same job ID.
				if j%3 == 0 {
					again, err := cl.SubmitToken(token, cfg.App, cfg.Nodes,
						des.Duration(cfg.Walltime), des.Duration(cfg.Runtime), token)
					mu.Lock()
					res.Resubmits++
					if err != nil {
						res.SubmitFailures++
					} else if again != id {
						res.DuplicateIDs++
					}
					mu.Unlock()
					if err != nil {
						addErr(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	close(stopHealth)
	<-healthDone

	// Audit the server's view: queue + history row count must equal the
	// distinct tokens acknowledged — no duplicates, nothing lost.
	audit, err := DialRetry(cfg.Addr, cfg.Seed^0xa0d17)
	if err != nil {
		return res, fmt.Errorf("soak: audit dial: %w", err)
	}
	defer audit.Close()
	_, total, err := audit.QueuePage(true, 1, 0)
	if err != nil {
		return res, fmt.Errorf("soak: audit queue: %w", err)
	}
	res.ServerJobs = total
	return res, nil
}
