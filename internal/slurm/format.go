package slurm

import (
	"fmt"
	"strings"

	"repro/internal/des"
)

// Squeue renders jobs in squeue-like columns.
func Squeue(jobs []JobInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %-12s %-10s %-10s %6s %6s %12s %12s  %s\n",
		"JOBID", "NAME", "APP", "STATE", "NODES", "SHARED", "SUBMIT", "TIMELIMIT", "NODELIST")
	for _, j := range jobs {
		shared := ""
		if j.Shared {
			shared = "yes"
		}
		nodelist := compressNodeList(j.NodeList)
		fmt.Fprintf(&b, "%8d %-12s %-10s %-10s %6d %6s %12s %12s  %s\n",
			j.ID, clip(j.Name, 12), clip(j.App, 10), j.State, j.Nodes, shared,
			des.Time(j.Submit).String(), des.Duration(j.Limit).String(), nodelist)
	}
	return b.String()
}

// Sinfo renders node states in sinfo-like columns.
func Sinfo(nodes []NodeInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %-10s %12s %12s  %s\n", "NODE", "STATE", "FREETHREADS", "FREEMEM(MB)", "JOBS")
	for _, n := range nodes {
		jobs := make([]string, len(n.Jobs))
		for i, id := range n.Jobs {
			jobs[i] = fmt.Sprintf("%d", id)
		}
		fmt.Fprintf(&b, "%6d %-10s %12d %12d  %s\n",
			n.ID, n.State, n.FreeThreads, n.FreeMemMB, strings.Join(jobs, ","))
	}
	return b.String()
}

// SinfoSummary renders the one-line aggregate view.
func SinfoSummary(nodes []NodeInfo) string {
	idle, alloc, shared := 0, 0, 0
	for _, n := range nodes {
		switch n.State {
		case "idle":
			idle++
		case "allocated":
			alloc++
		case "shared":
			shared++
		}
	}
	return fmt.Sprintf("nodes: %d total, %d idle, %d allocated, %d shared",
		len(nodes), idle, alloc, shared)
}

// compressNodeList renders a node ID list with ranges, e.g. [0-3,7].
func compressNodeList(ids []int) string {
	if len(ids) == 0 {
		return ""
	}
	var parts []string
	start, prev := ids[0], ids[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, id := range ids[1:] {
		if id == prev+1 {
			prev = id
			continue
		}
		flush()
		start, prev = id, id
	}
	flush()
	return "[" + strings.Join(parts, ",") + "]"
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}
