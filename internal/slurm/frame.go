package slurm

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Journal record framing. The v1 format (PRs 1–4) is plain JSONL: readable,
// but a bit-flipped record that still parses as JSON replays silently into
// divergent state. The v2 format keeps the file line-oriented (one record
// per line, greppable) but makes every record self-verifying:
//
//	#mini-slurm-journal v2 crc32c          ← header line (file is v2)
//	=LLLLLLLL CCCCCCCC {"seq":1,...}       ← frame: hex payload length,
//	                                          hex CRC32C of payload, payload
//	!NNNNNNNN CCCCCCCC                     ← manifest (snapshots only):
//	                                          hex frame count, hex CRC32C of
//	                                          every preceding file byte
//
// The length prefix makes a torn append detectable even when the torn bytes
// happen to look like JSON; the CRC catches bit rot; the manifest seals
// snapshot files, which are written atomically and must never be torn.
// Files whose first line is not the header are read as v1 JSONL, so
// journals written by earlier releases load transparently and are rewritten
// as v2 by the next compaction.
//
// Within one file, sequence numbers must be strictly consecutive: the
// controller stamps Seq = prev+1 on every entry, so a gap or regression
// inside a file is damage, not history.

const (
	// v2Header is the first line of every v2 journal or snapshot file.
	v2Header = "#mini-slurm-journal v2 crc32c"

	journalV1 = 1
	journalV2 = 2

	// frameMetaLen is len("=LLLLLLLL CCCCCCCC ") — the fixed-width frame
	// preamble before the payload.
	frameMetaLen = 19
	// manifestLen is len("!NNNNNNNN CCCCCCCC") — a manifest line's exact size.
	manifestLen = 18
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32c(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

func appendHex8(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[v>>uint(shift)&0xf])
	}
	return dst
}

func parseHex8(s []byte) (uint32, bool) {
	if len(s) != 8 {
		return 0, false
	}
	var v uint32
	for _, c := range s {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// appendFrame appends one v2 frame line for payload (a JSON-encoded entry
// without trailing newline).
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, '=')
	dst = appendHex8(dst, uint32(len(payload)))
	dst = append(dst, ' ')
	dst = appendHex8(dst, crc32c(payload))
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// encodeFrame returns the complete v2 frame line for one entry.
func encodeFrame(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("slurm: encode entry %d: %w", e.Seq, err)
	}
	return appendFrame(nil, payload), nil
}

// parseFramePayload validates a frame line's structure and checksum and
// returns the payload. A non-empty reason describes the damage.
func parseFramePayload(text []byte) (payload []byte, reason string) {
	if len(text) < frameMetaLen || text[0] != '=' || text[9] != ' ' || text[18] != ' ' {
		return nil, "malformed frame"
	}
	length, ok1 := parseHex8(text[1:9])
	sum, ok2 := parseHex8(text[10:18])
	if !ok1 || !ok2 {
		return nil, "malformed frame header"
	}
	payload = text[frameMetaLen:]
	if uint32(len(payload)) != length {
		return nil, fmt.Sprintf("length mismatch (header %d, payload %d)", length, len(payload))
	}
	if crc32c(payload) != sum {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// encodeSnapshot renders entries as a complete v2 snapshot file: header,
// one frame per entry, trailing manifest sealing the whole file.
func encodeSnapshot(entries []Entry) ([]byte, error) {
	buf := append([]byte(v2Header), '\n')
	for _, e := range entries {
		payload, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("slurm: encode entry %d: %w", e.Seq, err)
		}
		buf = appendFrame(buf, payload)
	}
	buf = append(buf, '!')
	buf = appendHex8(buf, uint32(len(entries)))
	buf = append(buf, ' ')
	buf = appendHex8(buf, crc32c(buf[:len(buf)-10]))
	return append(buf, '\n'), nil
}

// Damage describes one damaged region found while scanning a journal or
// snapshot file. Offsets let fsck point at the exact bytes; Raw carries
// them into the quarantine sidecar.
type Damage struct {
	Line   int    `json:"line"`   // 1-based line number
	Offset int64  `json:"offset"` // byte offset of the line start
	Reason string `json:"reason"`
	Raw    []byte `json:"-"`
}

// fileScan is the result of verifying one journal or snapshot file.
type fileScan struct {
	path    string
	version int   // 0 = empty/missing, journalV1, journalV2
	entries []Entry
	// validLen is the byte length of the verified prefix: everything a
	// salvage may keep. Bytes past validLen belong to damaged records.
	validLen int64
	damage   []Damage
	// torn reports that all damage is an unverifiable tail — the expected
	// artifact of a crash mid-append — safe to truncate away. Mid-log
	// damage (a verifiable record exists after the first damaged one) is
	// corruption, never torn.
	torn bool
	// manifest reports a verified trailing manifest (v2 snapshots).
	manifest bool
	// size is the total file length scanned.
	size int64
}

// rawLine is one physical line with its offset; terminated records whether
// the trailing newline was present (a final line without one is torn).
type rawLine struct {
	off        int64
	text       []byte
	terminated bool
}

func splitRawLines(data []byte) []rawLine {
	var lines []rawLine
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			lines = append(lines, rawLine{off: int64(start), text: data[start:i], terminated: true})
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, rawLine{off: int64(start), text: data[start:], terminated: false})
	}
	return lines
}

func (s *fileScan) addDamage(ln rawLine, lineNo int, reason string) {
	raw := ln.text
	if ln.terminated {
		raw = append(append([]byte(nil), raw...), '\n')
	}
	s.damage = append(s.damage, Damage{Line: lineNo, Offset: ln.off, Reason: reason, Raw: raw})
}

// scanFile verifies one journal (wantManifest=false) or snapshot
// (wantManifest=true) file. It never fails on damage — damage is reported
// in the scan for the caller's policy to act on; only the entries of the
// verified prefix are returned.
func scanFile(data []byte, path string, wantManifest bool) *fileScan {
	s := &fileScan{path: path, size: int64(len(data))}
	lines := splitRawLines(data)
	if len(lines) == 0 {
		return s
	}
	if string(lines[0].text) == v2Header && lines[0].terminated {
		s.version = journalV2
		s.scanV2(data, lines, wantManifest)
	} else {
		s.version = journalV1
		s.scanV1(lines)
	}
	return s
}

// lineEnd is the byte offset just past a line (including its newline).
func lineEnd(ln rawLine) int64 {
	end := ln.off + int64(len(ln.text))
	if ln.terminated {
		end++
	}
	return end
}

func (s *fileScan) scanV2(data []byte, lines []rawLine, wantManifest bool) {
	s.validLen = lineEnd(lines[0]) // header
	damaged := false
	validAfterDamage := false
	var prevSeq int64
	haveSeq := false
	for i, ln := range lines[1:] {
		lineNo := i + 2
		if damaged {
			// Past the first damage nothing is trusted; keep scanning only
			// to classify: a structurally valid record after damage means
			// mid-log corruption, not a torn tail.
			s.addDamage(ln, lineNo, "unverified after damage")
			if ln.terminated {
				if _, reason := parseFramePayload(ln.text); reason == "" {
					validAfterDamage = true
				}
			}
			continue
		}
		switch {
		case !ln.terminated:
			damaged = true
			s.addDamage(ln, lineNo, "torn record (no trailing newline)")
		case len(ln.text) > 0 && ln.text[0] == '!':
			if !wantManifest {
				damaged = true
				s.addDamage(ln, lineNo, "unexpected manifest in append-only journal")
				continue
			}
			reason := s.verifyManifest(data, ln)
			if reason != "" {
				damaged = true
				s.addDamage(ln, lineNo, reason)
				continue
			}
			s.manifest = true
			s.validLen = lineEnd(ln)
		case s.manifest:
			damaged = true
			s.addDamage(ln, lineNo, "data after manifest")
		default:
			payload, reason := parseFramePayload(ln.text)
			if reason != "" {
				damaged = true
				s.addDamage(ln, lineNo, reason)
				continue
			}
			var e Entry
			if err := json.Unmarshal(payload, &e); err != nil {
				damaged = true
				s.addDamage(ln, lineNo, fmt.Sprintf("payload parse error: %v", err))
				continue
			}
			if reason := checkSeq(&prevSeq, &haveSeq, e.Seq); reason != "" {
				damaged = true
				s.addDamage(ln, lineNo, reason)
				continue
			}
			s.entries = append(s.entries, e)
			s.validLen = lineEnd(ln)
		}
	}
	if wantManifest && !s.manifest && !damaged {
		// Snapshots are written atomically: a clean scan with no manifest
		// means the file was cut off exactly at a frame boundary.
		s.damage = append(s.damage, Damage{Line: len(lines) + 1, Offset: s.size, Reason: "missing manifest"})
		damaged = true
	}
	s.torn = damaged && !validAfterDamage && !s.manifest
}

func (s *fileScan) verifyManifest(data []byte, ln rawLine) string {
	if len(ln.text) != manifestLen || ln.text[9] != ' ' {
		return "malformed manifest"
	}
	count, ok1 := parseHex8(ln.text[1:9])
	sum, ok2 := parseHex8(ln.text[10:18])
	if !ok1 || !ok2 {
		return "malformed manifest"
	}
	if int(count) != len(s.entries) {
		return fmt.Sprintf("manifest frame count %d, file has %d", count, len(s.entries))
	}
	if crc32c(data[:ln.off]) != sum {
		return "manifest checksum mismatch"
	}
	return ""
}

func (s *fileScan) scanV1(lines []rawLine) {
	damaged := false
	validAfterDamage := false
	var prevSeq int64
	haveSeq := false
	for i, ln := range lines {
		lineNo := i + 1
		if len(ln.text) == 0 && ln.terminated {
			if !damaged {
				s.validLen = lineEnd(ln)
			} else {
				s.addDamage(ln, lineNo, "unverified after damage")
			}
			continue
		}
		if damaged {
			s.addDamage(ln, lineNo, "unverified after damage")
			if ln.terminated {
				var e Entry
				if json.Unmarshal(ln.text, &e) == nil {
					validAfterDamage = true
				} else if _, reason := parseFramePayload(ln.text); reason == "" {
					// A checksummed v2 frame inside a "v1" file means the v2
					// header itself was damaged: corruption, not a torn tail —
					// truncating here would silently discard the whole log.
					validAfterDamage = true
				}
			}
			continue
		}
		var e Entry
		reason := ""
		switch {
		case !ln.terminated:
			reason = "torn record (no trailing newline)"
		case json.Unmarshal(ln.text, &e) != nil:
			reason = "parse error"
		default:
			reason = checkSeq(&prevSeq, &haveSeq, e.Seq)
		}
		if reason != "" {
			damaged = true
			s.addDamage(ln, lineNo, reason)
			continue
		}
		s.entries = append(s.entries, e)
		s.validLen = lineEnd(ln)
	}
	s.torn = damaged && !validAfterDamage
}

// checkSeq enforces the strictly-consecutive sequence invariant within one
// file. A torn write whose fragment still parses as JSON — or a bit flip in
// a v1 seq digit — shows up here as a regression or gap.
func checkSeq(prev *int64, have *bool, seq int64) string {
	if !*have {
		*have, *prev = true, seq
		return ""
	}
	if seq != *prev+1 {
		if seq <= *prev {
			return fmt.Sprintf("out-of-sequence record (seq %d after %d)", seq, *prev)
		}
		return fmt.Sprintf("sequence gap (seq %d after %d)", seq, *prev)
	}
	*prev = seq
	return ""
}
