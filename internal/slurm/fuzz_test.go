package slurm

import (
	"strings"
	"testing"
)

// FuzzParseConfig drives the slurm.conf parser with arbitrary input: it
// must never panic, and any configuration it accepts must validate and be
// able to boot a controller.
func FuzzParseConfig(f *testing.F) {
	f.Add(sampleConf)
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n")
	f.Add("# only a comment\n")
	f.Add("ClusterName=x\nNodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\n")
	f.Add("NodeName=n[001-999] CPUs=64 ThreadsPerCore=2 RealMemory=131072\nOverSubscribe=YES\n")
	f.Add("=")
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n" +
		"FaultMTBF=86400\nFaultMTTR=900\nFaultShape=1.5\nJobCrashProb=0.02\n" +
		"FaultMaxRetries=3\nFaultBackoff=30\nFaultSeed=7\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultMTBF=-1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nJobCrashProb=1.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultMTBF=100\nFaultMTTR=0\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultSeed=18446744073709551615\n")
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n" +
		"MaxClientConns=256\nMaxInflight=32\nRateLimitPerConn=100\nRateLimitBurst=10\n" +
		"RateLimitControlCost=0.1\nBusyRetryAfter=0.25\n" +
		"BreakerThreshold=5\nBreakerCooldown=5\nHistoryLimit=1000\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nMaxClientConns=-1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nRateLimitPerConn=-3\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nRateLimitControlCost=2.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBusyRetryAfter=-0.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBreakerThreshold=1\nBreakerCooldown=0\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nHistoryLimit=9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := ParseConfig(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails validation: %v", err)
		}
		// Keep the fuzz cheap: only boot plausibly-sized machines.
		if cfg.Machine.Nodes <= 1024 && cfg.Machine.CoresPerNode <= 256 {
			if _, err := NewController(cfg); err != nil {
				t.Fatalf("accepted config cannot boot a controller: %v", err)
			}
		}
	})
}
