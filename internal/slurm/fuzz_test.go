package slurm

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// FuzzParseConfig drives the slurm.conf parser with arbitrary input: it
// must never panic, and any configuration it accepts must validate and be
// able to boot a controller.
func FuzzParseConfig(f *testing.F) {
	f.Add(sampleConf)
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n")
	f.Add("# only a comment\n")
	f.Add("ClusterName=x\nNodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\n")
	f.Add("NodeName=n[001-999] CPUs=64 ThreadsPerCore=2 RealMemory=131072\nOverSubscribe=YES\n")
	f.Add("=")
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n" +
		"FaultMTBF=86400\nFaultMTTR=900\nFaultShape=1.5\nJobCrashProb=0.02\n" +
		"FaultMaxRetries=3\nFaultBackoff=30\nFaultSeed=7\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultMTBF=-1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nJobCrashProb=1.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultMTBF=100\nFaultMTTR=0\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nFaultSeed=18446744073709551615\n")
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n" +
		"MaxClientConns=256\nMaxInflight=32\nRateLimitPerConn=100\nRateLimitBurst=10\n" +
		"RateLimitControlCost=0.1\nBusyRetryAfter=0.25\n" +
		"BreakerThreshold=5\nBreakerCooldown=5\nHistoryLimit=1000\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nMaxClientConns=-1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nRateLimitPerConn=-3\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nRateLimitControlCost=2.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBusyRetryAfter=-0.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBreakerThreshold=1\nBreakerCooldown=0\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nHistoryLimit=9999999999999999999999\n")
	f.Add("NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n" +
		"ShedTargetLatency=0.02\nShedWindow=0.1\nBrownoutStepAfter=0.5\n" +
		"BrownoutCooldown=2\nBrownoutHistoryLimit=64\nBrownoutStaleSeconds=1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nShedTargetLatency=-1\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBrownoutStepAfter=0.5\n")
	f.Add("NodeName=n CPUs=2 ThreadsPerCore=1 RealMemory=64\nBrownoutHistoryLimit=-5\n")
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := ParseConfig(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails validation: %v", err)
		}
		// Keep the fuzz cheap: only boot plausibly-sized machines.
		if cfg.Machine.Nodes <= 1024 && cfg.Machine.CoresPerNode <= 256 {
			if _, err := NewController(cfg); err != nil {
				t.Fatalf("accepted config cannot boot a controller: %v", err)
			}
		}
	})
}

// FuzzDeadlineWire drives the deadline/priority wire surface with arbitrary
// JSON: whatever a hostile client puts in deadline_ms, op, or (as a server)
// retry_after_ms, the budget resolution, verb classing, and retry-after
// clamping must never panic, overflow into a huge wait, or mis-parse into a
// budget the arithmetic cannot handle.
func FuzzDeadlineWire(f *testing.F) {
	f.Add(`{"op":"queue","deadline_ms":100}`)
	f.Add(`{"op":"submit","deadline_ms":-1}`)
	f.Add(`{"op":"queue","deadline_ms":9223372036854775807}`)
	f.Add(`{"op":"queue","deadline_ms":-9223372036854775808}`)
	f.Add(`{"op":"health","deadline_ms":0}`)
	f.Add(`{"op":"","deadline_ms":1}`)
	f.Add("{\"op\":\"\x00weird\",\"deadline_ms\":42}")
	f.Add(`{"busy":true,"retry_after_ms":9223372036854775807}`)
	f.Add(`{"shed":true,"retry_after_ms":-5}`)
	f.Add(`{"deadline_exceeded":true,"error":"deadline exceeded: x"}`)
	f.Add(`{"op":"queue","deadline_ms":1e30}`)
	f.Add(`{"op":"queue","deadline_ms":"soon"}`)
	f.Fuzz(func(t *testing.T, line string) {
		now := time.Unix(1700000000, 0)

		var req Request
		if err := json.Unmarshal([]byte(line), &req); err == nil {
			b := requestBudget(req.DeadlineMS, now)
			// Whatever came off the wire, the resolved budget must be
			// arithmetic-safe: remaining() bounded by the clamp, expiry
			// queries valid at any probe time.
			if rem := b.remaining(now); rem > time.Duration(maxDeadlineMS)*time.Millisecond {
				t.Fatalf("deadline_ms %d resolved past the clamp: %v", req.DeadlineMS, rem)
			}
			b.expired(now)
			b.expired(now.Add(100 * time.Hour))
			if req.DeadlineMS < 0 && !b.expired(now) {
				t.Fatalf("negative deadline_ms %d not pre-expired", req.DeadlineMS)
			}
			// Verb classing is total: any op string lands in a real class.
			if c := verbClass(req.Op); c < classControl || c >= numClasses {
				t.Fatalf("verbClass(%q) = %d out of range", req.Op, c)
			}
		}

		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err == nil {
			// A hostile server's retry-after must clamp into [0, 60s]: never
			// negative, never parking the client forever.
			d := clampRetryAfterMS(resp.RetryAfterMS)
			if d < 0 || d > time.Minute {
				t.Fatalf("clampRetryAfterMS(%d) = %v outside [0, 1m]", resp.RetryAfterMS, d)
			}
		}
	})
}
