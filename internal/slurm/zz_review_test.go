package slurm

import (
	"testing"

	"repro/internal/vfs"
)

func TestReviewCompactFaultSeqReuse(t *testing.T) {
	fsys := vfs.NewFaulty(vfs.OS{}, vfs.FaultProfile{Seed: 1, SyncFailTransient: true})
	dir := t.TempDir()
	cfg := testControllerConfig()
	c, err := OpenJournaledFS(cfg, fsys, dir, 2) // compact every 2 appends
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("minife", 1, 1800, 900, "a"); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	fsys.FailSyncs(1) // next fsync (snapshot tmp during inline compact) fails
	if _, err := c.Submit("minife", 1, 1800, 900, "b"); err == nil {
		t.Log("submit b succeeded (no inline compact fault)")
	} else {
		t.Logf("submit b failed as expected: %v", err)
	}
	// Client retries; controller keeps serving.
	if _, err := c.Submit("minife", 1, 1800, 900, "b2"); err != nil {
		t.Logf("submit b2: %v", err)
	}
	if _, err := c.Submit("minife", 1, 1800, 900, "c"); err != nil {
		t.Logf("submit c: %v", err)
	}
	c.Close()
	c2, err := OpenJournaled(cfg, dir, 0)
	if err != nil {
		t.Fatalf("RECOVERY REFUSED: %v", err)
	}
	c2.Close()
}
