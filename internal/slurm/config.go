// Package slurm is the SLURM-like workload-manager layer: a slurm.conf-style
// configuration format, multifactor job priority, a controller that fields
// interactive submissions, and a line-oriented network protocol with
// sbatch/squeue/sinfo-style tooling on top.
//
// The paper implements its strategies inside the real SLURM; this package is
// the from-scratch substitute (DESIGN.md §1): it reproduces the operational
// surface — configuration, priorities, submission, queue introspection —
// while time is simulated, so experiments run in milliseconds and the
// scheduling behaviour is exactly the policies under study.
package slurm

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/sched"
)

// Config is the parsed workload-manager configuration.
type Config struct {
	// ClusterName labels the instance.
	ClusterName string
	// Machine is the node inventory.
	Machine cluster.Config
	// Policy is the scheduling policy registry name, mapped from
	// SchedulerType (see schedulerTypes).
	Policy string
	// Share tunes the sharing policies (populated from OverSubscribe and
	// the extension keys).
	Share sched.ShareConfig
	// Partition is the single partition (the evaluated systems schedule
	// one homogeneous partition).
	Partition Partition
	// Priority configures the multifactor priority plugin.
	Priority PriorityConfig
	// Fault configures fault injection (populated from the Fault* keys);
	// Enabled is derived: any positive failure rate turns it on.
	Fault fault.Config
	// Overload configures admission control and graceful degradation for
	// the protocol server and controller (populated from MaxClientConns,
	// MaxInflight, RateLimit*, Busy*, Breaker*, and HistoryLimit keys).
	// The zero value disables every overload feature, keeping protocol
	// behaviour and journal format byte-compatible with earlier releases.
	Overload OverloadConfig
	// HA configures the controller pair (populated from ReplicaAddr,
	// HALeaseSeconds, HAHeartbeatSeconds). The zero value — no replication
	// keys in slurm.conf — disables HA, keeping the wire protocol and
	// journal format byte-compatible with standalone releases.
	HA HAConfig
	// JournalCorruptPolicy selects what recovery does with a journal or
	// snapshot record that fails checksum verification mid-log: refuse to
	// start (FAIL, the default) or salvage the committed prefix, quarantine
	// the damage, and run read-only DEGRADED (QUARANTINE). Torn journal
	// tails are always truncated and salvaged regardless of policy.
	JournalCorruptPolicy CorruptPolicy
}

// Partition is a job partition with admission limits.
type Partition struct {
	// Name identifies the partition, e.g. "batch".
	Name string
	// MaxTime caps requested walltimes (0 = unlimited).
	MaxTime des.Duration
	// MaxNodes caps node requests (0 = machine size).
	MaxNodes int
}

// schedulerTypes maps SLURM-style SchedulerType values to policy names.
var schedulerTypes = map[string]string{
	"sched/builtin":                     "fcfs",
	"sched/firstfit":                    "firstfit",
	"sched/backfill":                    "easy",
	"sched/backfill_conservative":       "conservative",
	"sched/share_firstfit":              "sharefirstfit",
	"sched/share_backfill":              "sharebackfill",
	"sched/share_backfill_conservative": "shareconservative",
}

// DefaultConfig returns the evaluated configuration: a 32-node Trinity-class
// partition under co-allocation-aware backfill.
func DefaultConfig() Config {
	return Config{
		ClusterName: "trinity-sim",
		Machine:     cluster.Trinity(32),
		Policy:      "sharebackfill",
		Share:       sched.DefaultShareConfig(),
		Partition:   Partition{Name: "batch"},
		Priority:    DefaultPriorityConfig(),
	}
}

var nodeRangeRe = regexp.MustCompile(`^([a-zA-Z_-]*)\[(\d+)-(\d+)\]$`)

// ParseConfig reads a slurm.conf-style stream: '#' comments, KEY=VALUE
// pairs, and NodeName/PartitionName lines carrying attribute lists.
//
// Recognized keys (unknown keys are an error so typos surface):
//
//	ClusterName=<string>
//	SchedulerType=sched/{builtin,firstfit,backfill,backfill_conservative,
//	                     share_firstfit,share_backfill,
//	                     share_backfill_conservative}
//	OverSubscribe=YES|NO
//	MinComplementarity=<float>         (sharing extension)
//	MinEstimatedRate=<float>           (sharing extension)
//	MaxShareDegree=<int>               (sharing extension)
//	PairingAware=YES|NO                (sharing extension)
//	InflationAccounting=YES|NO         (sharing extension)
//	PreferShared=YES|NO                (sharing extension)
//	NodeName=<name|name[lo-hi]> CPUs=<int> ThreadsPerCore=<int> RealMemory=<MB>
//	PartitionName=<name> [MaxTime=<seconds>] [MaxNodes=<int>]
//	PriorityWeightAge=<int>
//	PriorityWeightJobSize=<int>
//	PriorityWeightFairshare=<int>
//	PriorityFavorSmall=YES|NO
//	PriorityMaxAge=<seconds>
//	FaultMTBF=<seconds>                (fault injection: mean time between
//	                                    per-node failures; 0 = off)
//	FaultMTTR=<seconds>                (mean time to repair)
//	FaultShape=<float>                 (Weibull time-to-failure shape)
//	JobCrashProb=<float>               (per-attempt crash probability)
//	FaultMaxRetries=<int>              (requeue budget before a job fails)
//	FaultBackoff=<seconds>             (base requeue backoff, doubling)
//	FaultSeed=<uint>                   (failure-trace RNG seed)
//	MaxClientConns=<int>               (overload: concurrent connection cap;
//	                                    0 = unlimited)
//	MaxInflight=<int>                  (overload: concurrent in-flight
//	                                    request cap; 0 = unlimited)
//	RateLimitPerConn=<float>           (overload: per-connection requests
//	                                    per second; 0 = unlimited)
//	RateLimitBurst=<float>             (overload: token bucket depth)
//	RateLimitControlCost=<float>       (overload: token cost of control
//	                                    verbs; bulk verbs cost 1)
//	BusyRetryAfter=<seconds>           (overload: retry-after hint attached
//	                                    to BUSY load-shedding responses)
//	BreakerThreshold=<int>             (overload: consecutive journal
//	                                    failures that trip DEGRADED mode;
//	                                    0 = breaker off)
//	BreakerCooldown=<seconds>          (overload: tripped-to-half-open wait)
//	HistoryLimit=<int>                 (overload: default cap on history
//	                                    rows per queue reply; 0 = unlimited)
//	ShedTargetLatency=<seconds>        (serve: EWMA service-latency target;
//	                                    sustained excess sheds low-priority
//	                                    verb classes; 0 = shedder off)
//	ShedWindow=<seconds>               (serve: sustained-pressure window of
//	                                    the shedder, both directions)
//	BrownoutStepAfter=<seconds>        (serve: pressure sustained this long
//	                                    climbs the brownout ladder one level;
//	                                    requires ShedTargetLatency; 0 = off)
//	BrownoutCooldown=<seconds>         (serve: quiet period before the ladder
//	                                    steps back down; 0 = 4x step)
//	BrownoutHistoryLimit=<int>         (serve: history-page cap at brownout
//	                                    level PAGED and above)
//	BrownoutStaleSeconds=<seconds>     (serve: snapshot-cache TTL at brownout
//	                                    level STALE and above)
//	ReplicaAddr=<host:port>            (HA: standby to stream journal
//	                                    entries to; absent = standalone)
//	HALeaseSeconds=<float>             (HA: failover lease; standby promotes
//	                                    after this long without a heartbeat,
//	                                    primary self-fences after half of it)
//	HAHeartbeatSeconds=<float>         (HA: replication heartbeat spacing;
//	                                    must be shorter than the lease)
//	JournalCorruptPolicy=FAIL|QUARANTINE (storage: refuse to start on a
//	                                    corrupt journal record, or salvage
//	                                    the committed prefix and run
//	                                    read-only; default FAIL)
func ParseConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	cfg.Machine = cluster.Config{} // must come from NodeName
	sc := bufio.NewScanner(r)
	lineNo := 0
	sawNodes := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, ok := strings.Cut(line, "=")
		if !ok {
			return Config{}, fmt.Errorf("slurm: line %d: expected KEY=VALUE, got %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		var err error
		switch key {
		case "ClusterName":
			cfg.ClusterName = strings.TrimSpace(rest)
		case "SchedulerType":
			pol, known := schedulerTypes[strings.TrimSpace(rest)]
			if !known {
				return Config{}, fmt.Errorf("slurm: line %d: unknown SchedulerType %q", lineNo, rest)
			}
			cfg.Policy = pol
		case "OverSubscribe":
			cfg.Share.Enabled, err = parseYesNo(rest)
		case "MinComplementarity":
			cfg.Share.MinComplementarity, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "MinEstimatedRate":
			cfg.Share.MinEstimatedRate, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "MaxShareDegree":
			cfg.Share.MaxDegree, err = strconv.Atoi(strings.TrimSpace(rest))
		case "PairingAware":
			cfg.Share.PairingAware, err = parseYesNo(rest)
		case "InflationAccounting":
			cfg.Share.InflationAccounting, err = parseYesNo(rest)
		case "PreferShared":
			cfg.Share.PreferShared, err = parseYesNo(rest)
		case "NodeName":
			cfg.Machine, err = parseNodeLine(rest)
			sawNodes = err == nil
		case "PartitionName":
			cfg.Partition, err = parsePartitionLine(rest)
		case "PriorityWeightAge":
			cfg.Priority.WeightAge, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "PriorityWeightJobSize":
			cfg.Priority.WeightJobSize, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "PriorityWeightFairshare":
			cfg.Priority.WeightFairshare, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "PriorityFavorSmall":
			cfg.Priority.FavorSmall, err = parseYesNo(rest)
		case "PriorityMaxAge":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Priority.MaxAge = des.Duration(v)
		case "FaultMTBF":
			cfg.Fault.MTBF, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "FaultMTTR":
			cfg.Fault.MTTR, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "FaultShape":
			cfg.Fault.Shape, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "JobCrashProb":
			cfg.Fault.CrashProb, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "FaultMaxRetries":
			cfg.Fault.MaxRetries, err = strconv.Atoi(strings.TrimSpace(rest))
		case "FaultBackoff":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Fault.Backoff = des.Duration(v)
		case "FaultSeed":
			cfg.Fault.Seed, err = strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		case "MaxClientConns":
			cfg.Overload.MaxConns, err = strconv.Atoi(strings.TrimSpace(rest))
		case "MaxInflight":
			cfg.Overload.MaxInflight, err = strconv.Atoi(strings.TrimSpace(rest))
		case "RateLimitPerConn":
			cfg.Overload.RateLimit, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "RateLimitBurst":
			cfg.Overload.RateBurst, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "RateLimitControlCost":
			cfg.Overload.ControlCost, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
		case "BusyRetryAfter":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.RetryAfter = time.Duration(v * float64(time.Second))
		case "BreakerThreshold":
			cfg.Overload.BreakerThreshold, err = strconv.Atoi(strings.TrimSpace(rest))
		case "BreakerCooldown":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.BreakerCooldown = time.Duration(v * float64(time.Second))
		case "HistoryLimit":
			cfg.Overload.HistoryLimit, err = strconv.Atoi(strings.TrimSpace(rest))
		case "ShedTargetLatency":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.ShedTarget = time.Duration(v * float64(time.Second))
		case "ShedWindow":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.ShedWindow = time.Duration(v * float64(time.Second))
		case "BrownoutStepAfter":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.BrownoutStep = time.Duration(v * float64(time.Second))
		case "BrownoutCooldown":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.BrownoutCooldown = time.Duration(v * float64(time.Second))
		case "BrownoutHistoryLimit":
			cfg.Overload.BrownoutHistoryLimit, err = strconv.Atoi(strings.TrimSpace(rest))
		case "BrownoutStaleSeconds":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.Overload.BrownoutStaleFor = time.Duration(v * float64(time.Second))
		case "ReplicaAddr":
			cfg.HA.Replica = strings.TrimSpace(rest)
		case "HALeaseSeconds":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.HA.Lease = time.Duration(v * float64(time.Second))
		case "HAHeartbeatSeconds":
			var v float64
			v, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
			cfg.HA.Heartbeat = time.Duration(v * float64(time.Second))
		case "JournalCorruptPolicy":
			cfg.JournalCorruptPolicy = CorruptPolicy(strings.ToLower(strings.TrimSpace(rest)))
			err = cfg.JournalCorruptPolicy.Validate()
		default:
			return Config{}, fmt.Errorf("slurm: line %d: unknown key %q", lineNo, key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("slurm: line %d: %s: %v", lineNo, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Config{}, fmt.Errorf("slurm: read: %w", err)
	}
	if !sawNodes {
		return Config{}, fmt.Errorf("slurm: configuration has no NodeName line")
	}
	cfg.Fault.Enabled = cfg.Fault.MTBF > 0 || cfg.Fault.CrashProb > 0
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the configuration's internal consistency.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if _, err := sched.New(c.Policy, c.Share); err != nil {
		return err
	}
	if c.Partition.Name == "" {
		return fmt.Errorf("slurm: partition has no name")
	}
	if c.Partition.MaxTime < 0 || c.Partition.MaxNodes < 0 {
		return fmt.Errorf("slurm: negative partition limits")
	}
	if err := c.Priority.Validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Overload.Validate(); err != nil {
		return err
	}
	if err := c.HA.Validate(); err != nil {
		return err
	}
	if err := c.JournalCorruptPolicy.Validate(); err != nil {
		return err
	}
	return nil
}

func parseYesNo(s string) (bool, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "YES":
		return true, nil
	case "NO":
		return false, nil
	default:
		return false, fmt.Errorf("want YES or NO, got %q", s)
	}
}

// parseNodeLine parses "nid[001-032] CPUs=32 ThreadsPerCore=2
// RealMemory=131072" into a cluster config.
func parseNodeLine(rest string) (cluster.Config, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return cluster.Config{}, fmt.Errorf("empty NodeName line")
	}
	count, err := nodeCount(fields[0])
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.Config{Nodes: count, ThreadsPerCore: 1}
	cpus := 0
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return cluster.Config{}, fmt.Errorf("bad node attribute %q", f)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("node attribute %s: %v", k, err)
		}
		switch k {
		case "CPUs":
			cpus = n
		case "ThreadsPerCore":
			cfg.ThreadsPerCore = n
		case "RealMemory":
			cfg.MemoryPerNodeMB = n
		default:
			return cluster.Config{}, fmt.Errorf("unknown node attribute %q", k)
		}
	}
	if cpus == 0 {
		return cluster.Config{}, fmt.Errorf("NodeName line missing CPUs")
	}
	if cfg.ThreadsPerCore <= 0 || cpus%cfg.ThreadsPerCore != 0 {
		return cluster.Config{}, fmt.Errorf("CPUs=%d not divisible by ThreadsPerCore=%d",
			cpus, cfg.ThreadsPerCore)
	}
	// SLURM's CPUs counts hardware threads; cores = CPUs / ThreadsPerCore.
	cfg.CoresPerNode = cpus / cfg.ThreadsPerCore
	return cfg, nil
}

// nodeCount derives the node count from a name or bracket range:
// "nid[001-032]" → 32, a plain name → 1.
func nodeCount(name string) (int, error) {
	m := nodeRangeRe.FindStringSubmatch(name)
	if m == nil {
		return 1, nil
	}
	lo, err := strconv.Atoi(m[2])
	if err != nil {
		return 0, err
	}
	hi, err := strconv.Atoi(m[3])
	if err != nil {
		return 0, err
	}
	if hi < lo {
		return 0, fmt.Errorf("node range %q is inverted", name)
	}
	return hi - lo + 1, nil
}

// parsePartitionLine parses "batch MaxTime=86400 MaxNodes=16".
func parsePartitionLine(rest string) (Partition, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Partition{}, fmt.Errorf("empty PartitionName line")
	}
	p := Partition{Name: fields[0]}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Partition{}, fmt.Errorf("bad partition attribute %q", f)
		}
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Partition{}, fmt.Errorf("partition attribute %s: %v", k, err)
		}
		switch k {
		case "MaxTime":
			p.MaxTime = des.Duration(n)
		case "MaxNodes":
			p.MaxNodes = int(n)
		default:
			return Partition{}, fmt.Errorf("unknown partition attribute %q", k)
		}
	}
	return p, nil
}
