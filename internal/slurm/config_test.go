package slurm

import (
	"os"
	"strings"
	"testing"
	"time"
)

const sampleConf = `
# trinity-sim cluster
ClusterName=trinity-sim
SchedulerType=sched/share_backfill
OverSubscribe=YES
MinComplementarity=0.4
MaxShareDegree=2
PairingAware=YES
InflationAccounting=YES
PreferShared=YES
NodeName=nid[001-032] CPUs=64 ThreadsPerCore=2 RealMemory=131072
PartitionName=batch MaxTime=86400 MaxNodes=16
PriorityWeightAge=1000
PriorityWeightJobSize=100
PriorityFavorSmall=NO
PriorityMaxAge=604800
`

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(sampleConf))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ClusterName != "trinity-sim" {
		t.Errorf("ClusterName = %q", cfg.ClusterName)
	}
	if cfg.Policy != "sharebackfill" {
		t.Errorf("Policy = %q", cfg.Policy)
	}
	if cfg.Machine.Nodes != 32 {
		t.Errorf("Nodes = %d", cfg.Machine.Nodes)
	}
	// SLURM CPUs are hardware threads: 64 CPUs / 2 threads = 32 cores.
	if cfg.Machine.CoresPerNode != 32 || cfg.Machine.ThreadsPerCore != 2 {
		t.Errorf("cores/threads = %d/%d", cfg.Machine.CoresPerNode, cfg.Machine.ThreadsPerCore)
	}
	if cfg.Machine.MemoryPerNodeMB != 131072 {
		t.Errorf("memory = %d", cfg.Machine.MemoryPerNodeMB)
	}
	if !cfg.Share.Enabled || cfg.Share.MinComplementarity != 0.4 || cfg.Share.MaxDegree != 2 {
		t.Errorf("share config = %+v", cfg.Share)
	}
	if cfg.Partition.Name != "batch" || float64(cfg.Partition.MaxTime) != 86400 || cfg.Partition.MaxNodes != 16 {
		t.Errorf("partition = %+v", cfg.Partition)
	}
	if cfg.Priority.WeightAge != 1000 || cfg.Priority.WeightJobSize != 100 || cfg.Priority.FavorSmall {
		t.Errorf("priority = %+v", cfg.Priority)
	}
}

func TestParseConfigErrors(t *testing.T) {
	base := "NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n"
	cases := map[string]string{
		"no nodes":        "ClusterName=x\n",
		"bad line":        base + "not-a-kv\n",
		"unknown key":     base + "Bogus=1\n",
		"bad scheduler":   base + "SchedulerType=sched/nope\n",
		"bad yesno":       base + "OverSubscribe=MAYBE\n",
		"bad float":       base + "MinComplementarity=abc\n",
		"bad node attr":   "NodeName=n[1-4] CPUs=8 Frobnicate=2\n",
		"no cpus":         "NodeName=n[1-4] ThreadsPerCore=2 RealMemory=1024\n",
		"indivisible":     "NodeName=n[1-4] CPUs=7 ThreadsPerCore=2 RealMemory=1024\n",
		"inverted range":  "NodeName=n[9-3] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n",
		"empty partition": base + "PartitionName=\n",
		"bad partition":   base + "PartitionName=batch MaxTime=abc\n",
		"neg priority":    base + "PriorityWeightAge=-5\n",
	}
	for name, input := range cases {
		if _, err := ParseConfig(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseConfigOverload(t *testing.T) {
	base := "NodeName=n[1-4] CPUs=8 ThreadsPerCore=2 RealMemory=1024\n"
	cfg, err := ParseConfig(strings.NewReader(base +
		"MaxClientConns=256\nMaxInflight=32\n" +
		"RateLimitPerConn=100\nRateLimitBurst=10\nRateLimitControlCost=0.05\n" +
		"BusyRetryAfter=0.25\nBreakerThreshold=5\nBreakerCooldown=10\nHistoryLimit=1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	o := cfg.Overload
	if o.MaxConns != 256 || o.MaxInflight != 32 {
		t.Errorf("conns/inflight = %d/%d", o.MaxConns, o.MaxInflight)
	}
	if o.RateLimit != 100 || o.RateBurst != 10 || o.ControlCost != 0.05 {
		t.Errorf("rate limit = %+v", o)
	}
	if o.RetryAfter != 250*time.Millisecond {
		t.Errorf("RetryAfter = %v", o.RetryAfter)
	}
	if o.BreakerThreshold != 5 || o.BreakerCooldown != 10*time.Second {
		t.Errorf("breaker = %d/%v", o.BreakerThreshold, o.BreakerCooldown)
	}
	if o.HistoryLimit != 1000 {
		t.Errorf("HistoryLimit = %d", o.HistoryLimit)
	}
	// Without any of the keys, the overload layer stays entirely disabled —
	// the byte-compatibility guarantee hangs off this zero value.
	plain, err := ParseConfig(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Overload != (OverloadConfig{}) {
		t.Errorf("overload defaults non-zero: %+v", plain.Overload)
	}

	for name, input := range map[string]string{
		"neg conns":        base + "MaxClientConns=-1\n",
		"neg inflight":     base + "MaxInflight=-2\n",
		"neg rate":         base + "RateLimitPerConn=-3\n",
		"big control cost": base + "RateLimitControlCost=2.5\n",
		"neg retry after":  base + "BusyRetryAfter=-0.5\n",
		"neg threshold":    base + "BreakerThreshold=-1\n",
		"neg history":      base + "HistoryLimit=-10\n",
	} {
		if _, err := ParseConfig(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseConfigSingleNode(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(
		"NodeName=login CPUs=4 ThreadsPerCore=1 RealMemory=2048\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Machine.Nodes != 1 || cfg.Machine.CoresPerNode != 4 {
		t.Fatalf("machine = %+v", cfg.Machine)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerTypeMapping(t *testing.T) {
	for st, want := range schedulerTypes {
		conf := "SchedulerType=" + st + "\nNodeName=n[1-2] CPUs=4 ThreadsPerCore=2 RealMemory=1024\n"
		cfg, err := ParseConfig(strings.NewReader(conf))
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if cfg.Policy != want {
			t.Errorf("%s → %q, want %q", st, cfg.Policy, want)
		}
	}
}

// The shipped configuration file must parse, validate, and describe the
// evaluated system.
func TestShippedTrinityConfig(t *testing.T) {
	f, err := os.Open("../../configs/trinity.conf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ClusterName != "trinity-sim" || cfg.Policy != "sharebackfill" {
		t.Fatalf("shipped config = %q/%q", cfg.ClusterName, cfg.Policy)
	}
	if cfg.Machine.Nodes != 32 || cfg.Machine.CoresPerNode != 32 || cfg.Machine.ThreadsPerCore != 2 {
		t.Fatalf("shipped machine = %+v", cfg.Machine)
	}
	if _, err := NewController(cfg); err != nil {
		t.Fatalf("shipped config cannot boot: %v", err)
	}
}

// The shipped overload configuration enables every protection knob and
// still boots.
func TestShippedOverloadConfig(t *testing.T) {
	f, err := os.Open("../../configs/trinity-overload.conf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	o := cfg.Overload
	if o.MaxConns == 0 || o.MaxInflight == 0 || o.RateLimit == 0 ||
		o.BreakerThreshold == 0 || o.HistoryLimit == 0 {
		t.Fatalf("shipped overload config leaves protections disabled: %+v", o)
	}
	if _, err := NewController(cfg); err != nil {
		t.Fatalf("shipped overload config cannot boot: %v", err)
	}
}
