package slurm

import (
	"errors"
	"expvar"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Request robustness: deadline propagation, prioritized load shedding, and
// the brownout ladder. The token bucket and in-flight semaphore (overload.go)
// protect the server from raw request *volume*; this file protects the
// *value* of the work that does get in. Every request may carry a relative
// deadline budget — work whose client has given up is refused before it
// costs an fsync or a replication round-trip. Under sustained pressure an
// adaptive, CoDel-style signal sheds the lowest-value verb class first
// (queries before submits, control verbs never), and a hysteresis-guarded
// ladder of journaled degradations (bounded history paging → stale-snapshot
// reads → read-only) lets the controller brown out and recover instead of
// falling over.

// Verb priority classes, highest value first. Control verbs are the
// operator's steering wheel (cancel, requeue, node state, replication) and
// are never shed by the priority shedder; submits are the work the cluster
// exists for; queries are reconstructible from a retry and go first.
const (
	classControl = iota
	classSubmit
	classQuery
	numClasses
)

// verbClass maps an op to its priority class. Unknown ops class as queries:
// they will be rejected anyway, and a garbage-spraying client must not ride
// the control-class exemption.
func verbClass(op string) int {
	switch op {
	case "cancel", "requeue", "drain_node", "resume_node", "down_node",
		"up_node", "replicate", "health", "config":
		return classControl
	case "submit", "advance", "drain":
		return classSubmit
	}
	return classQuery
}

// className names a class for wire errors and bench output.
func className(class int) string {
	switch class {
	case classControl:
		return "control"
	case classSubmit:
		return "submit"
	}
	return "query"
}

// ErrDeadlineExceeded is returned by controller mutations whose request
// budget expired — either before any work was done, or (wrapped, see
// Controller.logB) after the entry was locally durable but before the
// synchronous replication round-trip the dead client would not have waited
// for.
var ErrDeadlineExceeded = errors.New("slurm: deadline exceeded")

// maxDeadlineMS clamps hostile wire budgets so a forged deadline_ms cannot
// overflow duration arithmetic (24h is far beyond any real request budget).
const maxDeadlineMS = int64(24 * time.Hour / time.Millisecond)

// budget is a request's remaining-time allowance, resolved against the
// server's clock at admission. The zero budget is inert: absent wire field =
// pre-deadline behavior, byte for byte.
type budget struct {
	deadline time.Time
}

// requestBudget resolves the wire field. The protocol carries a *relative*
// budget (milliseconds remaining) rather than an absolute deadline so the
// client and server clocks never need to agree. Negative budgets — only a
// hostile client sends one — resolve to already-expired, the cheapest path.
func requestBudget(deadlineMS int64, now time.Time) budget {
	if deadlineMS == 0 {
		return budget{}
	}
	if deadlineMS > maxDeadlineMS {
		deadlineMS = maxDeadlineMS
	}
	if deadlineMS < 0 {
		deadlineMS = -1
	}
	return budget{deadline: now.Add(time.Duration(deadlineMS) * time.Millisecond)}
}

func (b budget) active() bool { return !b.deadline.IsZero() }

func (b budget) expired(now time.Time) bool {
	return b.active() && !now.Before(b.deadline)
}

func (b budget) remaining(now time.Time) time.Duration {
	if !b.active() {
		return 0
	}
	return b.deadline.Sub(now)
}

// classEstimator tracks an EWMA of observed service time per verb class, the
// "estimated service time" side of deadline admission: a request whose
// remaining budget cannot cover the class estimate is refused before any
// work happens.
type classEstimator struct {
	mu   sync.Mutex
	ewma [numClasses]time.Duration
}

func (e *classEstimator) observe(class int, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.ewma[class]; cur == 0 {
		e.ewma[class] = d
	} else {
		e.ewma[class] = cur + (d-cur)/8
	}
}

func (e *classEstimator) estimate(class int) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma[class]
}

// Shedder levels: how far down the class ladder load shedding reaches.
const (
	shedNone    = 0 // everything admitted
	shedQueries = 1 // query class shed
	shedSubmits = 2 // query and submit classes shed; control always flows
)

// Shedder pacing defaults.
const (
	// DefaultShedWindow is the sustained-pressure window: the latency
	// signal must hold above target this long before the shed level climbs,
	// and below it this long before the level drops (CoDel-style interval).
	DefaultShedWindow = 100 * time.Millisecond
)

// shedder is the adaptive overload signal: an EWMA of recent service
// latency compared against a target, plus recent saturation events
// (in-flight semaphore or rate limiter refusals). Pressure sustained for a
// full window raises the shed level one class; a full quiet window lowers
// it — hysteresis in both directions so the level cannot flap on a single
// slow request.
type shedder struct {
	target time.Duration
	window time.Duration

	mu         sync.Mutex
	level      int
	lat        time.Duration // EWMA of service latency
	lastObs    time.Time     // last completion observed
	lastSat    time.Time     // last saturation event (BUSY shed)
	aboveSince time.Time
	belowSince time.Time
}

func newShedder(target, window time.Duration) *shedder {
	if window <= 0 {
		window = DefaultShedWindow
	}
	return &shedder{target: target, window: window}
}

// observe records one completed request's service time.
func (s *shedder) observe(d time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastObs = now
	if s.lat == 0 {
		s.lat = d
	} else {
		s.lat += (d - s.lat) / 8
	}
	s.stepLocked(now)
}

// saturate records a volume shed (semaphore full, bucket empty): pressure
// even when the requests that do run are fast.
func (s *shedder) saturate(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSat = now
	s.stepLocked(now)
}

// current returns the shed level, first decaying the latency signal across
// quiet windows. The decay matters for liveness: once everything below
// control class is being shed, completions stop arriving, and without decay
// the EWMA would hold its last (high) value forever — the shedder would
// wedge itself on.
func (s *shedder) current(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.lastObs.IsZero() {
		// Replay the gap window by window, stepping the hysteresis at each
		// boundary, so one call after a long idle both decays the signal and
		// walks the level down — at most one level per simulated window, the
		// same pace live traffic would get. Bounded: lat halves to zero in
		// ≤ 63 iterations and then the level drains in ≤ shedSubmits more.
		for now.Sub(s.lastObs) >= s.window {
			s.lat /= 2
			s.lastObs = s.lastObs.Add(s.window)
			s.stepLocked(s.lastObs)
			if s.lat == 0 && s.level == shedNone {
				s.lastObs = now
				break
			}
		}
	}
	s.stepLocked(now)
	return s.level
}

func (s *shedder) pressuredLocked(now time.Time) bool {
	if s.lat > s.target {
		return true
	}
	return !s.lastSat.IsZero() && now.Sub(s.lastSat) < s.window
}

// stepLocked applies the hysteresis: one level per sustained window, in
// either direction. Callers hold s.mu.
func (s *shedder) stepLocked(now time.Time) {
	if s.pressuredLocked(now) {
		s.belowSince = time.Time{}
		if s.aboveSince.IsZero() {
			s.aboveSince = now
			return
		}
		if now.Sub(s.aboveSince) >= s.window && s.level < shedSubmits {
			s.level++
			s.aboveSince = now
		}
		return
	}
	s.aboveSince = time.Time{}
	if s.belowSince.IsZero() {
		s.belowSince = now
		return
	}
	if now.Sub(s.belowSince) >= s.window && s.level > shedNone {
		s.level--
		s.belowSince = now
	}
}

// Brownout ladder levels. Each level keeps everything the previous level
// degraded and adds one more concession; control verbs work at every level.
const (
	// BrownoutNormal: full service.
	BrownoutNormal = 0
	// BrownoutPaged: history paging is clamped to BrownoutHistoryLimit even
	// for clients that asked for more — bulk sacct scans stop competing with
	// live traffic for the controller lock.
	BrownoutPaged = 1
	// BrownoutStale: queue/nodes/stats reads are served from a short-TTL
	// snapshot cache instead of locking the controller per request.
	BrownoutStale = 2
	// BrownoutReadOnly: submit-class mutations (submit, advance, drain) are
	// shed outright; reads stay stale, control verbs still land.
	BrownoutReadOnly = 3
)

// brownoutName names a ladder level for the health verb and the journal.
func brownoutName(level int) string {
	switch level {
	case BrownoutPaged:
		return "paged"
	case BrownoutStale:
		return "stale"
	case BrownoutReadOnly:
		return "readonly"
	}
	return "normal"
}

// Brownout pacing and bound defaults.
const (
	// DefaultBrownoutHistoryLimit bounds history rows per reply at
	// BrownoutPaged and above.
	DefaultBrownoutHistoryLimit = 64
	// DefaultBrownoutStaleFor is the snapshot-cache TTL at BrownoutStale
	// and above.
	DefaultBrownoutStaleFor = time.Second
)

// brownoutLadder is the hysteresis-guarded degradation state machine. It
// climbs one level after pressure sustained for a full step interval and —
// the flap guard — descends one level only after a full cooldown of quiet,
// so a single burst cannot bounce the controller between modes. Transitions
// are journaled via onStep so post-incident analysis can line degradation up
// against the operation log.
type brownoutLadder struct {
	step     time.Duration
	cooldown time.Duration
	onStep   func(level int, name string) // may be nil

	mu         sync.Mutex
	level      int
	steps      int64 // total transitions, both directions
	pressSince time.Time
	quietSince time.Time
}

func newBrownoutLadder(step, cooldown time.Duration, onStep func(int, string)) *brownoutLadder {
	if cooldown <= 0 {
		cooldown = 4 * step
	}
	return &brownoutLadder{step: step, cooldown: cooldown, onStep: onStep}
}

// observe feeds one pressure sample and returns the (possibly updated)
// level. Levels move at most one step per call, so the ladder can never
// jump modes.
func (b *brownoutLadder) observe(pressure bool, now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if pressure {
		b.quietSince = time.Time{}
		if b.pressSince.IsZero() {
			b.pressSince = now
			return b.level
		}
		if now.Sub(b.pressSince) >= b.step && b.level < BrownoutReadOnly {
			b.level++
			b.steps++
			b.pressSince = now
			if b.onStep != nil {
				b.onStep(b.level, brownoutName(b.level))
			}
		}
		return b.level
	}
	b.pressSince = time.Time{}
	if b.quietSince.IsZero() {
		b.quietSince = now
		return b.level
	}
	if now.Sub(b.quietSince) >= b.cooldown && b.level > BrownoutNormal {
		b.level--
		b.steps++
		b.quietSince = now
		if b.onStep != nil {
			b.onStep(b.level, brownoutName(b.level))
		}
	}
	return b.level
}

// current returns the level without feeding a sample.
func (b *brownoutLadder) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

func (b *brownoutLadder) transitions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.steps
}

// staleCache is the BrownoutStale read path: queue, nodes, and stats replies
// are snapshotted and re-served for a short TTL, so a read storm costs one
// controller lock per TTL instead of one per request. Snapshots are replaced
// wholesale, never mutated, so pagination may safely slice them.
type staleCache struct {
	ttl time.Duration

	mu          sync.Mutex
	queueLive   []JobInfo
	queueLiveAt time.Time
	queueAll    []JobInfo
	queueAllAt  time.Time
	nodes       []NodeInfo
	nodesAt     time.Time
	stats       *metrics.Result
	statsAt     time.Time
}

func newStaleCache(ttl time.Duration) *staleCache {
	if ttl <= 0 {
		ttl = DefaultBrownoutStaleFor
	}
	return &staleCache{ttl: ttl}
}

// queue returns a fresh-enough snapshot, refreshing via refresh() when the
// TTL lapsed. served reports whether the reply came from cache.
func (sc *staleCache) queue(history bool, now time.Time, refresh func() []JobInfo) (jobs []JobInfo, served bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	jobsP, at := &sc.queueLive, &sc.queueLiveAt
	if history {
		jobsP, at = &sc.queueAll, &sc.queueAllAt
	}
	if !at.IsZero() && now.Sub(*at) < sc.ttl {
		return *jobsP, true
	}
	*jobsP, *at = refresh(), now
	return *jobsP, false
}

func (sc *staleCache) nodeList(now time.Time, refresh func() []NodeInfo) ([]NodeInfo, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if !sc.nodesAt.IsZero() && now.Sub(sc.nodesAt) < sc.ttl {
		return sc.nodes, true
	}
	sc.nodes, sc.nodesAt = refresh(), now
	return sc.nodes, false
}

func (sc *staleCache) statsResult(now time.Time, refresh func() metrics.Result) (*metrics.Result, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.stats != nil && now.Sub(sc.statsAt) < sc.ttl {
		return sc.stats, true
	}
	st := refresh()
	sc.stats, sc.statsAt = &st, now
	return sc.stats, false
}

// ServeCounters is the degradation tally the health verb exposes: operators
// (and slurm-stress, and the chaos acceptance test) see shedding happen
// rather than inferring it from client-side error rates.
type ServeCounters struct {
	// Busy counts volume sheds (connection cap, rate limiter, in-flight
	// semaphore) — the pre-existing backstop.
	Busy int64 `json:"busy"`
	// Shed counts priority sheds: requests refused by shed level or by the
	// read-only brownout rung.
	Shed int64 `json:"shed"`
	// DeadlineExceeded counts requests refused because their remaining
	// budget could not cover the work (plus budget expiries detected
	// mid-mutation).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// StaleReads counts reads served from the brownout snapshot cache.
	StaleReads int64 `json:"stale_reads"`
	// BrownoutLevel and BrownoutState are the ladder's position now;
	// BrownoutSteps counts transitions in either direction since boot.
	BrownoutLevel int64  `json:"brownout_level"`
	BrownoutState string `json:"brownout_state"`
	BrownoutSteps int64  `json:"brownout_steps"`
}

// Process-wide degradation counters, mirroring the per-server tallies the
// health verb reports (same pattern as journal_sync_errors).
var (
	expBusyShed         = expvar.NewInt("slurm_busy_shed")
	expPriorityShed     = expvar.NewInt("slurm_priority_shed")
	expDeadlineExceeded = expvar.NewInt("slurm_deadline_exceeded")
	expStaleReads       = expvar.NewInt("slurm_stale_reads")
	expBrownoutSteps    = expvar.NewInt("slurm_brownout_steps")
	expClientHedges     = expvar.NewInt("slurm_client_hedges")
)

// shedResponse is the structured priority-shed reply. Busy is set too so a
// pre-deadline client treats it exactly like a volume shed (retryable with
// the same hint); new clients see Shed and can tell the difference.
func (o OverloadConfig) shedResponse(class int) Response {
	resp := o.busyResponse(0)
	resp.Shed = true
	resp.Error = fmt.Sprintf("shed: %s class shed under overload, retry after %dms",
		className(class), resp.RetryAfterMS)
	return resp
}

// deadlineResponse refuses a request whose budget is spent or unservable.
func deadlineResponse(detail string) Response {
	return Response{
		DeadlineExceeded: true,
		Error:            "deadline exceeded: " + detail,
	}
}
