package slurm

import (
	"math"
	"time"

	"repro/internal/des"
)

// Client-side resilience. A server practising load shedding answers some
// requests with BUSY + retry-after; a well-behaved client backs off with
// jitter and tries again rather than hammering. Combined with idempotent
// submission tokens (see Controller.SubmitToken), a Submit whose response
// was lost to a timeout can be retried on a fresh connection without ever
// double-enqueueing the job.

// RetryPolicy drives Client.Do's retry loop: exponential backoff with
// multiplicative jitter, capped per attempt, honoring any server-supplied
// retry-after hint. The zero value is not useful; start from
// DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); when
	// exhausted, Do returns the last error.
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (pre-jitter).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (≥ 1).
	Multiplier float64
	// Jitter is the symmetric random spread as a fraction of the delay:
	// 0.2 scales each wait uniformly in [0.8, 1.2]. Jitter decorrelates
	// clients that were rejected by the same overloaded server.
	Jitter float64
	// Rand supplies uniform [0,1) variates for the jitter. Defaults to a
	// named des.RNG stream, so retry schedules are reproducible; not safe
	// for concurrent use — give each Client its own policy.
	Rand func() float64
	// Sleep is the wait primitive (tests stub it out).
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the recommended client policy. The jitter
// stream is derived from seed via the named-RNG-stream pattern, so two
// clients with different seeds spread out while a rerun with the same seed
// reproduces the exact schedule.
func DefaultRetryPolicy(seed uint64) *RetryPolicy {
	rng := des.NewRNG(seed).Stream("slurm/client-retry")
	return &RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		Rand:        rng.Float64,
		Sleep:       time.Sleep,
	}
}

// Delay computes the wait before retry number attempt (0-based: attempt 0
// is the wait after the first failure). A server retry-after hint is a hard
// floor: the returned delay is never below it. Jitter spreads the client's
// own schedule symmetrically, but once the hint binds, only the upward half
// applies — the server said "not before then", and a jitter draw scaling
// the wait under the hint would have the client knock exactly when it was
// told the door is shut.
func (p *RetryPolicy) Delay(attempt int, retryAfter time.Duration) time.Duration {
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(attempt))
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && p.Rand != nil {
		d *= 1 - p.Jitter + 2*p.Jitter*p.Rand()
	}
	if ra := float64(retryAfter); ra > d {
		d = ra
		if p.Jitter > 0 && p.Rand != nil {
			d *= 1 + p.Jitter*p.Rand()
		}
	}
	return time.Duration(d)
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
	} else {
		time.Sleep(d)
	}
}

// idempotentRequest reports whether req may be retried after a transport
// failure, where the client cannot know if the server executed it. Reads
// always qualify; a submit qualifies only when it carries a dedupe token.
// BUSY responses are retryable for every verb — they are generated before
// the operation runs.
func idempotentRequest(req Request) bool {
	switch req.Op {
	case "queue", "nodes", "stats", "now", "config", "health":
		return true
	case "submit":
		return req.Token != ""
	}
	return false
}
