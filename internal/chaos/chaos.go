// Package chaos is a deterministic network-fault proxy for testing
// distributed behaviour: a TCP forwarder whose per-direction faults — drop
// (sever the connection), delay, and partition (black-hole traffic while
// keeping connections accepted) — are driven by named des RNG streams, so a
// failover or partition scenario is a reproducible pure function of the
// seed. Point a client at Proxy.Addr() instead of the real server, then
// script Partition/Heal around the traffic.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/des"
)

// Config shapes one proxy's fault behaviour. The zero value (beyond Name and
// Seed) forwards faithfully, which makes an un-faulted proxy a transparent
// baseline for the same test topology.
type Config struct {
	// Seed roots the fault RNG; Name isolates this proxy's streams from
	// other proxies sharing a seed (streams "<Name>/c2s" and "<Name>/s2c").
	Seed uint64
	Name string
	// Drop is the per-chunk probability of severing the whole connection —
	// a mid-request TCP reset, the failure retry logic must absorb.
	Drop float64
	// DelayProb delays a chunk by a Uniform(DelayMin, DelayMax) sleep,
	// modelling congestion without breaking byte order.
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
}

// Proxy forwards TCP connections to a target address, injecting faults.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu      sync.Mutex
	rngC2S  *des.RNG
	rngS2C  *des.RNG
	partC2S bool
	partS2C bool
	stats   Stats
	conns   map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup
}

// Listen starts a proxy on a free localhost port forwarding to target.
func Listen(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	root := des.NewRNG(cfg.Seed)
	p := &Proxy{
		cfg:    cfg,
		target: target,
		ln:     ln,
		rngC2S: root.Stream(cfg.Name + "/c2s"),
		rngS2C: root.Stream(cfg.Name + "/s2c"),
		conns:  make(map[net.Conn]bool),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition black-holes both directions: connections are still accepted and
// kept open, but every byte is silently discarded — the nastiest failure
// mode, because neither side sees an error, only silence.
func (p *Proxy) Partition() { p.SetPartition(true, true) }

// Heal restores forwarding in both directions. Bytes discarded while
// partitioned stay lost (as on a real network); connections opened across
// the partition keep working once healed.
func (p *Proxy) Heal() { p.SetPartition(false, false) }

// SetPartition sets each direction's black-hole state independently
// (client→server, server→client), for asymmetric partitions.
func (p *Proxy) SetPartition(c2s, s2c bool) {
	p.mu.Lock()
	p.partC2S, p.partS2C = c2s, s2c
	p.mu.Unlock()
}

// SetFaults swaps the probabilistic fault parameters at runtime (Seed and
// Name are fixed at Listen; the RNG streams keep their position, so a
// scenario that turns faults on mid-run stays a deterministic function of
// the seed). Used by load harnesses that want distinct calm / stormy phases
// over one proxy.
func (p *Proxy) SetFaults(drop, delayProb float64, delayMin, delayMax time.Duration) {
	p.mu.Lock()
	p.cfg.Drop, p.cfg.DelayProb = drop, delayProb
	p.cfg.DelayMin, p.cfg.DelayMax = delayMin, delayMax
	p.mu.Unlock()
}

// Stats is a snapshot of the faults actually injected, so a harness can
// report how much chaos a run really saw (a seed that happened to draw no
// faults proves nothing).
type Stats struct {
	Drops   int64 `json:"drops"`
	Delays  int64 `json:"delays"`
	Swallow int64 `json:"partition_chunks"`
}

// Stats returns cumulative injected-fault counts.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the proxy, severs every live connection, and waits for all
// forwarding goroutines to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns[conn] = true
		p.conns[up] = true
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(conn, up, true)
		go p.pipe(up, conn, false)
	}
}

// pipe forwards one direction chunk by chunk, consulting the direction's
// RNG stream under the proxy lock so the fault sequence is a deterministic
// function of (seed, name, direction, chunk index) regardless of goroutine
// interleaving across connections.
func (p *Proxy) pipe(src, dst net.Conn, c2s bool) {
	defer p.wg.Done()
	defer p.forget(src, dst)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			drop, delay := p.fault(c2s)
			if drop {
				return // sever both sides mid-stream
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			if p.partitioned(c2s) {
				continue // black hole: swallow the chunk, keep reading
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// fault draws this chunk's fate from the direction's RNG stream.
func (p *Proxy) fault(c2s bool) (drop bool, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rng := p.rngS2C
	if c2s {
		rng = p.rngC2S
	}
	if p.cfg.Drop > 0 && rng.Float64() < p.cfg.Drop {
		p.stats.Drops++
		return true, 0
	}
	if p.cfg.DelayProb > 0 && rng.Float64() < p.cfg.DelayProb {
		d := rng.Uniform(float64(p.cfg.DelayMin), float64(p.cfg.DelayMax))
		p.stats.Delays++
		return false, time.Duration(d)
	}
	return false, 0
}

func (p *Proxy) partitioned(c2s bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	part := p.partS2C
	if c2s {
		part = p.partC2S
	}
	if part {
		p.stats.Swallow++
	}
	return part
}

// forget closes and untracks a connection pair.
func (p *Proxy) forget(a, b net.Conn) {
	a.Close()
	b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}
