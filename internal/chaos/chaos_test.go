package chaos

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// echoServer answers each newline-terminated line with the same line.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					if _, err := fmt.Fprintln(c, sc.Text()); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// roundTrip sends one line through conn and returns the echoed reply.
func roundTrip(conn net.Conn, line string, timeout time.Duration) (string, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return "", err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return reply[:len(reply)-1], nil
}

// TestProxyTransparent: a zero-fault proxy forwards faithfully.
func TestProxyTransparent(t *testing.T) {
	p, err := Listen(echoServer(t), Config{Seed: 1, Name: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("ping-%d", i)
		got, err := roundTrip(conn, msg, time.Second)
		if err != nil || got != msg {
			t.Fatalf("round trip %d: got %q err %v", i, got, err)
		}
	}
}

// TestProxyFaultDeterminism: two proxies with the same seed and name draw an
// identical fault sequence per direction; a different name diverges.
func TestProxyFaultDeterminism(t *testing.T) {
	target := echoServer(t)
	cfg := Config{Seed: 42, Name: "det", Drop: 0.1,
		DelayProb: 0.3, DelayMin: time.Millisecond, DelayMax: 9 * time.Millisecond}
	p1, err := Listen(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := Listen(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	other := cfg
	other.Name = "other"
	p3, err := Listen(target, other)
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()

	draw := func(p *Proxy, n int) []string {
		seq := make([]string, n)
		for i := range seq {
			drop, delay := p.fault(true)
			seq[i] = fmt.Sprintf("%v/%s", drop, delay)
		}
		return seq
	}
	s1, s2, s3 := draw(p1, 200), draw(p2, 200), draw(p3, 200)
	same, diff := 0, 0
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("draw %d diverges between identical configs: %s vs %s", i, s1[i], s2[i])
		}
		if s1[i] == s3[i] {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("differently named streams drew identical fault sequences")
	}
}

// TestProxyPartitionAndHeal: a partitioned proxy keeps connections open but
// swallows bytes; healing restores service on the same connection, and the
// swallowed bytes stay lost.
func TestProxyPartitionAndHeal(t *testing.T) {
	p, err := Listen(echoServer(t), Config{Seed: 3, Name: "part"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got, err := roundTrip(conn, "before", time.Second); err != nil || got != "before" {
		t.Fatalf("pre-partition: got %q err %v", got, err)
	}

	p.Partition()
	if _, err := roundTrip(conn, "lost", 150*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded through a partition")
	}

	p.Heal()
	conn.SetDeadline(time.Time{})
	// The swallowed line must NOT arrive late: the next reply should echo
	// the post-heal request, not the partitioned one.
	got, err := roundTrip(conn, "after", time.Second)
	if err != nil {
		t.Fatalf("post-heal round trip: %v", err)
	}
	if got != "after" {
		t.Fatalf("post-heal reply %q: partitioned bytes leaked through", got)
	}
}

// TestProxyAsymmetricPartition: severing only server→client lets the request
// through (the server echoes into the void) while the reply is lost.
func TestProxyAsymmetricPartition(t *testing.T) {
	p, err := Listen(echoServer(t), Config{Seed: 4, Name: "asym"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p.SetPartition(false, true)
	if _, err := roundTrip(conn, "one-way", 150*time.Millisecond); err == nil {
		t.Fatal("reply crossed a server→client partition")
	}
	p.SetPartition(false, false)
	if got, err := roundTrip(conn, "two-way", time.Second); err != nil || got != "two-way" {
		t.Fatalf("after healing s2c: got %q err %v", got, err)
	}
}

// TestProxyDropSevers: Drop=1 severs the connection on the first chunk, as a
// client sees a mid-request TCP reset.
func TestProxyDropSevers(t *testing.T) {
	p, err := Listen(echoServer(t), Config{Seed: 5, Name: "drop", Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(conn, "doomed", time.Second); err == nil {
		t.Fatal("round trip survived Drop=1")
	}
}

// TestProxyCloseSeversLiveConns: Close unblocks in-flight connections and
// returns only after the forwarding goroutines exit.
func TestProxyCloseSeversLiveConns(t *testing.T) {
	p, err := Listen(echoServer(t), Config{Seed: 6, Name: "close"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got, err := roundTrip(conn, "up", time.Second); err != nil || got != "up" {
		t.Fatalf("pre-close: got %q err %v", got, err)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung with a live connection")
	}
	conn.SetDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still alive after proxy Close")
	}
}
