package queueing

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	good := MMc{Lambda: 1, Mu: 2, C: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MMc{
		{Lambda: 0, Mu: 1, C: 1},
		{Lambda: 1, Mu: 0, C: 1},
		{Lambda: 1, Mu: 1, C: 0},
		{Lambda: 2, Mu: 1, C: 1}, // unstable
		{Lambda: 4, Mu: 1, C: 4}, // ρ = 1 exactly
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad queue %d accepted: %+v", i, q)
		}
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Textbook values: c = 2, a = 1 (ρ = 0.5) → C ≈ 0.3333.
	q := MMc{Lambda: 1, Mu: 1, C: 2}
	if got := q.ErlangC(); !almost(got, 1.0/3, 1e-9) {
		t.Fatalf("ErlangC(2, 1) = %g, want 1/3", got)
	}
	// c = 1 reduces to ρ.
	q = MMc{Lambda: 0.7, Mu: 1, C: 1}
	if got := q.ErlangC(); !almost(got, 0.7, 1e-9) {
		t.Fatalf("ErlangC(1, 0.7) = %g, want 0.7", got)
	}
	// Large c, low load: waiting probability ≈ 0.
	q = MMc{Lambda: 1, Mu: 1, C: 64}
	if got := q.ErlangC(); got > 1e-10 {
		t.Fatalf("ErlangC(64, 1) = %g, want ≈0", got)
	}
}

func TestMM1Consistency(t *testing.T) {
	// The Erlang-C path at c = 1 must reproduce the closed-form M/M/1 wait.
	lambda, mu := 0.8, 1.0
	q := MMc{Lambda: lambda, Mu: mu, C: 1}
	if got, want := q.MeanWait(), MM1Wait(lambda, mu); !almost(got, want, 1e-9) {
		t.Fatalf("MMc wait %g ≠ MM1 wait %g", got, want)
	}
}

func TestLittlesLaw(t *testing.T) {
	q := MMc{Lambda: 3, Mu: 1, C: 4}
	if got, want := q.MeanQueueLength(), q.Lambda*q.MeanWait(); !almost(got, want, 1e-12) {
		t.Fatalf("Lq = %g, λWq = %g", got, want)
	}
}

func TestMeanResponse(t *testing.T) {
	q := MMc{Lambda: 1, Mu: 2, C: 1}
	if got, want := q.MeanResponse(), q.MeanWait()+0.5; !almost(got, want, 1e-12) {
		t.Fatalf("W = %g, want %g", got, want)
	}
}

func TestMeanWaitPanicsOnUnstable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unstable MeanWait did not panic")
		}
	}()
	MMc{Lambda: 5, Mu: 1, C: 2}.MeanWait()
}

func TestMM1WaitPanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 1}, {1, 0}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MM1Wait(%v) did not panic", args)
				}
			}()
			MM1Wait(args[0], args[1])
		}()
	}
}

func TestWaitPercentile(t *testing.T) {
	q := MMc{Lambda: 1.5, Mu: 1, C: 2}
	// Below the no-wait mass the percentile is 0.
	pc := q.ErlangC()
	if got := q.WaitPercentileApprox((1 - pc) / 2); got != 0 {
		t.Fatalf("percentile below no-wait mass = %g", got)
	}
	// Percentiles are monotone above the mass.
	p90 := q.WaitPercentileApprox(0.90)
	p99 := q.WaitPercentileApprox(0.99)
	if p90 <= 0 || p99 <= p90 {
		t.Fatalf("percentiles not monotone: p90=%g p99=%g", p90, p99)
	}
	for _, p := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("percentile %g did not panic", p)
				}
			}()
			q.WaitPercentileApprox(p)
		}()
	}
}
