// Package queueing provides the M/M/c analytic results used to validate the
// simulator: with single-node jobs, exponential runtimes, Poisson arrivals,
// and FCFS scheduling, the batch system is exactly an M/M/c queue, so the
// simulated mean wait must match the Erlang-C prediction. The validation
// test in internal/sim exercises this end to end — a whole-pipeline check
// that event ordering, placement, and metric accounting are consistent.
package queueing

import (
	"fmt"
	"math"
)

// MMc describes an M/M/c queue: Poisson arrivals at rate lambda, exponential
// service at rate mu per server, c identical servers.
type MMc struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64
	// Mu is the per-server service rate (1 / mean service time).
	Mu float64
	// C is the server count.
	C int
}

// Validate checks the queue is stable and well formed.
func (q MMc) Validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C <= 0 {
		return fmt.Errorf("queueing: non-positive parameters %+v", q)
	}
	if q.Utilization() >= 1 {
		return fmt.Errorf("queueing: unstable queue (ρ = %g ≥ 1)", q.Utilization())
	}
	return nil
}

// Utilization returns ρ = λ/(cµ).
func (q MMc) Utilization() float64 {
	return q.Lambda / (float64(q.C) * q.Mu)
}

// OfferedLoad returns a = λ/µ (in Erlangs).
func (q MMc) OfferedLoad() float64 { return q.Lambda / q.Mu }

// ErlangC returns the probability an arriving job must wait,
// C(c, a) with a the offered load. Computed with the numerically stable
// iterative form of the Erlang-B recurrence.
func (q MMc) ErlangC() float64 {
	a := q.OfferedLoad()
	c := q.C
	// Erlang B by recurrence: B(0) = 1; B(k) = aB(k-1) / (k + aB(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Utilization()
	return b / (1 - rho + rho*b)
}

// MeanWait returns Wq, the expected time in queue.
func (q MMc) MeanWait() float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanResponse returns W = Wq + 1/µ, the expected time in system.
func (q MMc) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// MeanQueueLength returns Lq = λ·Wq (Little's law).
func (q MMc) MeanQueueLength() float64 { return q.Lambda * q.MeanWait() }

// MM1Wait returns the closed-form M/M/1 mean wait ρ/(µ−λ), used as an
// independent cross-check of the Erlang-C path for c = 1.
func MM1Wait(lambda, mu float64) float64 {
	if lambda <= 0 || mu <= 0 || lambda >= mu {
		panic(fmt.Sprintf("queueing: MM1Wait(%g, %g)", lambda, mu))
	}
	rho := lambda / mu
	return rho / (mu - lambda)
}

// WaitPercentileApprox returns the p-th percentile (0<p<1) of the waiting
// time for waiting customers plus the atom at zero: P(W ≤ t) =
// 1 − C(c,a)·exp(−(cµ−λ)t). Used for sanity checks on wait distributions.
func (q MMc) WaitPercentileApprox(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("queueing: percentile %g", p))
	}
	pc := q.ErlangC()
	if p <= 1-pc {
		return 0 // the job starts immediately with probability 1 − C
	}
	rate := float64(q.C)*q.Mu - q.Lambda
	return -math.Log((1-p)/pc) / rate
}
