// Package swf reads and writes the Standard Workload Format (SWF), the
// de-facto interchange format for batch-system traces (Feitelson's Parallel
// Workloads Archive). Supporting SWF lets the simulator replay public site
// traces in place of the synthetic generator, and export generated workloads
// for use by other tools.
//
// An SWF file holds optional ';'-prefixed header comments followed by one
// record per line with 18 whitespace-separated numeric fields. Unknown or
// inapplicable fields are -1 by convention.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one SWF job entry. Field names follow the SWF specification.
type Record struct {
	JobNumber      int
	SubmitTime     float64 // seconds since trace start
	WaitTime       float64 // seconds; -1 unknown
	RunTime        float64 // seconds; -1 unknown
	UsedProcs      int
	AvgCPUTime     float64
	UsedMemoryKB   float64
	ReqProcs       int
	ReqTime        float64
	ReqMemoryKB    float64
	Status         int // 1 completed, 0 failed, 5 cancelled, -1 unknown
	UserID         int
	GroupID        int
	ExecutableID   int
	QueueNumber    int
	PartitionID    int
	PrecedingJob   int
	ThinkTimeAfter float64
}

// NumFields is the per-record field count mandated by the SWF spec.
const NumFields = 18

// Header carries the trace's comment lines (without the leading ';').
type Header struct {
	Comments []string
}

// Trace is a parsed SWF file.
type Trace struct {
	Header  Header
	Records []Record
}

// Parse reads an SWF stream. Malformed lines produce an error naming the
// line number; blank lines are skipped.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			t.Header.Comments = append(t.Header.Comments, strings.TrimSpace(line[1:]))
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("swf: line %d: %w", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	return t, nil
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != NumFields {
		return Record{}, fmt.Errorf("%d fields, want %d", len(fields), NumFields)
	}
	f := make([]float64, NumFields)
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Record{}, fmt.Errorf("field %d %q: %w", i+1, s, err)
		}
		f[i] = v
	}
	return Record{
		JobNumber:      int(f[0]),
		SubmitTime:     f[1],
		WaitTime:       f[2],
		RunTime:        f[3],
		UsedProcs:      int(f[4]),
		AvgCPUTime:     f[5],
		UsedMemoryKB:   f[6],
		ReqProcs:       int(f[7]),
		ReqTime:        f[8],
		ReqMemoryKB:    f[9],
		Status:         int(f[10]),
		UserID:         int(f[11]),
		GroupID:        int(f[12]),
		ExecutableID:   int(f[13]),
		QueueNumber:    int(f[14]),
		PartitionID:    int(f[15]),
		PrecedingJob:   int(f[16]),
		ThinkTimeAfter: f[17],
	}, nil
}

// Write serializes a trace, header comments first.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, c := range t.Header.Comments {
		if _, err := fmt.Fprintf(bw, "; %s\n", c); err != nil {
			return fmt.Errorf("swf: write header: %w", err)
		}
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw,
			"%d %s %s %s %d %s %s %d %s %s %d %d %d %d %d %d %d %s\n",
			r.JobNumber, num(r.SubmitTime), num(r.WaitTime), num(r.RunTime),
			r.UsedProcs, num(r.AvgCPUTime), num(r.UsedMemoryKB),
			r.ReqProcs, num(r.ReqTime), num(r.ReqMemoryKB),
			r.Status, r.UserID, r.GroupID, r.ExecutableID,
			r.QueueNumber, r.PartitionID, r.PrecedingJob, num(r.ThinkTimeAfter),
		); err != nil {
			return fmt.Errorf("swf: write record %d: %w", r.JobNumber, err)
		}
	}
	return bw.Flush()
}

// num renders a float compactly: integral values without a decimal point
// (the archive's own style), others with full precision.
func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Validate checks the invariants replay depends on: positive processor
// counts, non-negative submit times, and monotone submission order.
func (t *Trace) Validate() error {
	last := -1.0
	for i, r := range t.Records {
		if r.SubmitTime < 0 {
			return fmt.Errorf("swf: record %d: negative submit time %g", i, r.SubmitTime)
		}
		if r.SubmitTime < last {
			return fmt.Errorf("swf: record %d: submit time %g before predecessor %g",
				i, r.SubmitTime, last)
		}
		last = r.SubmitTime
		procs := r.ReqProcs
		if procs <= 0 {
			procs = r.UsedProcs
		}
		if procs <= 0 {
			return fmt.Errorf("swf: record %d: no processor count", i)
		}
	}
	return nil
}
