package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse drives the SWF parser with arbitrary input: it must never
// panic, and anything it accepts must survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("; header only\n")
	f.Add("1 0 10 3600 64 -1 -1 64 7200 -1 1 5 2 7 1 1 -1 -1\n")
	f.Add("1 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n")
	f.Add("")
	f.Add("x y z\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to reparse: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count %d → %d",
				len(tr.Records), len(tr2.Records))
		}
	})
}
