package swf

import (
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
)

// TraceStats summarizes a trace's workload character — the numbers one
// checks before replaying a foreign trace against a machine configuration.
type TraceStats struct {
	// Records counts all entries; Usable counts the ones replay keeps
	// (completed, with a positive runtime).
	Records, Usable int
	// SpanSeconds is the submission window of usable records.
	SpanSeconds float64
	// Procs, Runtimes, Interarrivals, Requests summarize the usable
	// records' processor counts, runtimes, interarrival gaps, and
	// walltime-request accuracy (request / runtime).
	Procs, Runtimes, Interarrivals, Accuracy stats.Summary
	// Users counts distinct user IDs (−1 entries excluded).
	Users int
	// WithDependencies counts records carrying a preceding-job link.
	WithDependencies int
}

// Analyze computes TraceStats.
func Analyze(t *Trace) TraceStats {
	out := TraceStats{Records: len(t.Records)}
	var procs, runtimes, gaps, accuracy []float64
	users := map[int]bool{}
	lastSubmit := -1.0
	for _, r := range t.Records {
		if r.Status == 0 || r.Status == 5 || r.RunTime <= 0 {
			continue
		}
		out.Usable++
		p := r.ReqProcs
		if p <= 0 {
			p = r.UsedProcs
		}
		procs = append(procs, float64(p))
		runtimes = append(runtimes, r.RunTime)
		if r.ReqTime > 0 {
			accuracy = append(accuracy, r.ReqTime/r.RunTime)
		}
		if lastSubmit >= 0 {
			gaps = append(gaps, r.SubmitTime-lastSubmit)
		}
		lastSubmit = r.SubmitTime
		if r.UserID >= 0 {
			users[r.UserID] = true
		}
		if r.PrecedingJob > 0 {
			out.WithDependencies++
		}
	}
	if out.Usable > 0 {
		first := -1.0
		for _, r := range t.Records {
			if r.Status == 0 || r.Status == 5 || r.RunTime <= 0 {
				continue
			}
			if first < 0 {
				first = r.SubmitTime
			}
		}
		out.SpanSeconds = lastSubmit - first
	}
	out.Procs = stats.Summarize(procs)
	out.Runtimes = stats.Summarize(runtimes)
	out.Interarrivals = stats.Summarize(gaps)
	out.Accuracy = stats.Summarize(accuracy)
	out.Users = len(users)
	return out
}

// Render formats the statistics as a table.
func (s TraceStats) Render() *report.Table {
	t := report.New("SWF trace statistics",
		"quantity", "mean", "p50", "p95", "max")
	row := func(name string, sum stats.Summary) {
		t.Add(name,
			report.F(sum.Mean, 1), report.F(sum.P50, 1),
			report.F(sum.P95, 1), report.F(sum.Max, 1))
	}
	row("processors/job", s.Procs)
	row("runtime (s)", s.Runtimes)
	row("interarrival (s)", s.Interarrivals)
	row("request/runtime", s.Accuracy)
	t.AddNote("%d records (%d usable for replay), %d users, %d with dependencies, span %.1f h",
		s.Records, s.Usable, s.Users, s.WithDependencies, s.SpanSeconds/3600)
	return t
}

// PerUserCounts returns submission counts per user ID, descending, for the
// records replay keeps.
func PerUserCounts(t *Trace) []struct {
	User, Count int
} {
	counts := map[int]int{}
	for _, r := range t.Records {
		if r.Status == 0 || r.Status == 5 || r.RunTime <= 0 || r.UserID < 0 {
			continue
		}
		counts[r.UserID]++
	}
	out := make([]struct{ User, Count int }, 0, len(counts))
	for u, c := range counts {
		out = append(out, struct{ User, Count int }{u, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].User < out[j].User
	})
	return out
}
