package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/job"
)

const sample = `; Version: 2.2
; Computer: Test Machine
; MaxJobs: 3

1 0 10 3600 64 -1 -1 64 7200 -1 1 5 2 7 1 1 -1 -1
2 30 -1 1800 32 -1 -1 32 3600 -1 1 5 2 3 1 1 -1 -1

3 60 5 -1 16 -1 -1 16 1200 -1 0 6 2 9 1 1 -1 -1
`

func TestParse(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Header.Comments) != 3 {
		t.Fatalf("comments = %d, want 3", len(tr.Header.Comments))
	}
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(tr.Records))
	}
	r := tr.Records[0]
	if r.JobNumber != 1 || r.SubmitTime != 0 || r.RunTime != 3600 ||
		r.UsedProcs != 64 || r.ReqTime != 7200 || r.Status != 1 || r.ExecutableID != 7 {
		t.Fatalf("record 0 = %+v", r)
	}
	if tr.Records[1].WaitTime != -1 {
		t.Fatal("missing-value -1 not preserved")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"short line":  "1 2 3\n",
		"bad number":  strings.Repeat("x ", 18) + "\n",
		"extra field": "1 0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 99\n",
	}
	for name, input := range cases {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\noutput:\n%s", err, buf.String())
	}
	if len(tr2.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(tr2.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != tr2.Records[i] {
			t.Fatalf("record %d changed:\n  in:  %+v\n  out: %+v", i, tr.Records[i], tr2.Records[i])
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 0, ReqProcs: 4},
		{JobNumber: 2, SubmitTime: 5, UsedProcs: 2, ReqProcs: -1},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Records: []Record{{SubmitTime: -1, ReqProcs: 1}}},
		{Records: []Record{{SubmitTime: 5, ReqProcs: 1}, {SubmitTime: 1, ReqProcs: 1}}},
		{Records: []Record{{SubmitTime: 0, ReqProcs: -1, UsedProcs: -1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestToJobs(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 64 << 10}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Record 3 has status 0 (failed) and run time -1 → skipped.
	if len(jobs) != 2 {
		t.Fatalf("converted %d jobs, want 2", len(jobs))
	}
	j := jobs[0]
	if j.Nodes != 2 { // 64 procs / 32 cores
		t.Fatalf("job nodes = %d, want 2", j.Nodes)
	}
	if float64(j.TrueRuntime) != 3600 || float64(j.ReqWalltime) != 7200 {
		t.Fatalf("runtime/request = %v/%v", j.TrueRuntime, j.ReqWalltime)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("converted job invalid: %v", err)
		}
	}
}

func TestToJobsClampsToMachine(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, ReqTime: 100, ReqProcs: 10000, Status: 1},
	}}
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 1024}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Nodes != 4 {
		t.Fatalf("nodes = %d, want clamped to 4", jobs[0].Nodes)
	}
}

func TestToJobsReqTimeFallback(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 0, RunTime: 500, ReqTime: -1, ReqProcs: 32, Status: 1},
	}}
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 1024}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(jobs[0].ReqWalltime) != 500 {
		t.Fatalf("request fallback = %v, want 500", jobs[0].ReqWalltime)
	}
}

func TestToJobsStableAppAssignment(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, ExecutableID: 7, UserID: 3},
		{JobNumber: 2, SubmitTime: 1, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, ExecutableID: 7, UserID: 3},
		{JobNumber: 3, SubmitTime: 2, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, ExecutableID: 9, UserID: 4},
	}}
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 1 << 20}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].App.Name != jobs[1].App.Name {
		t.Fatal("same executable mapped to different apps")
	}
}

func TestFromJobsRoundTrip(t *testing.T) {
	cfg := cluster.Config{Nodes: 8, CoresPerNode: 16, ThreadsPerCore: 2, MemoryPerNodeMB: 64 << 10}
	tr := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 10, RunTime: 300, ReqTime: 600, ReqProcs: 32, Status: 1},
	}}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := FromJobs(jobs, cfg)
	if len(out.Records) != 1 {
		t.Fatalf("exported %d records", len(out.Records))
	}
	r := out.Records[0]
	if r.SubmitTime != 10 || r.ReqTime != 600 || r.ReqProcs != 32 {
		t.Fatalf("exported record = %+v", r)
	}
	// A pending job exports its service demand as the trace runtime (so a
	// generated workload survives an export/replay round trip) with the
	// wait still unknown.
	if r.WaitTime != -1 || r.RunTime != 300 || r.Status != 1 {
		t.Fatalf("pending job export = %+v", r)
	}
	// Finish the job and re-export.
	jobs[0].Start(50)
	jobs[0].Finish(350)
	r2 := FromJobs(jobs, cfg).Records[0]
	if r2.WaitTime != 40 || r2.RunTime != 300 || r2.Status != 1 {
		t.Fatalf("finished export = %+v", r2)
	}
	_ = job.Finished // document intent; state constants exercised above
}

// Property: Write ∘ Parse is the identity on parsed traces (round-trip
// stability, DESIGN.md §6).
func TestProperty_RoundTrip(t *testing.T) {
	f := func(recs []struct {
		Submit uint16
		Run    uint16
		Procs  uint8
	}) bool {
		tr := &Trace{}
		last := 0.0
		for i, r := range recs {
			sub := last + float64(r.Submit%1000)
			last = sub
			tr.Records = append(tr.Records, Record{
				JobNumber: i + 1, SubmitTime: sub,
				WaitTime: -1, RunTime: float64(r.Run),
				UsedProcs: int(r.Procs) + 1, ReqProcs: int(r.Procs) + 1,
				AvgCPUTime: -1, UsedMemoryKB: -1, ReqTime: float64(r.Run) * 2,
				ReqMemoryKB: -1, Status: 1, UserID: -1, GroupID: -1,
				ExecutableID: i, QueueNumber: -1, PartitionID: -1,
				PrecedingJob: -1, ThinkTimeAfter: -1,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		tr2, err := Parse(&buf)
		if err != nil {
			return false
		}
		if len(tr2.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestToJobsDependencies(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 10, SubmitTime: 0, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, PrecedingJob: -1},
		{JobNumber: 11, SubmitTime: 1, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, PrecedingJob: 10},
		{JobNumber: 12, SubmitTime: 2, RunTime: 100, ReqTime: 100, ReqProcs: 32, Status: 1, PrecedingJob: 99}, // unknown
	}}
	cfg := cluster.Config{Nodes: 4, CoresPerNode: 32, ThreadsPerCore: 2, MemoryPerNodeMB: 1 << 20}
	jobs, err := ToJobs(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs[0].After) != 0 {
		t.Fatalf("job 0 has deps: %v", jobs[0].After)
	}
	if len(jobs[1].After) != 1 || jobs[1].After[0] != jobs[0].ID {
		t.Fatalf("job 1 deps = %v, want [%d]", jobs[1].After, jobs[0].ID)
	}
	// Unknown predecessors are dropped rather than fabricated.
	if len(jobs[2].After) != 0 {
		t.Fatalf("job 2 deps = %v", jobs[2].After)
	}
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, ReqTime: 200, ReqProcs: 4, Status: 1, UserID: 1},
		{JobNumber: 2, SubmitTime: 50, RunTime: 300, ReqTime: 300, ReqProcs: 8, Status: 1, UserID: 2, PrecedingJob: 1},
		{JobNumber: 3, SubmitTime: 60, RunTime: -1, ReqProcs: 2, Status: 0, UserID: 1}, // unusable
	}}
	s := Analyze(tr)
	if s.Records != 3 || s.Usable != 2 {
		t.Fatalf("records/usable = %d/%d", s.Records, s.Usable)
	}
	if s.Users != 2 || s.WithDependencies != 1 {
		t.Fatalf("users/deps = %d/%d", s.Users, s.WithDependencies)
	}
	if s.Procs.Mean != 6 {
		t.Fatalf("procs mean = %g", s.Procs.Mean)
	}
	if s.SpanSeconds != 50 {
		t.Fatalf("span = %g", s.SpanSeconds)
	}
	// Accuracy: 200/100=2 and 300/300=1 → mean 1.5.
	if s.Accuracy.Mean != 1.5 {
		t.Fatalf("accuracy mean = %g", s.Accuracy.Mean)
	}
	tbl := s.Render()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rendered rows = %d", len(tbl.Rows))
	}
	counts := PerUserCounts(tr)
	if len(counts) != 2 || counts[0].Count != 1 {
		t.Fatalf("per-user counts = %+v", counts)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(&Trace{})
	if s.Usable != 0 || s.SpanSeconds != 0 {
		t.Fatalf("empty trace stats = %+v", s)
	}
	s.Render() // must not panic
}
