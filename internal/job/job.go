// Package job models batch jobs and their progress under varying co-location.
//
// A job requests a number of whole nodes and a walltime. Its service demand
// is expressed in dedicated-node seconds: the time the job needs when it runs
// alone on its nodes (progress rate 1). Node sharing changes the progress
// rate over the job's life, so completion is defined by integration: the job
// finishes when the integral of its progress rate equals its true runtime.
// The Job type carries that integrator; the simulator drives it by calling
// SetRate whenever the job's co-location changes.
package job

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
)

// State is a job's lifecycle state.
type State int

// Lifecycle states. The transitions are Pending → Running → Finished; jobs
// may move Pending → Cancelled, Running → Killed when a batch system with
// strict limits terminates a job at its walltime, Running → Pending when a
// failure evicts and requeues the job, and Pending → Failed when its retries
// are exhausted.
const (
	Pending State = iota
	Running
	Finished
	Cancelled
	Killed
	Failed
)

// String returns the state name as used in queue listings.
func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Finished:
		return "FINISHED"
	case Cancelled:
		return "CANCELLED"
	case Killed:
		return "KILLED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("STATE(%d)", int(s))
	}
}

// Job is one batch job. Fields set at submission are exported; runtime
// bookkeeping is accessed through methods so invariants hold.
type Job struct {
	// ID is the cluster-wide job identifier (assigned by the submitter).
	ID cluster.JobID
	// Name is a human-readable label, typically "<app>-<id>".
	Name string
	// User is the submitting user (empty when user modelling is off); the
	// fairshare priority factor groups usage by this field.
	User string
	// App is the application model the job runs.
	App app.Model
	// Nodes is the number of whole nodes requested.
	Nodes int
	// ReqWalltime is the user-requested walltime limit in dedicated-node
	// seconds. Schedulers plan with this value; users habitually
	// overestimate it.
	ReqWalltime des.Duration
	// TrueRuntime is the actual dedicated-node runtime: the service demand
	// the progress integrator must accumulate.
	TrueRuntime des.Duration
	// Submit is the submission time.
	Submit des.Time
	// After lists job IDs that must finish before this job becomes
	// eligible to run (sbatch --dependency=afterok; SWF's "preceding job").
	// The batch system holds the job out of the scheduling queue until
	// every dependency completes.
	After []cluster.JobID

	state State
	// start and end bracket the execution; valid per state.
	start, end des.Time

	// Progress integration.
	remaining  float64  // dedicated-seconds of work left at lastUpdate
	rate       float64  // current progress rate (0 < rate ≤ 1)
	lastUpdate des.Time // time of the last integration step

	// Sharing statistics.
	sharedSeconds float64 // wall seconds spent at rate < 1
	minRate       float64 // worst rate experienced (1 if never shared)

	// Failure statistics.
	requeues int     // times the job was evicted and returned to the queue
	lostWork float64 // dedicated-seconds of progress discarded by evictions
}

// Validate checks submission-time invariants.
func (j *Job) Validate() error {
	switch {
	case j.ID == cluster.NoJob:
		return fmt.Errorf("job: reserved ID %d", j.ID)
	case j.Nodes <= 0:
		return fmt.Errorf("job %d: non-positive node request %d", j.ID, j.Nodes)
	case j.ReqWalltime <= 0:
		return fmt.Errorf("job %d: non-positive walltime request %v", j.ID, j.ReqWalltime)
	case j.TrueRuntime <= 0:
		return fmt.Errorf("job %d: non-positive true runtime %v", j.ID, j.TrueRuntime)
	case j.TrueRuntime > j.ReqWalltime:
		// Real systems kill jobs at the limit; the generator always draws
		// TrueRuntime ≤ ReqWalltime, so a violation is a generator bug.
		return fmt.Errorf("job %d: true runtime %v exceeds requested walltime %v",
			j.ID, j.TrueRuntime, j.ReqWalltime)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %v", j.ID, j.Submit)
	}
	for _, dep := range j.After {
		if dep == j.ID {
			return fmt.Errorf("job %d: depends on itself", j.ID)
		}
		if dep == cluster.NoJob {
			return fmt.Errorf("job %d: dependency on reserved ID %d", j.ID, dep)
		}
	}
	return nil
}

// State returns the lifecycle state.
func (j *Job) State() State { return j.state }

// StartTime returns when the job started running (zero until started).
func (j *Job) StartTime() des.Time { return j.start }

// EndTime returns when the job finished or was cancelled (zero until then).
func (j *Job) EndTime() des.Time { return j.end }

// Start transitions the job to Running at time t with progress rate 1.
// The caller (the simulator) immediately follows with SetRate if the job is
// placed onto shared nodes.
func (j *Job) Start(t des.Time) {
	if j.state != Pending {
		panic(fmt.Sprintf("job %d: Start in state %v", j.ID, j.state))
	}
	if t < j.Submit {
		panic(fmt.Sprintf("job %d: started at %v before submit %v", j.ID, t, j.Submit))
	}
	j.state = Running
	j.start = t
	j.lastUpdate = t
	j.remaining = float64(j.TrueRuntime)
	j.rate = 1
	j.minRate = 1
}

// Rate returns the job's current progress rate.
func (j *Job) Rate() float64 {
	if j.state != Running {
		return 0
	}
	return j.rate
}

// SetRate integrates progress up to time t at the old rate, then switches to
// the new rate. It panics if the job is not running, if t precedes the last
// update, or if the rate is outside (0, 1].
func (j *Job) SetRate(t des.Time, rate float64) {
	if j.state != Running {
		panic(fmt.Sprintf("job %d: SetRate in state %v", j.ID, j.state))
	}
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("job %d: rate %g outside (0,1]", j.ID, rate))
	}
	j.integrate(t)
	j.rate = rate
	if rate < j.minRate {
		j.minRate = rate
	}
}

func (j *Job) integrate(t des.Time) {
	if t < j.lastUpdate {
		panic(fmt.Sprintf("job %d: integrate to %v before last update %v", j.ID, t, j.lastUpdate))
	}
	dt := float64(t - j.lastUpdate)
	j.remaining -= dt * j.rate
	if j.rate < 1 {
		j.sharedSeconds += dt
	}
	if j.remaining < 0 {
		// Completion events are scheduled exactly at the projected finish,
		// so any negative residue is float round-off.
		j.remaining = 0
	}
	j.lastUpdate = t
}

// Remaining returns the dedicated-seconds of work left at time t without
// mutating the integrator state.
func (j *Job) Remaining(t des.Time) float64 {
	if j.state != Running {
		if j.state == Pending {
			return float64(j.TrueRuntime)
		}
		return 0
	}
	dt := float64(t - j.lastUpdate)
	rem := j.remaining - dt*j.rate
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ETA returns the projected completion time assuming the current rate holds.
func (j *Job) ETA(t des.Time) des.Time {
	if j.state != Running {
		panic(fmt.Sprintf("job %d: ETA in state %v", j.ID, j.state))
	}
	return t + des.Duration(j.Remaining(t)/j.rate)
}

// Finish integrates to t and transitions the job to Finished. The residual
// work must be zero up to round-off; a material residue means the caller
// fired the completion event at the wrong time.
func (j *Job) Finish(t des.Time) {
	if j.state != Running {
		panic(fmt.Sprintf("job %d: Finish in state %v", j.ID, j.state))
	}
	j.integrate(t)
	const tolerance = 1e-6 // seconds of work; float round-off only
	if j.remaining > tolerance {
		panic(fmt.Sprintf("job %d: finished with %g seconds of work left", j.ID, j.remaining))
	}
	j.state = Finished
	j.end = t
}

// Kill terminates a running job at time t with work left — the walltime
// enforcer's path. The job's partial progress is integrated (so
// DeliveredWork is meaningful) and then discarded by the batch system.
func (j *Job) Kill(t des.Time) {
	if j.state != Running {
		panic(fmt.Sprintf("job %d: Kill in state %v", j.ID, j.state))
	}
	j.integrate(t)
	j.state = Killed
	j.end = t
}

// DeliveredWork returns the dedicated-seconds of work completed (equal to
// TrueRuntime once finished; partial for killed jobs; as of the last
// integration step while still running).
func (j *Job) DeliveredWork() float64 {
	switch j.state {
	case Pending, Cancelled, Failed:
		return 0
	default:
		return float64(j.TrueRuntime) - j.remaining
	}
}

// Requeue evicts a running job at time t — the node-failure / job-crash /
// scontrol-requeue path — and returns it to Pending for another attempt.
// The attempt's partial progress is integrated, charged to the job's
// lost-work account (failures discard progress; there is no checkpointing),
// and the integrator is reset so the next Start begins from zero.
// It returns the dedicated-seconds of work this eviction discarded.
func (j *Job) Requeue(t des.Time) float64 {
	if j.state != Running {
		panic(fmt.Sprintf("job %d: Requeue in state %v", j.ID, j.state))
	}
	j.integrate(t)
	lost := float64(j.TrueRuntime) - j.remaining
	if lost < 0 {
		lost = 0
	}
	j.lostWork += lost
	j.requeues++
	j.state = Pending
	j.start, j.end = 0, 0
	j.remaining = 0
	j.rate = 0
	return lost
}

// Requeues returns how many times the job was evicted and requeued.
func (j *Job) Requeues() int { return j.requeues }

// LostWork returns the dedicated-seconds of progress discarded across all of
// the job's evictions.
func (j *Job) LostWork() float64 { return j.lostWork }

// Fail marks a just-requeued (pending) job as permanently failed: its retry
// budget is exhausted and the batch system gives up on it.
func (j *Job) Fail(t des.Time) {
	if j.state != Pending {
		panic(fmt.Sprintf("job %d: Fail in state %v", j.ID, j.state))
	}
	j.state = Failed
	j.end = t
}

// Cancel moves a pending job to Cancelled at time t.
func (j *Job) Cancel(t des.Time) {
	if j.state != Pending {
		panic(fmt.Sprintf("job %d: Cancel in state %v", j.ID, j.state))
	}
	j.state = Cancelled
	j.end = t
}

// WaitTime returns the queue wait (start − submit). Valid once started.
func (j *Job) WaitTime() des.Duration {
	if j.state == Pending || j.state == Cancelled {
		panic(fmt.Sprintf("job %d: WaitTime in state %v", j.ID, j.state))
	}
	return j.start - j.Submit
}

// Turnaround returns end − submit. Valid once finished.
func (j *Job) Turnaround() des.Duration {
	if j.state != Finished {
		panic(fmt.Sprintf("job %d: Turnaround in state %v", j.ID, j.state))
	}
	return j.end - j.Submit
}

// Stretch returns actual execution time divided by the dedicated-node
// runtime — 1.0 for a never-shared job, above 1 when sharing slowed it.
func (j *Job) Stretch() float64 {
	if j.state != Finished {
		panic(fmt.Sprintf("job %d: Stretch in state %v", j.ID, j.state))
	}
	return float64(j.end-j.start) / float64(j.TrueRuntime)
}

// BoundedSlowdown returns the standard scheduling metric
// max(1, turnaround / max(runtime, τ)) with threshold τ guarding against
// tiny jobs dominating the average. Runtime here is the job's actual
// execution span.
func (j *Job) BoundedSlowdown(tau des.Duration) float64 {
	if j.state != Finished {
		panic(fmt.Sprintf("job %d: BoundedSlowdown in state %v", j.ID, j.state))
	}
	run := float64(j.end - j.start)
	if run < float64(tau) {
		run = float64(tau)
	}
	s := float64(j.Turnaround()) / run
	if s < 1 {
		return 1
	}
	return s
}

// SharedSeconds returns the wall-clock seconds the job spent co-located
// (progress rate below 1).
func (j *Job) SharedSeconds() float64 { return j.sharedSeconds }

// MinRate returns the lowest progress rate the job experienced; 1 means the
// job never shared.
func (j *Job) MinRate() float64 {
	if j.minRate == 0 {
		return 1 // never started
	}
	return j.minRate
}

// EverShared reports whether the job ever ran at a reduced rate.
func (j *Job) EverShared() bool { return j.sharedSeconds > 0 }

// ServiceDemand returns the total work in node-seconds the job represents
// (nodes × dedicated runtime); the computational-efficiency metric sums this
// across finished jobs.
func (j *Job) ServiceDemand() float64 {
	return float64(j.Nodes) * float64(j.TrueRuntime)
}

// String renders a queue-listing line fragment.
func (j *Job) String() string {
	return fmt.Sprintf("job %d %s app=%s nodes=%d req=%v state=%v",
		j.ID, j.Name, j.App.Name, j.Nodes, j.ReqWalltime, j.state)
}
