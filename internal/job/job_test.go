package job

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
)

func testApp() app.Model {
	return app.Synthetic("t", app.StressVector{0.5, 0.5, 0.5, 0.5}, 1024, 1000)
}

func newJob(id int64) *Job {
	return &Job{
		ID:          1,
		Name:        "t-1",
		App:         testApp(),
		Nodes:       2,
		ReqWalltime: 2000,
		TrueRuntime: 1000,
		Submit:      100,
	}
}

func TestValidate(t *testing.T) {
	j := newJob(1)
	if err := j.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	mutations := []func(*Job){
		func(j *Job) { j.ID = 0 },
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.ReqWalltime = 0 },
		func(j *Job) { j.TrueRuntime = 0 },
		func(j *Job) { j.TrueRuntime = 3000 }, // exceeds request
		func(j *Job) { j.Submit = -1 },
	}
	for i, mutate := range mutations {
		jj := newJob(1)
		mutate(jj)
		if err := jj.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLifecycleDedicated(t *testing.T) {
	j := newJob(1)
	if j.State() != Pending {
		t.Fatalf("initial state = %v", j.State())
	}
	j.Start(150)
	if j.State() != Running || j.StartTime() != 150 {
		t.Fatalf("state after Start: %v at %v", j.State(), j.StartTime())
	}
	if j.Rate() != 1 {
		t.Fatalf("initial rate = %g", j.Rate())
	}
	if got := j.Remaining(150); got != 1000 {
		t.Fatalf("Remaining at start = %g", got)
	}
	if got := j.ETA(150); got != 1150 {
		t.Fatalf("ETA = %v, want 1150", got)
	}
	j.Finish(1150)
	if j.State() != Finished || j.EndTime() != 1150 {
		t.Fatalf("state after Finish: %v at %v", j.State(), j.EndTime())
	}
	if j.WaitTime() != 50 {
		t.Fatalf("WaitTime = %v, want 50", j.WaitTime())
	}
	if j.Turnaround() != 1050 {
		t.Fatalf("Turnaround = %v, want 1050", j.Turnaround())
	}
	if j.Stretch() != 1 {
		t.Fatalf("Stretch = %g, want 1", j.Stretch())
	}
	if j.EverShared() {
		t.Fatal("dedicated job reports sharing")
	}
	if j.MinRate() != 1 {
		t.Fatalf("MinRate = %g, want 1", j.MinRate())
	}
}

func TestRateChangeStretchesExecution(t *testing.T) {
	j := newJob(1)
	j.Submit = 0
	j.Start(0)
	// Run 500s dedicated, then shared at 0.5 for the remaining 500s of work,
	// which takes 1000 wall seconds.
	j.SetRate(500, 0.5)
	if got := j.Remaining(500); got != 500 {
		t.Fatalf("Remaining after 500s dedicated = %g", got)
	}
	if got := j.ETA(500); got != 1500 {
		t.Fatalf("ETA at rate 0.5 = %v, want 1500", got)
	}
	j.Finish(1500)
	if j.Stretch() != 1.5 {
		t.Fatalf("Stretch = %g, want 1.5", j.Stretch())
	}
	if j.SharedSeconds() != 1000 {
		t.Fatalf("SharedSeconds = %g, want 1000", j.SharedSeconds())
	}
	if j.MinRate() != 0.5 {
		t.Fatalf("MinRate = %g, want 0.5", j.MinRate())
	}
	if !j.EverShared() {
		t.Fatal("job with reduced rate not marked shared")
	}
}

func TestMultipleRateChanges(t *testing.T) {
	j := newJob(1)
	j.Submit = 0
	j.Start(0)
	j.SetRate(100, 0.5)  // 100 work done; 900 left
	j.SetRate(300, 0.25) // +100 work; 800 left
	j.SetRate(700, 1.0)  // +100 work; 700 left
	if got := j.Remaining(700); got != 700 {
		t.Fatalf("Remaining = %g, want 700", got)
	}
	j.Finish(1400)
	if j.EndTime() != 1400 {
		t.Fatal("end time wrong")
	}
	// Shared while at 0.5 (200s) and 0.25 (400s).
	if j.SharedSeconds() != 600 {
		t.Fatalf("SharedSeconds = %g, want 600", j.SharedSeconds())
	}
	if j.MinRate() != 0.25 {
		t.Fatalf("MinRate = %g, want 0.25", j.MinRate())
	}
}

func TestFinishWithResidualWorkPanics(t *testing.T) {
	j := newJob(1)
	j.Start(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Finish with residual work did not panic")
		}
	}()
	j.Finish(600)
}

func TestStateGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double Start", func() {
		j := newJob(1)
		j.Start(200)
		j.Start(300)
	})
	mustPanic("Start before submit", func() {
		j := newJob(1)
		j.Start(50)
	})
	mustPanic("SetRate pending", func() {
		j := newJob(1)
		j.SetRate(200, 0.5)
	})
	mustPanic("SetRate zero", func() {
		j := newJob(1)
		j.Start(200)
		j.SetRate(300, 0)
	})
	mustPanic("SetRate above 1", func() {
		j := newJob(1)
		j.Start(200)
		j.SetRate(300, 1.5)
	})
	mustPanic("SetRate into past", func() {
		j := newJob(1)
		j.Start(200)
		j.SetRate(300, 0.5)
		j.SetRate(250, 0.5)
	})
	mustPanic("Finish pending", func() {
		j := newJob(1)
		j.Finish(300)
	})
	mustPanic("ETA pending", func() {
		j := newJob(1)
		j.ETA(300)
	})
	mustPanic("WaitTime pending", func() {
		j := newJob(1)
		j.WaitTime()
	})
	mustPanic("Turnaround running", func() {
		j := newJob(1)
		j.Start(200)
		j.Turnaround()
	})
	mustPanic("Cancel running", func() {
		j := newJob(1)
		j.Start(200)
		j.Cancel(300)
	})
}

func TestCancel(t *testing.T) {
	j := newJob(1)
	j.Cancel(500)
	if j.State() != Cancelled || j.EndTime() != 500 {
		t.Fatalf("state after cancel: %v at %v", j.State(), j.EndTime())
	}
}

func TestRemainingByState(t *testing.T) {
	j := newJob(1)
	if got := j.Remaining(0); got != 1000 {
		t.Fatalf("pending Remaining = %g, want full demand", got)
	}
	j.Start(100)
	j.Finish(1100)
	if got := j.Remaining(2000); got != 0 {
		t.Fatalf("finished Remaining = %g, want 0", got)
	}
	if j.Rate() != 0 {
		t.Fatalf("finished Rate = %g, want 0", j.Rate())
	}
}

func TestBoundedSlowdown(t *testing.T) {
	j := newJob(1)
	j.Start(600) // waited 500
	j.Finish(1600)
	// turnaround 1500, runtime 1000 → slowdown 1.5.
	if got := j.BoundedSlowdown(10); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("BoundedSlowdown = %g, want 1.5", got)
	}
	// With a huge threshold the slowdown floors at 1.
	if got := j.BoundedSlowdown(1e9); got != 1 {
		t.Fatalf("BoundedSlowdown with large tau = %g, want 1", got)
	}
}

func TestServiceDemand(t *testing.T) {
	j := newJob(1)
	if j.ServiceDemand() != 2000 {
		t.Fatalf("ServiceDemand = %g, want 2000 (2 nodes × 1000s)", j.ServiceDemand())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Pending: "PENDING", Running: "RUNNING", Finished: "FINISHED", Cancelled: "CANCELLED",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestJobString(t *testing.T) {
	j := newJob(1)
	s := j.String()
	for _, frag := range []string{"job 1", "nodes=2", "PENDING"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// Property (progress conservation, DESIGN.md §6): for any piecewise rate
// schedule, the wall time to finish equals the sum of work/rate segments,
// and integrated progress equals the service demand.
func TestProperty_ProgressConservation(t *testing.T) {
	f := func(segments []uint8) bool {
		j := &Job{ID: 1, App: testApp(), Nodes: 1,
			ReqWalltime: 1e9, TrueRuntime: 1000, Submit: 0}
		j.Start(0)
		now := des.Time(0)
		workLeft := 1000.0
		// Apply up to 8 random-rate segments of 100 wall-seconds each.
		if len(segments) > 8 {
			segments = segments[:8]
		}
		for _, s := range segments {
			rate := 0.1 + 0.9*float64(s)/255
			j.SetRate(now, rate)
			dt := 100.0
			if workLeft <= rate*dt {
				break
			}
			now += des.Time(dt)
			workLeft -= rate * dt
		}
		// Finish at the exact projected completion of the final rate.
		j.SetRate(now, j.Rate()) // integrate to now (no-op rate change)
		finish := j.ETA(now)
		j.Finish(finish)
		return j.State() == Finished
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKill(t *testing.T) {
	j := newJob(1)
	j.Submit = 0
	j.Start(0)
	j.SetRate(200, 0.5) // 200 work done
	// Killed at t=600: work delivered = 200 + 400·0.5 = 400 of 1000.
	j.Kill(600)
	if j.State() != Killed || j.EndTime() != 600 {
		t.Fatalf("state/end after kill = %v/%v", j.State(), j.EndTime())
	}
	if got := j.DeliveredWork(); got != 400 {
		t.Fatalf("DeliveredWork = %g, want 400", got)
	}
}

func TestKillGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Kill on pending job did not panic")
		}
	}()
	newJob(1).Kill(500)
}

func TestDeliveredWorkByState(t *testing.T) {
	j := newJob(1)
	if j.DeliveredWork() != 0 {
		t.Fatal("pending job delivered work")
	}
	j2 := newJob(2)
	j2.Cancel(50)
	if j2.DeliveredWork() != 0 {
		t.Fatal("cancelled job delivered work")
	}
	j3 := newJob(3)
	j3.Start(100)
	j3.Finish(1100)
	if j3.DeliveredWork() != 1000 {
		t.Fatalf("finished DeliveredWork = %g", j3.DeliveredWork())
	}
}

func TestKilledStateString(t *testing.T) {
	if Killed.String() != "KILLED" {
		t.Fatalf("Killed.String() = %q", Killed.String())
	}
}

func TestValidateDependencies(t *testing.T) {
	j := newJob(1)
	j.After = []cluster.JobID{2, 3}
	if err := j.Validate(); err != nil {
		t.Fatalf("valid deps rejected: %v", err)
	}
	j.After = []cluster.JobID{1}
	if err := j.Validate(); err == nil {
		t.Fatal("self-dependency accepted")
	}
	j.After = []cluster.JobID{0}
	if err := j.Validate(); err == nil {
		t.Fatal("NoJob dependency accepted")
	}
}
