package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulatorStartsAtZero(t *testing.T) {
	s := NewSimulator()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(30, func(*Simulator) { order = append(order, 3) })
	s.Schedule(10, func(*Simulator) { order = append(order, 1) })
	s.Schedule(20, func(*Simulator) { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5, func(*Simulator) { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order[%d] = %d, want %d (ties must fire FIFO)", i, v, i)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(10, func(*Simulator) {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(5, func(*Simulator) {})
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestScheduleInNegativePanics(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.ScheduleIn(-1, func(*Simulator) {})
}

func TestScheduleAtCurrentTimeRunsAfterQueued(t *testing.T) {
	s := NewSimulator()
	var order []string
	s.Schedule(10, func(sim *Simulator) {
		order = append(order, "a")
		sim.Schedule(10, func(*Simulator) { order = append(order, "c") })
	})
	s.Schedule(10, func(*Simulator) { order = append(order, "b") })
	s.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	e := s.Schedule(10, func(*Simulator) { fired = true })
	s.Cancel(e)
	s.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if s.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d, want 1", s.Cancelled())
	}
	// Double-cancel must be a no-op.
	s.Cancel(e)
	if s.Cancelled() != 1 {
		t.Fatalf("double cancel counted twice: %d", s.Cancelled())
	}
	s.Cancel(nil) // must not panic
}

func TestCancelDoesNotAdvanceClock(t *testing.T) {
	s := NewSimulator()
	e := s.Schedule(100, func(*Simulator) {})
	s.Schedule(10, func(*Simulator) {})
	s.Cancel(e)
	s.RunAll()
	if s.Now() != 10 {
		t.Fatalf("Now() = %v, want 10 (canceled event must not advance clock)", s.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewSimulator()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		s.Schedule(at, func(*Simulator) { fired = append(fired, at) })
	}
	s.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want clock advanced to horizon 20", s.Now())
	}
	s.RunAll()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func(sim *Simulator) {
			count++
			if count == 3 {
				sim.Stop()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	// Run can be resumed after a Stop.
	s.RunAll()
	if count != 10 {
		t.Fatalf("executed %d events after resume, want 10", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestCounters(t *testing.T) {
	s := NewSimulator()
	e1 := s.Schedule(1, func(*Simulator) {})
	s.Schedule(2, func(*Simulator) {})
	s.Cancel(e1)
	s.RunAll()
	if s.Scheduled() != 2 || s.Executed() != 1 || s.Cancelled() != 1 {
		t.Fatalf("counters scheduled/executed/cancelled = %d/%d/%d, want 2/1/1",
			s.Scheduled(), s.Executed(), s.Cancelled())
	}
}

func TestEventAt(t *testing.T) {
	s := NewSimulator()
	e := s.Schedule(42, func(*Simulator) {})
	if e.At() != 42 {
		t.Fatalf("At() = %v, want 42", e.At())
	}
}

func TestRecursiveScheduling(t *testing.T) {
	s := NewSimulator()
	ticks := 0
	var tick Handler
	tick = func(sim *Simulator) {
		ticks++
		if ticks < 1000 {
			sim.ScheduleIn(1, tick)
		}
	}
	s.Schedule(0, tick)
	s.RunAll()
	if ticks != 1000 {
		t.Fatalf("ticks = %d, want 1000", ticks)
	}
	if s.Now() != 999 {
		t.Fatalf("Now() = %v, want 999", s.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00.000"},
		{61.5, "00:01:01.500"},
		{3600, "01:00:00.000"},
		{90000, "1d01:00:00.000"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(10)
	if !tm.Before(11) || tm.Before(10) {
		t.Fatal("Before misbehaves")
	}
	if tm.Add(5) != 15 {
		t.Fatal("Add misbehaves")
	}
	if Time(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds misbehaves")
	}
}

// Property: for any set of (bounded) timestamps, the kernel fires events in
// non-decreasing time order and the clock ends at the maximum timestamp.
func TestProperty_EventOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSimulator()
		var fired []Time
		maxAt := Time(0)
		for _, r := range raw {
			at := Time(r)
			if at > maxAt {
				maxAt = at
			}
			s.Schedule(at, func(*Simulator) { fired = append(fired, at) })
		}
		s.RunAll()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — two simulators fed the same schedule execute the
// same number of events and end at the same time.
func TestProperty_Determinism(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		run := func() (uint64, Time) {
			s := NewSimulator()
			rng := NewRNG(seed)
			for _, r := range raw {
				s.Schedule(Time(r), func(sim *Simulator) {
					if rng.Float64() < 0.5 {
						sim.ScheduleIn(Duration(rng.Intn(10)), func(*Simulator) {})
					}
				})
			}
			s.RunAll()
			return s.Executed(), s.Now()
		}
		e1, t1 := run()
		e2, t2 := run()
		return e1 == e2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllOnDrainedQueueLeavesClock(t *testing.T) {
	s := NewSimulator()
	s.Schedule(7, func(*Simulator) {})
	s.RunAll()
	s.RunAll()
	if s.Now() != 7 {
		t.Fatalf("Now() = %v, want 7", s.Now())
	}
}

func TestHugeEventCountStaysSorted(t *testing.T) {
	s := NewSimulator()
	rng := NewRNG(1)
	last := Time(math.Inf(-1))
	ok := true
	for i := 0; i < 20000; i++ {
		at := Time(rng.Intn(10000))
		s.Schedule(at, func(sim *Simulator) {
			if sim.Now() < last {
				ok = false
			}
			last = sim.Now()
		})
	}
	s.RunAll()
	if !ok {
		t.Fatal("events fired out of order under load")
	}
}
