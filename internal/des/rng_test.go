package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestStreamIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Stream("arrivals")
	s2 := root.Stream("runtimes")
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct names produced %d/100 identical draws", same)
	}
}

func TestStreamStability(t *testing.T) {
	// Stream derivation must be insensitive to how many draws happened on
	// the parent.
	r1 := NewRNG(7)
	s1 := r1.Stream("x")
	r2 := NewRNG(7)
	for i := 0; i < 50; i++ {
		r2.Uint64()
	}
	s2 := r2.Stream("x")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("stream derivation depends on parent draw count (draw %d)", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", v)
		}
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(10) bucket %d has count %d, expected ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const mean = 120.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %g", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.02 {
		t.Fatalf("Exp empirical mean = %g, want ~%g", got, mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	const mu, sigma = 50.0, 10.0
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.2 {
		t.Fatalf("Norm mean = %g, want ~%g", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.2 {
		t.Fatalf("Norm stddev = %g, want ~%g", math.Sqrt(variance), sigma)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(1, 2); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("LogNormal produced %g", v)
		}
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := NewRNG(8)
	const scale = 30.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, scale)
	}
	got := sum / n
	// Weibull(1, λ) is Exp(λ).
	if math.Abs(got-scale) > scale*0.02 {
		t.Fatalf("Weibull(1, %g) empirical mean = %g, want ~%g", scale, got, scale)
	}
}

func TestDistributionPanics(t *testing.T) {
	r := NewRNG(1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Exp(0)", func() { r.Exp(0) })
	mustPanic("Weibull(0,1)", func() { r.Weibull(0, 1) })
	mustPanic("Weibull(1,0)", func() { r.Weibull(1, 0) })
	mustPanic("Choice(nil)", func() { r.Choice(nil) })
	mustPanic("Choice(zeros)", func() { r.Choice([]float64{0, 0}) })
	mustPanic("Choice(negative)", func() { r.Choice([]float64{1, -1}) })
}

func TestChoiceWeights(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > want*0.1 {
			t.Fatalf("Choice bucket %d count = %d, want ~%g", i, counts[i], want)
		}
	}
}

func TestChoiceZeroWeightNeverChosen(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		if r.Choice([]float64{0, 1, 0}) != 1 {
			t.Fatal("Choice selected a zero-weight bucket")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) = %g", v)
		}
	}
}

// Property: Perm always yields a permutation for any small n and seed.
func TestProperty_Perm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always within bounds.
func TestProperty_IntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
