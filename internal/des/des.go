// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel is the time substrate for the whole repository: the cluster
// simulator, the scheduler, and the SLURM-like controller all advance a
// simulated clock by executing events in timestamp order. Determinism is a
// hard requirement (see DESIGN.md §6): two runs with the same seed must
// produce bit-identical event orders, which the kernel guarantees by breaking
// timestamp ties with a monotonically increasing sequence number.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in seconds since the start of
// the simulation. Sub-second resolution is allowed; scheduling policies
// typically operate on whole seconds while the progress integrator uses the
// full float range.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Common time constants, in simulated seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 86400
)

// Forever is a sentinel meaning "run until the event queue drains".
const Forever Time = Time(math.MaxFloat64)

// Seconds returns the time as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + d }

// String renders the time as D+HH:MM:SS.fff for readable traces.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	s := float64(t)
	if s < 0 {
		neg = "-"
		s = -s
	}
	days := int(s) / 86400
	rem := s - float64(days*86400)
	h := int(rem) / 3600
	m := (int(rem) % 3600) / 60
	sec := rem - float64(h*3600+m*60)
	if days > 0 {
		return fmt.Sprintf("%s%dd%02d:%02d:%06.3f", neg, days, h, m, sec)
	}
	return fmt.Sprintf("%s%02d:%02d:%06.3f", neg, h, m, sec)
}

// Handler is the callback invoked when an event fires. The simulator passes
// itself so handlers can schedule follow-up events.
type Handler func(sim *Simulator)

// Event is a scheduled callback. Events are created via Simulator.Schedule
// and friends; the zero value is not usable.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among equal timestamps
	index    int    // heap index, -1 once removed
	canceled bool
	fn       Handler
}

// At returns the simulated time at which the event fires (or was scheduled to
// fire, if canceled).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("des: event scheduled in the past")

// Simulator owns the simulated clock and the pending-event queue.
// It is not safe for concurrent use; the simulation model is single-threaded
// by design (determinism), with parallelism applied across independent
// simulation runs by the experiment harness instead.
type Simulator struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	stopped bool

	executed  uint64
	scheduled uint64
	cancelled uint64
}

// NewSimulator returns a simulator with the clock at time 0 and an empty
// event queue.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events waiting in the queue (including
// canceled events that have not yet been popped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Scheduled returns the total number of events ever scheduled.
func (s *Simulator) Scheduled() uint64 { return s.scheduled }

// Cancelled returns the number of events that were canceled before firing.
func (s *Simulator) Cancelled() uint64 { return s.cancelled }

// Schedule registers fn to run at absolute simulated time at.
// Scheduling at the current time is allowed (the event runs after all events
// already queued for that instant). Scheduling in the past panics: it is
// always a model bug, never a recoverable condition.
func (s *Simulator) Schedule(at Time, fn Handler) *Event {
	if at < s.now {
		panic(fmt.Sprintf("%v: at=%v now=%v", ErrPastEvent, at, s.now))
	}
	if fn == nil {
		panic("des: Schedule with nil handler")
	}
	e := &Event{at: at, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	s.scheduled++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleIn registers fn to run after delay d from the current time.
func (s *Simulator) ScheduleIn(d Duration, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("%v: delay=%v", ErrPastEvent, d))
	}
	return s.Schedule(s.now+d, fn)
}

// Cancel marks an event so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. Cancellation is O(1); the event is
// dropped lazily when popped.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index == -1 && e.fn == nil {
		return
	}
	if !e.canceled {
		e.canceled = true
		s.cancelled++
	}
}

// Stop halts the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It returns false when the
// queue is empty. Canceled events are skipped (and consume no simulated
// time).
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.at < s.now {
			panic("des: event heap produced a past event") // unreachable unless heap corrupted
		}
		s.now = e.at
		fn := e.fn
		e.fn = nil
		s.executed++
		fn(s)
		return true
	}
	return false
}

// Run executes events in order until the queue drains, Stop is called, or
// the next event lies strictly after until. The clock is left at the time of
// the last executed event (or advanced to until if until is finite and the
// queue drained earlier events only).
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for !s.stopped {
		// Peek: do not pop events beyond the horizon.
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > until {
			break
		}
		s.Step()
	}
	if until != Forever && s.now < until && !s.stopped {
		s.now = until
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() { s.Run(Forever) }

func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}
