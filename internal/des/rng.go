package des

import (
	"fmt"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// splitmix64 / xoshiro256** construction. We implement it ourselves rather
// than wrapping math/rand so that (a) the stream sequence is pinned and
// cannot drift across Go releases and (b) named sub-streams can be derived
// stably from a root seed, which keeps experiments reproducible even when
// the order in which components draw random numbers changes.
type RNG struct {
	seed uint64 // original seed material, kept for stable Stream derivation
	s    [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via splitmix64, as recommended
// by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{seed: seed}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream derives an independent generator from r's original seed material
// and a name. Streams with distinct names are statistically independent;
// the same (seed, name) pair always yields the same stream.
func (r *RNG) Stream(name string) *RNG {
	h := fnv1a64(name)
	// Derive from the original seed (not the advanced state) so Stream is
	// insensitive to how many draws happened on the parent.
	x := r.seed
	mixed := splitmix64(&x) ^ h
	return NewRNG(mixed)
}

func fnv1a64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("des: Intn(%d)", n))
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias is negligible for the n (< 2^32) used in workloads, but we
	// reject anyway to keep the generator exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("des: Exp(mean=%g)", mean))
	}
	u := r.Float64()
	// Float64 is in [0,1); guard the log argument.
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed value (Box–Muller; one value per call,
// the pair's second half is deliberately discarded to keep draws countable).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0, 1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Weibull returns a Weibull-distributed value with the given shape k and
// scale lambda. Weibull interarrivals model the bursty submission behaviour
// observed in production HPC traces.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("des: Weibull(shape=%g, scale=%g)", shape, scale))
	}
	u := 1 - r.Float64()
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Choice returns a uniformly chosen index weighted by weights. Weights must
// be non-negative and sum to a positive value.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("des: Choice weight[%d]=%g", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("des: Choice with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // float round-off: last positive-weight bucket
}

// Shuffle permutes the first n elements using swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
