package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
)

// mkFinished builds a finished job: nodes × trueRuntime of demand, submitted
// at submit, started at start, completed at end. When end−start exceeds
// trueRuntime the job is given a uniform reduced rate so the work closes
// exactly at end (a shared job).
func mkFinished(id int64, nodes int, submit, start, end, trueRuntime float64) *job.Job {
	j := &job.Job{
		ID:   cluster.JobID(id),
		App:  app.Synthetic("x", app.StressVector{0.5, 0.5, 0.5, 0.5}, 100, 100),
		Name: "x", Nodes: nodes,
		ReqWalltime: des.Duration(1e9), TrueRuntime: des.Duration(trueRuntime),
		Submit: des.Time(submit),
	}
	j.Start(des.Time(start))
	if end-start > trueRuntime {
		j.SetRate(des.Time(start), trueRuntime/(end-start))
	}
	j.Finish(des.Time(end))
	return j
}

func TestComputeExclusiveBaseline(t *testing.T) {
	// Two dedicated jobs on a 4-node machine:
	//   j1: 2 nodes, 0→100 (demand 200)
	//   j2: 2 nodes, 0→200 (demand 400)
	// Busy node-seconds = 2·100 + 2·200 = 600. Makespan 200.
	finished := []*job.Job{
		mkFinished(1, 2, 0, 0, 100, 100),
		mkFinished(2, 2, 0, 0, 200, 200),
	}
	raw := Result{
		Policy: "easy", Submitted: 2, Nodes: 4,
		Makespan: 200, BusyNodeSeconds: 600, SharedNodeSeconds: 0,
	}
	r := Compute(raw, finished, nil)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r.Finished != 2 {
		t.Fatalf("Finished = %d", r.Finished)
	}
	if math.Abs(r.TotalDemand-600) > 1e-9 {
		t.Fatalf("TotalDemand = %g, want 600", r.TotalDemand)
	}
	// Exclusive allocation delivers exactly 1 unit of work per busy
	// node-second.
	if math.Abs(r.CompEfficiency-1) > 1e-9 {
		t.Fatalf("CompEfficiency = %g, want 1", r.CompEfficiency)
	}
	// Ideal makespan = 600/4 = 150 → SE = 150/200 = 0.75.
	if math.Abs(r.SchedEfficiency-0.75) > 1e-9 {
		t.Fatalf("SchedEfficiency = %g, want 0.75", r.SchedEfficiency)
	}
	// Utilization = 600 / (4·200) = 0.75.
	if math.Abs(r.Utilization-0.75) > 1e-9 {
		t.Fatalf("Utilization = %g, want 0.75", r.Utilization)
	}
	if r.SharedFraction != 0 {
		t.Fatalf("SharedFraction = %g", r.SharedFraction)
	}
}

func TestComputeSharedRaisesCE(t *testing.T) {
	// One node hosts two jobs for 100 seconds, each progressing at 0.8:
	// demand delivered = 2·80 = 160 over 100 busy node-seconds → CE = 1.6.
	finished := []*job.Job{
		mkFinished(1, 1, 0, 0, 100, 80),
		mkFinished(2, 1, 0, 0, 100, 80),
	}
	raw := Result{
		Policy: "sharefirstfit", Submitted: 2, Nodes: 1,
		Makespan: 100, BusyNodeSeconds: 100, SharedNodeSeconds: 100,
	}
	r := Compute(raw, finished, nil)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(r.CompEfficiency-1.6) > 1e-9 {
		t.Fatalf("CompEfficiency = %g, want 1.6", r.CompEfficiency)
	}
	if math.Abs(r.SharedFraction-1) > 1e-9 {
		t.Fatalf("SharedFraction = %g, want 1", r.SharedFraction)
	}
	// SE = ideal/actual = (160/1)/100 = 1.6 > 1: legal under sharing.
	if math.Abs(r.SchedEfficiency-1.6) > 1e-9 {
		t.Fatalf("SchedEfficiency = %g, want 1.6", r.SchedEfficiency)
	}
	// Both jobs stretched 100/80 = 1.25.
	if math.Abs(r.Stretch.Mean-1.25) > 1e-9 {
		t.Fatalf("Stretch mean = %g, want 1.25", r.Stretch.Mean)
	}
}

func TestComputeWaitAndSlowdown(t *testing.T) {
	finished := []*job.Job{
		mkFinished(1, 1, 0, 50, 150, 100),  // wait 50, turnaround 150, run 100 → slowdown 1.5
		mkFinished(2, 1, 0, 150, 250, 100), // wait 150, slowdown 2.5
	}
	r := Compute(Result{Submitted: 2, Nodes: 1, Makespan: 250, BusyNodeSeconds: 200}, finished, nil)
	if math.Abs(r.Wait.Mean-100) > 1e-9 {
		t.Fatalf("Wait mean = %g, want 100", r.Wait.Mean)
	}
	if math.Abs(r.Slowdown.Mean-2) > 1e-9 {
		t.Fatalf("Slowdown mean = %g, want 2", r.Slowdown.Mean)
	}
}

func TestComputeDecisionTimes(t *testing.T) {
	r := Compute(Result{Submitted: 0, Nodes: 1},
		nil, []time.Duration{100 * time.Nanosecond, 300 * time.Nanosecond})
	if r.DecisionNanos.N != 2 || math.Abs(r.DecisionNanos.Mean-200) > 1e-9 {
		t.Fatalf("DecisionNanos = %+v", r.DecisionNanos)
	}
}

func TestComputeEmptyRun(t *testing.T) {
	r := Compute(Result{Policy: "fcfs", Nodes: 8}, nil, nil)
	if err := r.Validate(); err != nil {
		t.Fatalf("empty run invalid: %v", err)
	}
	if r.CompEfficiency != 0 || r.SchedEfficiency != 0 {
		t.Fatal("empty run has nonzero efficiencies")
	}
}

func TestValidateCatchesNonsense(t *testing.T) {
	bad := []Result{
		{Submitted: 1, Finished: 2},
		{CompEfficiency: -1},
		{SchedEfficiency: -0.1},
		{Utilization: 1.5},
		{SharedFraction: -0.2},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad result %d accepted: %+v", i, r)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Compute(Result{Policy: "easy", Submitted: 1, Nodes: 2, Makespan: 100, BusyNodeSeconds: 100},
		[]*job.Job{mkFinished(1, 1, 0, 0, 100, 100)}, nil)
	s := r.String()
	for _, frag := range []string{"easy", "CE=", "SE=", "util="} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
