// Package metrics defines the evaluation metrics of the node-sharing study
// and computes them from raw simulation observations.
//
// The two headline metrics follow the paper's comparison ("an increased
// computational efficiency of 19% and an increased scheduling efficiency of
// 25.2% compared to standard node allocation"):
//
//   - Computational efficiency: useful work delivered per allocated
//     node-second, CE = Σ finished service demand / busy node-seconds.
//     Under standard (exclusive) allocation every allocated node runs its
//     job at rate 1, so CE is exactly 1; sharing raises CE when co-located
//     jobs' progress rates sum above 1 and lowers it when they interfere.
//
//   - Scheduling efficiency: how close the schedule comes to the packing
//     lower bound, SE = ideal makespan / actual makespan, with
//     ideal = total service demand / machine nodes. Sharing shortens the
//     makespan of a closed workload, raising SE.
//
// Both are dimensionless, which makes the paper's relative improvements
// directly comparable across machines.
package metrics

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/job"
	"repro/internal/stats"
)

// BoundedSlowdownTau is the standard 10-second threshold used for the
// bounded-slowdown metric.
const BoundedSlowdownTau des.Duration = 10

// Result is the full metric set of one simulation run.
type Result struct {
	// Policy is the scheduling policy's registry name.
	Policy string
	// Submitted and Finished count jobs; Killed counts jobs terminated at
	// their walltime limit (only possible under strict limit enforcement).
	Submitted, Finished, Killed int
	// WastedNodeSeconds is the occupancy consumed by killed jobs, whose
	// work is discarded.
	WastedNodeSeconds float64
	// Makespan is the time from run start to the last job completion.
	Makespan des.Duration
	// TotalDemand is the aggregate service demand of finished jobs in
	// node-seconds.
	TotalDemand float64
	// BusyNodeSeconds integrates the number of allocated (non-idle) nodes
	// over time.
	BusyNodeSeconds float64
	// SharedNodeSeconds integrates the number of nodes hosting ≥2 jobs.
	SharedNodeSeconds float64
	// Nodes is the machine size the run used.
	Nodes int

	// CompEfficiency is useful work per allocated node-second (headline 1).
	CompEfficiency float64
	// SchedEfficiency is ideal makespan over actual makespan (headline 2).
	SchedEfficiency float64
	// Utilization is busy node-seconds over machine node-seconds.
	Utilization float64
	// SharedFraction is the fraction of busy node-seconds spent shared.
	SharedFraction float64

	// Wait summarizes queue waits of finished jobs (seconds).
	Wait stats.Summary
	// Slowdown summarizes bounded slowdowns of finished jobs.
	Slowdown stats.Summary
	// Stretch summarizes execution-time stretch (1 = never slowed).
	Stretch stats.Summary

	// DecisionNanos summarizes the real (wall-clock) time the scheduler
	// spent per decision pass — the paper's "no overhead" claim.
	DecisionNanos stats.Summary

	// Resilience observations (all zero when fault injection is off).

	// NodeFailures and NodeRepairs count node fail/repair transitions.
	NodeFailures, NodeRepairs int
	// JobCrashes counts job attempts terminated by the software-crash
	// process (node-failure victims are counted under Requeues only).
	JobCrashes int
	// Requeues counts evictions that returned a job to the queue.
	Requeues int
	// FailedJobs counts jobs abandoned after exhausting their retries
	// (a subset of Killed).
	FailedJobs int
	// LostNodeSeconds is the node-time of partial progress discarded by
	// evictions (lost work is charged, never silently dropped).
	LostNodeSeconds float64
	// DownNodeSeconds integrates the number of down nodes over time.
	DownNodeSeconds float64
	// MeanRescheduleSeconds is the mean time from a job's eviction to its
	// next start (the queue's recovery latency); 0 when nothing requeued.
	MeanRescheduleSeconds float64
	// Goodput is delivered useful work over all node-time charged for work:
	// TotalDemand / (TotalDemand + LostNodeSeconds + WastedNodeSeconds).
	// 1 when nothing is ever lost; falls as failures burn node-time.
	Goodput float64
}

// Compute fills the derived fields of a Result from its raw observations
// plus the finished jobs' records. It returns the completed Result.
func Compute(raw Result, finished []*job.Job, decisionTimes []time.Duration) Result {
	r := raw
	r.Finished = len(finished)

	var waits, slowdowns, stretches []float64
	r.TotalDemand = 0
	for _, j := range finished {
		r.TotalDemand += j.ServiceDemand()
		waits = append(waits, float64(j.WaitTime()))
		slowdowns = append(slowdowns, j.BoundedSlowdown(BoundedSlowdownTau))
		stretches = append(stretches, j.Stretch())
	}
	r.Wait = stats.Summarize(waits)
	r.Slowdown = stats.Summarize(slowdowns)
	r.Stretch = stats.Summarize(stretches)

	if r.BusyNodeSeconds > 0 {
		r.CompEfficiency = r.TotalDemand / r.BusyNodeSeconds
		r.SharedFraction = r.SharedNodeSeconds / r.BusyNodeSeconds
	}
	if r.Makespan > 0 && r.Nodes > 0 {
		ideal := r.TotalDemand / float64(r.Nodes)
		r.SchedEfficiency = ideal / float64(r.Makespan)
		r.Utilization = r.BusyNodeSeconds / (float64(r.Nodes) * float64(r.Makespan))
	}

	nanos := make([]float64, len(decisionTimes))
	for i, d := range decisionTimes {
		nanos[i] = float64(d.Nanoseconds())
	}
	r.DecisionNanos = stats.Summarize(nanos)

	if charged := r.TotalDemand + r.LostNodeSeconds + r.WastedNodeSeconds; charged > 0 {
		r.Goodput = r.TotalDemand / charged
	}
	return r
}

// Validate checks internal consistency of a computed Result.
func (r Result) Validate() error {
	switch {
	case r.Finished+r.Killed > r.Submitted:
		return fmt.Errorf("metrics: finished %d + killed %d > submitted %d",
			r.Finished, r.Killed, r.Submitted)
	case r.WastedNodeSeconds < 0:
		return fmt.Errorf("metrics: negative wasted node-seconds %g", r.WastedNodeSeconds)
	case r.CompEfficiency < 0:
		return fmt.Errorf("metrics: negative computational efficiency %g", r.CompEfficiency)
	// Scheduling efficiency may legitimately exceed 1: the ideal makespan is
	// a rate-1 packing bound, and SMT sharing can deliver more than one
	// dedicated-node-second of work per node-second.
	case r.SchedEfficiency < 0:
		return fmt.Errorf("metrics: negative scheduling efficiency %g", r.SchedEfficiency)
	case r.Utilization < 0 || r.Utilization > 1+1e-9:
		return fmt.Errorf("metrics: utilization %g outside [0,1]", r.Utilization)
	case r.SharedFraction < 0 || r.SharedFraction > 1+1e-9:
		return fmt.Errorf("metrics: shared fraction %g outside [0,1]", r.SharedFraction)
	case r.LostNodeSeconds < 0:
		return fmt.Errorf("metrics: negative lost node-seconds %g", r.LostNodeSeconds)
	case r.DownNodeSeconds < 0:
		return fmt.Errorf("metrics: negative down node-seconds %g", r.DownNodeSeconds)
	case r.Goodput < 0 || r.Goodput > 1+1e-9:
		return fmt.Errorf("metrics: goodput %g outside [0,1]", r.Goodput)
	case r.FailedJobs > r.Killed:
		return fmt.Errorf("metrics: failed jobs %d exceed killed %d", r.FailedJobs, r.Killed)
	case r.NodeRepairs > r.NodeFailures:
		return fmt.Errorf("metrics: repairs %d exceed failures %d", r.NodeRepairs, r.NodeFailures)
	}
	return nil
}

// String renders a one-line run summary.
func (r Result) String() string {
	return fmt.Sprintf(
		"%s: %d/%d jobs, makespan=%s CE=%.3f SE=%.3f util=%.3f shared=%.2f wait(mean)=%s",
		r.Policy, r.Finished, r.Submitted, r.Makespan,
		r.CompEfficiency, r.SchedEfficiency, r.Utilization, r.SharedFraction,
		des.Duration(r.Wait.Mean))
}
