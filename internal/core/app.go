package core

import (
	"repro/internal/app"
	"repro/internal/sched"
)

// appByName resolves a catalogue application.
func appByName(name string) (app.Model, error) {
	return app.ByName(name)
}

// Apps returns the names of the available catalogue applications.
func Apps() []string { return app.Names() }

// Policies returns the names of the available scheduling policies.
func Policies() []string { return sched.Names() }
