package core

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Policy() != "sharebackfill" {
		t.Fatalf("default policy = %q", sys.Policy())
	}
	if sys.Cluster().Size() != 32 {
		t.Fatalf("default machine = %d nodes", sys.Cluster().Size())
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewSystem(Config{Machine: cluster.Config{Nodes: -1, CoresPerNode: 1, ThreadsPerCore: 1, MemoryPerNodeMB: 1}}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestSubmitAndRun(t *testing.T) {
	sys, err := NewSystem(Config{Machine: cluster.Trinity(4), Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	id, err := sys.Submit(JobSpec{App: "minife", Nodes: 2, Walltime: des.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if id == cluster.NoJob {
		t.Fatal("no ID assigned")
	}
	j := sys.Job(id)
	if j == nil {
		t.Fatal("Job(id) = nil")
	}
	// Default runtime is 60% of walltime.
	if j.TrueRuntime != des.Hour*6/10 {
		t.Fatalf("default runtime = %v", j.TrueRuntime)
	}
	if !strings.HasPrefix(j.Name, "minife-") {
		t.Fatalf("derived name = %q", j.Name)
	}
	sys.Run()
	if j.State() != job.Finished {
		t.Fatalf("state = %v", j.State())
	}
	m := sys.Metrics()
	if m.Finished != 1 {
		t.Fatalf("metrics report %d finished", m.Finished)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(4)})
	cases := []JobSpec{
		{App: "no-such-app", Nodes: 1, Walltime: 100},
		{App: "minife", Nodes: 1}, // no walltime
		{App: "minife", Nodes: 0, Walltime: 100},
	}
	for i, spec := range cases {
		if _, err := sys.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSubmitJobsFromGenerator(t *testing.T) {
	sys, err := NewSystem(Config{Machine: cluster.Trinity(8), Policy: "sharefirstfit"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(workload.Spec{
		Mix: workload.TrinityMix(), Jobs: 40, Arrival: workload.Poisson,
		Load: 0.9, Cluster: cluster.Trinity(8), RuntimeScale: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitJobs(jobs); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	m := sys.Metrics()
	if m.Finished != 40 {
		t.Fatalf("finished %d of 40", m.Finished)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(4)})
	j := &job.Job{ID: 5, App: mustApp(t, "amg"), Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 50, Submit: 0, Name: "a"}
	if err := sys.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	j2 := &job.Job{ID: 5, App: mustApp(t, "amg"), Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 50, Submit: 0, Name: "b"}
	if err := sys.SubmitJob(j2); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestIDsContinueAfterSubmitJob(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(4)})
	j := &job.Job{ID: 100, App: mustApp(t, "amg"), Nodes: 1,
		ReqWalltime: 100, TrueRuntime: 50, Submit: 0, Name: "a"}
	if err := sys.SubmitJob(j); err != nil {
		t.Fatal(err)
	}
	id, err := sys.Submit(JobSpec{App: "minife", Nodes: 1, Walltime: 100})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 100 {
		t.Fatalf("spec submission reused ID space: %d", id)
	}
}

func TestRunUntilAndSnapshots(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(2), Policy: "fcfs"})
	if _, err := sys.Submit(JobSpec{App: "gtc", Nodes: 2, Walltime: 1000, Runtime: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(JobSpec{App: "gtc", Nodes: 2, Walltime: 1000, Runtime: 1000}); err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(500)
	if sys.Now() != 500 {
		t.Fatalf("Now = %v", sys.Now())
	}
	if len(sys.Running()) != 1 || len(sys.Pending()) != 1 {
		t.Fatalf("running/pending = %d/%d, want 1/1", len(sys.Running()), len(sys.Pending()))
	}
	sys.Run()
	if len(sys.Finished()) != 2 {
		t.Fatalf("finished = %d", len(sys.Finished()))
	}
}

func TestTraceHook(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(2)})
	var n int
	sys.Trace(func(string) { n++ })
	if _, err := sys.Submit(JobSpec{App: "umt", Nodes: 1, Walltime: 100}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if n < 3 {
		t.Fatalf("trace lines = %d", n)
	}
}

func TestCatalogueHelpers(t *testing.T) {
	if len(Apps()) < 6 {
		t.Fatalf("Apps() = %v", Apps())
	}
	if len(Policies()) != 7 {
		t.Fatalf("Policies() = %v", Policies())
	}
}

func mustApp(t *testing.T, name string) app.Model {
	t.Helper()
	m, err := app.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigExtras(t *testing.T) {
	// Interference override, topology + locality, measured pairs, and
	// strict limits must all wire through NewSystem.
	params := interference.DefaultParams()
	params.SMTBoost = 1.1
	topo := topology.Default(4)
	sys, err := NewSystem(Config{
		Machine:       cluster.Trinity(4),
		Policy:        "sharebackfill",
		Interference:  &params,
		Topology:      &topo,
		LocalityAware: true,
		StrictLimits:  true,
		MeasuredPairs: []interference.MeasuredPair{
			{A: "minife", B: "minimd", RateA: 0.5, RateB: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(JobSpec{App: "minife", Nodes: 2, Walltime: 1000, Runtime: 900}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if len(sys.History()) != 1 {
		t.Fatalf("history = %d", len(sys.History()))
	}
	if sys.Engine() == nil {
		t.Fatal("Engine() nil")
	}
	// Bad measured pairs surface as a construction error.
	if _, err := NewSystem(Config{
		MeasuredPairs: []interference.MeasuredPair{{A: "", B: "x", RateA: 1, RateB: 1}},
	}); err == nil {
		t.Fatal("bad measured pair accepted")
	}
}

func TestHeldVisibleThroughFacade(t *testing.T) {
	sys, err := NewSystem(Config{Machine: cluster.Trinity(4), Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	parent, err := sys.Submit(JobSpec{App: "amg", Nodes: 1, Walltime: 1000, Runtime: 900})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(JobSpec{App: "amg", Nodes: 1, Walltime: 1000, Runtime: 900,
		After: []cluster.JobID{parent}}); err != nil {
		t.Fatal(err)
	}
	sys.RunUntil(10)
	if len(sys.Held()) != 1 {
		t.Fatalf("Held = %d, want 1", len(sys.Held()))
	}
	sys.Run()
	if len(sys.Held()) != 0 || len(sys.Finished()) != 2 {
		t.Fatalf("held/finished = %d/%d", len(sys.Held()), len(sys.Finished()))
	}
}

func TestSubmitJobsPropagatesSubmitError(t *testing.T) {
	sys, _ := NewSystem(Config{Machine: cluster.Trinity(4)})
	a := mustApp(t, "amg")
	bad := &job.Job{ID: 9, App: a, Nodes: 0, ReqWalltime: 10, TrueRuntime: 5, Name: "x"}
	if err := sys.SubmitJobs([]*job.Job{bad}); err == nil {
		t.Fatal("invalid job accepted")
	}
}
