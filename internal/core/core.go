// Package core is the library façade: a complete node-sharing batch system
// assembled from the machine model, a scheduling policy, the interference
// model, and the discrete-event engine. Examples and command-line tools
// build on this package; research code that needs finer control uses the
// underlying packages directly.
//
// Usage:
//
//	sys, err := core.NewSystem(core.Config{
//		Machine: cluster.Trinity(32),
//		Policy:  "sharebackfill",
//	})
//	id, err := sys.Submit(core.JobSpec{App: "minife", Nodes: 4, Walltime: 2 * des.Hour})
//	sys.Run()
//	fmt.Println(sys.Metrics())
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config assembles a System.
type Config struct {
	// Machine describes the cluster; the zero value selects a 32-node
	// Trinity-class partition.
	Machine cluster.Config
	// Policy names the scheduling policy (see sched.Names); empty selects
	// "sharebackfill", the paper's primary strategy.
	Policy string
	// Sharing tunes the sharing policies; the zero value selects
	// sched.DefaultShareConfig().
	Sharing *sched.ShareConfig
	// Interference overrides the co-run model parameters; nil selects
	// interference.DefaultParams().
	Interference *interference.Params
	// Topology enables the interconnect model (nil = transparent network).
	Topology *topology.Topology
	// LocalityAware makes the scheduler order idle candidates compactly;
	// requires Topology.
	LocalityAware bool
	// StrictLimits kills jobs at their requested walltime instead of
	// extending limits by the sharing-induced inflation.
	StrictLimits bool
	// MeasuredPairs installs empirical co-run measurements that override
	// the analytic interference model for matching two-job co-locations
	// (see interference.ParseCoRunCSV for the file format).
	MeasuredPairs []interference.MeasuredPair
	// Faults enables deterministic fault injection (node failures, job
	// crashes, requeue with retries and backoff). Nil disables it at zero
	// cost.
	Faults *fault.Config
}

// JobSpec is a user-level submission.
type JobSpec struct {
	// App names a catalogue application (app.Names).
	App string
	// Nodes is the whole-node request.
	Nodes int
	// Walltime is the requested time limit.
	Walltime des.Duration
	// Runtime is the job's actual dedicated-node runtime; zero defaults to
	// 60% of the walltime (a typical overestimation ratio).
	Runtime des.Duration
	// At is the submission time; zero submits at the current clock.
	At des.Time
	// Name labels the job; empty derives "<app>-<id>".
	Name string
	// After lists job IDs that must finish before this job may start
	// (sbatch --dependency=afterok).
	After []cluster.JobID
}

// System is one batch-system instance.
type System struct {
	engine *sim.Engine
	nextID cluster.JobID
	byID   map[cluster.JobID]*job.Job
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Machine == (cluster.Config{}) {
		cfg.Machine = cluster.Trinity(32)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = "sharebackfill"
	}
	share := sched.DefaultShareConfig()
	if cfg.Sharing != nil {
		share = *cfg.Sharing
	}
	pol, err := sched.New(cfg.Policy, share)
	if err != nil {
		return nil, err
	}
	inter := interference.Default()
	if cfg.Interference != nil {
		inter = interference.New(*cfg.Interference)
	}
	if len(cfg.MeasuredPairs) > 0 {
		if err := inter.SetMeasured(cfg.MeasuredPairs); err != nil {
			return nil, err
		}
	}
	return &System{
		engine: sim.New(sim.Config{
			Cluster: cfg.Machine, Policy: pol, Inter: inter,
			Topo: cfg.Topology, LocalityAware: cfg.LocalityAware,
			StrictLimits: cfg.StrictLimits, Faults: cfg.Faults,
		}),
		byID: make(map[cluster.JobID]*job.Job),
	}, nil
}

// Submit enqueues a job from a user-level spec and returns its ID.
func (s *System) Submit(spec JobSpec) (cluster.JobID, error) {
	j, err := s.build(spec)
	if err != nil {
		return cluster.NoJob, err
	}
	if err := s.engine.Submit(j); err != nil {
		return cluster.NoJob, err
	}
	s.byID[j.ID] = j
	return j.ID, nil
}

// SubmitJob enqueues a fully specified job (e.g. from the workload
// generator or an SWF trace). The job's ID must be unique within the system.
func (s *System) SubmitJob(j *job.Job) error {
	if _, dup := s.byID[j.ID]; dup {
		return fmt.Errorf("core: duplicate job ID %d", j.ID)
	}
	if err := s.engine.Submit(j); err != nil {
		return err
	}
	s.byID[j.ID] = j
	if j.ID >= s.nextID {
		s.nextID = j.ID
	}
	return nil
}

// SubmitJobs enqueues a batch, stopping at the first error.
func (s *System) SubmitJobs(jobs []*job.Job) error {
	for _, j := range jobs {
		if err := s.SubmitJob(j); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) build(spec JobSpec) (*job.Job, error) {
	a, err := appByName(spec.App)
	if err != nil {
		return nil, err
	}
	if spec.Walltime <= 0 {
		return nil, fmt.Errorf("core: job needs a positive walltime, got %v", spec.Walltime)
	}
	runtime := spec.Runtime
	if runtime == 0 {
		runtime = spec.Walltime * 6 / 10
	}
	at := spec.At
	if at == 0 {
		at = s.engine.Now()
	}
	s.nextID++
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("%s-%d", spec.App, s.nextID)
	}
	return &job.Job{
		ID:          s.nextID,
		Name:        name,
		App:         a,
		Nodes:       spec.Nodes,
		ReqWalltime: spec.Walltime,
		TrueRuntime: runtime,
		Submit:      at,
		After:       spec.After,
	}, nil
}

// SyncNextJobID fast-forwards the automatic job-ID counter so the next
// spec-built submission is assigned exactly id (it never rewinds). Journal
// replay and HA apply use it: the authoritative ID travels with the
// operation, and the live counter may legitimately be ahead of the log — a
// submit whose journal append failed burns an ID that no journaled entry
// accounts for.
func (s *System) SyncNextJobID(id cluster.JobID) {
	if id-1 > s.nextID {
		s.nextID = id - 1
	}
}

// Run executes the simulation to completion.
func (s *System) Run() { s.engine.RunAll() }

// RunUntil executes the simulation up to the given simulated time.
func (s *System) RunUntil(t des.Time) { s.engine.Run(t) }

// Now returns the simulated clock.
func (s *System) Now() des.Time { return s.engine.Now() }

// Job returns the job with the given ID, or nil.
func (s *System) Job(id cluster.JobID) *job.Job { return s.byID[id] }

// Pending returns the queued jobs in scheduling order.
func (s *System) Pending() []*job.Job { return s.engine.Pending() }

// Held returns arrived jobs still waiting on dependencies.
func (s *System) Held() []*job.Job { return s.engine.Held() }

// Running returns the running set.
func (s *System) Running() []*sched.RunningJob { return s.engine.Running() }

// Finished returns completed jobs in completion order.
func (s *System) Finished() []*job.Job { return s.engine.Finished() }

// Cluster exposes the machine state (read-only use expected).
func (s *System) Cluster() *cluster.Cluster { return s.engine.Cluster() }

// Metrics computes the run's evaluation metrics.
func (s *System) Metrics() metrics.Result { return s.engine.Result() }

// Policy returns the active policy name.
func (s *System) Policy() string { return s.engine.Policy().Name() }

// Trace wires a per-event trace sink (submission, start, completion lines).
func (s *System) Trace(fn func(line string)) { s.engine.TraceFn = fn }

// History returns placement records of completed jobs (for timeline
// rendering and accounting export).
func (s *System) History() []sim.PlacementRecord { return s.engine.History() }

// Engine exposes the underlying simulation engine for advanced callers
// (e.g. the SLURM-like controller, which installs a priority order).
func (s *System) Engine() *sim.Engine { return s.engine }
