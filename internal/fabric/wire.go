package fabric

// Wire-protocol hardening. The fabric speaks JSON lines over TCP; both ends
// decode through these helpers so a malformed or hostile frame errors
// cleanly — never panics, never allocates beyond the line bound — and the
// fuzz tests (wire_fuzz_test.go) hold that property under arbitrary input.
// The end-to-end completion checksum also lives here: both sides compute it
// from the same three inputs, so any byte that changes between the worker's
// cell function returning and the dispatcher accepting the row flips the
// CRC and the completion is rejected instead of corrupting the campaign.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// maxResultBytes bounds one completion payload inside a protocol line. The
// base64 encoding inflates it ~4/3 on the wire, so this keeps a whole
// completion line under maxLine with room for the envelope.
const maxResultBytes = 3 * (maxLine / 4)

// completionSum is the end-to-end completion checksum: CRC32C over the
// campaign identity (the spec's SHA-256, hex), the cell index, and the
// encoded row bytes. Binding the spec hash and index means a correct row for
// the wrong cell — or the right cell of the wrong campaign — also fails
// verification, not just a flipped payload byte.
func completionSum(specSHAHex string, cell int, row []byte) uint32 {
	h := crc32.New(campaignCastagnoli)
	h.Write([]byte(specSHAHex))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(cell))
	h.Write(idx[:])
	h.Write(row)
	return h.Sum32()
}

// knownOp reports whether op is a verb either side of the protocol serves.
func knownOp(op string) bool {
	switch op {
	case "hello", "lease", "heartbeat", "complete", "goodbye", "health":
		return true
	}
	return false
}

// decodeRequest parses one worker→dispatcher line, rejecting frames that are
// oversized, syntactically invalid, name an unknown op, or carry a payload
// past the result bound. Errors are returned, never panicked.
func decodeRequest(line []byte) (request, error) {
	var req request
	if len(line) > maxLine {
		return req, fmt.Errorf("fabric: request line %d bytes exceeds %d", len(line), maxLine)
	}
	if err := json.Unmarshal(line, &req); err != nil {
		return req, fmt.Errorf("fabric: bad request: %w", err)
	}
	if !knownOp(req.Op) {
		return req, fmt.Errorf("fabric: unknown op %q", req.Op)
	}
	if len(req.Result) > maxResultBytes {
		return req, fmt.Errorf("fabric: result %d bytes exceeds %d", len(req.Result), maxResultBytes)
	}
	return req, nil
}

// decodeResponse parses one dispatcher→worker line, rejecting frames that
// are oversized, syntactically invalid, or carry nonsensical campaign shape
// (negative cell counts or cadences), so a confused or hostile dispatcher
// cannot wedge a worker into absurd state.
func decodeResponse(line []byte) (response, error) {
	var resp response
	if len(line) > maxLine {
		return resp, fmt.Errorf("fabric: response line %d bytes exceeds %d", len(line), maxLine)
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return resp, fmt.Errorf("fabric: bad response: %w", err)
	}
	if resp.Cells < 0 || resp.LeaseMS < 0 || resp.HeartbeatMS < 0 || resp.WaitMS < 0 {
		return resp, fmt.Errorf("fabric: response carries negative campaign shape (cells=%d lease_ms=%d heartbeat_ms=%d wait_ms=%d)",
			resp.Cells, resp.LeaseMS, resp.HeartbeatMS, resp.WaitMS)
	}
	if len(resp.Spec) > maxLine {
		return resp, fmt.Errorf("fabric: spec %d bytes exceeds %d", len(resp.Spec), maxLine)
	}
	return resp, nil
}
