package fabric

// Unit tests for the integrity & containment layer (DESIGN §14): checksum
// rejection, strike accounting and quarantine, retry backoff, sampled
// redundant verification, and the journal's containment records. The seeded
// end-to-end chaos run with actively corrupt workers lives in
// corrupt_chaos_test.go.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/slurm"
	"repro/internal/vfs"
)

// TestChecksumRejectQuarantinesSender: a completion whose checksum does not
// match its payload is rejected before dedup, the sender is quarantined on
// the spot, and the cell survives to be completed honestly by someone else.
func TestChecksumRejectQuarantinesSender(t *testing.T) {
	d, col, _ := newTestDispatcher(t, 2, nil)
	cell, epoch := mustGrant(t, d, "w-evil", 1)

	good := payload(cell)
	resp := d.complete("w-evil", cell, epoch, 1, good, completionSum(d.specSHAHex, cell, good)^0xdeadbeef, "")
	if !resp.Rejected {
		t.Fatalf("corrupt completion not rejected: %+v", resp)
	}
	if got := len(col.snapshot()); got != 0 {
		t.Fatalf("corrupt completion reached the consumer (%d rows)", got)
	}
	ctrs := d.Counters()
	if ctrs.ChecksumRejects != 1 || ctrs.QuarantinedWorkers != 1 {
		t.Fatalf("ChecksumRejects=%d QuarantinedWorkers=%d, want 1 and 1 (counters %+v)",
			ctrs.ChecksumRejects, ctrs.QuarantinedWorkers, ctrs)
	}
	// The offender gets no new leases — only an idle-poll answer.
	if r := d.grant("w-evil", 1); r.Granted || !r.Quarantined {
		t.Fatalf("quarantined worker still leasable: %+v", r)
	}
	h := d.Health()
	if len(h.Quarantined) != 1 || h.Quarantined[0] != "w-evil" || h.ChecksumRejects != 1 {
		t.Fatalf("health = %+v, want w-evil quarantined with 1 checksum reject", h)
	}
	// The fenced lease requeued: an honest worker finishes the campaign.
	for i := 0; i < 2; i++ {
		c, e := mustGrant(t, d, "w-good", 2)
		complete(d, "w-good", c, e, 1, payload(c), "")
	}
	if err := d.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := len(col.snapshot()); got != 2 {
		t.Fatalf("flushed %d rows, want 2", got)
	}
}

// TestQuarantineCooldownReadmits: with a cooldown configured, a quarantined
// worker is readmitted once it elapses — and the release is counted and
// journal-visible, not silent.
func TestQuarantineCooldownReadmits(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 2, func(c *Config) {
		c.QuarantineCooldown = time.Minute
	})
	cell, epoch := mustGrant(t, d, "w1", 1)
	d.complete("w1", cell, epoch, 1, payload(cell), 0, "") // wrong sum → quarantine
	if r := d.grant("w1", 1); !r.Quarantined {
		t.Fatalf("not quarantined after checksum reject: %+v", r)
	}
	clk.advance(59 * time.Second)
	if r := d.grant("w1", 1); !r.Quarantined {
		t.Fatalf("released before cooldown elapsed: %+v", r)
	}
	clk.advance(2 * time.Second)
	if r := d.grant("w1", 1); !r.Granted {
		t.Fatalf("not readmitted after cooldown: %+v", r)
	}
	if got := d.Counters().QuarantineReleases; got != 1 {
		t.Fatalf("QuarantineReleases = %d, want 1", got)
	}
}

// TestStrikesAccumulateAndDecay: lease expiries charge one strike each and
// quarantine at the threshold, while accepted completions decay the score so
// an honest-but-unlucky worker drifts back to a clean record.
func TestStrikesAccumulateAndDecay(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 8, func(c *Config) {
		c.QuarantineAfter = 2
	})
	// One expiry, then an accepted completion: score returns to zero.
	c0, _ := mustGrant(t, d, "w1", 1)
	clk.advance(11 * time.Second)
	c0b, e0b := mustGrant(t, d, "w1", 1) // triggers the sweep; w1 at 1 strike
	if c0b != c0 {
		t.Fatalf("sweep did not requeue cell %d (got %d)", c0, c0b)
	}
	if w := d.workers["w1"]; w == nil || w.strikes != 1 {
		t.Fatalf("after one expiry: %+v, want 1 strike", w)
	}
	complete(d, "w1", c0b, e0b, 1, payload(c0b), "")
	if w := d.workers["w1"]; w.strikes != 0 {
		t.Fatalf("strike did not decay on accepted completion: %+v", w)
	}
	// Two consecutive expiries with nothing accepted: quarantined.
	for i := 0; i < 2; i++ {
		mustGrant(t, d, "w1", 1)
		clk.advance(11 * time.Second)
		mustGrant(t, d, "w2", 2) // sweep trigger; w2 completes nothing
	}
	if r := d.grant("w1", 1); !r.Quarantined {
		t.Fatalf("two unredeemed expiries did not quarantine: %+v (rec %+v)", r, d.workers["w1"])
	}
}

// TestRetryBackoffGatesRequeuedCell: a failed cell requeues behind an
// exponential backoff, so a deterministic crasher cannot hot-loop through
// the fleet's lease slots.
func TestRetryBackoffGatesRequeuedCell(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 1, func(c *Config) {
		c.RetryBackoff = time.Second
		c.PoisonAfter = 100
		c.MaxCellRetries = 100
		c.QuarantineAfter = 100
	})
	cell, epoch := mustGrant(t, d, "w1", 1)
	complete(d, "w1", cell, epoch, 1, nil, "boom")
	if r := d.grant("w2", 2); r.Granted {
		t.Fatalf("failed cell regranted inside backoff: %+v", r)
	}
	clk.advance(1500 * time.Millisecond)
	if r := d.grant("w2", 2); !r.Granted {
		t.Fatalf("failed cell not regranted after backoff: %+v", r)
	}
	// Second failure doubles the window: 2s.
	complete(d, "w2", cell, d.cells[cell].leases[0].epoch, 1, nil, "boom")
	clk.advance(1500 * time.Millisecond)
	if r := d.grant("w1", 1); r.Granted {
		t.Fatalf("second backoff not doubled: %+v", r)
	}
	clk.advance(time.Second)
	if r := d.grant("w1", 1); !r.Granted {
		t.Fatalf("cell not regranted after doubled backoff: %+v", r)
	}
}

// TestVerifyMatchAccepts: a sampled cell is executed on two distinct workers
// and accepted when the bytes agree — and the same worker is never allowed
// to confirm itself.
func TestVerifyMatchAccepts(t *testing.T) {
	d, col, _ := newTestDispatcher(t, 1, func(c *Config) {
		c.VerifyFraction = 1
	})
	cell, epoch := mustGrant(t, d, "w1", 1)
	if r := complete(d, "w1", cell, epoch, 1, payload(cell), ""); !r.OK || r.Duplicate || r.Stale {
		t.Fatalf("first candidate refused: %+v", r)
	}
	if got := len(col.snapshot()); got != 0 {
		t.Fatal("sampled cell flushed on a single unconfirmed execution")
	}
	// The contributor cannot be its own confirmation.
	if r := d.grant("w1", 1); r.Granted {
		t.Fatalf("verify contributor regranted its own cell: %+v", r)
	}
	c2, e2 := mustGrant(t, d, "w2", 2)
	if c2 != cell {
		t.Fatalf("confirming grant = cell %d, want %d", c2, cell)
	}
	complete(d, "w2", c2, e2, 1, payload(cell), "")
	if err := d.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	rows := col.snapshot()
	if len(rows) != 1 || !bytes.Equal(rows[0], payload(cell)) {
		t.Fatalf("rows = %q, want one row %q", rows, payload(cell))
	}
	ctrs := d.Counters()
	if ctrs.VerifySampled != 1 || ctrs.VerifyMatches != 1 || ctrs.VerifyDivergence != 0 {
		t.Fatalf("verify counters = %+v", ctrs)
	}
}

// TestVerifyDivergenceMajorityWins: two diverging executions trigger a third;
// the majority row is accepted and the odd worker out is quarantined.
func TestVerifyDivergenceMajorityWins(t *testing.T) {
	d, col, _ := newTestDispatcher(t, 1, func(c *Config) {
		c.VerifyFraction = 1
	})
	wrong := []byte("subtly-wrong-bytes")
	c0, e0 := mustGrant(t, d, "w1", 1)
	complete(d, "w1", c0, e0, 1, payload(c0), "")
	c1, e1 := mustGrant(t, d, "w-liar", 2)
	// The liar's row checksums correctly — it computed the wrong bytes, the
	// exact failure mode checksums cannot see.
	if r := complete(d, "w-liar", c1, e1, 1, wrong, ""); r.Rejected {
		t.Fatalf("honestly-checksummed wrong bytes rejected at the checksum gate: %+v", r)
	}
	if got := d.Counters().VerifyDivergence; got != 1 {
		t.Fatalf("VerifyDivergence = %d, want 1", got)
	}
	c2, e2 := mustGrant(t, d, "w3", 3)
	complete(d, "w3", c2, e2, 1, payload(c2), "")
	if err := d.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	rows := col.snapshot()
	if len(rows) != 1 || !bytes.Equal(rows[0], payload(0)) {
		t.Fatalf("rows = %q, want the majority row %q", rows, payload(0))
	}
	h := d.Health()
	if len(h.Quarantined) != 1 || h.Quarantined[0] != "w-liar" {
		t.Fatalf("quarantined = %v, want [w-liar]", h.Quarantined)
	}
}

// TestVerifyThreeWayDisagreementPoisons: three distinct rows leave no
// majority to trust, so the cell is poisoned rather than guessed at.
func TestVerifyThreeWayDisagreementPoisons(t *testing.T) {
	d, col, _ := newTestDispatcher(t, 1, func(c *Config) {
		c.VerifyFraction = 1
		c.QuarantineAfter = 100
	})
	for i, w := range []string{"w1", "w2", "w3"} {
		c, e := mustGrant(t, d, w, int64(i+1))
		complete(d, w, c, e, 1, []byte{byte(i)}, "")
	}
	err := d.Wait(context.Background())
	var perr *PoisonedError
	if !errors.As(err, &perr) || len(perr.Cells) != 1 {
		t.Fatalf("Wait = %v, want single-cell *PoisonedError", err)
	}
	if got := len(col.snapshot()); got != 0 {
		t.Fatalf("a disputed row reached the consumer (%d rows)", got)
	}
}

// TestJournalContainmentRoundTrip: poison, quarantine, and unquarantine
// records survive a journal reopen — a hostile worker cannot launder its
// record (nor a bad cell its budget) by crashing the dispatcher.
func TestJournalContainmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "contain.journal")
	j, _, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journalRecord{
		{Kind: "cell", Cell: 0, Row: rowBytes(0)},
		{Kind: "poison", Cell: 5, Err: "boom on 2 workers"},
		{Kind: "quarantine", Worker: "w-evil", Reason: "checksum-reject", Strikes: 3},
		{Kind: "quarantine", Worker: "w-flaky", Reason: "lease-expiry", Strikes: 3},
		{Kind: "unquarantine", Worker: "w-flaky"},
	} {
		if err := j.appendRecord(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Resumed || len(rec.Rows) != 1 {
		t.Fatalf("resume: %+v", rec)
	}
	if got := rec.Poisoned[5]; got != "boom on 2 workers" || len(rec.Poisoned) != 1 {
		t.Fatalf("Poisoned = %v", rec.Poisoned)
	}
	if got := rec.Quarantined["w-evil"]; got != "checksum-reject" || len(rec.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v (w-flaky's release must have erased it)", rec.Quarantined)
	}
}

// TestJournalRefusesContainmentConflicts: a journal asserting both DONE and
// POISONED for one cell is lying about history — every such shape refuses to
// resume as corruption rather than guessing which record to honour.
func TestJournalRefusesContainmentConflicts(t *testing.T) {
	cases := []struct {
		name string
		recs []journalRecord
	}{
		{"poison-after-done", []journalRecord{
			{Kind: "cell", Cell: 3, Row: rowBytes(3)},
			{Kind: "poison", Cell: 3, Err: "x"},
		}},
		{"done-after-poison", []journalRecord{
			{Kind: "poison", Cell: 3, Err: "x"},
			{Kind: "cell", Cell: 3, Row: rowBytes(3)},
		}},
		{"duplicate-poison", []journalRecord{
			{Kind: "poison", Cell: 3, Err: "x"},
			{Kind: "poison", Cell: 3, Err: "y"},
		}},
		{"poison-out-of-range", []journalRecord{
			{Kind: "poison", Cell: 99, Err: "x"},
		}},
		{"anonymous-quarantine", []journalRecord{
			{Kind: "quarantine", Reason: "x"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.journal")
			j, _, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range tc.recs {
				if err := j.appendRecord(rec, false); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16); !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("open = %v, want ErrJournalCorrupt", err)
			}
		})
	}
}

// TestWorkerMaxReconnectGivesUp: with a reconnect budget set, a worker whose
// dispatcher is permanently gone exits with ErrDispatcherUnreachable after
// that many dead rounds, instead of looping forever.
func TestWorkerMaxReconnectGivesUp(t *testing.T) {
	// Bind-then-close: a port with nothing listening, every dial refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	w, err := NewWorker(WorkerConfig{
		ID:           "w-doomed",
		Addr:         addr,
		MaxReconnect: 3,
		Retry: &slurm.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Multiplier:  1,
			Rand:        func() float64 { return 0.5 },
			Sleep:       func(time.Duration) {},
		},
		Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
			return nil, errors.New("unreachable: no lease can ever be granted")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDispatcherUnreachable) {
			t.Fatalf("Run = %v, want ErrDispatcherUnreachable", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never gave up on the dead dispatcher")
	}
}
