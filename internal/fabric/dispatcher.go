package fabric

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/vfs"
)

// Config shapes one dispatcher campaign. Cells and Consume are required;
// every other field has a production default, which tests shrink to make
// expiry and speculation cheap to provoke.
type Config struct {
	// Cells is the grid size; indices 0..Cells-1 are the campaign.
	Cells int
	// Spec is an opaque campaign description handed to every worker at
	// hello (cmd/sweep puts the JSON grid spec here; workers rebuild any
	// cell from it, because cells are pure functions of their index).
	Spec []byte
	// Consume receives each cell's accepted result in strict index order —
	// exactly once per cell, never out of order. A Consume error aborts the
	// campaign.
	Consume func(i int, result []byte) error

	// LeaseTTL is how long a lease lives without a heartbeat (default 15s);
	// each heartbeat renews it. DisconnectGrace replaces the remaining TTL
	// when the lease holder's connection drops (default LeaseTTL/4): a
	// reconnecting worker's next heartbeat restores the full TTL, a dead
	// worker's lease expires after only the grace.
	LeaseTTL        time.Duration
	DisconnectGrace time.Duration
	// HeartbeatEvery is the cadence advertised to workers (default
	// LeaseTTL/3, so two missed beats still keep a lease alive).
	HeartbeatEvery time.Duration

	// Window bounds out-of-order completion: a fresh cell is granted only
	// while its index is below flushed-prefix + Window, so reassembly memory
	// and the cost of losing a straggler both stay bounded (default 1024).
	Window int

	// Speculation policy: once SpecMinSamples cell runtimes have been
	// observed (default 5), a cell whose oldest lease is older than
	// SpecMultiplier (default 2) × the SpecPercentile (default 0.95)
	// runtime is a straggler, and an idle worker with nothing fresh to
	// lease gets a speculative duplicate of it. At most two concurrent
	// leases per cell.
	SpecPercentile float64
	SpecMultiplier float64
	SpecMinSamples int

	// IdleWaitMS is the poll-again hint sent when nothing is leasable
	// (default 100).
	IdleWaitMS int64

	// Integrity & containment policy (DESIGN §14). PoisonAfter is how many
	// distinct workers a cell must fail on before it is POISONED (default 3);
	// MaxCellRetries is the absolute failure cap regardless of distinctness
	// (default 8); RetryBackoff is the base of the exponential requeue delay
	// after a failure (default 250ms, doubling per failure, capped at
	// LeaseTTL).
	PoisonAfter    int
	MaxCellRetries int
	RetryBackoff   time.Duration
	// QuarantineAfter is the strike score that fences a worker off the
	// campaign (default 3; integrity violations charge the whole threshold at
	// once). QuarantineCooldown, when >0, readmits a quarantined worker after
	// that long (default 0 = quarantine is permanent for the campaign).
	QuarantineAfter    int
	QuarantineCooldown time.Duration
	// VerifyFraction draws a deterministic sample of cells (0..1, default 0 =
	// off) for redundant verification: each sampled cell is executed on two
	// distinct workers and byte-compared before acceptance, catching workers
	// that compute wrong bytes under a correct checksum. VerifySeed selects
	// the sample. Divergence re-executes on a third worker; the odd worker
	// out is quarantined. Meaningful only with ≥2 (for the sample) and ≥3
	// (for divergence resolution) live workers.
	VerifyFraction float64
	VerifySeed     uint64

	// JournalPath, when set, makes the campaign crash-recoverable: every
	// accepted completion is appended to a CRC32C-framed journal, and a
	// dispatcher restarted on the same path resumes — recovered cells are
	// DONE, the committed rows are re-emitted through Consume in strict
	// order, everything else is requeued, and the journaled generation is
	// bumped so pre-crash leases fence. Empty = in-memory only (PR 6
	// behavior).
	JournalPath string
	// FS is the filesystem the journal is written through (default vfs.OS{};
	// storage tests inject vfs.Faulty for torn appends and crash points).
	FS vfs.FS

	// Logf, when set, receives every lease decision (grant, requeue,
	// speculation, dedup, stale, fence, flush milestones) in addition to the
	// in-memory decision log.
	Logf func(format string, args ...any)

	// ReadTimeout and WriteTimeout bound one protocol exchange (defaults:
	// 5m idle read, 30s write), mirroring the slurm server's hardening.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// leaseRec is one active lease on a cell.
type leaseRec struct {
	worker      string
	conn        int64 // connection the lease was granted or last renewed on
	epoch       int64
	speculative bool
	graced      bool // deadline was shortened by a disconnect
	deadline    time.Time
	started     time.Time
}

// cellRec is one cell's lease-machine state. epoch is the high-water lease
// epoch and is strictly monotone: every grant bumps it, so any message
// carrying an older epoch is recognisably stale.
type cellRec struct {
	state  cellState
	epoch  int64
	leases []leaseRec
	// Retry budget: failures counts cell-function errors, failedWorkers the
	// distinct workers they came from, notBefore gates the next grant behind
	// the exponential requeue backoff.
	failures      int
	failedWorkers map[string]bool
	notBefore     time.Time
	// verify holds the redundant-verification candidates while the cell is in
	// the sampled double-execution protocol (nil otherwise).
	verify *verifyState
}

// ErrClosed is returned by Wait when the dispatcher is closed before the
// campaign completes.
var ErrClosed = errors.New("fabric: dispatcher closed")

// ErrDrained is returned by Wait when Drain ended the campaign early: the
// journal is checkpointed and a dispatcher restarted on it resumes where
// this one stopped.
var ErrDrained = errors.New("fabric: campaign drained (journal checkpointed; restart with the same journal to resume)")

// Dispatcher owns a campaign: the lease table, the reassembly window, and
// the listener workers connect to.
type Dispatcher struct {
	cfg Config
	now func() time.Time // injectable for deterministic lease tests

	mu           sync.Mutex
	cells        []cellRec
	pending      intHeap // min-heap of grantable indices (lazy deletion)
	samples      []float64
	buffer       map[int][]byte // done but not yet flushed (bounded by Window)
	nextFlush    int
	workers      map[string]*workerRec // strike/quarantine records
	poisonedErrs map[int]string        // POISONED cell → last error
	specSHAHex   string                // campaign identity, bound into completion checksums
	done         bool
	draining     bool
	finalErr     error
	doneCh       chan struct{}
	counters     Counters
	decisions    []string
	jr           *CampaignJournal
	generation   int64

	ln      net.Listener
	conns   map[net.Conn]int64
	connSeq int64
	closed  bool
	wg      sync.WaitGroup
}

// NewDispatcher validates cfg and builds the campaign with every cell
// PENDING.
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("fabric: Cells must be ≥ 1, got %d", cfg.Cells)
	}
	if cfg.Consume == nil {
		return nil, errors.New("fabric: Consume is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.DisconnectGrace <= 0 {
		cfg.DisconnectGrace = cfg.LeaseTTL / 4
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 3
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.SpecPercentile <= 0 || cfg.SpecPercentile > 1 {
		cfg.SpecPercentile = 0.95
	}
	if cfg.SpecMultiplier <= 0 {
		cfg.SpecMultiplier = 2
	}
	if cfg.SpecMinSamples <= 0 {
		cfg.SpecMinSamples = 5
	}
	if cfg.IdleWaitMS <= 0 {
		cfg.IdleWaitMS = 100
	}
	if cfg.PoisonAfter <= 0 {
		cfg.PoisonAfter = 3
	}
	if cfg.MaxCellRetries <= 0 {
		cfg.MaxCellRetries = 8
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.VerifyFraction < 0 {
		cfg.VerifyFraction = 0
	}
	if cfg.VerifyFraction > 1 {
		cfg.VerifyFraction = 1
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 5 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	d := &Dispatcher{
		cfg:          cfg,
		now:          time.Now,
		cells:        make([]cellRec, cfg.Cells),
		buffer:       make(map[int][]byte),
		workers:      make(map[string]*workerRec),
		poisonedErrs: make(map[int]string),
		specSHAHex:   specSHA(cfg.Spec),
		doneCh:       make(chan struct{}),
		conns:        make(map[net.Conn]int64),
		generation:   1,
	}
	if cfg.JournalPath != "" {
		if err := d.openJournal(); err != nil {
			return nil, err
		}
	}
	d.pending = make(intHeap, 0, cfg.Cells)
	for i := range d.cells {
		if d.cells[i].state == statePending {
			d.pending = append(d.pending, i)
		}
	}
	return d, nil
}

// openJournal opens or resumes the campaign journal and applies the
// recovery: recovered cells become DONE, the committed prefix is re-emitted
// through Consume in strict order, and the generation adopts the journaled
// bump. Recovered rows above the flush prefix stay buffered, so no committed
// work is recomputed. Runs before Listen — a worker can never observe a
// half-recovered campaign.
func (d *Dispatcher) openJournal() error {
	jr, rec, err := OpenCampaignJournal(d.cfg.FS, d.cfg.JournalPath, d.cfg.Spec, d.cfg.Cells)
	if err != nil {
		return err
	}
	d.jr = jr
	d.generation = rec.Gen
	if !rec.Resumed {
		d.logLocked("campaign journal=%s gen=%d", d.cfg.JournalPath, d.generation)
		return nil
	}
	fabricVars().Add("dispatcher_restarts", 1)
	d.counters.Resumed = int64(len(rec.Rows))
	fabricVars().Add("resumed_cells", int64(len(rec.Rows)))
	for i, row := range rec.Rows {
		d.cells[i].state = stateDone
		d.buffer[i] = row
	}
	// Containment state survives the restart: POISONED cells stay terminal
	// (the flush skips them below exactly as the pre-crash dispatcher did),
	// and quarantined workers stay fenced — a hostile worker cannot launder
	// its record by crashing the dispatcher. The cooldown clock, when
	// configured, restarts at resume time.
	for cell, errStr := range rec.Poisoned {
		d.cells[cell].state = statePoisoned
		d.poisonedErrs[cell] = errStr
		d.logLocked("resume-poison cell=%d err=%q", cell, errStr)
	}
	for id, reason := range rec.Quarantined {
		d.workers[id] = &workerRec{
			strikes:       d.cfg.QuarantineAfter,
			quarantined:   true,
			quarantinedAt: d.now(),
			reason:        reason,
		}
		d.logLocked("resume-quarantine worker=%s reason=%s", id, reason)
	}
	d.logLocked("resume journal=%s gen=%d recovered=%d poisoned=%d quarantined=%d salvaged_bytes=%d",
		d.cfg.JournalPath, d.generation, len(rec.Rows), len(rec.Poisoned), len(rec.Quarantined), rec.SalvagedBytes)
	d.flushLocked()
	d.checkDoneLocked()
	return nil
}

// journalCellLocked appends one accepted completion to the campaign journal.
// An append failure degrades durability, never correctness: the cell is pure
// and a restarted dispatcher recomputes what the journal lost, so the
// campaign keeps running and the error is counted instead of fatal.
func (d *Dispatcher) journalCellLocked(cell int, row []byte) {
	if d.jr == nil {
		return
	}
	if err := d.jr.AppendCell(cell, row); err != nil {
		d.counters.JournalErrors++
		fabricVars().Add("journal_errors", 1)
		d.logLocked("journal-error cell=%d err=%v", cell, err)
	}
}

// Listen starts accepting workers on addr ("host:port"; ":0" picks a free
// port) and returns the bound address.
func (d *Dispatcher) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fabric: listen: %w", err)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

// Wait blocks until the campaign completes (all cells flushed, or the
// prefix reached a failed cell), the dispatcher is closed, or ctx is done.
// On a cell failure the error is a *parallel.CellError for the lowest
// failing index, after the complete prefix below it was consumed — the same
// contract as parallel.RunOrdered, extended across the network.
func (d *Dispatcher) Wait(ctx context.Context) error {
	select {
	case <-d.doneCh:
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.finalErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the listener and severs every worker connection. Safe to call
// more than once.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		if d.ln != nil {
			d.ln.Close()
		}
		for c := range d.conns {
			c.Close()
		}
		if !d.done {
			d.done = true
			d.finalErr = ErrClosed
			close(d.doneCh)
		}
	}
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	if d.jr != nil {
		d.jr.Close()
		d.jr = nil
	}
	d.mu.Unlock()
}

// Drain checkpoints the journal and stops granting: in-flight leases may
// still complete (and are journaled), but nothing new is handed out; once no
// live lease remains the campaign ends with ErrDrained. This is what the
// first SIGINT of sweep's dispatch signal ladder maps to — the second kills
// via Close.
func (d *Dispatcher) Drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining || d.done {
		return
	}
	d.draining = true
	if d.jr != nil {
		if err := d.jr.Checkpoint(); err != nil {
			d.counters.JournalErrors++
			fabricVars().Add("journal_errors", 1)
			d.logLocked("journal-error checkpoint err=%v", err)
		}
	}
	d.logLocked("drain gen=%d flushed=%d", d.generation, d.nextFlush)
	d.maybeFinishDrainLocked()
}

// maybeFinishDrainLocked ends a draining campaign once no live lease
// remains: everything granted has completed, failed, or expired, so there is
// nothing left to wait for.
func (d *Dispatcher) maybeFinishDrainLocked() {
	if !d.draining || d.done {
		return
	}
	for i := range d.cells {
		if d.cells[i].state == stateLeased {
			return
		}
	}
	d.finishLocked(ErrDrained)
}

// Generation is the dispatcher's fencing generation: 1 for a fresh or
// journal-less campaign, +1 per journaled restart.
func (d *Dispatcher) Generation() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.generation
}

// Health is the dispatcher's health snapshot, served on the listener as the
// health verb and exposed here for in-process callers.
func (d *Dispatcher) Health() DispatchHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := DispatchHealth{
		OK:              true,
		Health:          "ok",
		Generation:      d.generation,
		CellsTotal:      len(d.cells),
		Flushed:         int64(d.nextFlush),
		Connections:     len(d.conns),
		Journal:         d.cfg.JournalPath != "",
		ResumedCells:    d.counters.Resumed,
		StaleGen:        d.counters.StaleGen,
		Failed:          d.counters.Failed,
		ChecksumRejects: d.counters.ChecksumRejects,
	}
	for i := range d.cells {
		switch d.cells[i].state {
		case stateDone:
			h.CellsDone++
		case stateLeased:
			h.CellsLeased++
		case statePoisoned:
			h.PoisonedCells = append(h.PoisonedCells, i)
		}
	}
	h.Poisoned = int64(len(h.PoisonedCells))
	h.Quarantined = d.quarantinedWorkersLocked()
	h.QuarantinedWorkers = int64(len(h.Quarantined))
	if d.draining {
		h.Health = "draining"
	}
	if d.done {
		h.Health = "done"
	}
	return h
}

// Counters returns a consistent snapshot of the decision tallies.
func (d *Dispatcher) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// Decisions returns a copy of the in-memory decision log.
func (d *Dispatcher) Decisions() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.decisions))
	copy(out, d.decisions)
	return out
}

// maxDecisions bounds the in-memory decision log; beyond it the oldest half
// is dropped (the expvar counters stay exact).
const maxDecisions = 1 << 16

// logLocked records one decision. Callers hold d.mu.
func (d *Dispatcher) logLocked(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if len(d.decisions) >= maxDecisions {
		d.decisions = append(d.decisions[:0], d.decisions[maxDecisions/2:]...)
	}
	d.decisions = append(d.decisions, line)
	if d.cfg.Logf != nil {
		d.cfg.Logf("%s", line)
	}
}

// ---- network plumbing ----

func (d *Dispatcher) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.connSeq++
		id := d.connSeq
		d.conns[conn] = id
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveConn(conn, id)
		}()
	}
}

func (d *Dispatcher) serveConn(conn net.Conn, id int64) {
	defer func() {
		d.dropConn(id)
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	enc := json.NewEncoder(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(d.cfg.ReadTimeout))
		if !sc.Scan() {
			return
		}
		req, err := decodeRequest(sc.Bytes())
		var out any
		if err != nil {
			out = response{Error: fmt.Sprintf("bad request: %v", err)}
		} else if req.Op == "health" {
			// The health verb answers with the richer DispatchHealth shape,
			// mirroring mini-slurm health and simd -health.
			out = d.Health()
		} else {
			out = d.handle(req, id)
		}
		conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
		if enc.Encode(out) != nil {
			return
		}
	}
}

func (d *Dispatcher) handle(req request, connID int64) response {
	switch req.Op {
	case "hello":
		return d.hello()
	case "lease":
		return d.grant(req.Worker, connID)
	case "heartbeat":
		return d.heartbeat(req.Worker, req.Cell, req.Epoch, req.Gen, connID)
	case "complete":
		return d.complete(req.Worker, req.Cell, req.Epoch, req.Gen, req.Result, req.Sum, req.Err)
	case "goodbye":
		return d.goodbye(req.Worker, connID)
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (d *Dispatcher) hello() response {
	d.mu.Lock()
	defer d.mu.Unlock()
	return response{
		OK:          true,
		Cells:       len(d.cells),
		Spec:        json.RawMessage(d.cfg.Spec),
		Gen:         d.generation,
		LeaseMS:     durMS(d.cfg.LeaseTTL),
		HeartbeatMS: durMS(d.cfg.HeartbeatEvery),
		Done:        d.done,
	}
}

// ---- lease state machine ----
// Every mutation runs under d.mu; the injectable clock plus these methods
// being callable without a listener is what makes the seeded property test
// (lease_prop_test.go) a pure function of its RNG.

// grant hands out the next lease to worker: the lowest PENDING cell inside
// the reassembly window, else a speculative duplicate of the lowest eligible
// straggler, else a poll-again hint. Expired leases are swept first, so idle
// workers polling for work is also what drives reclamation forward.
func (d *Dispatcher) grant(worker string, connID int64) response {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sweepExpiredLocked()
	if d.done {
		return response{OK: true, Done: true}
	}
	if d.quarantinedLocked(worker) {
		// Fenced off the campaign: no leases until the cooldown (if any)
		// releases. The worker idle-polls rather than exiting — readmission
		// is possible.
		return response{OK: true, Quarantined: true, WaitMS: d.cfg.IdleWaitMS}
	}
	if d.draining {
		// Drain: nothing new is granted; in-flight completions still land.
		return response{OK: true, WaitMS: d.cfg.IdleWaitMS}
	}
	// Fresh cell: lowest pending index, gated by the window. Cells inside
	// their failure backoff, and verify-sampled cells this worker already
	// executed, are skipped for now and re-queued on the way out.
	now := d.now()
	var deferred []int
	defer func() {
		for _, idx := range deferred {
			heap.Push(&d.pending, idx)
		}
	}()
	for len(d.pending) > 0 {
		idx := d.pending[0]
		if idx >= d.nextFlush+d.cfg.Window {
			break // window full: completing the prefix is the only way forward
		}
		heap.Pop(&d.pending)
		c := &d.cells[idx]
		if c.state != statePending {
			continue // lazily deleted (was re-leased or completed meanwhile)
		}
		if c.notBefore.After(now) || c.verifyContributor(worker) {
			deferred = append(deferred, idx)
			continue
		}
		return d.grantCellLocked(idx, worker, connID, false)
	}
	// Speculation: duplicate the lowest straggler not already duplicated and
	// not held by this same worker.
	if idx, ok := d.speculationTargetLocked(worker); ok {
		return d.grantCellLocked(idx, worker, connID, true)
	}
	return response{OK: true, WaitMS: d.cfg.IdleWaitMS}
}

// grantCellLocked issues a lease on idx, bumping the cell's monotone epoch.
func (d *Dispatcher) grantCellLocked(idx int, worker string, connID int64, speculative bool) response {
	now := d.now()
	c := &d.cells[idx]
	c.state = stateLeased
	c.epoch++
	c.leases = append(c.leases, leaseRec{
		worker:      worker,
		conn:        connID,
		epoch:       c.epoch,
		speculative: speculative,
		deadline:    now.Add(d.cfg.LeaseTTL),
		started:     now,
	})
	d.counters.Granted++
	fabricVars().Add("granted", 1)
	kind := "grant"
	if speculative {
		kind = "speculate"
		d.counters.SpeculativeGrants++
		fabricVars().Add("speculative_grants", 1)
	}
	d.logLocked("%s cell=%d epoch=%d gen=%d worker=%s", kind, idx, c.epoch, d.generation, worker)
	return response{OK: true, Granted: true, Cell: idx, Epoch: c.epoch, Gen: d.generation, Speculative: speculative}
}

// speculationTargetLocked picks the lowest single-leased cell whose oldest
// lease has outlived the straggler threshold.
func (d *Dispatcher) speculationTargetLocked(worker string) (int, bool) {
	if len(d.samples) < d.cfg.SpecMinSamples {
		return 0, false
	}
	threshold := d.cfg.SpecMultiplier * d.percentileLocked(d.cfg.SpecPercentile)
	now := d.now()
	hi := d.nextFlush + d.cfg.Window
	if hi > len(d.cells) {
		hi = len(d.cells)
	}
	for idx := d.nextFlush; idx < hi; idx++ {
		c := &d.cells[idx]
		if c.state != stateLeased || len(c.leases) != 1 {
			continue
		}
		l := c.leases[0]
		if l.worker == worker || c.verifyContributor(worker) {
			continue
		}
		if now.Sub(l.started).Seconds() > threshold {
			return idx, true
		}
	}
	return 0, false
}

// percentileLocked is the p-th percentile of observed cell runtimes in
// seconds.
func (d *Dispatcher) percentileLocked(p float64) float64 {
	sorted := append([]float64(nil), d.samples...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// sweepExpiredLocked reclaims every lease past its deadline inside the
// active window and requeues cells left with no lease. Driven from grant
// (idle workers polling) — there is no background timer to race with tests.
func (d *Dispatcher) sweepExpiredLocked() {
	now := d.now()
	hi := d.nextFlush + d.cfg.Window
	if hi > len(d.cells) {
		hi = len(d.cells)
	}
	// Strikes are applied after the sweep: a strike can tip a worker into
	// quarantine, which walks and edits the lease table itself — re-entering
	// that mid-sweep would corrupt the slice being filtered.
	type strikeNote struct{ worker, cause string }
	var strikes []strikeNote
	for idx := d.nextFlush; idx < hi; idx++ {
		c := &d.cells[idx]
		if c.state != stateLeased {
			continue
		}
		kept := c.leases[:0]
		for _, l := range c.leases {
			if l.deadline.After(now) {
				kept = append(kept, l)
				continue
			}
			cause := "expiry"
			if l.graced {
				cause = "disconnect"
				d.counters.RequeueDisconnect++
				fabricVars().Add("requeue_disconnect", 1)
			} else {
				d.counters.RequeueExpiry++
				fabricVars().Add("requeue_expiry", 1)
			}
			d.logLocked("reclaim cell=%d epoch=%d worker=%s cause=%s", idx, l.epoch, l.worker, cause)
			strikes = append(strikes, strikeNote{worker: l.worker, cause: "lease-" + cause})
		}
		c.leases = kept
		if len(c.leases) == 0 {
			c.state = statePending
			heap.Push(&d.pending, idx)
			d.counters.Requeues++
			fabricVars().Add("requeues", 1)
			d.logLocked("requeue cell=%d next_epoch=%d", idx, c.epoch+1)
		}
	}
	for _, s := range strikes {
		// Losing a lease to expiry or disconnect is one strike: an isolated
		// hiccup decays on the next accepted completion, a crash-looping or
		// hung worker accumulates its way into quarantine.
		d.strikeLocked(s.worker, s.cause, 1)
	}
	d.maybeFinishDrainLocked()
}

// heartbeat renews a live lease (and rebinds it to the worker's current
// connection, so a reconnect clears the disconnect grace). A heartbeat for a
// lease that no longer exists on a still-undone cell answers "fenced": the
// worker must abandon the cell. A heartbeat for a finished cell is harmless —
// the worker may run to completion and its result will dedupe, which is
// exactly the at-least-once → exactly-once story.
func (d *Dispatcher) heartbeat(worker string, cell int, epoch, gen, connID int64) response {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cell < 0 || cell >= len(d.cells) {
		return response{Error: fmt.Sprintf("cell %d out of range", cell)}
	}
	if gen != d.generation {
		// A lease from a pre-restart incarnation: the restarted dispatcher
		// requeued the cell, so the holder must abandon it and re-lease under
		// the current generation (its reconnect already re-helloed).
		d.counters.Fenced++
		d.counters.StaleGen++
		fabricVars().Add("fenced", 1)
		fabricVars().Add("stale_generation", 1)
		d.logLocked("fence-gen cell=%d epoch=%d worker=%s gen=%d current_gen=%d",
			cell, epoch, worker, gen, d.generation)
		return response{OK: true, Fenced: true}
	}
	c := &d.cells[cell]
	if c.state == stateDone || c.state == statePoisoned {
		return response{OK: true, Done: d.done}
	}
	for i := range c.leases {
		l := &c.leases[i]
		if l.epoch == epoch && l.worker == worker {
			l.deadline = d.now().Add(d.cfg.LeaseTTL)
			l.conn = connID
			l.graced = false
			return response{OK: true}
		}
	}
	d.counters.Fenced++
	fabricVars().Add("fenced", 1)
	d.logLocked("fence cell=%d epoch=%d worker=%s", cell, epoch, worker)
	return response{OK: true, Fenced: true}
}

// complete records one cell result. The integrity gate comes first: a
// completion whose checksum does not cover its payload is rejected before
// dedup, before lease matching, before reassembly — a corrupted row must
// never win first-result-wins. Then first-result-wins: the first
// checksum-valid completion holding a live lease is accepted and flushed;
// completions for done cells dedupe; completions whose lease was reclaimed
// or superseded are stale and discarded.
func (d *Dispatcher) complete(worker string, cell int, epoch, gen int64, result []byte, sum uint32, errStr string) response {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cell < 0 || cell >= len(d.cells) {
		return response{Error: fmt.Sprintf("cell %d out of range", cell)}
	}
	if gen != d.generation {
		// Fenced stale-generation completion: the lease predates a dispatcher
		// restart. The restarted dispatcher requeued (or recovered) the cell;
		// accepting a pre-crash result would race the current lease holder,
		// so it is rejected and counted — the worker re-leases under the new
		// generation and the campaign stays exactly-once.
		d.counters.StaleGen++
		fabricVars().Add("stale_generation", 1)
		d.logLocked("stale-gen cell=%d epoch=%d worker=%s gen=%d current_gen=%d",
			cell, epoch, worker, gen, d.generation)
		return response{OK: true, Stale: true, Done: d.done}
	}
	if errStr == "" {
		if want := completionSum(d.specSHAHex, cell, result); want != sum {
			d.counters.ChecksumRejects++
			fabricVars().Add("checksum_rejects", 1)
			d.logLocked("checksum-reject cell=%d epoch=%d worker=%s sum=%08x want=%08x",
				cell, epoch, worker, sum, want)
			d.strikeLocked(worker, "checksum-reject", d.cfg.QuarantineAfter)
			return response{OK: true, Rejected: true, Done: d.done}
		}
	}
	c := &d.cells[cell]
	switch {
	case c.state == stateDone || c.state == statePoisoned:
		d.counters.Deduped++
		fabricVars().Add("deduped", 1)
		d.logLocked("dedupe cell=%d epoch=%d worker=%s", cell, epoch, worker)
		return response{OK: true, Duplicate: true, Done: d.done}
	case d.leaseIndexLocked(c, worker, epoch) >= 0:
		li := d.leaseIndexLocked(c, worker, epoch)
		l := c.leases[li]
		if errStr != "" {
			d.failLeaseLocked(cell, li, worker, errStr)
			return response{OK: true, Done: d.done}
		}
		if d.verifySampled(cell) {
			return d.verifyAcceptLocked(cell, li, worker, result)
		}
		d.samples = append(d.samples, d.now().Sub(l.started).Seconds())
		d.rewardLocked(worker)
		if l.speculative {
			d.counters.SpeculativeWins++
			fabricVars().Add("speculative_wins", 1)
			d.logLocked("speculative-win cell=%d epoch=%d worker=%s", cell, epoch, worker)
		}
		d.logLocked("complete cell=%d epoch=%d worker=%s", cell, epoch, worker)
		d.acceptCellLocked(cell, result)
		return response{OK: true, Done: d.done}
	default:
		d.counters.Stale++
		fabricVars().Add("stale", 1)
		d.logLocked("stale cell=%d epoch=%d worker=%s current_epoch=%d", cell, epoch, worker, c.epoch)
		return response{OK: true, Stale: true}
	}
}

// acceptCellLocked commits one verified row: terminal DONE, journaled,
// buffered into the reassembly window, flushed as far as the prefix allows.
func (d *Dispatcher) acceptCellLocked(cell int, result []byte) {
	c := &d.cells[cell]
	c.state = stateDone
	c.leases = nil
	c.verify = nil
	d.journalCellLocked(cell, result)
	d.counters.Completed++
	fabricVars().Add("completed", 1)
	d.buffer[cell] = result
	d.flushLocked()
	d.checkDoneLocked()
	d.maybeFinishDrainLocked()
}

func (d *Dispatcher) leaseIndexLocked(c *cellRec, worker string, epoch int64) int {
	for i, l := range c.leases {
		if l.epoch == epoch && l.worker == worker {
			return i
		}
	}
	return -1
}

// goodbye is a clean disconnect (drain): the worker holds no lease it
// intends to finish, so anything still bound to its connection is requeued
// immediately rather than after the grace.
func (d *Dispatcher) goodbye(worker string, connID int64) response {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseConnLocked(connID, 0)
	d.logLocked("goodbye worker=%s", worker)
	return response{OK: true, Done: d.done}
}

// dropConn handles an abrupt connection loss: shorten every lease bound to
// the connection to the disconnect grace. A live worker that reconnects
// restores its deadlines with the next heartbeat; a dead one expires fast.
func (d *Dispatcher) dropConn(connID int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseConnLocked(connID, d.cfg.DisconnectGrace)
}

// releaseConnLocked shortens (grace > 0) or expires (grace == 0) every lease
// bound to connID; expired cells requeue on the next sweep.
func (d *Dispatcher) releaseConnLocked(connID int64, grace time.Duration) {
	deadline := d.now().Add(grace)
	for idx := range d.cells {
		c := &d.cells[idx]
		if c.state != stateLeased {
			continue
		}
		for i := range c.leases {
			l := &c.leases[i]
			if l.conn != connID || l.graced {
				continue
			}
			if l.deadline.After(deadline) {
				l.deadline = deadline
			}
			l.graced = true
			d.logLocked("disconnect cell=%d epoch=%d worker=%s grace=%s", idx, l.epoch, l.worker, grace)
		}
	}
	d.sweepExpiredLocked()
}

// flushLocked delivers the completed prefix in strict index order. POISONED
// cells are skipped — the prefix advances past them with no Consume call,
// because the campaign completes around a poisoned cell and the final error
// names it.
func (d *Dispatcher) flushLocked() {
	for d.nextFlush < len(d.cells) {
		if d.cells[d.nextFlush].state == statePoisoned {
			d.nextFlush++
			continue
		}
		res, ok := d.buffer[d.nextFlush]
		if !ok {
			return
		}
		delete(d.buffer, d.nextFlush)
		if err := d.cfg.Consume(d.nextFlush, res); err != nil {
			d.logLocked("consume-error cell=%d err=%v", d.nextFlush, err)
			d.finishLocked(err)
			return
		}
		d.counters.Flushed++
		fabricVars().Add("flushed", 1)
		d.nextFlush++
	}
}

// checkDoneLocked ends the campaign when the flush prefix covers the grid
// (poisoned cells included — flushLocked advances past them).
func (d *Dispatcher) checkDoneLocked() {
	if d.done {
		return
	}
	if d.nextFlush >= len(d.cells) {
		d.finishLocked(nil)
	}
}

func (d *Dispatcher) finishLocked(err error) {
	if d.done {
		return
	}
	if err == nil {
		// A campaign that completed around poisoned cells delivered every
		// healthy row but is still incomplete: surface that as a typed error
		// the CLI can turn into a sidecar and a nonzero exit. Drains and
		// consume failures keep their own errors.
		if pc := d.poisonedCellsLocked(); len(pc) > 0 {
			err = &PoisonedError{Cells: pc}
		}
	}
	d.done = true
	d.finalErr = err
	if d.jr != nil {
		// Best-effort final checkpoint: a finished (or drained) campaign's
		// journal should survive power loss without relying on the OS cache.
		if cerr := d.jr.Checkpoint(); cerr != nil {
			d.counters.JournalErrors++
			fabricVars().Add("journal_errors", 1)
			d.logLocked("journal-error checkpoint err=%v", cerr)
		}
	}
	d.logLocked("campaign-done flushed=%d gen=%d err=%v", d.nextFlush, d.generation, err)
	close(d.doneCh)
}

// intHeap is a plain min-heap of cell indices.
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
