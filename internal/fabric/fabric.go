// Package fabric is the distributed sweep fabric: a queue-backed dispatcher
// that hands grid cells to simd worker daemons over the repo's JSON-line
// protocol, engineered for failure first. The fan-out is the easy part — the
// point of this package is surviving worker crashes, hangs, partitions, and
// duplicate completions without perturbing a single output byte.
//
// The dispatcher tracks each cell through a lease state machine
// (PENDING → LEASED(worker, epoch, deadline) → DONE):
//
//   - Leases carry a per-cell monotone epoch; every grant — fresh, requeue,
//     or speculative duplicate — bumps it, so a stale completion or heartbeat
//     is recognisable forever.
//   - A lease whose deadline passes without a heartbeat is reclaimed and its
//     cell requeued; a worker disconnect shortens its leases' deadlines to a
//     small grace (a reconnecting worker's next heartbeat restores them, a
//     dead worker's leases expire fast).
//   - Stragglers past a configurable percentile of observed cell runtimes
//     get a speculative duplicate lease; completions dedupe first-result-wins,
//     so at-least-once execution still yields exactly-once output.
//   - Results flow through a bounded out-of-order window that flushes the
//     completed prefix in strict index order — a dispatcher run is
//     byte-identical to a sequential run of the same pure cells.
//
// Workers heartbeat with progress, back off with jitter on reconnect
// (reusing the slurm client's RetryPolicy), and self-fence on lease loss:
// a heartbeat answered "fenced" makes the worker abandon the cell without
// completing it. Every requeue, speculation, and dedup decision is logged
// and counted in expvars (the "fabric" map).
package fabric

import (
	"encoding/json"
	"expvar"
	"sync"
	"time"
)

// The wire protocol is JSON lines over TCP, same idiom as internal/slurm:
// one request per line from the worker, one response per line back.

// request is one worker→dispatcher message.
type request struct {
	// Op selects the operation: hello, lease, heartbeat, complete, goodbye,
	// health.
	Op string `json:"op"`
	// Worker identifies the daemon (stable across reconnects).
	Worker string `json:"worker,omitempty"`
	// Cell and Epoch name the lease a heartbeat or completion refers to;
	// Gen is the dispatcher generation the lease was granted under. A
	// restarted dispatcher bumps its journaled generation, so a message
	// carrying an older one is from a pre-crash lease and is fenced.
	Cell  int   `json:"cell"`
	Epoch int64 `json:"epoch,omitempty"`
	Gen   int64 `json:"gen,omitempty"`
	// Progress is the worker's in-cell progress estimate (0..1), carried on
	// heartbeats for observability.
	Progress float64 `json:"progress,omitempty"`
	// Result is the completed cell's opaque payload (base64 on the wire).
	Result []byte `json:"result,omitempty"`
	// Sum is the end-to-end completion checksum: CRC32C over (campaign spec
	// SHA-256, cell index, result bytes), computed by the worker the moment
	// the cell function returns. The dispatcher recomputes it before dedup
	// and reassembly — a payload corrupted anywhere between computation and
	// acceptance (worker memory, serialization, transport) is rejected
	// instead of winning first-result-wins.
	Sum uint32 `json:"sum,omitempty"`
	// Err reports a cell that failed deterministically (the cell function
	// returned an error — not a transport problem, which is never reported).
	Err string `json:"err,omitempty"`
}

// response is one dispatcher→worker message.
type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// hello payload: the campaign shape and the cadence the worker should
	// heartbeat at.
	Cells       int             `json:"cells,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	LeaseMS     int64           `json:"lease_ms,omitempty"`
	HeartbeatMS int64           `json:"heartbeat_ms,omitempty"`
	// Gen is the dispatcher generation, carried on hello and every grant;
	// workers echo it on heartbeat/complete so a restarted dispatcher can
	// fence pre-crash leases.
	Gen int64 `json:"gen,omitempty"`
	// lease payload. Granted=false with WaitMS set means "nothing leasable
	// right now, poll again"; Done means the campaign is over and the worker
	// may exit.
	Granted     bool  `json:"granted,omitempty"`
	Cell        int   `json:"cell"`
	Epoch       int64 `json:"epoch,omitempty"`
	Speculative bool  `json:"speculative,omitempty"`
	WaitMS      int64 `json:"wait_ms,omitempty"`
	Done        bool  `json:"done,omitempty"`
	// heartbeat/complete verdicts. Fenced tells the worker its lease is gone:
	// stop working on the cell and take a new lease. Duplicate and Stale mark
	// completions that were discarded (cell already done / lease superseded).
	Fenced    bool `json:"fenced,omitempty"`
	Duplicate bool `json:"duplicate,omitempty"`
	Stale     bool `json:"stale,omitempty"`
	// Rejected marks a completion thrown away because its checksum did not
	// match its payload — an integrity violation, counted and struck against
	// the sender.
	Rejected bool `json:"rejected,omitempty"`
	// Quarantined on a lease reply tells the worker it is fenced off the
	// whole campaign: no leases will be granted until the cooldown (if any)
	// releases it. The worker should idle-poll, not exit — a cooldown release
	// or operator action may readmit it.
	Quarantined bool `json:"quarantined,omitempty"`
}

// maxLine bounds one protocol line (a completed cell's payload rides in it).
const maxLine = 1 << 20

// cellState is one cell's position in the lease state machine.
type cellState uint8

const (
	// statePending: queued, no active lease.
	statePending cellState = iota
	// stateLeased: at least one active lease (two, once a speculative
	// duplicate is launched).
	stateLeased
	// stateDone: a completion was accepted; terminal. Further completions
	// dedupe.
	stateDone
	// statePoisoned: the cell function failed on enough distinct workers (or
	// exhausted its retry budget) that the cell itself is the problem;
	// terminal. The campaign completes around it — the cell is journaled like
	// a DONE cell, skipped by the flush, and reported in the PoisonedError
	// the campaign ends with.
	statePoisoned
)

func (s cellState) String() string {
	switch s {
	case statePending:
		return "PENDING"
	case stateLeased:
		return "LEASED"
	case stateDone:
		return "DONE"
	case statePoisoned:
		return "POISONED"
	}
	return "?"
}

// Counters tallies every fault-handling decision the dispatcher makes. All
// fields are cumulative; read a consistent copy via Dispatcher.Counters.
type Counters struct {
	// Granted counts every lease grant; SpeculativeGrants the subset that
	// duplicated a straggler's cell.
	Granted           int64 `json:"granted"`
	SpeculativeGrants int64 `json:"speculative_grants"`
	// Requeues counts cells returned to PENDING, split by cause: a lease
	// deadline passing (expiry) vs. a disconnect-shortened deadline passing
	// (disconnect) vs. a clean goodbye with the lease still held.
	Requeues          int64 `json:"requeues"`
	RequeueExpiry     int64 `json:"requeue_expiry"`
	RequeueDisconnect int64 `json:"requeue_disconnect"`
	// Completed counts accepted (first) completions; SpeculativeWins the
	// subset won by a speculative duplicate rather than the original lease.
	Completed       int64 `json:"completed"`
	SpeculativeWins int64 `json:"speculative_wins"`
	// Deduped counts completions for already-done cells (first-result-wins);
	// Stale counts completions whose lease had been reclaimed or superseded.
	Deduped int64 `json:"deduped"`
	Stale   int64 `json:"stale"`
	// Fenced counts heartbeats answered "your lease is gone".
	Fenced int64 `json:"fenced"`
	// Failed counts cell-function failures (each costs a retry from the
	// cell's budget); CellRetries the requeues those failures caused;
	// Poisoned the cells that exhausted the budget and went terminal.
	Failed      int64 `json:"failed"`
	CellRetries int64 `json:"cell_retries"`
	Poisoned    int64 `json:"poisoned"`
	// ChecksumRejects counts completions thrown away because the end-to-end
	// CRC32C did not match the payload — corruption between the worker's
	// computation and the dispatcher's acceptance.
	ChecksumRejects int64 `json:"checksum_rejects"`
	// QuarantinedWorkers counts workers fenced off the campaign by strikes
	// (integrity violations, repeated lease expiries, crash loops, verify
	// divergence); QuarantineReleases the cooldown readmissions.
	QuarantinedWorkers int64 `json:"quarantined_workers"`
	QuarantineReleases int64 `json:"quarantine_releases"`
	// VerifySampled counts cells drawn into redundant verification;
	// VerifyMatches the byte-identical agreements; VerifyDivergence the
	// disagreements (each costs a tie-breaking third execution).
	VerifySampled    int64 `json:"verify_sampled"`
	VerifyMatches    int64 `json:"verify_matches"`
	VerifyDivergence int64 `json:"verify_divergence"`
	// Flushed counts results delivered to the consumer in strict index order
	// (recovered rows re-emitted on resume included).
	Flushed int64 `json:"flushed"`
	// Resumed counts cells recovered from the campaign journal at startup;
	// StaleGen counts completions and heartbeats fenced because they carried
	// a pre-restart dispatcher generation; JournalErrors counts failed
	// journal appends (the campaign continues — a lost record costs a
	// recompute, never a wrong byte).
	Resumed       int64 `json:"resumed"`
	StaleGen      int64 `json:"stale_gen"`
	JournalErrors int64 `json:"journal_errors"`
}

// DispatchHealth is the dispatcher's health verb reply, mirroring the
// mini-slurm and simd health vocabulary: a top-level ok/health plus campaign
// progress, so an operator (or the chaos test) can ask a live dispatcher how
// far the campaign is and which generation it is serving.
type DispatchHealth struct {
	OK     bool   `json:"ok"`
	Health string `json:"health"` // ok | draining | done
	// Generation is the fencing generation (1 for a journal-less or fresh
	// campaign, +1 per restart).
	Generation int64 `json:"generation"`
	// Campaign progress: CellsDone counts terminal DONE cells (recovered
	// ones included), CellsLeased cells with ≥1 live lease, Flushed the rows
	// delivered to the consumer in strict order.
	CellsTotal  int   `json:"cells_total"`
	CellsDone   int   `json:"cells_done"`
	CellsLeased int   `json:"cells_leased"`
	Flushed     int64 `json:"flushed"`
	// Connections is the number of live worker connections (transient
	// health/hello probes included while they last).
	Connections int `json:"connections"`
	// Journal reports whether the campaign is journaled; ResumedCells and
	// StaleGen mirror the recovery counters.
	Journal      bool  `json:"journal"`
	ResumedCells int64 `json:"resumed_cells"`
	StaleGen     int64 `json:"stale_gen"`
	// Integrity & containment: cell-function failures so far, terminal
	// poisoned cells (and their indices), checksum-rejected completions, and
	// quarantined workers (count and IDs) — the counters an operator triages
	// a misbehaving fleet by.
	Failed             int64    `json:"failed"`
	Poisoned           int64    `json:"poisoned"`
	PoisonedCells      []int    `json:"poisoned_cells,omitempty"`
	ChecksumRejects    int64    `json:"checksum_rejects"`
	QuarantinedWorkers int64    `json:"quarantined_workers"`
	Quarantined        []string `json:"quarantined,omitempty"`
}

// fabricVars is the process-wide expvar map ("fabric"); every dispatcher in
// the process adds its decisions to it, mirroring its Counters.
var (
	expOnce sync.Once
	expMap  *expvar.Map
)

func fabricVars() *expvar.Map {
	expOnce.Do(func() { expMap = expvar.NewMap("fabric") })
	return expMap
}

// durMS renders a duration as the whole milliseconds the wire carries.
func durMS(d time.Duration) int64 { return int64(d / time.Millisecond) }
