package fabric

// Integrity & containment (DESIGN §14). The lease machinery in dispatcher.go
// assumes workers fail by stopping; this file handles workers that fail by
// lying. Three mechanisms compose:
//
//   - Checksum rejection (complete): a completion whose CRC32C does not match
//     its payload is thrown away before dedup — corruption between
//     computation and acceptance never wins first-result-wins — and the
//     sender takes an instant quarantine-weight strike.
//   - Worker strikes → quarantine: every misbehaviour charges strikes
//     (integrity violations instantly, lease expiries / disconnects / cell
//     failures one each; accepted completions decay one), and a worker at
//     the threshold is fenced off the campaign: no new leases, in-flight
//     leases removed and requeued, the verdict journaled so a restarted
//     dispatcher keeps the fence up. An optional cooldown readmits.
//   - Cell poisoning: a cell whose function fails on enough distinct workers
//     (or past an absolute retry cap) is the problem itself. It goes
//     terminal POISONED — journaled like DONE, skipped by the flush — and
//     the campaign completes around it, ending with a *PoisonedError that
//     names every such cell instead of dying at the first one.
//
// Sampled redundant verification guards against the failure checksums
// cannot see: a worker that computes the wrong
// bytes and checksums them correctly. A deterministic seed-derived sample of
// cells is executed twice on distinct workers and byte-compared; divergence
// quarantines the minority worker after a tie-breaking third execution.

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"
)

// PoisonedCell names one cell retired as POISONED and why.
type PoisonedCell struct {
	Cell int    `json:"cell"`
	Err  string `json:"err"`
}

// PoisonedError ends a campaign that completed around poisoned cells: every
// healthy row was delivered in strict order, the listed cells were not. It
// is an error — the output is incomplete — but a contained one: hours of
// healthy work survive a single bad cell.
type PoisonedError struct {
	Cells []PoisonedCell `json:"cells"`
}

func (e *PoisonedError) Error() string {
	parts := make([]string, 0, len(e.Cells))
	for _, c := range e.Cells {
		parts = append(parts, fmt.Sprintf("%d (%s)", c.Cell, c.Err))
	}
	return fmt.Sprintf("fabric: campaign completed around %d poisoned cell(s): %s",
		len(e.Cells), strings.Join(parts, "; "))
}

// maxStrikes caps a worker's strike score so repeated offences cannot
// overflow it.
const maxStrikes = 1 << 20

// workerRec is the dispatcher's per-worker disciplinary record.
type workerRec struct {
	strikes       int
	quarantined   bool
	quarantinedAt time.Time
	reason        string
}

// workerLocked returns (creating if needed) the record for worker.
func (d *Dispatcher) workerLocked(worker string) *workerRec {
	w := d.workers[worker]
	if w == nil {
		w = &workerRec{}
		d.workers[worker] = w
	}
	return w
}

// strikeLocked charges weight strikes against worker for cause, quarantining
// it at the configured threshold. Instant-quarantine offences (integrity
// violations) pass the threshold itself as the weight.
func (d *Dispatcher) strikeLocked(worker, cause string, weight int) {
	if worker == "" {
		return
	}
	w := d.workerLocked(worker)
	if w.quarantined {
		return
	}
	w.strikes += weight
	if w.strikes > maxStrikes {
		w.strikes = maxStrikes
	}
	d.logLocked("strike worker=%s cause=%s weight=%d strikes=%d", worker, cause, weight, w.strikes)
	if w.strikes >= d.cfg.QuarantineAfter {
		d.quarantineLocked(worker, cause)
	}
}

// rewardLocked decays one strike on an accepted completion, so an honest
// worker that weathers a few flaky leases over a long campaign drifts back
// to a clean record instead of accumulating its way into quarantine.
func (d *Dispatcher) rewardLocked(worker string) {
	if w := d.workers[worker]; w != nil && !w.quarantined && w.strikes > 0 {
		w.strikes--
	}
}

// quarantineLocked fences worker off the whole campaign: no new leases will
// be granted, every in-flight lease is removed and its cell requeued (the
// worker's next heartbeat finds the lease gone and self-fences), and the
// verdict is journaled so a restarted dispatcher keeps the fence up.
func (d *Dispatcher) quarantineLocked(worker, cause string) {
	w := d.workerLocked(worker)
	if w.quarantined {
		return
	}
	w.quarantined = true
	w.quarantinedAt = d.now()
	w.reason = cause
	d.counters.QuarantinedWorkers++
	fabricVars().Add("quarantined_workers", 1)
	d.journalContainLocked(journalRecord{Kind: "quarantine", Worker: worker, Reason: cause, Strikes: w.strikes})
	for idx := range d.cells {
		c := &d.cells[idx]
		if c.state != stateLeased {
			continue
		}
		kept := c.leases[:0]
		for _, l := range c.leases {
			if l.worker != worker {
				kept = append(kept, l)
				continue
			}
			d.logLocked("quarantine-fence cell=%d epoch=%d worker=%s", idx, l.epoch, worker)
		}
		c.leases = kept
		if len(c.leases) == 0 {
			c.state = statePending
			heap.Push(&d.pending, idx)
			d.counters.Requeues++
			fabricVars().Add("requeues", 1)
		}
	}
	d.logLocked("quarantine worker=%s cause=%s strikes=%d cooldown=%s",
		worker, cause, w.strikes, d.cfg.QuarantineCooldown)
	d.maybeFinishDrainLocked()
}

// quarantinedLocked reports whether worker is currently fenced off the
// campaign, releasing it first if the cooldown (when configured) elapsed.
func (d *Dispatcher) quarantinedLocked(worker string) bool {
	w := d.workers[worker]
	if w == nil || !w.quarantined {
		return false
	}
	if d.cfg.QuarantineCooldown > 0 && d.now().Sub(w.quarantinedAt) >= d.cfg.QuarantineCooldown {
		w.quarantined = false
		w.strikes = 0
		d.counters.QuarantineReleases++
		fabricVars().Add("quarantine_releases", 1)
		d.journalContainLocked(journalRecord{Kind: "unquarantine", Worker: worker})
		d.logLocked("quarantine-release worker=%s after=%s", worker, d.cfg.QuarantineCooldown)
		return false
	}
	return true
}

// quarantinedWorkersLocked lists the currently fenced worker IDs, sorted.
func (d *Dispatcher) quarantinedWorkersLocked() []string {
	var out []string
	for id, w := range d.workers {
		if w.quarantined {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// journalContainLocked appends one containment record (poison, quarantine,
// unquarantine). These are rare and load-bearing across restarts — losing a
// quarantine record would un-fence a hostile worker — so they are fsynced,
// unlike cell records. A failed append degrades durability, not correctness.
func (d *Dispatcher) journalContainLocked(rec journalRecord) {
	if d.jr == nil {
		return
	}
	if err := d.jr.appendRecord(rec, true); err != nil {
		d.counters.JournalErrors++
		fabricVars().Add("journal_errors", 1)
		d.logLocked("journal-error kind=%s err=%v", rec.Kind, err)
	}
}

// failLeaseLocked handles a cell-function failure reported under a live
// lease: the lease dies, the failure is charged to both the worker (one
// strike) and the cell (one retry from its budget), and the cell either
// requeues behind an exponential backoff or — once it has failed on enough
// distinct workers, or past the absolute cap — goes terminal POISONED.
func (d *Dispatcher) failLeaseLocked(cell, li int, worker, errStr string) {
	c := &d.cells[cell]
	c.leases = append(c.leases[:li], c.leases[li+1:]...)
	c.failures++
	if c.failedWorkers == nil {
		c.failedWorkers = make(map[string]bool)
	}
	c.failedWorkers[worker] = true
	d.counters.Failed++
	fabricVars().Add("failed", 1)
	d.logLocked("fail cell=%d worker=%s failures=%d distinct=%d err=%q",
		cell, worker, c.failures, len(c.failedWorkers), errStr)
	d.strikeLocked(worker, "cell-failure", 1)
	if len(c.failedWorkers) >= d.cfg.PoisonAfter || c.failures >= d.cfg.MaxCellRetries {
		d.poisonCellLocked(cell, errStr)
		return
	}
	if c.state == stateLeased && len(c.leases) == 0 {
		backoff := d.cfg.RetryBackoff
		for i := 1; i < c.failures && backoff < d.cfg.LeaseTTL; i++ {
			backoff *= 2
		}
		if backoff > d.cfg.LeaseTTL {
			backoff = d.cfg.LeaseTTL
		}
		c.notBefore = d.now().Add(backoff)
		c.state = statePending
		heap.Push(&d.pending, cell)
		d.counters.CellRetries++
		fabricVars().Add("cell_retries", 1)
		d.logLocked("retry cell=%d failures=%d backoff=%s", cell, c.failures, backoff)
	}
	d.maybeFinishDrainLocked()
}

// poisonCellLocked retires cell as terminal POISONED: journaled like a DONE
// cell, skipped by the flush, reported in the campaign's final error. The
// rest of the grid proceeds as if the cell never existed.
func (d *Dispatcher) poisonCellLocked(cell int, errStr string) {
	c := &d.cells[cell]
	c.state = statePoisoned
	c.leases = nil
	c.verify = nil
	d.poisonedErrs[cell] = errStr
	d.counters.Poisoned++
	fabricVars().Add("poisoned", 1)
	d.journalContainLocked(journalRecord{Kind: "poison", Cell: cell, Err: errStr})
	d.logLocked("poison cell=%d failures=%d distinct=%d err=%q",
		cell, c.failures, len(c.failedWorkers), errStr)
	d.flushLocked()
	d.checkDoneLocked()
	d.maybeFinishDrainLocked()
}

// poisonedCellsLocked lists the POISONED cells in index order.
func (d *Dispatcher) poisonedCellsLocked() []PoisonedCell {
	var out []PoisonedCell
	for idx := range d.cells {
		if d.cells[idx].state == statePoisoned {
			out = append(out, PoisonedCell{Cell: idx, Err: d.poisonedErrs[idx]})
		}
	}
	return out
}

// ---- sampled redundant verification ----

// verifyResult is one checksum-valid candidate execution of a sampled cell.
type verifyResult struct {
	worker string
	row    []byte
}

// verifyState holds a sampled cell's candidates until a quorum agrees.
type verifyState struct {
	results []verifyResult
}

// verifyContributor reports whether worker already contributed a candidate
// for this cell — grants and speculation exclude contributors, so every
// candidate comes from a distinct worker.
func (c *cellRec) verifyContributor(worker string) bool {
	if c.verify == nil {
		return false
	}
	for _, r := range c.verify.results {
		if r.worker == worker {
			return true
		}
	}
	return false
}

// verifySampled reports whether cell is in the redundant-verification
// sample: a pure function of (campaign identity, VerifySeed, cell), so the
// sample is deterministic per campaign and stable across restarts.
func (d *Dispatcher) verifySampled(cell int) bool {
	if d.cfg.VerifyFraction <= 0 {
		return false
	}
	if d.cfg.VerifyFraction >= 1 {
		return true
	}
	h := uint64(14695981039346656037) // FNV-1a
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < len(d.specSHAHex); i++ {
		mix(d.specSHAHex[i])
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], d.cfg.VerifySeed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(cell))
	for _, b := range buf {
		mix(b)
	}
	return float64(h%(1<<24))/float64(1<<24) < d.cfg.VerifyFraction
}

// verifyAcceptLocked records one checksum-valid candidate for a sampled cell
// and resolves the cell once enough distinct executions agree. First
// candidate: hold the row, requeue for a confirming execution elsewhere. Two
// agreeing: accept. Two diverging: one of them computed wrong bytes with a
// correct checksum — re-execute on a third worker, then majority wins and
// the odd worker out is quarantined. Three-way disagreement has no majority
// to trust, so the cell is poisoned rather than guessed at.
func (d *Dispatcher) verifyAcceptLocked(cell, li int, worker string, result []byte) response {
	c := &d.cells[cell]
	lease := c.leases[li]
	c.leases = append(c.leases[:li], c.leases[li+1:]...)
	if c.verify == nil {
		c.verify = &verifyState{}
		d.counters.VerifySampled++
		fabricVars().Add("verify_sampled", 1)
	}
	c.verify.results = append(c.verify.results, verifyResult{worker: worker, row: result})
	switch n := len(c.verify.results); n {
	case 1:
		d.samples = append(d.samples, d.now().Sub(lease.started).Seconds())
		if len(c.leases) == 0 {
			c.state = statePending
			heap.Push(&d.pending, cell)
		}
		d.logLocked("verify-hold cell=%d worker=%s", cell, worker)
	case 2:
		first, second := c.verify.results[0], c.verify.results[1]
		if bytes.Equal(first.row, second.row) {
			d.counters.VerifyMatches++
			fabricVars().Add("verify_matches", 1)
			d.rewardLocked(first.worker)
			d.rewardLocked(second.worker)
			d.logLocked("verify-match cell=%d workers=%s,%s", cell, first.worker, second.worker)
			d.acceptCellLocked(cell, first.row)
		} else {
			d.counters.VerifyDivergence++
			fabricVars().Add("verify_divergence", 1)
			d.logLocked("verify-diverge cell=%d workers=%s,%s (re-executing on a third)",
				cell, first.worker, second.worker)
			if len(c.leases) == 0 {
				c.state = statePending
				heap.Push(&d.pending, cell)
			}
		}
	default:
		first, second, third := c.verify.results[0], c.verify.results[1], c.verify.results[2]
		switch {
		case bytes.Equal(third.row, first.row):
			d.logLocked("verify-majority cell=%d agree=%s,%s odd=%s", cell, first.worker, third.worker, second.worker)
			d.quarantineLocked(second.worker, "verify-divergence")
			d.acceptCellLocked(cell, first.row)
		case bytes.Equal(third.row, second.row):
			d.logLocked("verify-majority cell=%d agree=%s,%s odd=%s", cell, second.worker, third.worker, first.worker)
			d.quarantineLocked(first.worker, "verify-divergence")
			d.acceptCellLocked(cell, second.row)
		default:
			d.strikeLocked(first.worker, "verify-divergence", 1)
			d.strikeLocked(second.worker, "verify-divergence", 1)
			d.strikeLocked(third.worker, "verify-divergence", 1)
			d.poisonCellLocked(cell, "redundant verification: three executions disagree")
		}
	}
	return response{OK: true, Done: d.done}
}
