package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/slurm"
)

// WorkerConfig shapes one worker loop (a simd daemon runs one per parallel
// slot, all sharing the daemon's ID prefix).
type WorkerConfig struct {
	// ID names the worker to the dispatcher; it must be stable across
	// reconnects (leases are keyed by worker + epoch).
	ID string
	// Addr is the dispatcher's address (possibly a chaos proxy in tests).
	Addr string
	// Fn computes one cell. It must be a pure function of the index —
	// everything needed comes from the spec the daemon fetched at hello.
	// ctx is cancelled when the worker is fenced off the cell or killed;
	// Fn may ignore it (the result is then discarded on return). progress
	// reports an in-cell completion estimate (0..1) carried on heartbeats.
	Fn func(ctx context.Context, cell int, progress func(float64)) ([]byte, error)
	// Retry drives reconnect backoff with jitter (default:
	// slurm.DefaultRetryPolicy seeded from the ID hash).
	Retry *slurm.RetryPolicy
	// RequestTimeout bounds one protocol round trip (default 10s); without
	// it a black-holed (partitioned, not refused) dispatcher stalls the
	// worker until the OS gives up.
	RequestTimeout time.Duration
	// HeartbeatEvery overrides the dispatcher's advertised cadence (tests
	// stretch it to keep a straggler un-heartbeated).
	HeartbeatEvery time.Duration
	// IdleWait caps how long the worker sleeps when the dispatcher has
	// nothing leasable (default 200ms; the dispatcher's hint may be shorter).
	IdleWait time.Duration
	// MaxReconnect bounds how many consecutive lease rounds may exhaust the
	// whole retry budget before Run gives up with ErrDispatcherUnreachable
	// (0 = keep trying forever — the PR 6 behavior). A permanently dead
	// dispatcher then produces a clean nonzero exit instead of an immortal
	// retry loop; rounds that reach the dispatcher reset the count.
	MaxReconnect int
}

// Worker health states, mirroring the mini-slurm health vocabulary.
const (
	HealthOK          = "ok"
	HealthDraining    = "draining"
	HealthFenced      = "fenced"
	HealthQuarantined = "quarantined"
)

// ErrDispatcherUnreachable is returned by Run when MaxReconnect consecutive
// lease rounds failed to reach the dispatcher at all.
var ErrDispatcherUnreachable = errors.New("fabric: dispatcher unreachable")

// Worker is one lease-execute-complete loop against a dispatcher.
type Worker struct {
	cfg WorkerConfig

	// connMu serializes protocol exchanges on the single connection: the
	// heartbeat goroutine and the main loop interleave whole request/response
	// pairs, never bytes.
	connMu  sync.Mutex
	conn    net.Conn
	sc      *bufio.Scanner
	enc     *json.Encoder
	hbEvery time.Duration
	// specSHAHex is the campaign identity from the last hello, bound into
	// every completion checksum so the dispatcher can verify the payload it
	// receives is the payload this worker computed, for this campaign.
	specSHAHex string

	cancel      context.CancelFunc
	draining    atomic.Bool
	killed      atomic.Bool
	fenced      atomic.Bool
	quarantined atomic.Bool
	cellsDone   atomic.Int64
	curCell     atomic.Int64 // -1 while idle
	curEpoch    atomic.Int64
	// gen is the dispatcher generation from the most recent hello. A lease
	// carries the generation it was granted under; if the dispatcher
	// restarts, the reconnect's hello adopts the new generation while the
	// in-flight completion still carries the old one — the dispatcher fences
	// it and the worker re-leases, which is the whole self-fence story.
	gen atomic.Int64
}

// NewWorker validates cfg and builds a worker (Run starts it).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("fabric: worker ID is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("fabric: dispatcher Addr is required")
	}
	if cfg.Fn == nil {
		return nil, errors.New("fabric: worker Fn is required")
	}
	if cfg.Retry == nil {
		cfg.Retry = slurm.DefaultRetryPolicy(idSeed(cfg.ID))
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.IdleWait <= 0 {
		cfg.IdleWait = 200 * time.Millisecond
	}
	w := &Worker{cfg: cfg}
	w.curCell.Store(-1)
	return w, nil
}

// idSeed derives a backoff-jitter seed from the worker ID, so a fleet of
// daemons reconnecting after the same partition spreads out instead of
// stampeding in lockstep.
func idSeed(id string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// Run leases, executes, and completes cells until the campaign is done
// (returns nil), ctx is cancelled, or Kill is called. Drain lets the
// in-flight cell finish and complete before returning.
func (w *Worker) Run(ctx context.Context) error {
	ctx, w.cancel = context.WithCancel(ctx)
	defer w.cancel()
	defer w.closeConn()
	failedRounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			w.request(ctx, request{Op: "goodbye", Worker: w.cfg.ID})
			return nil
		}
		resp, err := w.request(ctx, request{Op: "lease", Worker: w.cfg.ID})
		if err != nil {
			// A whole retry budget burned without reaching the dispatcher
			// (long partition, or it is simply gone). With MaxReconnect set,
			// give up after that many consecutive dead rounds — a permanently
			// dead dispatcher should produce a clean failure, not an immortal
			// loop. Between rounds the backoff is the policy's capped,
			// jittered delay, so a fleet waiting out the same outage does not
			// stampede the moment it ends.
			failedRounds++
			if w.cfg.MaxReconnect > 0 && failedRounds >= w.cfg.MaxReconnect {
				return fmt.Errorf("%w: %s after %d reconnect rounds: %v",
					ErrDispatcherUnreachable, w.cfg.Addr, failedRounds, err)
			}
			if !w.sleepCtx(ctx, w.cfg.Retry.Delay(failedRounds-1, 0)) {
				return ctx.Err()
			}
			continue
		}
		failedRounds = 0
		if resp.Done {
			return nil
		}
		if resp.Quarantined {
			// Fenced off the campaign. Idle-poll rather than exit: a cooldown
			// release or operator action may readmit us, and the health verb
			// should report the quarantine meanwhile.
			w.quarantined.Store(true)
			if !w.sleepCtx(ctx, w.cfg.IdleWait) {
				return ctx.Err()
			}
			continue
		}
		w.quarantined.Store(false)
		if !resp.Granted {
			wait := time.Duration(resp.WaitMS) * time.Millisecond
			if wait <= 0 || wait > w.cfg.IdleWait {
				wait = w.cfg.IdleWait
			}
			if !w.sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		w.fenced.Store(false)
		w.runCell(ctx, resp.Cell, resp.Epoch, resp.Gen)
	}
}

// Drain asks the worker to finish its in-flight cell (completing it) and
// then exit Run — the graceful shutdown a SIGTERM maps to.
func (w *Worker) Drain() { w.draining.Store(true) }

// Kill abandons everything immediately: the in-flight cell is cancelled and
// never completed, the connection is severed mid-stream. This is the crash
// the chaos test injects at seeded points.
func (w *Worker) Kill() {
	w.killed.Store(true)
	if w.cancel != nil {
		w.cancel()
	}
	w.closeConn()
}

// Snapshot reports the worker's health for the simd health verb.
func (w *Worker) Snapshot() WorkerSnapshot {
	health := HealthOK
	if w.fenced.Load() {
		health = HealthFenced
	}
	if w.quarantined.Load() {
		health = HealthQuarantined
	}
	if w.draining.Load() {
		health = HealthDraining
	}
	return WorkerSnapshot{
		ID:         w.cfg.ID,
		Health:     health,
		CellsDone:  w.cellsDone.Load(),
		LeaseCell:  w.curCell.Load(),
		LeaseEpoch: w.curEpoch.Load(),
		Generation: w.gen.Load(),
	}
}

// runCell executes one leased cell: heartbeats in the background, the cell
// function in the foreground, then a completion attempt whose Duplicate or
// Stale verdict is absorbed silently (someone else won; our work dedupes).
func (w *Worker) runCell(ctx context.Context, cell int, epoch, gen int64) {
	w.curCell.Store(int64(cell))
	w.curEpoch.Store(epoch)
	defer w.curCell.Store(-1)

	cellCtx, cancelCell := context.WithCancel(ctx)
	defer cancelCell()
	var progress atomicFloat
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(cellCtx, cell, epoch, gen, &progress, cancelCell)
	}()

	result, err := w.cfg.Fn(cellCtx, cell, progress.store)
	cancelCell()
	<-hbDone

	if w.killed.Load() {
		return // crashed mid-cell: no completion, the lease dies with us
	}
	if w.fenced.Load() {
		return // lease lost: self-fence, discard the result
	}
	req := request{Op: "complete", Worker: w.cfg.ID, Cell: cell, Epoch: epoch, Gen: gen, Result: result}
	if err != nil {
		req.Result = nil
		req.Err = err.Error()
	} else {
		// The checksum is computed here, the moment the cell function's bytes
		// are in hand: anything that corrupts them between this line and the
		// dispatcher's verification — worker memory, serialization, the wire —
		// breaks the CRC and the completion is rejected instead of accepted.
		req.Sum = completionSum(w.campaignSHA(), cell, result)
	}
	resp, rerr := w.request(ctx, req)
	if rerr != nil {
		return // completion lost; the lease will expire and the cell requeue
	}
	if err == nil && !resp.Stale && !resp.Duplicate && !resp.Rejected {
		w.cellsDone.Add(1)
	}
}

// campaignSHA is the campaign identity adopted at the last hello.
func (w *Worker) campaignSHA() string {
	w.connMu.Lock()
	defer w.connMu.Unlock()
	return w.specSHAHex
}

// heartbeatLoop renews the lease until the cell context ends. A "fenced"
// answer cancels the cell: the lease is gone, so finishing the work can
// only produce a stale completion.
func (w *Worker) heartbeatLoop(ctx context.Context, cell int, epoch, gen int64, progress *atomicFloat, fence func()) {
	every := w.cfg.HeartbeatEvery
	if every <= 0 {
		w.connMu.Lock()
		every = w.hbEvery
		w.connMu.Unlock()
	}
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		resp, err := w.request(ctx, request{
			Op: "heartbeat", Worker: w.cfg.ID, Cell: cell, Epoch: epoch, Gen: gen,
			Progress: progress.load(),
		})
		if err != nil {
			continue // reconnect already retried; the grace period covers us
		}
		if resp.Fenced {
			w.fenced.Store(true)
			fence()
			return
		}
	}
}

// request performs one exchange, transparently redialing (with jittered
// backoff and a fresh hello) on transport errors, up to the retry budget.
func (w *Worker) request(ctx context.Context, req request) (response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := w.do1(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil || w.killed.Load() {
			return response{}, lastErr
		}
		if attempt >= w.cfg.Retry.MaxAttempts-1 {
			return response{}, lastErr
		}
		sleepFor(w.cfg.Retry, w.cfg.Retry.Delay(attempt, 0))
	}
}

// do1 sends one line and reads one line, dialing (and helloing) first if the
// connection is down. Any failure tears the connection down so the next
// attempt starts clean.
func (w *Worker) do1(req request) (response, error) {
	w.connMu.Lock()
	defer w.connMu.Unlock()
	if w.conn == nil {
		if err := w.dialLocked(); err != nil {
			return response{}, err
		}
	}
	resp, err := w.exchangeLocked(req)
	if err != nil {
		w.teardownLocked()
		return response{}, err
	}
	return resp, nil
}

func (w *Worker) exchangeLocked(req request) (response, error) {
	w.conn.SetDeadline(time.Now().Add(w.cfg.RequestTimeout))
	if err := w.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("fabric: send: %w", err)
	}
	if !w.sc.Scan() {
		if err := w.sc.Err(); err != nil {
			return response{}, fmt.Errorf("fabric: receive: %w", err)
		}
		return response{}, io.ErrUnexpectedEOF
	}
	resp, err := decodeResponse(w.sc.Bytes())
	if err != nil {
		return response{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("fabric: dispatcher: %s", resp.Error)
	}
	return resp, nil
}

func (w *Worker) dialLocked() error {
	conn, err := net.DialTimeout("tcp", w.cfg.Addr, w.cfg.RequestTimeout)
	if err != nil {
		return fmt.Errorf("fabric: dial %s: %w", w.cfg.Addr, err)
	}
	w.conn = conn
	w.sc = bufio.NewScanner(conn)
	w.sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	w.enc = json.NewEncoder(conn)
	resp, err := w.exchangeLocked(request{Op: "hello", Worker: w.cfg.ID})
	if err != nil {
		w.teardownLocked()
		return err
	}
	w.hbEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
	// The spec bytes round-trip verbatim (json.RawMessage), so hashing what
	// arrived here yields the same campaign identity the dispatcher hashed
	// from its own config — the two ends of every completion checksum.
	w.specSHAHex = specSHA(resp.Spec)
	w.gen.Store(resp.Gen)
	return nil
}

func (w *Worker) teardownLocked() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

func (w *Worker) closeConn() {
	w.connMu.Lock()
	w.teardownLocked()
	w.connMu.Unlock()
}

func (w *Worker) sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// FetchSpec asks the dispatcher for the campaign shape (cell count and the
// opaque spec) — what a simd daemon needs before it can build its cell
// function. Retries with jittered backoff until the deadline.
func FetchSpec(addr string, timeout time.Duration) (spec []byte, cells int, err error) {
	retry := slurm.DefaultRetryPolicy(idSeed(addr))
	deadline := time.Now().Add(timeout)
	for attempt := 0; ; attempt++ {
		spec, cells, err = fetchSpecOnce(addr)
		if err == nil || time.Now().After(deadline) {
			return spec, cells, err
		}
		sleepFor(retry, retry.Delay(attempt, 0))
	}
}

func fetchSpecOnce(addr string) ([]byte, int, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := json.NewEncoder(conn).Encode(request{Op: "hello"}); err != nil {
		return nil, 0, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	if !sc.Scan() {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var resp response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		return nil, 0, err
	}
	if resp.Error != "" {
		return nil, 0, fmt.Errorf("fabric: dispatcher: %s", resp.Error)
	}
	return resp.Spec, resp.Cells, nil
}

// FetchDispatchHealth asks a running dispatcher for its health snapshot —
// campaign progress, generation, connections — the client side of
// `sweep -dispatch-health`. One shot, no retry: health checks should report
// an unreachable dispatcher, not paper over it.
func FetchDispatchHealth(addr string, timeout time.Duration) (DispatchHealth, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return DispatchHealth{}, fmt.Errorf("fabric: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(conn).Encode(request{Op: "health"}); err != nil {
		return DispatchHealth{}, fmt.Errorf("fabric: send health: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	if !sc.Scan() {
		return DispatchHealth{}, io.ErrUnexpectedEOF
	}
	var h DispatchHealth
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return DispatchHealth{}, fmt.Errorf("fabric: bad health reply: %w", err)
	}
	return h, nil
}

// FetchWorkerHealth asks a simd daemon's health address for its report — the
// client side of `simd -check-health`, so scripts can act on a fenced or
// quarantined worker via the exit code instead of parsing output. One shot,
// no retry, same as FetchDispatchHealth.
func FetchWorkerHealth(addr string, timeout time.Duration) (HealthReport, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return HealthReport{}, fmt.Errorf("fabric: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(conn).Encode(request{Op: "health"}); err != nil {
		return HealthReport{}, fmt.Errorf("fabric: send health: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	if !sc.Scan() {
		return HealthReport{}, io.ErrUnexpectedEOF
	}
	var h HealthReport
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return HealthReport{}, fmt.Errorf("fabric: bad health reply: %w", err)
	}
	return h, nil
}

// sleepFor waits via the policy's own primitive (tests stub it out),
// falling back to a real sleep.
func sleepFor(p *slurm.RetryPolicy, d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
	} else {
		time.Sleep(d)
	}
}

// atomicFloat is a lock-free float64 cell (progress reporting).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// ---- simd health verb ----

// WorkerSnapshot is one worker loop's health for the simd health verb.
type WorkerSnapshot struct {
	ID         string `json:"id"`
	Health     string `json:"health"` // ok | draining | fenced | quarantined
	CellsDone  int64  `json:"cells_done"`
	LeaseCell  int64  `json:"lease_cell"` // -1 while idle
	LeaseEpoch int64  `json:"lease_epoch"`
	// Generation is the dispatcher generation from the loop's last hello; a
	// bump mid-campaign means the dispatcher restarted and this loop
	// re-helloed into the new incarnation.
	Generation int64 `json:"generation"`
}

// HealthReport is the simd health verb's reply, mini-slurm style: a
// top-level health plus a fabric section with cells done and the current
// lease (the first active one, with every loop's detail alongside).
type HealthReport struct {
	OK     bool         `json:"ok"`
	Health string       `json:"health"` // ok | draining | fenced
	Fabric FabricHealth `json:"fabric"`
}

// FabricHealth is the fabric section of a simd health reply.
type FabricHealth struct {
	CellsDone  int64            `json:"cells_done"`
	LeaseCell  int64            `json:"lease_cell"` // -1 while idle
	LeaseEpoch int64            `json:"lease_epoch"`
	Workers    []WorkerSnapshot `json:"workers,omitempty"`
}

// AggregateHealth folds per-loop snapshots into one daemon report: draining
// dominates, then quarantined, then fenced, else ok; cells done sum; the
// current lease is the first loop's active one.
func AggregateHealth(snaps []WorkerSnapshot) HealthReport {
	rep := HealthReport{OK: true, Health: HealthOK}
	rep.Fabric.LeaseCell = -1
	for _, s := range snaps {
		rep.Fabric.CellsDone += s.CellsDone
		if rep.Fabric.LeaseCell < 0 && s.LeaseCell >= 0 {
			rep.Fabric.LeaseCell = s.LeaseCell
			rep.Fabric.LeaseEpoch = s.LeaseEpoch
		}
		if s.Health == HealthFenced && rep.Health == HealthOK {
			rep.Health = HealthFenced
		}
		if s.Health == HealthQuarantined && (rep.Health == HealthOK || rep.Health == HealthFenced) {
			rep.Health = HealthQuarantined
		}
		if s.Health == HealthDraining {
			rep.Health = HealthDraining
		}
	}
	rep.Fabric.Workers = snaps
	return rep
}

// ServeHealth answers the mini-slurm-style health verb on addr: one JSON
// request line {"op":"health"} per reply, built from snap at answer time.
// Returns the bound address and a stop function.
func ServeHealth(addr string, snap func() HealthReport) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("fabric: health listen: %w", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 0, 4096), 4096)
				enc := json.NewEncoder(conn)
				for {
					conn.SetReadDeadline(time.Now().Add(time.Minute))
					if !sc.Scan() {
						return
					}
					var req request
					if err := json.Unmarshal(sc.Bytes(), &req); err != nil || req.Op != "health" {
						enc.Encode(response{Error: "only the health verb is served here"})
						return
					}
					conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
					if enc.Encode(snap()) != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }, nil
}
