package fabric

// The campaign journal makes the dispatcher itself crash-recoverable: PR 6
// taught the fabric to survive any worker dying, but killing the dispatcher
// lost every completed cell. The journal records, through the internal/vfs
// seam, everything a restarted dispatcher needs to resume the campaign
// byte-identically:
//
//	#fabric-campaign v1 crc32c                ← header line
//	=LLLLLLLL CCCCCCCC {"kind":"campaign",…}  ← campaign identity: cell count
//	                                             and the SHA-256 of the spec,
//	                                             so a journal can never be
//	                                             resumed against a different
//	                                             grid
//	=LLLLLLLL CCCCCCCC {"kind":"gen","gen":1} ← one per dispatcher
//	                                             incarnation; the highest is
//	                                             the fencing generation
//	=LLLLLLLL CCCCCCCC {"kind":"cell",…}      ← one per accepted completion:
//	                                             cell index + row bytes
//
// The framing is the journal-v2 idiom from PR 5 (hex payload length, hex
// CRC32C, payload, one record per line), so the same failure taxonomy
// applies: a torn tail — the expected artifact of a crash mid-append — is
// physically truncated and the prefix salvaged; damage with verifiable
// records after it is corruption and refuses to resume (cells are pure, so
// the operator can always delete the journal and recompute from scratch —
// silently replaying doubtful state is the only unforgivable outcome).
//
// Durability policy: the header, campaign, and generation records are
// fsynced at open (losing a generation bump would un-fence stale workers);
// cell records are appended unsynced, because a lost cell record costs only
// a recompute of a pure function, never a wrong byte. Checkpoint forces the
// tail down — the dispatcher calls it on drain.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/vfs"
)

const campaignHeader = "#fabric-campaign v1 crc32c"

// ErrCampaignMismatch is returned when a journal belongs to a different
// campaign than the one being started (spec hash or cell count disagree).
var ErrCampaignMismatch = errors.New("fabric: journal belongs to a different campaign")

// ErrJournalCorrupt marks mid-log damage: a record failed verification but
// verifiable records follow it, so this is corruption (bit rot, concurrent
// writers), not a torn tail, and the journal refuses to resume.
var ErrJournalCorrupt = errors.New("fabric: campaign journal corrupt")

// errJournalWedged marks a journal whose tail could not be rolled back after
// a failed append: nothing more may be written (appending past unverified
// bytes would turn a salvageable torn tail into mid-log corruption), but the
// committed prefix remains salvageable by the next open.
var errJournalWedged = errors.New("fabric: journal wedged by earlier append failure")

var campaignCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// journalRecord is one framed payload. Kind selects which fields are live.
type journalRecord struct {
	Kind string `json:"kind"` // campaign | gen | cell | poison | quarantine | unquarantine
	// campaign fields.
	Cells   int    `json:"cells,omitempty"`
	SpecSHA string `json:"spec_sha,omitempty"`
	// gen field: the dispatcher incarnation this record opens.
	Gen int64 `json:"gen,omitempty"`
	// cell fields: one accepted completion. poison shares Cell and adds Err —
	// the cell-function error that exhausted the retry budget.
	Cell int    `json:"cell"`
	Row  []byte `json:"row,omitempty"`
	Err  string `json:"err,omitempty"`
	// quarantine/unquarantine fields: the worker fenced off the campaign (or
	// readmitted by cooldown), why, and at what strike score.
	Worker  string `json:"worker,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Strikes int    `json:"strikes,omitempty"`
}

// Recovery is what replaying a campaign journal yielded.
type Recovery struct {
	// Resumed reports that the journal pre-existed: this dispatcher is a
	// restart, not a fresh campaign.
	Resumed bool
	// Gen is the new dispatcher generation (highest journaled + 1; 1 for a
	// fresh campaign). It is already journaled when Open returns.
	Gen int64
	// Rows maps recovered cell index → row bytes.
	Rows map[int][]byte
	// Poisoned maps terminal POISONED cell index → the cell-function error
	// that retired it; Quarantined maps fenced worker ID → the offence. Both
	// survive restarts so a hostile worker cannot launder its record (nor a
	// bad cell its budget) by crashing the dispatcher.
	Poisoned    map[int]string
	Quarantined map[string]string
	// SalvagedBytes is how many torn-tail bytes were truncated away.
	SalvagedBytes int64
}

// CampaignJournal is the dispatcher's durable campaign state: an append-only
// v2-framed file written through a vfs.FS, so PR 5's torn-write, fsync-fail,
// and crash-point injection campaigns apply to it verbatim.
type CampaignJournal struct {
	fs   vfs.FS
	path string
	f    vfs.File
	gen  int64
	// off is the committed length: every byte below it is a whole verified
	// frame. A failed append rolls the file back to off, so the log never
	// accumulates unverifiable bytes ahead of later records.
	off    int64
	wedged bool
}

// specSHA is the campaign identity: the spec bytes' SHA-256, hex.
func specSHA(spec []byte) string {
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}

// OpenCampaignJournal opens (resuming) or creates (fresh) the campaign
// journal at path for a campaign of cells cells described by spec. On resume
// it verifies the campaign identity, salvages a torn tail, bumps and
// journals the generation, and returns the recovered rows.
func OpenCampaignJournal(fsys vfs.FS, path string, spec []byte, cells int) (*CampaignJournal, Recovery, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	j := &CampaignJournal{fs: fsys, path: path}
	data, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, Recovery{}, fmt.Errorf("fabric: read journal: %w", err)
	}
	rec, perr := parseCampaignJournal(data, spec, cells)
	if perr != nil {
		return nil, Recovery{}, perr
	}
	if !rec.Resumed {
		// Fresh campaign (missing, empty, or torn-before-first-commit file):
		// write header + campaign + generation 1 atomically-enough — all
		// synced before any lease is granted.
		buf := append([]byte(campaignHeader), '\n')
		buf = appendCampaignFrame(buf, journalRecord{Kind: "campaign", Cells: cells, SpecSHA: specSHA(spec)})
		buf = appendCampaignFrame(buf, journalRecord{Kind: "gen", Gen: 1})
		f, err := fsys.Create(path)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("fabric: create journal: %w", err)
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("fabric: init journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("fabric: sync journal: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, Recovery{}, fmt.Errorf("fabric: close journal: %w", err)
		}
		fsys.SyncDir(filepath.Dir(path)) // best effort: the file itself is synced
		rec.Gen = 1
		j.off = int64(len(buf))
	} else {
		// Salvage the torn tail, then journal the generation bump. The bump
		// must be durable before any grant: a worker from the old generation
		// must never find a dispatcher that forgot it restarted.
		if rec.SalvagedBytes > 0 {
			if err := fsys.Truncate(path, rec.validLen); err != nil {
				return nil, Recovery{}, fmt.Errorf("fabric: salvage journal tail: %w", err)
			}
		}
		rec.Gen++
		f, err := fsys.OpenAppend(path)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("fabric: open journal: %w", err)
		}
		frame := appendCampaignFrame(nil, journalRecord{Kind: "gen", Gen: rec.Gen})
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("fabric: journal generation: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("fabric: sync generation: %w", err)
		}
		f.Close()
		j.off = rec.validLen + int64(len(frame))
	}
	j.gen = rec.Gen
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("fabric: open journal for append: %w", err)
	}
	j.f = f
	return j, rec.Recovery, nil
}

// Generation is the incarnation this journal was opened under.
func (j *CampaignJournal) Generation() int64 { return j.gen }

// AppendCell records one accepted completion. Unsynced: a crash may lose the
// tail, costing only a recompute (see the durability policy above).
func (j *CampaignJournal) AppendCell(cell int, row []byte) error {
	return j.appendRecord(journalRecord{Kind: "cell", Cell: cell, Row: row}, false)
}

// appendRecord frames and appends one record, optionally fsyncing it.
// Containment records (poison, quarantine, unquarantine) are synced — they
// are rare and load-bearing across restarts, where losing one would un-fence
// a hostile worker or reopen a poisoned cell's budget. A failed append
// self-heals by truncating back to the last committed offset — a torn write
// may have persisted part of the frame, and leaving it there ahead of later
// records would read as mid-log corruption instead of a torn tail. If the
// rollback fails too, the journal wedges: nothing more is written, the
// committed prefix (plus one salvageable torn tail) is what survives.
func (j *CampaignJournal) appendRecord(rec journalRecord, sync bool) error {
	what := rec.Kind
	if rec.Kind == "cell" {
		what = fmt.Sprintf("cell %d", rec.Cell)
	}
	if j.wedged {
		return fmt.Errorf("fabric: journal %s: %w", what, errJournalWedged)
	}
	frame := appendCampaignFrame(nil, rec)
	if _, err := j.f.Write(frame); err != nil {
		j.f.Close()
		j.f = nil
		if terr := j.fs.Truncate(j.path, j.off); terr != nil {
			j.wedged = true
			return fmt.Errorf("fabric: journal %s: %w (rollback failed: %v; journal wedged)", what, err, terr)
		}
		f, oerr := j.fs.OpenAppend(j.path)
		if oerr != nil {
			j.wedged = true
			return fmt.Errorf("fabric: journal %s: %w (reopen failed: %v; journal wedged)", what, err, oerr)
		}
		j.f = f
		return fmt.Errorf("fabric: journal %s: %w", what, err)
	}
	j.off += int64(len(frame))
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("fabric: sync journal %s: %w", what, err)
		}
	}
	return nil
}

// Checkpoint forces every appended record to stable storage — the drain
// path's guarantee that a clean shutdown loses nothing.
func (j *CampaignJournal) Checkpoint() error {
	if j.wedged {
		return fmt.Errorf("fabric: checkpoint journal: %w", errJournalWedged)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: checkpoint journal: %w", err)
	}
	return nil
}

// Close releases the append handle.
func (j *CampaignJournal) Close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// parsedJournal is Recovery plus the salvage offset the opener needs.
type parsedJournal struct {
	Recovery
	validLen int64
}

// parseCampaignJournal replays data. Missing/empty/header-torn files parse
// as fresh; a verified prefix with a torn tail parses as a resume with
// SalvagedBytes set; mid-log damage or a campaign mismatch is an error.
func parseCampaignJournal(data, spec []byte, cells int) (parsedJournal, error) {
	var p parsedJournal
	p.Rows = make(map[int][]byte)
	p.Poisoned = make(map[int]string)
	p.Quarantined = make(map[string]string)
	lines := splitJournalLines(data)
	if len(lines) == 0 || string(lines[0].text) != campaignHeader || !lines[0].terminated {
		// Nothing committed: a crash while writing the very first bytes left
		// no record to honour. Reinitialize from scratch.
		return p, nil
	}
	p.validLen = lines[0].end()

	type damaged struct {
		line   int
		reason string
	}
	var firstDamage *damaged
	validAfterDamage := false
	sawCampaign := false
	for i, ln := range lines[1:] {
		lineNo := i + 2
		rec, reason := parseCampaignFrame(ln)
		if firstDamage != nil {
			// Past the first damage nothing is trusted; keep scanning only to
			// classify torn tail vs. mid-log corruption.
			if reason == "" {
				validAfterDamage = true
			}
			continue
		}
		if reason != "" {
			firstDamage = &damaged{line: lineNo, reason: reason}
			continue
		}
		switch rec.Kind {
		case "campaign":
			if sawCampaign {
				return p, fmt.Errorf("%w: duplicate campaign record at line %d", ErrJournalCorrupt, lineNo)
			}
			sawCampaign = true
			if rec.Cells != cells || rec.SpecSHA != specSHA(spec) {
				return p, fmt.Errorf("%w: journal is for %d cells spec %.12s…, campaign has %d cells spec %.12s…",
					ErrCampaignMismatch, rec.Cells, rec.SpecSHA, cells, specSHA(spec))
			}
		case "gen":
			if rec.Gen <= p.Gen {
				return p, fmt.Errorf("%w: generation regressed to %d after %d at line %d",
					ErrJournalCorrupt, rec.Gen, p.Gen, lineNo)
			}
			p.Gen = rec.Gen
		case "cell":
			if rec.Cell < 0 || rec.Cell >= cells {
				return p, fmt.Errorf("%w: cell %d out of range at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			if _, dup := p.Rows[rec.Cell]; dup {
				return p, fmt.Errorf("%w: duplicate record for cell %d at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			if _, poisoned := p.Poisoned[rec.Cell]; poisoned {
				return p, fmt.Errorf("%w: cell %d completed after being poisoned at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			p.Rows[rec.Cell] = rec.Row
		case "poison":
			if rec.Cell < 0 || rec.Cell >= cells {
				return p, fmt.Errorf("%w: poisoned cell %d out of range at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			if _, done := p.Rows[rec.Cell]; done {
				return p, fmt.Errorf("%w: cell %d poisoned after completing at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			if _, dup := p.Poisoned[rec.Cell]; dup {
				return p, fmt.Errorf("%w: duplicate poison record for cell %d at line %d", ErrJournalCorrupt, rec.Cell, lineNo)
			}
			p.Poisoned[rec.Cell] = rec.Err
		case "quarantine":
			if rec.Worker == "" {
				return p, fmt.Errorf("%w: quarantine record without a worker at line %d", ErrJournalCorrupt, lineNo)
			}
			p.Quarantined[rec.Worker] = rec.Reason
		case "unquarantine":
			if rec.Worker == "" {
				return p, fmt.Errorf("%w: unquarantine record without a worker at line %d", ErrJournalCorrupt, lineNo)
			}
			delete(p.Quarantined, rec.Worker)
		default:
			return p, fmt.Errorf("%w: unknown record kind %q at line %d", ErrJournalCorrupt, rec.Kind, lineNo)
		}
		if !sawCampaign {
			return p, fmt.Errorf("%w: first record is %q, want campaign", ErrJournalCorrupt, rec.Kind)
		}
		p.validLen = ln.end()
	}
	if firstDamage != nil {
		if validAfterDamage {
			return p, fmt.Errorf("%w: %s at line %d with verifiable records after it (move the journal aside or start a fresh campaign)",
				ErrJournalCorrupt, firstDamage.reason, firstDamage.line)
		}
		p.SalvagedBytes = int64(len(data)) - p.validLen
	}
	if !sawCampaign || p.Gen == 0 {
		// Header survived but the campaign/gen records did not commit: nothing
		// to honour, reinitialize.
		return parsedJournal{Recovery: Recovery{
			Rows:        make(map[int][]byte),
			Poisoned:    make(map[int]string),
			Quarantined: make(map[string]string),
		}}, nil
	}
	p.Resumed = true
	return p, nil
}

// ---- framing (the PR 5 journal-v2 line discipline) ----

// campaignFrameMetaLen is len("=LLLLLLLL CCCCCCCC ").
const campaignFrameMetaLen = 19

func appendCampaignFrame(dst []byte, rec journalRecord) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		// journalRecord marshals unconditionally; reaching here is a
		// programming error, not an I/O condition.
		panic(fmt.Sprintf("fabric: encode journal record: %v", err))
	}
	dst = append(dst, '=')
	dst = appendJournalHex8(dst, uint32(len(payload)))
	dst = append(dst, ' ')
	dst = appendJournalHex8(dst, crc32.Checksum(payload, campaignCastagnoli))
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// parseCampaignFrame verifies one line's framing, checksum, and JSON. A
// non-empty reason describes the damage.
func parseCampaignFrame(ln journalLine) (journalRecord, string) {
	var rec journalRecord
	if !ln.terminated {
		return rec, "torn record (no trailing newline)"
	}
	t := ln.text
	if len(t) < campaignFrameMetaLen || t[0] != '=' || t[9] != ' ' || t[18] != ' ' {
		return rec, "malformed frame"
	}
	length, ok1 := parseJournalHex8(t[1:9])
	sum, ok2 := parseJournalHex8(t[10:18])
	if !ok1 || !ok2 {
		return rec, "malformed frame header"
	}
	payload := t[campaignFrameMetaLen:]
	if uint32(len(payload)) != length {
		return rec, fmt.Sprintf("length mismatch (header %d, payload %d)", length, len(payload))
	}
	if crc32.Checksum(payload, campaignCastagnoli) != sum {
		return rec, "checksum mismatch"
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Sprintf("payload parse error: %v", err)
	}
	return rec, ""
}

func appendJournalHex8(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[v>>uint(shift)&0xf])
	}
	return dst
}

func parseJournalHex8(s []byte) (uint32, bool) {
	if len(s) != 8 {
		return 0, false
	}
	var v uint32
	for _, c := range s {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// journalLine is one physical line with its offset; terminated records
// whether the trailing newline was present (a final line without one is a
// torn append).
type journalLine struct {
	off        int64
	text       []byte
	terminated bool
}

func (ln journalLine) end() int64 {
	e := ln.off + int64(len(ln.text))
	if ln.terminated {
		e++
	}
	return e
}

func splitJournalLines(data []byte) []journalLine {
	var lines []journalLine
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			lines = append(lines, journalLine{off: int64(start), text: data[start:i], terminated: true})
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, journalLine{off: int64(start), text: data[start:], terminated: false})
	}
	return lines
}
