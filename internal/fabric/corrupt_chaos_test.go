package fabric

// Corrupt-worker chaos acceptance (DESIGN §14): the containment counterpart
// to chaos_test.go's crash-fault run. The fleet here contains workers that
// fail by LYING, not stopping — a byte-flipper whose completions are
// corrupted in transit, and a deterministic bad cell that fails on every
// worker that touches it — plus a crash-looping worker, and the dispatcher
// is killed and restarted mid-campaign. The healthy portion of the output
// must still be byte-identical to the sequential golden, the bad cell must
// poison (not sink the campaign), the flipper must be checksum-rejected and
// quarantined, and both verdicts must survive the restart via the journal.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// rawFabricClient speaks the wire protocol by hand, so tests can send frames
// no honest Worker would: payloads whose checksum disagrees with their bytes.
type rawFabricClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	spec []byte
	gen  int64
}

func dialRawClient(t *testing.T, addr, worker string) *rawFabricClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	c := &rawFabricClient{t: t, conn: conn, br: bufio.NewReader(conn)}
	hello := c.rpc(request{Op: "hello", Worker: worker})
	if !hello.OK {
		t.Fatalf("hello: %+v", hello)
	}
	c.spec = hello.Spec
	c.gen = hello.Gen
	return c
}

func (c *rawFabricClient) rpc(req request) response {
	c.t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	c.conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatalf("raw write: %v", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("raw read: %v", err)
	}
	resp, err := decodeResponse(bytes.TrimRight(line, "\n"))
	if err != nil {
		c.t.Fatalf("raw decode: %v", err)
	}
	return resp
}

func (c *rawFabricClient) close() { c.conn.Close() }

func TestCorruptWorkerChaosAcceptance(t *testing.T) {
	const (
		n          = 32
		poisonCell = 9 // fails deterministically on every worker
		crashCell  = 5 // kills its executor on the first two attempts
	)
	golden := make([][]byte, n)
	for i := range golden {
		golden[i] = []byte(fmt.Sprintf("cell-%d:%d", i, i*i))
	}
	spec := []byte(`{"kind":"corrupt-chaos"}`)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")
	defer saveJournalArtifact(t, jpath)

	// The poisoned cell never completes, so the shared gapless collector
	// would misfire. Each dispatcher incarnation gets its own sink (a
	// restart replays journaled rows through Consume again); the final
	// byte-identical check runs against the restarted incarnation's output.
	type sink struct {
		mu      sync.Mutex
		flushed []int
		rows    map[int][]byte
	}
	mkSink := func() *sink { return &sink{rows: map[int][]byte{}} }
	consumeInto := func(s *sink) func(int, []byte) error {
		return func(i int, res []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if len(s.flushed) > 0 && i <= s.flushed[len(s.flushed)-1] {
				t.Errorf("consume out of order: %d after %d", i, s.flushed[len(s.flushed)-1])
			}
			s.flushed = append(s.flushed, i)
			s.rows[i] = append([]byte(nil), res...)
			return nil
		}
	}

	mkConfig := func(s *sink) Config {
		return Config{
			Cells:           n,
			Spec:            spec,
			Consume:         consumeInto(s),
			JournalPath:     jpath,
			FS:              vfs.OS{},
			LeaseTTL:        3 * time.Second,
			DisconnectGrace: 300 * time.Millisecond,
			HeartbeatEvery:  200 * time.Millisecond,
			Window:          n,
			SpecMinSamples:  1 << 30, // no speculation: this run is about integrity
			PoisonAfter:     2,
			RetryBackoff:    20 * time.Millisecond,
			IdleWaitMS:      25,
		}
	}

	d1, err := NewDispatcher(mkConfig(mkSink()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dumpDecisions(t, d1)

	// ---- phase 1: the byte-flipper, alone and synchronously ----
	// It leases a cell, computes the RIGHT row and the right checksum for it,
	// then flips a payload byte before sending: corruption between
	// computation and transport. The dispatcher must reject the completion at
	// the checksum gate and quarantine the sender on the spot.
	flip := dialRawClient(t, addr, "w-flip")
	lease := flip.rpc(request{Op: "lease", Worker: "w-flip"})
	if !lease.Granted {
		t.Fatalf("flipper lease: %+v", lease)
	}
	row := golden[lease.Cell]
	corrupted := append([]byte(nil), row...)
	corrupted[0] ^= 0xff
	done := flip.rpc(request{
		Op: "complete", Worker: "w-flip", Cell: lease.Cell, Epoch: lease.Epoch,
		Gen: lease.Gen, Result: corrupted,
		Sum: completionSum(specSHA(flip.spec), lease.Cell, row),
	})
	if !done.Rejected {
		t.Fatalf("corrupt completion not rejected: %+v", done)
	}
	if again := flip.rpc(request{Op: "lease", Worker: "w-flip"}); again.Granted || !again.Quarantined {
		t.Fatalf("flipper not quarantined after integrity violation: %+v", again)
	}
	flip.close()
	if ctrs := d1.Counters(); ctrs.ChecksumRejects < 1 || ctrs.QuarantinedWorkers < 1 {
		t.Fatalf("phase 1 counters = %+v", ctrs)
	}

	// ---- phase 2: honest fleet + crash-looper + deterministic bad cell ----
	var (
		crashes   atomic.Int64
		poisonTry atomic.Int64
		workers   sync.Map
	)
	mkFn := func(id string) func(context.Context, int, func(float64)) ([]byte, error) {
		return func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
			switch cell {
			case poisonCell:
				poisonTry.Add(1)
				return nil, errors.New("synthetic: this cell is bad on every worker")
			case crashCell:
				if crashes.Add(1) <= 2 {
					if w, ok := workers.Load(id); ok {
						w.(*Worker).Kill()
					}
					<-ctx.Done()
					return nil, ctx.Err()
				}
			}
			return golden[cell], nil
		}
	}
	var startWorker func(id string)
	startWorker = func(id string) {
		w, err := NewWorker(WorkerConfig{
			ID:             id,
			Addr:           addr,
			Fn:             mkFn(id),
			RequestTimeout: 500 * time.Millisecond,
			IdleWait:       25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers.Store(id, w)
		go func() {
			err := w.Run(context.Background())
			// A killed worker crash-loops: its manager restarts it under a
			// fresh identity, as a fleet supervisor would.
			if err != nil && crashes.Load() <= 2 {
				startWorker(fmt.Sprintf("%s-r%d", id, crashes.Load()))
			}
		}()
	}
	for _, id := range []string{"w-a", "w-b", "w-c"} {
		startWorker(id)
	}

	// Wait until both containment verdicts exist, then kill the dispatcher
	// mid-campaign: the restart must re-arm them from the journal alone.
	waitUntil(t, 30*time.Second, "poison + quarantine recorded", func() bool {
		h := d1.Health()
		return h.Poisoned >= 1 && h.QuarantinedWorkers >= 1
	})
	d1.Close()

	finalSink := mkSink()
	d2, err := NewDispatcher(mkConfig(finalSink))
	if err != nil {
		t.Fatal(err)
	}
	listenOn(t, d2, addr)
	defer d2.Close()
	defer dumpDecisions(t, d2)

	// The journal must have replayed both verdicts into the new incarnation.
	h := d2.Health()
	if h.Poisoned < 1 || len(h.PoisonedCells) < 1 || h.PoisonedCells[0] != poisonCell {
		t.Fatalf("restart lost the poison verdict: %+v", h)
	}
	if len(h.Quarantined) != 1 || h.Quarantined[0] != "w-flip" {
		t.Fatalf("restart lost the quarantine verdict: %+v", h)
	}
	// The flipper, reconnecting to the new incarnation, is still fenced.
	flip2 := dialRawClient(t, addr, "w-flip")
	if r := flip2.rpc(request{Op: "lease", Worker: "w-flip"}); r.Granted || !r.Quarantined {
		t.Fatalf("quarantine not enforced after restart: %+v", r)
	}
	flip2.close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = d2.Wait(ctx)
	var perr *PoisonedError
	if !errors.As(err, &perr) {
		t.Fatalf("Wait = %v, want *PoisonedError (counters=%+v)", err, d2.Counters())
	}
	if len(perr.Cells) != 1 || perr.Cells[0].Cell != poisonCell {
		t.Fatalf("poisoned cells = %+v, want exactly cell %d", perr.Cells, poisonCell)
	}

	// Byte-identical healthy output: across corruption, poisoning, a crash
	// loop, and a dispatcher restart, every non-poisoned row equals the
	// sequential golden and arrives in strict index order (the consume hook
	// already asserted monotonicity).
	finalSink.mu.Lock()
	defer finalSink.mu.Unlock()
	if len(finalSink.rows) != n-1 {
		t.Fatalf("flushed %d rows, want %d (all but the poisoned cell)", len(finalSink.rows), n-1)
	}
	for i := 0; i < n; i++ {
		if i == poisonCell {
			if _, ok := finalSink.rows[i]; ok {
				t.Fatalf("poisoned cell %d reached the consumer", i)
			}
			continue
		}
		if !bytes.Equal(finalSink.rows[i], golden[i]) {
			t.Fatalf("row %d = %q, want %q", i, finalSink.rows[i], golden[i])
		}
	}
	// The machinery demonstrably fired: the bad cell was tried on at least
	// two distinct workers, the crasher crashed, the flipper was rejected.
	if got := poisonTry.Load(); got < 2 {
		t.Errorf("bad cell executed %d times, want ≥2 (distinct-worker poisoning)", got)
	}
	if got := crashes.Load(); got < 2 {
		t.Errorf("crash-looper crashed %d times, want ≥2", got)
	}
}
