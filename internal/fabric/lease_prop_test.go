package fabric

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
)

// TestLeasePropertyInterleavings is the satellite property test for lease
// expiry vs. late completion races: for many seeds it interleaves grants,
// heartbeats, expiries (clock advances), duplicate and stale completions,
// disconnects, and worker rejoins in seeded random orders, then drives the
// campaign to completion and asserts the two invariants the fabric's
// correctness rests on:
//
//  1. exactly-once output — every cell is consumed exactly once, in strict
//     index order, no matter which duplicate won;
//  2. monotone lease epochs — a cell's high-water epoch never decreases, so
//     stale messages stay recognisable forever.
//
// Failures print the seed for replay.
func TestLeasePropertyInterleavings(t *testing.T) {
	seeds := 150
	steps := 400
	if testing.Short() {
		seeds = 25
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runLeaseInterleaving(t, uint64(seed), steps)
		})
	}
}

// heldLease is one lease the property driver knows about — possibly long
// since reclaimed by the dispatcher (that is the point: we replay old
// leases' heartbeats and completions to model lag and rejoin).
type heldLease struct {
	worker string
	conn   int64
	cell   int
	epoch  int64
}

func runLeaseInterleaving(t *testing.T, seed uint64, steps int) {
	const cells = 12
	const workers = 4

	var mu sync.Mutex
	consumed := make(map[int]int)
	nextIdx := 0
	col := func(i int, res []byte) error {
		mu.Lock()
		defer mu.Unlock()
		consumed[i]++
		if i != nextIdx {
			t.Errorf("seed %d: consume index %d, want %d", seed, i, nextIdx)
		}
		nextIdx++
		if want := fmt.Sprintf("v%d", i); string(res) != want {
			t.Errorf("seed %d: cell %d payload %q, want %q", seed, i, res, want)
		}
		return nil
	}

	d, err := NewDispatcher(Config{
		Cells:           cells,
		Consume:         col,
		LeaseTTL:        10 * time.Second,
		DisconnectGrace: 2 * time.Second,
		Window:          5,
		SpecMinSamples:  2,
		SpecPercentile:  0.5,
		SpecMultiplier:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	d.now = clk.now

	rng := des.NewRNG(seed).Stream("fabric/lease-prop")
	var held []heldLease // every lease ever granted, stale ones included
	highWater := make([]int64, cells)

	checkMonotone := func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		for i := range d.cells {
			if d.cells[i].epoch < highWater[i] {
				t.Fatalf("seed %d: cell %d epoch regressed %d → %d", seed, i, highWater[i], d.cells[i].epoch)
			}
			highWater[i] = d.cells[i].epoch
			if len(d.cells[i].leases) > 2 {
				t.Fatalf("seed %d: cell %d carries %d concurrent leases", seed, i, len(d.cells[i].leases))
			}
			if (d.cells[i].state == stateDone || d.cells[i].state == statePoisoned) && len(d.cells[i].leases) != 0 {
				t.Fatalf("seed %d: terminal cell %d still holds leases", seed, i)
			}
		}
	}

	workerName := func(k int) string { return fmt.Sprintf("w%d", k) }

	for step := 0; step < steps; step++ {
		switch rng.Intn(6) {
		case 0: // a worker asks for work (drives sweeps + speculation too)
			k := rng.Intn(workers)
			resp := d.grant(workerName(k), int64(k))
			if resp.Granted {
				held = append(held, heldLease{workerName(k), int64(k), resp.Cell, resp.Epoch})
			}
		case 1: // time passes — possibly past lease TTLs
			clk.advance(time.Duration(rng.Intn(8000)) * time.Millisecond)
		case 2: // a random held lease (live or long-dead) completes
			if len(held) == 0 {
				continue
			}
			l := held[rng.Intn(len(held))]
			complete(d, l.worker, l.cell, l.epoch, 1, []byte(fmt.Sprintf("v%d", l.cell)), "")
		case 3: // a random held lease heartbeats (rejoin on a fresh conn)
			if len(held) == 0 {
				continue
			}
			l := held[rng.Intn(len(held))]
			conn := l.conn
			if rng.Intn(2) == 0 {
				conn = int64(100 + rng.Intn(100)) // reconnected elsewhere
			}
			d.heartbeat(l.worker, l.cell, l.epoch, 1, conn)
		case 4: // a connection drops abruptly
			d.dropConn(int64(rng.Intn(workers)))
		case 5: // duplicate completion of an already-completed lease
			if len(held) == 0 {
				continue
			}
			l := held[rng.Intn(len(held))]
			complete(d, l.worker, l.cell, l.epoch, 1, []byte(fmt.Sprintf("v%d", l.cell)), "")
		}
		checkMonotone()
	}

	// Drive the campaign to completion honestly: grant and complete until
	// every cell flushed (advancing the clock past stuck leases).
	for i := 0; i < 10_000; i++ {
		d.mu.Lock()
		doneNow := d.done
		d.mu.Unlock()
		if doneNow {
			break
		}
		resp := d.grant("finisher", 999)
		if resp.Granted {
			held = append(held, heldLease{"finisher", 999, resp.Cell, resp.Epoch})
			complete(d, "finisher", resp.Cell, resp.Epoch, 1, []byte(fmt.Sprintf("v%d", resp.Cell)), "")
		} else if !resp.Done {
			clk.advance(11 * time.Second) // expire whatever is stuck
		}
		checkMonotone()
	}

	// Replay every lease's completion once more: all must dedupe or go
	// stale, none may re-consume.
	for _, l := range held {
		resp := complete(d, l.worker, l.cell, l.epoch, 1, []byte(fmt.Sprintf("v%d", l.cell)), "")
		if !resp.Duplicate && !resp.Stale {
			t.Fatalf("seed %d: post-campaign completion of cell %d epoch %d accepted", seed, l.cell, l.epoch)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < cells; i++ {
		if consumed[i] != 1 {
			t.Fatalf("seed %d: cell %d consumed %d times, want exactly once", seed, i, consumed[i])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Wait(ctx); err != nil {
		t.Fatalf("seed %d: Wait: %v", seed, err)
	}
}
