package fabric

// Fuzz coverage for the wire-protocol decoders: any byte sequence — hostile,
// truncated, or deeply nested — must come back as (value, nil) or (zero,
// error), never a panic, and an accepted frame must respect every bound the
// decoder promises (op vocabulary, payload caps, non-negative campaign
// shape). `go test -run=Fuzz -fuzz=FuzzDecodeRequest` explores further; the
// seeded corpus below runs on every plain `go test`.

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"hello","worker":"w1"}`,
		`{"op":"lease","worker":"w1"}`,
		`{"op":"complete","worker":"w1","cell":3,"epoch":2,"gen":1,"result":"aGk=","sum":12345}`,
		`{"op":"complete","cell":-1,"epoch":-9223372036854775808}`,
		`{"op":"heartbeat","cell":99999999999}`,
		`{"op":"nonsense"}`,
		`{"op":""}`,
		`{}`,
		``,
		`not json at all`,
		`{"op":"complete","result":"` + strings.Repeat("A", 64) + `"}`,
		`[1,2,3]`,
		`{"op":"hello","worker":"` + strings.Repeat("x", 300) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := decodeRequest(line)
		if err != nil {
			return
		}
		if !knownOp(req.Op) {
			t.Fatalf("accepted unknown op %q", req.Op)
		}
		if len(req.Result) > maxResultBytes {
			t.Fatalf("accepted %d-byte result past the %d cap", len(req.Result), maxResultBytes)
		}
		if len(line) > maxLine {
			t.Fatalf("accepted %d-byte line past the %d cap", len(line), maxLine)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	seeds := []string{
		`{"ok":true,"granted":true,"cell":5,"epoch":1,"gen":2}`,
		`{"ok":true,"cells":48,"lease_ms":3000,"heartbeat_ms":300,"spec":{"kind":"x"}}`,
		`{"ok":true,"cells":-1}`,
		`{"ok":true,"lease_ms":-5}`,
		`{"ok":true,"quarantined":true,"wait_ms":25}`,
		`{"ok":false,"error":"nope"}`,
		`{"done":true}`,
		``,
		`{"spec":"not an object`,
		`{"ok":true,"wait_ms":-9223372036854775808}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		resp, err := decodeResponse(line)
		if err != nil {
			return
		}
		if resp.Cells < 0 || resp.LeaseMS < 0 || resp.HeartbeatMS < 0 || resp.WaitMS < 0 {
			t.Fatalf("accepted negative campaign shape: %+v", resp)
		}
		if len(resp.Spec) > maxLine {
			t.Fatalf("accepted %d-byte spec past the %d cap", len(resp.Spec), maxLine)
		}
		// An accepted spec must round-trip: the worker hashes these bytes as
		// the campaign identity, so they must at least be valid JSON when set.
		if len(resp.Spec) > 0 && !json.Valid(resp.Spec) {
			t.Fatalf("accepted non-JSON spec %q", resp.Spec)
		}
	})
}
