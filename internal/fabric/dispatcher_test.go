package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-cranked clock for driving lease deadlines without
// sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// collector gathers flushed results and asserts strict index order.
type collector struct {
	mu   sync.Mutex
	t    *testing.T
	rows [][]byte
}

func (c *collector) consume(i int, res []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i != len(c.rows) {
		c.t.Errorf("consume out of order: got index %d, want %d", i, len(c.rows))
	}
	c.rows = append(c.rows, append([]byte(nil), res...))
	return nil
}

func (c *collector) snapshot() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.rows))
	copy(out, c.rows)
	return out
}

func payload(i int) []byte { return []byte(fmt.Sprintf("cell-%d", i)) }

// newTestDispatcher builds an unlistened dispatcher with a fake clock, so
// tests drive the lease machine directly and deterministically.
func newTestDispatcher(t *testing.T, cells int, mutate func(*Config)) (*Dispatcher, *collector, *fakeClock) {
	t.Helper()
	col := &collector{t: t}
	cfg := Config{
		Cells:           cells,
		Consume:         col.consume,
		LeaseTTL:        10 * time.Second,
		DisconnectGrace: 2 * time.Second,
		Window:          1024,
		SpecMinSamples:  3,
		SpecPercentile:  0.5,
		SpecMultiplier:  2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	d.now = clk.now
	return d, col, clk
}

func mustGrant(t *testing.T, d *Dispatcher, worker string, conn int64) (cell int, epoch int64) {
	t.Helper()
	resp := d.grant(worker, conn)
	if !resp.Granted {
		t.Fatalf("grant to %s refused: %+v", worker, resp)
	}
	return resp.Cell, resp.Epoch
}

// complete submits a completion carrying the checksum a faithful worker would
// attach, so in-process tests exercise the post-verification paths.
func complete(d *Dispatcher, worker string, cell int, epoch, gen int64, row []byte, errStr string) response {
	return d.complete(worker, cell, epoch, gen, row, completionSum(d.specSHAHex, cell, row), errStr)
}

func TestGrantCompleteFlushInOrder(t *testing.T) {
	d, col, _ := newTestDispatcher(t, 4, nil)
	type held struct {
		cell  int
		epoch int64
	}
	var leases []held
	for i := 0; i < 4; i++ {
		c, e := mustGrant(t, d, "w1", 1)
		leases = append(leases, held{c, e})
	}
	// Complete in reverse: nothing may flush until cell 0 lands.
	for i := 3; i >= 0; i-- {
		l := leases[i]
		resp := complete(d, "w1", l.cell, l.epoch, 1, payload(l.cell), "")
		if !resp.OK || resp.Stale || resp.Duplicate {
			t.Fatalf("complete cell %d: %+v", l.cell, resp)
		}
		if i > 0 && len(col.snapshot()) != 0 {
			t.Fatalf("flushed before prefix complete: %d rows", len(col.snapshot()))
		}
	}
	rows := col.snapshot()
	if len(rows) != 4 {
		t.Fatalf("flushed %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if !bytes.Equal(r, payload(i)) {
			t.Fatalf("row %d = %q, want %q", i, r, payload(i))
		}
	}
	if err := d.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestWindowGatesFreshGrants(t *testing.T) {
	d, _, _ := newTestDispatcher(t, 10, func(c *Config) { c.Window = 2 })
	c0, _ := mustGrant(t, d, "w1", 1)
	c1, e1 := mustGrant(t, d, "w1", 1)
	if c0 != 0 || c1 != 1 {
		t.Fatalf("granted cells %d,%d, want 0,1", c0, c1)
	}
	// Window [0,2) is fully leased: a third request must wait, not get cell 2.
	if resp := d.grant("w2", 2); resp.Granted {
		t.Fatalf("grant beyond window: %+v", resp)
	}
	// Completing cell 1 does not move the prefix (0 still open) — still gated.
	complete(d, "w1", c1, e1, 1, payload(1), "")
	if resp := d.grant("w2", 2); resp.Granted {
		t.Fatalf("grant while prefix open: %+v", resp)
	}
}

func TestLeaseExpiryRequeuesWithHigherEpoch(t *testing.T) {
	d, col, clk := newTestDispatcher(t, 1, nil)
	cell, epoch1 := mustGrant(t, d, "w1", 1)
	clk.advance(11 * time.Second) // past LeaseTTL
	cell2, epoch2 := mustGrant(t, d, "w2", 2)
	if cell2 != cell {
		t.Fatalf("requeued grant got cell %d, want %d", cell2, cell)
	}
	if epoch2 <= epoch1 {
		t.Fatalf("epoch not monotone across requeue: %d then %d", epoch1, epoch2)
	}
	// The fenced-off original's completion is stale and must not flush.
	if resp := complete(d, "w1", cell, epoch1, 1, payload(cell), ""); !resp.Stale {
		t.Fatalf("stale completion accepted: %+v", resp)
	}
	if len(col.snapshot()) != 0 {
		t.Fatal("stale completion reached the consumer")
	}
	// The original's heartbeat answers fenced (self-fence signal).
	if resp := d.heartbeat("w1", cell, epoch1, 1, 1); !resp.Fenced {
		t.Fatalf("heartbeat on reclaimed lease not fenced: %+v", resp)
	}
	// The new lease completes exactly once.
	if resp := complete(d, "w2", cell, epoch2, 1, payload(cell), ""); resp.Stale || resp.Duplicate {
		t.Fatalf("live completion rejected: %+v", resp)
	}
	if got := len(col.snapshot()); got != 1 {
		t.Fatalf("flushed %d rows, want 1", got)
	}
	ctrs := d.Counters()
	if ctrs.Requeues != 1 || ctrs.RequeueExpiry != 1 || ctrs.Stale != 1 || ctrs.Fenced != 1 {
		t.Fatalf("counters = %+v", ctrs)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 1, nil)
	cell, epoch := mustGrant(t, d, "w1", 1)
	for i := 0; i < 5; i++ {
		clk.advance(8 * time.Second) // under TTL each step, far past it in sum
		if resp := d.heartbeat("w1", cell, epoch, 1, 1); resp.Fenced {
			t.Fatalf("heartbeat %d fenced a live lease", i)
		}
	}
	if resp := complete(d, "w1", cell, epoch, 1, payload(cell), ""); resp.Stale {
		t.Fatal("completion stale despite heartbeats")
	}
}

func TestDisconnectGraceThenReclaim(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 2, nil)
	cell, epoch := mustGrant(t, d, "w1", 1)
	d.dropConn(1)
	// Within the grace the lease survives: a rejoin heartbeat restores it.
	clk.advance(time.Second)
	if resp := d.heartbeat("w1", cell, epoch, 1, 7); resp.Fenced {
		t.Fatal("rejoin heartbeat within grace was fenced")
	}
	// Drop again, let the grace lapse: now the cell is reclaimed.
	d.dropConn(7)
	clk.advance(3 * time.Second)
	c2, e2 := mustGrant(t, d, "w2", 2)
	if c2 != cell || e2 <= epoch {
		t.Fatalf("after grace: got cell %d epoch %d, want cell %d epoch > %d", c2, e2, cell, epoch)
	}
	ctrs := d.Counters()
	if ctrs.RequeueDisconnect != 1 {
		t.Fatalf("RequeueDisconnect = %d, want 1 (counters %+v)", ctrs.RequeueDisconnect, ctrs)
	}
}

func TestSpeculationAndDedupe(t *testing.T) {
	d, col, clk := newTestDispatcher(t, 4, nil)
	// Straggler takes cell 0; three fast completions build the runtime sample.
	strag, stragEpoch := mustGrant(t, d, "w-slow", 1)
	for i := 0; i < 3; i++ {
		c, e := mustGrant(t, d, "w-fast", 2)
		clk.advance(100 * time.Millisecond)
		complete(d, "w-fast", c, e, 1, payload(c), "")
	}
	// No pending cells left; idle worker + aged straggler ⇒ speculation.
	// Keep the straggler's lease alive with a heartbeat first.
	d.heartbeat("w-slow", strag, stragEpoch, 1, 1)
	clk.advance(5 * time.Second)
	d.heartbeat("w-slow", strag, stragEpoch, 1, 1)
	resp := d.grant("w-spec", 3)
	if !resp.Granted || !resp.Speculative || resp.Cell != strag {
		t.Fatalf("expected speculative duplicate of cell %d, got %+v", strag, resp)
	}
	if resp.Epoch <= stragEpoch {
		t.Fatalf("speculative epoch %d not above original %d", resp.Epoch, stragEpoch)
	}
	// No second duplicate of the same cell.
	if r2 := d.grant("w-spec2", 4); r2.Granted {
		t.Fatalf("third lease granted on one cell: %+v", r2)
	}
	// Speculative copy completes first and wins; the straggler dedupes.
	if r := complete(d, "w-spec", strag, resp.Epoch, 1, payload(strag), ""); r.Stale || r.Duplicate {
		t.Fatalf("speculative completion rejected: %+v", r)
	}
	if r := complete(d, "w-slow", strag, stragEpoch, 1, payload(strag), ""); !r.Duplicate {
		t.Fatalf("original completion not deduped: %+v", r)
	}
	if got := len(col.snapshot()); got != 4 {
		t.Fatalf("flushed %d rows, want 4", got)
	}
	ctrs := d.Counters()
	if ctrs.SpeculativeGrants != 1 || ctrs.SpeculativeWins != 1 || ctrs.Deduped != 1 {
		t.Fatalf("counters = %+v", ctrs)
	}
	if err := d.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestCellFailurePoisonsAfterDistinctWorkers drives one cell through failures
// on PoisonAfter distinct workers and checks the campaign completes around it:
// every healthy row is delivered in order, the poisoned index is omitted, and
// Wait reports the gap as a *PoisonedError instead of a hard failure.
func TestCellFailurePoisonsAfterDistinctWorkers(t *testing.T) {
	var mu sync.Mutex
	var flushed []int
	d, _, clk := newTestDispatcher(t, 5, func(c *Config) {
		c.PoisonAfter = 2
		c.QuarantineAfter = 100 // keep failing workers leasable for this test
		c.RetryBackoff = time.Millisecond
		// The shared collector demands gapless indices; this campaign
		// legitimately skips the poisoned cell, so record indices instead.
		c.Consume = func(i int, res []byte) error {
			mu.Lock()
			defer mu.Unlock()
			if len(flushed) > 0 && i <= flushed[len(flushed)-1] {
				t.Errorf("consume out of order: %d after %d", i, flushed[len(flushed)-1])
			}
			flushed = append(flushed, i)
			return nil
		}
	})
	// Cell 0 fails on two distinct workers; between attempts the retry
	// backoff must lapse before the cell is grantable again.
	c0, e0 := mustGrant(t, d, "w1", 1)
	if c0 != 0 {
		t.Fatalf("first grant = cell %d, want 0", c0)
	}
	complete(d, "w1", c0, e0, 1, nil, "boom")
	clk.advance(10 * time.Millisecond)
	c0b, e0b := mustGrant(t, d, "w2", 2)
	if c0b != 0 || e0b <= e0 {
		t.Fatalf("requeued grant = cell %d epoch %d, want cell 0 epoch > %d", c0b, e0b, e0)
	}
	complete(d, "w2", c0b, e0b, 1, nil, "boom again")

	// The rest of the grid completes normally around the poisoned cell.
	for i := 1; i < 5; i++ {
		c, e := mustGrant(t, d, "w1", 1)
		if c != i {
			t.Fatalf("grant = cell %d, want %d", c, i)
		}
		complete(d, "w1", c, e, 1, payload(c), "")
	}

	err := d.Wait(context.Background())
	var perr *PoisonedError
	if !errors.As(err, &perr) {
		t.Fatalf("Wait = %v, want *PoisonedError", err)
	}
	if len(perr.Cells) != 1 || perr.Cells[0].Cell != 0 {
		t.Fatalf("poisoned cells = %+v, want exactly cell 0", perr.Cells)
	}
	// Output skips the poisoned index but keeps every other row in order.
	mu.Lock()
	got := append([]int(nil), flushed...)
	mu.Unlock()
	if len(got) != 4 || got[0] != 1 {
		t.Fatalf("flushed indices %v, want [1 2 3 4] (poisoned cell omitted)", got)
	}
	ctrs := d.Counters()
	if ctrs.Failed != 2 || ctrs.Poisoned != 1 {
		t.Fatalf("Failed=%d Poisoned=%d, want 2 and 1 (counters %+v)", ctrs.Failed, ctrs.Poisoned, ctrs)
	}
	h := d.Health()
	if h.Poisoned != 1 || len(h.PoisonedCells) != 1 || h.PoisonedCells[0] != 0 {
		t.Fatalf("health poison view = %+v", h)
	}
	if !d.grant("w3", 3).Done {
		t.Fatal("lease response does not tell workers the campaign is done")
	}
}

// TestRepeatFailuresOnOneWorkerHitRetryCap checks the absolute retry cap: a
// cell failing over and over on the same worker cannot dodge poisoning by
// never reaching PoisonAfter distinct workers.
func TestRepeatFailuresOnOneWorkerHitRetryCap(t *testing.T) {
	d, _, clk := newTestDispatcher(t, 1, func(c *Config) {
		c.PoisonAfter = 3
		c.MaxCellRetries = 4
		c.QuarantineAfter = 100
		c.RetryBackoff = time.Millisecond
	})
	for i := 0; i < 4; i++ {
		clk.advance(time.Second) // clear any retry backoff
		c, e := mustGrant(t, d, "w1", 1)
		if c != 0 {
			t.Fatalf("attempt %d granted cell %d, want 0", i, c)
		}
		complete(d, "w1", c, e, 1, nil, "flaky")
	}
	err := d.Wait(context.Background())
	var perr *PoisonedError
	if !errors.As(err, &perr) || len(perr.Cells) != 1 {
		t.Fatalf("Wait = %v, want single-cell *PoisonedError", err)
	}
	if got := d.Counters().CellRetries; got != 3 {
		t.Fatalf("CellRetries = %d, want 3 (4th failure poisons instead of requeueing)", got)
	}
}

func TestConsumeErrorAbortsCampaign(t *testing.T) {
	wantErr := errors.New("disk full")
	d, err := NewDispatcher(Config{
		Cells:   2,
		Consume: func(i int, res []byte) error { return wantErr },
	})
	if err != nil {
		t.Fatal(err)
	}
	cell, epoch := mustGrant(t, d, "w1", 1)
	complete(d, "w1", cell, epoch, 1, payload(cell), "")
	if got := d.Wait(context.Background()); !errors.Is(got, wantErr) {
		t.Fatalf("Wait = %v, want consume error", got)
	}
}

func TestGoodbyeRequeuesImmediately(t *testing.T) {
	d, _, _ := newTestDispatcher(t, 1, nil)
	cell, epoch := mustGrant(t, d, "w1", 1)
	d.goodbye("w1", 1)
	// No clock advance needed: the cell is grantable again at once.
	c2, e2 := mustGrant(t, d, "w2", 2)
	if c2 != cell || e2 <= epoch {
		t.Fatalf("after goodbye: cell %d epoch %d, want cell %d epoch > %d", c2, e2, cell, epoch)
	}
}

// TestWorkerDispatcherEndToEnd runs a real dispatcher and two workers over
// TCP: the full protocol path, ending with both workers observing Done.
func TestWorkerDispatcherEndToEnd(t *testing.T) {
	const n = 20
	col := &collector{t: t}
	d, err := NewDispatcher(Config{
		Cells:    n,
		Spec:     []byte(`{"kind":"test"}`),
		Consume:  col.consume,
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	spec, cells, err := FetchSpec(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cells != n || string(spec) != `{"kind":"test"}` {
		t.Fatalf("FetchSpec = %q cells=%d", spec, cells)
	}

	fn := func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
		progress(1)
		return payload(cell), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{ID: fmt.Sprintf("w%d", i), Addr: addr, Fn: fn})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()
	rows := col.snapshot()
	if len(rows) != n {
		t.Fatalf("flushed %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if !bytes.Equal(r, payload(i)) {
			t.Fatalf("row %d = %q", i, r)
		}
	}
}

// TestWorkerDrainFinishesInFlightCell: a drained worker completes the cell
// it holds, says goodbye, and exits; the health snapshot reports draining.
func TestWorkerDrainFinishesInFlightCell(t *testing.T) {
	col := &collector{t: t}
	d, err := NewDispatcher(Config{Cells: 2, Consume: col.consume})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	inCell := make(chan struct{})
	release := make(chan struct{})
	var w *Worker
	w, err = NewWorker(WorkerConfig{
		ID: "drainer", Addr: addr,
		Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
			if cell == 0 {
				close(inCell)
				<-release
			}
			return payload(cell), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(context.Background()) }()

	<-inCell // worker is mid-cell
	w.Drain()
	if s := w.Snapshot(); s.Health != HealthDraining {
		t.Fatalf("health = %q mid-drain, want draining", s.Health)
	}
	close(release)
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker did not exit")
	}
	// The in-flight cell was completed, not abandoned.
	if got := d.Counters().Completed; got != 1 {
		t.Fatalf("completed = %d, want 1 (the in-flight cell)", got)
	}
	if w.Snapshot().CellsDone != 1 {
		t.Fatalf("worker cells done = %d, want 1", w.Snapshot().CellsDone)
	}
}

func TestAggregateHealth(t *testing.T) {
	rep := AggregateHealth([]WorkerSnapshot{
		{ID: "a", Health: HealthOK, CellsDone: 3, LeaseCell: -1},
		{ID: "b", Health: HealthFenced, CellsDone: 2, LeaseCell: 7, LeaseEpoch: 4},
	})
	if rep.Health != HealthFenced || rep.Fabric.CellsDone != 5 || rep.Fabric.LeaseCell != 7 {
		t.Fatalf("report = %+v", rep)
	}
	rep = AggregateHealth([]WorkerSnapshot{
		{ID: "a", Health: HealthDraining},
		{ID: "b", Health: HealthFenced},
	})
	if rep.Health != HealthDraining {
		t.Fatalf("draining must dominate, got %q", rep.Health)
	}
}
