package fabric

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestFabricChaosAcceptance is the acceptance test the tentpole demands: a
// full grid driven through the deterministic chaos proxy — random chunk
// drops and delays, a scripted asymmetric partition, and a worker killed
// mid-cell at a seeded point — plus an orchestrated straggler, and the
// output must still be byte-identical to the sequential golden. The run must
// actually exercise the machinery: at least one lease reclaim/requeue, one
// speculative duplicate, and one deduped completion, all visible in the
// decision log (written to $FABRIC_DECISION_LOG when set, so CI can upload
// it as an artifact).
//
// Three fault injections are deterministic by construction, not by timing:
//   - cell killCell's first execution kills its worker mid-cell (abrupt
//     close, no completion) → its lease is reclaimed after the disconnect
//     grace and the cell requeued;
//   - cell stragCell blocks every execution until the dispatcher holds two
//     live leases on it (original + speculative duplicate) with both
//     executors in flight — then both finish, so the second completion is
//     deduped first-result-wins;
//   - the chunk-level drop/delay faults come from the chaos proxy's seeded
//     RNG streams.
func TestFabricChaosAcceptance(t *testing.T) {
	const (
		n         = 48
		stragCell = 7
		killCell  = 12
		numLoops  = 4
	)
	golden := make([][]byte, n)
	for i := range golden {
		golden[i] = []byte(fmt.Sprintf("cell-%d:%d", i, i*i))
	}

	col := &collector{t: t}
	d, err := NewDispatcher(Config{
		Cells:           n,
		Spec:            []byte(`{"kind":"chaos"}`),
		Consume:         col.consume,
		LeaseTTL:        3 * time.Second,
		DisconnectGrace: 500 * time.Millisecond,
		HeartbeatEvery:  300 * time.Millisecond,
		Window:          16,
		SpecMinSamples:  5,
		SpecPercentile:  0.5,
		// Normal cells take ≥10ms (see mkFn), so the straggler threshold is
		// ≥600ms — above the 500ms disconnect grace. That ordering makes the
		// killed worker's lease deterministically reclaim-and-requeue before
		// any speculative duplicate could rescue its cell, while the
		// orchestrated straggler still crosses the threshold and speculates.
		SpecMultiplier: 60,
		IdleWaitMS:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defer dumpDecisions(t, d)

	// All worker traffic crosses the chaos proxy: seeded chunk drops (sever
	// the connection mid-stream) and delays, plus a scripted asymmetric
	// partition below.
	proxy, err := chaos.Listen(addr, chaos.Config{
		Seed:      42,
		Name:      "fabric-chaos",
		Drop:      0.01,
		DelayProb: 0.10,
		DelayMin:  time.Millisecond,
		DelayMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var (
		stragInFlight atomic.Int64
		stragRelease  = make(chan struct{})
		releaseOnce   sync.Once
		killExecs     atomic.Int64
		killDone      = make(chan struct{})
		killOnce      sync.Once
		workers       sync.Map // id → *Worker, so Fn can kill its own worker
	)

	mkFn := func(id string) func(context.Context, int, func(float64)) ([]byte, error) {
		return func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
			switch cell {
			case killCell:
				// First execution: die mid-cell, abruptly, without completing.
				if killExecs.Add(1) == 1 {
					if w, ok := workers.Load(id); ok {
						w.(*Worker).Kill()
					}
					killOnce.Do(func() { close(killDone) })
					<-ctx.Done()
					return nil, ctx.Err()
				}
			case stragCell:
				// Every execution stalls until the dispatcher has launched a
				// speculative duplicate and both copies are in flight.
				stragInFlight.Add(1)
				defer stragInFlight.Add(-1)
				progress(0.5)
				select {
				case <-stragRelease:
				case <-ctx.Done(): // fenced or killed: result discarded anyway
				}
			default:
				// Runtime floor keeping the straggler threshold above the
				// disconnect grace (see SpecMultiplier above).
				select {
				case <-time.After(10 * time.Millisecond):
				case <-ctx.Done():
				}
			}
			return golden[cell], nil
		}
	}

	startWorker := func(id string) *Worker {
		w, err := NewWorker(WorkerConfig{
			ID:             id,
			Addr:           proxy.Addr(),
			Fn:             mkFn(id),
			RequestTimeout: 500 * time.Millisecond,
			IdleWait:       50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers.Store(id, w)
		go w.Run(context.Background())
		return w
	}
	for i := 0; i < numLoops; i++ {
		startWorker(fmt.Sprintf("w%d", i))
	}

	// A replacement daemon joins after the seeded kill, as a real fleet
	// manager would restart a crashed worker.
	go func() {
		<-killDone
		startWorker("w-replacement")
	}()

	// Scripted asymmetric partition once the campaign is moving: workers'
	// requests are black-holed while dispatcher responses still flow — the
	// nastiest shape, silence without errors. Heal after 400ms; lease TTLs
	// are longer, so the campaign resumes where it stalled.
	go func() {
		for len(col.snapshot()) < 4 {
			time.Sleep(5 * time.Millisecond)
		}
		proxy.SetPartition(true, false)
		time.Sleep(400 * time.Millisecond)
		proxy.Heal()
	}()

	// Release the straggler only when speculation has demonstrably happened:
	// two live leases on the cell and two executors blocked inside it.
	go func() {
		for {
			d.mu.Lock()
			twoLeases := len(d.cells[stragCell].leases) == 2
			done := d.done
			d.mu.Unlock()
			if done {
				return
			}
			if twoLeases && stragInFlight.Load() >= 2 {
				releaseOnce.Do(func() { close(stragRelease) })
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := d.Wait(ctx); err != nil {
		t.Fatalf("campaign failed: %v (counters=%+v)", err, d.Counters())
	}

	// Byte-identical reassembly: the distributed, chaos-ridden run equals
	// the sequential golden, row for row, in strict index order.
	rows := col.snapshot()
	if len(rows) != n {
		t.Fatalf("flushed %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if !bytes.Equal(r, golden[i]) {
			t.Fatalf("row %d = %q, want %q", i, r, golden[i])
		}
	}

	// The fault machinery must have actually fired, not merely existed.
	ctrs := d.Counters()
	if ctrs.Requeues < 1 {
		t.Errorf("no lease reclaim/requeue happened (counters=%+v)", ctrs)
	}
	if ctrs.SpeculativeGrants < 1 {
		t.Errorf("no speculative duplicate was launched (counters=%+v)", ctrs)
	}
	if ctrs.Deduped < 1 {
		t.Errorf("no completion was deduped (counters=%+v)", ctrs)
	}
	// Exactly-once delivery regardless of at-least-once execution.
	if ctrs.Flushed != n {
		t.Errorf("flushed %d, want %d", ctrs.Flushed, n)
	}
	// The campaign cannot finish without killCell completing, which takes a
	// second execution after the seeded kill.
	if got := killExecs.Load(); got < 2 {
		t.Errorf("killCell executed %d times, want ≥2 (kill + re-run)", got)
	}

	// The decision log narrates each event kind at least once.
	log := strings.Join(d.Decisions(), "\n")
	for _, needle := range []string{"reclaim cell=", "requeue cell=", "speculate cell=", "dedupe cell=", "campaign-done"} {
		if !strings.Contains(log, needle) {
			t.Errorf("decision log missing %q", needle)
		}
	}
}

// dumpDecisions writes the decision log to $FABRIC_DECISION_LOG (CI uploads
// it as an artifact on failure) and echoes it on test failure.
func dumpDecisions(t *testing.T, d *Dispatcher) {
	decisions := d.Decisions()
	if path := os.Getenv("FABRIC_DECISION_LOG"); path != "" {
		os.WriteFile(path, []byte(strings.Join(decisions, "\n")+"\n"), 0o644)
	}
	if t.Failed() {
		tail := decisions
		if len(tail) > 100 {
			tail = tail[len(tail)-100:]
		}
		t.Logf("decision log tail:\n%s", strings.Join(tail, "\n"))
	}
}
