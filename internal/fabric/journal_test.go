package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// journalSpec is the campaign identity used across journal tests.
var journalSpec = []byte(`{"kind":"journal-test"}`)

func rowBytes(i int) []byte { return []byte(fmt.Sprintf("row-%d-payload", i)) }

// buildJournal creates a campaign journal with k appended cell records (in
// index order) and returns its raw bytes.
func buildJournal(t *testing.T, dir string, cells, k int) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "campaign.journal")
	j, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, cells)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resumed || rec.Gen != 1 {
		t.Fatalf("fresh open: %+v, want gen 1 unresumed", rec)
	}
	for i := 0; i < k; i++ {
		if err := j.AppendCell(i, rowBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestCampaignJournalTruncationProperty is the acceptance property: a
// campaign journal cut at EVERY byte offset must recover to a consistent
// DONE set — exactly the committed record prefix, never a lost middle
// record, never a duplicate, never a refusal. A cut before the first commit
// reinitializes as a fresh campaign (nothing was promised yet); any longer
// cut resumes with the generation bumped past the committed one.
func TestCampaignJournalTruncationProperty(t *testing.T) {
	const cells, k = 64, 20
	_, data := buildJournal(t, t.TempDir(), cells, k)

	dir := t.TempDir()
	prevRecovered := -1
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.journal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, cells)
		if err != nil {
			t.Fatalf("cut=%d: open refused: %v", cut, err)
		}
		// Committed prefix only: recovered rows must be exactly cells 0..m-1
		// in append order — a gap would mean a record was lost ahead of a
		// kept one, a duplicate would double-consume.
		m := len(rec.Rows)
		for i := 0; i < m; i++ {
			row, ok := rec.Rows[i]
			if !ok {
				t.Fatalf("cut=%d: recovered %d rows but cell %d missing (gap)", cut, m, i)
			}
			if !bytes.Equal(row, rowBytes(i)) {
				t.Fatalf("cut=%d: cell %d = %q, want %q", cut, i, row, rowBytes(i))
			}
		}
		// Monotone: cutting fewer bytes can never recover more records.
		if m < prevRecovered {
			t.Fatalf("cut=%d: recovered %d rows, previous cut recovered %d", cut, m, prevRecovered)
		}
		prevRecovered = m
		if rec.Resumed {
			if rec.Gen != 2 {
				t.Fatalf("cut=%d: resumed gen = %d, want 2", cut, rec.Gen)
			}
		} else {
			if rec.Gen != 1 || m != 0 {
				t.Fatalf("cut=%d: fresh reinit with gen=%d rows=%d", cut, rec.Gen, m)
			}
		}
		// The salvaged journal must be immediately usable: append one more
		// record and reopen — the write path proves the truncation left a
		// clean frame boundary.
		if err := j.AppendCell(cells-1, rowBytes(cells-1)); err != nil {
			t.Fatalf("cut=%d: append after salvage: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		_, rec2, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, cells)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(rec2.Rows) != m+1 {
			t.Fatalf("cut=%d: reopen recovered %d rows, want %d", cut, len(rec2.Rows), m+1)
		}
		if !bytes.Equal(rec2.Rows[cells-1], rowBytes(cells-1)) {
			t.Fatalf("cut=%d: appended record lost on reopen", cut)
		}
		os.Remove(path)
	}
}

// TestCampaignJournalTornTailSalvage: a partial frame at the tail — the
// artifact of a crash mid-append — is physically truncated away and the
// prefix survives.
func TestCampaignJournalTornTailSalvage(t *testing.T) {
	path, data := buildJournal(t, t.TempDir(), 16, 4)
	// Simulate a torn append: half a frame, no trailing newline.
	torn := appendCampaignFrame(nil, journalRecord{Kind: "cell", Cell: 9, Row: rowBytes(9)})
	torn = torn[:len(torn)/2]
	if err := os.WriteFile(path, append(append([]byte(nil), data...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Resumed || len(rec.Rows) != 4 || rec.SalvagedBytes != int64(len(torn)) {
		t.Fatalf("salvage: %+v (rows=%d), want 4 rows and %d salvaged bytes",
			rec, len(rec.Rows), len(torn))
	}
	if got, _ := os.ReadFile(path); int64(len(got)) <= int64(len(data)) {
		// gen bump appended after truncation: file = original + gen frame.
		t.Fatalf("journal not extended by gen bump: %d bytes", len(got))
	}
}

// TestCampaignJournalRefusesMidLogCorruption: damage with verifiable records
// after it is corruption, not a torn tail — resuming would silently lose a
// committed row, so the open must refuse.
func TestCampaignJournalRefusesMidLogCorruption(t *testing.T) {
	path, data := buildJournal(t, t.TempDir(), 16, 6)
	// Flip a payload byte in an early cell frame (past header+campaign+gen).
	lines := splitJournalLines(data)
	target := lines[3] // first cell record
	corrupted := append([]byte(nil), data...)
	corrupted[target.off+int64(len(target.text))-2] ^= 0x40
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 16)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("open = %v, want ErrJournalCorrupt", err)
	}
}

// TestCampaignJournalRefusesMismatchedCampaign: a journal can only resume
// the campaign it belongs to — spec hash and cell count are identity.
func TestCampaignJournalRefusesMismatchedCampaign(t *testing.T) {
	path, _ := buildJournal(t, t.TempDir(), 16, 2)
	if _, _, err := OpenCampaignJournal(vfs.OS{}, path, []byte(`{"kind":"other"}`), 16); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("spec mismatch: %v, want ErrCampaignMismatch", err)
	}
	if _, _, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 17); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("cell-count mismatch: %v, want ErrCampaignMismatch", err)
	}
}

// TestCampaignJournalGenerationMonotone: each reopen bumps the journaled
// generation — the fencing token a restarted dispatcher carries.
func TestCampaignJournalGenerationMonotone(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.journal")
	for want := int64(1); want <= 4; want++ {
		j, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 8)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Gen != want || j.Generation() != want {
			t.Fatalf("open %d: gen = %d, want %d", want, rec.Gen, want)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCampaignJournalFaultyAppend: a torn cell append through vfs.Faulty is
// exactly the mid-append crash the chaos test injects — the next open
// salvages the torn tail and keeps every whole record.
func TestCampaignJournalFaultyAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faulty.journal")
	faulty := vfs.NewFaulty(vfs.OS{}, vfs.FaultProfile{Seed: 11})
	j, _, err := OpenCampaignJournal(faulty, path, journalSpec, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendCell(i, rowBytes(i)); err != nil {
			t.Fatal(err)
		}
	}
	faulty.TearWrites(1)
	if err := j.AppendCell(3, rowBytes(3)); !errors.Is(err, vfs.ErrTornWrite) {
		t.Fatalf("torn append error = %v, want ErrTornWrite", err)
	}
	j.Close()
	_, rec, err := OpenCampaignJournal(vfs.OS{}, path, journalSpec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rows) != 3 {
		t.Fatalf("recovered %d rows after torn append, want 3", len(rec.Rows))
	}
	if rec.Gen != 2 {
		t.Fatalf("gen = %d, want 2", rec.Gen)
	}
}
