package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// listenOn binds d to addr, retrying briefly — a restarted dispatcher takes
// over the exact address its predecessor served, and the old listener may
// take a moment to release it.
func listenOn(t *testing.T, d *Dispatcher, addr string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := d.Listen(addr)
		if err == nil {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// saveJournalArtifact copies the campaign journal to $FABRIC_JOURNAL_ARTIFACT
// (CI uploads it alongside the decision log when the chaos test fails).
func saveJournalArtifact(t *testing.T, path string) {
	dst := os.Getenv("FABRIC_JOURNAL_ARTIFACT")
	if dst == "" {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Logf("journal artifact: %v", err)
		return
	}
	os.WriteFile(dst, data, 0o644)
}

// noRepairFS blocks Truncate once armed, modelling a dispatcher that dies at
// the torn append with no chance to roll the tail back — the journal wedges
// and the torn tail survives on disk for the restart to salvage.
type noRepairFS struct {
	vfs.FS
	armed atomic.Bool
}

func (f *noRepairFS) Truncate(path string, size int64) error {
	if f.armed.Load() {
		return errors.New("injected: crashed before tail repair")
	}
	return f.FS.Truncate(path, size)
}

// TestDispatcherRestartChaos is the tentpole acceptance test: a journaled
// campaign whose dispatcher is killed mid-flight — after a seeded torn write
// mid-journal-append via vfs.Faulty — then restarted on the same journal and
// the same address. The restarted run's output alone must be byte-identical
// to the sequential golden, with at least one cell resumed from the journal
// and at least one stale-generation completion fenced.
//
// The stale completion is deterministic by construction, not by timing:
// worker w-stale blocks inside its first cell (huge heartbeat interval, so
// nothing fences it) across the crash. Its gate is released only after the
// restarted dispatcher is listening, so its completion — which retries the
// same request after redial + re-hello — necessarily lands on the new
// incarnation carrying the old generation.
func TestDispatcherRestartChaos(t *testing.T) {
	const n = 40
	golden := make([][]byte, n)
	for i := range golden {
		golden[i] = []byte(fmt.Sprintf("cell-%d:%d", i, i*i))
	}
	spec := []byte(`{"kind":"restart-chaos"}`)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")
	defer saveJournalArtifact(t, jpath)

	noRepair := &noRepairFS{FS: vfs.OS{}}
	faulty := vfs.NewFaulty(noRepair, vfs.FaultProfile{Seed: 7})

	mkConfig := func(col *collector, fsys vfs.FS) Config {
		return Config{
			Cells:           n,
			Spec:            spec,
			Consume:         col.consume,
			JournalPath:     jpath,
			FS:              fsys,
			LeaseTTL:        10 * time.Second,
			DisconnectGrace: 500 * time.Millisecond,
			HeartbeatEvery:  100 * time.Millisecond,
			Window:          64,
			SpecMinSamples:  1 << 30, // no speculation: only w-stale can run its held cell
			IdleWaitMS:      10,
		}
	}

	col1 := &collector{t: t}
	d1, err := NewDispatcher(mkConfig(col1, faulty))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dumpDecisions(t, d1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// w-stale parks inside its first cell until released; every later
	// execution (gate closed) returns immediately.
	var staleCell atomic.Int64
	staleCell.Store(-1)
	staleGate := make(chan struct{})
	wStale, err := NewWorker(WorkerConfig{
		ID:   "w-stale",
		Addr: addr,
		Fn: func(ctx context.Context, cell int, _ func(float64)) ([]byte, error) {
			if staleCell.CompareAndSwap(-1, int64(cell)) {
				<-staleGate
			}
			return golden[cell], nil
		},
		HeartbeatEvery: time.Hour, // never heartbeats: nothing can fence it early
		RequestTimeout: 2 * time.Second,
		IdleWait:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go wStale.Run(ctx)

	for _, id := range []string{"w0", "w1"} {
		w, err := NewWorker(WorkerConfig{
			ID:   id,
			Addr: addr,
			Fn: func(ctx context.Context, cell int, _ func(float64)) ([]byte, error) {
				select {
				case <-time.After(5 * time.Millisecond):
				case <-ctx.Done():
				}
				return golden[cell], nil
			},
			RequestTimeout: 2 * time.Second,
			IdleWait:       20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}

	// Let the campaign make real progress, then inject the seeded crash
	// point: the next journal append tears mid-write and the armed FS blocks
	// the rollback, exactly a power loss during the append.
	waitUntil(t, 30*time.Second, "12 completions under d1", func() bool {
		return d1.Counters().Completed >= 12
	})
	noRepair.armed.Store(true)
	faulty.TearWrites(1)
	waitUntil(t, 30*time.Second, "the torn journal append", func() bool {
		return faulty.Stats().TornWrites >= 1
	})
	// The torn append must have been counted, not silently absorbed.
	waitUntil(t, 5*time.Second, "journal error counter", func() bool {
		return d1.Counters().JournalErrors >= 1
	})
	d1.Close() // the crash: listener gone, workers orphaned mid-lease

	// Restart: same journal, same address, clean storage.
	col2 := &collector{t: t}
	d2, err := NewDispatcher(mkConfig(col2, vfs.OS{}))
	if err != nil {
		t.Fatalf("restart on journal: %v", err)
	}
	defer d2.Close()
	defer dumpDecisions(t, d2)
	listenOn(t, d2, addr)

	// Satellite: the health verb, asked over TCP mid-campaign, reports the
	// bumped generation and the journal-recovered progress.
	h, err := FetchDispatchHealth(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dispatch health: %v", err)
	}
	if !h.OK || h.Generation != 2 || !h.Journal || h.CellsTotal != n {
		t.Fatalf("health after restart = %+v, want ok gen=2 journal=true cells=%d", h, n)
	}
	if h.ResumedCells < 1 {
		t.Fatalf("health reports %d resumed cells, want ≥1", h.ResumedCells)
	}

	// Only now may the parked worker finish: its completion carries gen 1
	// into the gen-2 dispatcher.
	close(staleGate)

	wctx, wcancel := context.WithTimeout(ctx, 60*time.Second)
	defer wcancel()
	if err := d2.Wait(wctx); err != nil {
		t.Fatalf("restarted campaign failed: %v (counters=%+v)", err, d2.Counters())
	}
	waitUntil(t, 30*time.Second, "the fenced stale-generation completion", func() bool {
		return d2.Counters().StaleGen >= 1
	})

	// Byte-identical: the restarted run's output alone is the whole grid.
	rows := col2.snapshot()
	if len(rows) != n {
		t.Fatalf("restarted run flushed %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if !bytes.Equal(r, golden[i]) {
			t.Fatalf("row %d = %q, want %q", i, r, golden[i])
		}
	}

	ctrs := d2.Counters()
	if ctrs.Resumed < 1 {
		t.Errorf("no cell was resumed from the journal (counters=%+v)", ctrs)
	}
	if ctrs.Flushed != n {
		t.Errorf("flushed %d, want %d", ctrs.Flushed, n)
	}
	if d2.Generation() != 2 {
		t.Errorf("generation = %d, want 2", d2.Generation())
	}
	if got := faulty.Stats().TornWrites; got < 1 {
		t.Errorf("no torn journal append was injected (stats=%+v)", faulty.Stats())
	}
	log := strings.Join(d2.Decisions(), "\n")
	for _, needle := range []string{"resume journal=", "stale-gen cell=", "campaign-done"} {
		if !strings.Contains(log, needle) {
			t.Errorf("restarted dispatcher's decision log missing %q", needle)
		}
	}
}

// TestWorkerReconnectsToRestartedDispatcher is the focused satellite: one
// worker, blocked mid-cell across a dispatcher restart, must re-hello into
// the new incarnation, have its pre-crash completion fenced as
// stale-generation, then re-lease the same cell under the new generation and
// finish the campaign — while the restarted dispatcher re-emits the
// journal-committed prefix before computing anything.
func TestWorkerReconnectsToRestartedDispatcher(t *testing.T) {
	const n, blockCell = 6, 3
	golden := make([][]byte, n)
	for i := range golden {
		golden[i] = []byte(fmt.Sprintf("cell-%d:%d", i, i*i))
	}
	spec := []byte(`{"kind":"reconnect-restart"}`)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")

	mkConfig := func(col *collector) Config {
		return Config{
			Cells:       n,
			Spec:        spec,
			Consume:     col.consume,
			JournalPath: jpath,
			LeaseTTL:    10 * time.Second,
			Window:      16,
			IdleWaitMS:  10,
		}
	}
	col1 := &collector{t: t}
	d1, err := NewDispatcher(mkConfig(col1))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	w, err := NewWorker(WorkerConfig{
		ID:   "wA",
		Addr: addr,
		Fn: func(ctx context.Context, cell int, _ func(float64)) ([]byte, error) {
			if cell == blockCell {
				<-gate // held across the restart; closed gate passes instantly
			}
			return golden[cell], nil
		},
		HeartbeatEvery: time.Hour,
		RequestTimeout: 2 * time.Second,
		IdleWait:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	// The single worker leases in index order: 0, 1, 2 complete and journal,
	// then it parks inside cell 3.
	waitUntil(t, 30*time.Second, "cells 0–2 flushed and worker parked in cell 3", func() bool {
		return d1.Counters().Flushed == blockCell && w.Snapshot().LeaseCell == blockCell
	})
	if g := w.Snapshot().Generation; g != 1 {
		t.Fatalf("worker generation before restart = %d, want 1", g)
	}
	d1.Close()

	col2 := &collector{t: t}
	d2, err := NewDispatcher(mkConfig(col2))
	if err != nil {
		t.Fatalf("restart on journal: %v", err)
	}
	defer d2.Close()
	defer dumpDecisions(t, d2)

	// Resume re-emitted the committed prefix before any worker connected.
	if got := col2.snapshot(); len(got) != blockCell {
		t.Fatalf("restart re-emitted %d rows, want %d", len(got), blockCell)
	}
	if got := d2.Counters().Resumed; got != int64(blockCell) {
		t.Fatalf("resumed %d cells, want %d", got, blockCell)
	}
	listenOn(t, d2, addr)
	close(gate)

	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := d2.Wait(wctx); err != nil {
		t.Fatalf("restarted campaign failed: %v (counters=%+v)", err, d2.Counters())
	}

	rows := col2.snapshot()
	if len(rows) != n {
		t.Fatalf("flushed %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if !bytes.Equal(r, golden[i]) {
			t.Fatalf("row %d = %q, want %q", i, r, golden[i])
		}
	}
	ctrs := d2.Counters()
	if ctrs.StaleGen < 1 {
		t.Errorf("the pre-crash completion was not fenced (counters=%+v)", ctrs)
	}
	if ctrs.Completed != int64(n-blockCell) {
		t.Errorf("restarted run computed %d cells, want %d (prefix must not recompute)",
			ctrs.Completed, n-blockCell)
	}
	waitUntil(t, 10*time.Second, "worker adopting generation 2", func() bool {
		return w.Snapshot().Generation == 2
	})
	if log := strings.Join(d2.Decisions(), "\n"); !strings.Contains(log, fmt.Sprintf("stale-gen cell=%d", blockCell)) {
		t.Errorf("decision log missing the fenced completion for cell %d", blockCell)
	}
}

// TestDrainCheckpointsAndResumes: Drain stops granting, lets in-flight
// leases land (journaled), ends the campaign with ErrDrained once nothing is
// leased — and a dispatcher restarted on the journal picks up exactly where
// the drain stopped. This is what the first SIGINT of sweep's dispatch
// signal ladder maps to.
func TestDrainCheckpointsAndResumes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "drain.journal")
	d, col, _ := newTestDispatcher(t, 3, func(c *Config) { c.JournalPath = jpath })
	c0, e0 := mustGrant(t, d, "w1", 1)

	d.Drain()
	if h := d.Health(); h.Health != "draining" {
		t.Fatalf("health while draining = %q, want draining", h.Health)
	}
	if resp := d.grant("w2", 2); resp.Granted || resp.Done {
		t.Fatalf("grant while draining = %+v, want a poll-again hint", resp)
	}
	if resp := complete(d, "w1", c0, e0, 1, payload(c0), ""); !resp.OK || resp.Stale {
		t.Fatalf("in-flight completion during drain rejected: %+v", resp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Wait(ctx); !errors.Is(err, ErrDrained) {
		t.Fatalf("Wait after drain = %v, want ErrDrained", err)
	}
	if h := d.Health(); h.Health != "done" {
		t.Fatalf("health after drain finished = %q, want done", h.Health)
	}
	if rows := col.snapshot(); len(rows) != 1 || !bytes.Equal(rows[0], payload(c0)) {
		t.Fatalf("drained run flushed %d rows, want the one completed cell", len(rows))
	}
	d.Close()

	col2 := &collector{t: t}
	d2, err := NewDispatcher(Config{Cells: 3, Consume: col2.consume, JournalPath: jpath})
	if err != nil {
		t.Fatalf("restart on drained journal: %v", err)
	}
	defer d2.Close()
	if d2.Generation() != 2 {
		t.Errorf("generation after drain restart = %d, want 2", d2.Generation())
	}
	if got := d2.Counters().Resumed; got != 1 {
		t.Errorf("resumed %d cells, want 1", got)
	}
	if rows := col2.snapshot(); len(rows) != 1 || !bytes.Equal(rows[0], payload(c0)) {
		t.Fatalf("restart re-emitted %d rows, want the drained cell", len(rows))
	}
	if c, _ := mustGrant(t, d2, "w1", 1); c != 1 {
		t.Errorf("first grant after drain restart = cell %d, want 1 (cell 0 is recovered)", c)
	}
}

// TestDispatchHealthVerbOverTCP exercises the listener-side health verb
// end-to-end with the FetchDispatchHealth client.
func TestDispatchHealthVerbOverTCP(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "health.journal")
	col := &collector{t: t}
	d, err := NewDispatcher(Config{
		Cells:       5,
		Spec:        []byte(`{"kind":"health"}`),
		Consume:     col.consume,
		JournalPath: jpath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	h, err := FetchDispatchHealth(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Health != "ok" || h.Generation != 1 || h.CellsTotal != 5 || !h.Journal {
		t.Fatalf("fresh health = %+v, want ok gen=1 cells=5 journal=true", h)
	}
	if h.CellsDone != 0 || h.CellsLeased != 0 {
		t.Fatalf("fresh health reports progress: %+v", h)
	}

	c0, e0 := mustGrant(t, d, "w1", 1)
	h, err = FetchDispatchHealth(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h.CellsLeased != 1 {
		t.Fatalf("health after grant = %+v, want 1 leased cell", h)
	}

	complete(d, "w1", c0, e0, 1, payload(c0), "")
	d.Drain()
	h, err = FetchDispatchHealth(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h.CellsDone != 1 || h.Flushed != 1 {
		t.Fatalf("health after completion = %+v, want 1 done / 1 flushed", h)
	}
}
