package sweepgrid

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Policies: []string{"easy", "sharebackfill"},
		Loads:    []float64{0.9, 1.4},
		Seeds:    2,
		Nodes:    16,
		Jobs:     60,
		Mix:      "trinity",
		Scale:    0.05,
	}
}

// CellAt must enumerate exactly the canonical policy-major loop nest.
func TestCellEnumerationOrder(t *testing.T) {
	s := testSpec()
	var want []Cell
	for _, p := range s.Policies {
		for _, l := range s.Loads {
			for sd := 0; sd < s.Seeds; sd++ {
				want = append(want, Cell{Policy: p, Load: l, Seed: uint64(42 + sd)})
			}
		}
	}
	if s.NumCells() != len(want) {
		t.Fatalf("NumCells = %d, want %d", s.NumCells(), len(want))
	}
	for i, w := range want {
		if got := s.CellAt(i); got != w {
			t.Fatalf("CellAt(%d) = %+v, want %+v", i, got, w)
		}
	}
}

// EncodeRow must match csv.Writer byte for byte — that equality is the whole
// point of the helper.
func TestEncodeRowMatchesCSVWriter(t *testing.T) {
	rows := [][]string{
		Header(),
		{"easy", "0.9", "42", "60", "123.4", "0.9000", "0.8000", "0.7000", "0.1000", "1.0", "2.0", "1.500", "1.2000"},
		{"with,comma", `with"quote`, "plain"},
	}
	for _, row := range rows {
		var buf bytes.Buffer
		w := csv.NewWriter(&buf)
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got, err := EncodeRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("EncodeRow(%q) = %q, want %q", row, got, buf.Bytes())
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := testSpec()
	b, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("roundtrip = %+v, want %+v", got, s)
	}
}

func TestDecodeSpecRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad json":  `{`,
		"no seeds":  `{"policies":["easy"],"loads":[0.9],"seeds":0,"nodes":8,"jobs":10,"mix":"trinity","scale":0.05}`,
		"bad mix":   `{"policies":["easy"],"loads":[0.9],"seeds":1,"nodes":8,"jobs":10,"mix":"nope","scale":0.05}`,
		"zero load": `{"policies":["easy"],"loads":[0],"seeds":1,"nodes":8,"jobs":10,"mix":"trinity","scale":0.05}`,
	}
	for name, raw := range cases {
		if _, err := DecodeSpec([]byte(raw)); err == nil {
			t.Errorf("%s: DecodeSpec accepted %q", name, raw)
		}
	}
}

// A cell is a pure function of (spec, index): two executions must produce
// identical bytes — the invariant first-result-wins dedup relies on.
func TestRunCellDeterministic(t *testing.T) {
	s := testSpec()
	a, err := s.RunCellBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunCellBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cell 3 not deterministic:\n%q\n%q", a, b)
	}
	if len(bytes.TrimSpace(a)) == 0 {
		t.Fatal("cell produced empty row")
	}
}
