// Package sweepgrid is the shared definition of a sweep campaign: the grid
// spec, the cell enumeration order, the per-cell simulation, and the exact
// CSV row encoding. Both execution paths — cmd/sweep running cells in-process
// and the fabric dispatcher handing cells to simd daemons — build on this
// one package, which is what makes their outputs byte-identical: a cell is a
// pure function of the spec and its index, and a row's bytes are produced by
// the same encoder regardless of where the cell ran.
package sweepgrid

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// Spec is a fully-described sweep grid. It marshals to JSON so a dispatcher
// can ship it to workers in the hello exchange; a worker needs nothing else
// to execute any cell.
type Spec struct {
	Policies []string  `json:"policies"`
	Loads    []float64 `json:"loads"`
	Seeds    int       `json:"seeds"`
	Nodes    int       `json:"nodes"`
	Jobs     int       `json:"jobs"`
	Mix      string    `json:"mix"`
	Scale    float64   `json:"scale"`
}

// Cell is one grid coordinate; the grid is policy-major, then load, then
// seed, matching the original sequential loop nest.
type Cell struct {
	Policy string
	Load   float64
	Seed   uint64
}

// Validate rejects a spec that could never run; workers call this before
// accepting leases so a bad spec fails loudly at hello time, not mid-grid.
func (s Spec) Validate() error {
	if len(s.Policies) == 0 {
		return fmt.Errorf("sweepgrid: no policies")
	}
	if len(s.Loads) == 0 {
		return fmt.Errorf("sweepgrid: no loads")
	}
	for _, l := range s.Loads {
		if !(l > 0) {
			return fmt.Errorf("sweepgrid: load must be > 0, got %g", l)
		}
	}
	if s.Seeds < 1 {
		return fmt.Errorf("sweepgrid: seeds must be ≥ 1, got %d", s.Seeds)
	}
	if s.Nodes < 1 {
		return fmt.Errorf("sweepgrid: nodes must be ≥ 1, got %d", s.Nodes)
	}
	if s.Jobs < 1 {
		return fmt.Errorf("sweepgrid: jobs must be ≥ 1, got %d", s.Jobs)
	}
	if !(s.Scale > 0) {
		return fmt.Errorf("sweepgrid: scale must be > 0, got %g", s.Scale)
	}
	if _, err := workload.MixByName(s.Mix); err != nil {
		return err
	}
	return nil
}

// NumCells is the grid size: |policies| × |loads| × seeds.
func (s Spec) NumCells() int {
	return len(s.Policies) * len(s.Loads) * s.Seeds
}

// CellAt maps a flat index to its grid coordinate in canonical order.
// Panics on out-of-range index — callers get indices from the grid itself.
func (s Spec) CellAt(i int) Cell {
	perPolicy := len(s.Loads) * s.Seeds
	p := i / perPolicy
	rem := i % perPolicy
	l := rem / s.Seeds
	sd := rem % s.Seeds
	return Cell{Policy: s.Policies[p], Load: s.Loads[l], Seed: uint64(42 + sd)}
}

// Header is the CSV header row, shared by every emitter.
func Header() []string {
	return []string{
		"policy", "load", "seed", "finished", "makespan_s",
		"comp_efficiency", "sched_efficiency", "utilization", "shared_fraction",
		"wait_mean_s", "wait_p95_s", "slowdown_mean", "stretch_mean",
	}
}

// RunCell executes one grid cell: an isolated simulation built entirely from
// the spec and the cell's coordinates (its own workload, cluster, and
// engine), safe to run concurrently with any other cell — in this process or
// another one.
func (s Spec) RunCell(i int) ([]string, error) {
	c := s.CellAt(i)
	mix, err := workload.MixByName(s.Mix)
	if err != nil {
		return nil, err
	}
	machine := cluster.Trinity(s.Nodes)
	generated, err := workload.Generate(workload.Spec{
		Mix: mix, Jobs: s.Jobs, Arrival: workload.Poisson, Load: c.Load,
		Cluster: machine, RuntimeScale: s.Scale, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Config{Machine: machine, Policy: c.Policy})
	if err != nil {
		return nil, err
	}
	if err := sys.SubmitJobs(generated); err != nil {
		return nil, err
	}
	sys.Run()
	r := sys.Metrics()
	return []string{
		c.Policy,
		fmt.Sprintf("%g", c.Load),
		fmt.Sprintf("%d", c.Seed),
		fmt.Sprintf("%d", r.Finished),
		fmt.Sprintf("%.1f", float64(r.Makespan)),
		fmt.Sprintf("%.4f", r.CompEfficiency),
		fmt.Sprintf("%.4f", r.SchedEfficiency),
		fmt.Sprintf("%.4f", r.Utilization),
		fmt.Sprintf("%.4f", r.SharedFraction),
		fmt.Sprintf("%.1f", r.Wait.Mean),
		fmt.Sprintf("%.1f", r.Wait.P95),
		fmt.Sprintf("%.3f", r.Slowdown.Mean),
		fmt.Sprintf("%.4f", r.Stretch.Mean),
	}, nil
}

// EncodeRow renders one row to the exact bytes csv.Writer would emit —
// including the trailing newline — so remotely-executed cells reassemble
// into a CSV byte-identical to the in-process path.
func EncodeRow(row []string) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(row); err != nil {
		return nil, err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RunCellBytes is the worker-side cell function: execute and encode. The
// returned bytes are the fabric payload.
func (s Spec) RunCellBytes(i int) ([]byte, error) {
	row, err := s.RunCell(i)
	if err != nil {
		return nil, err
	}
	return EncodeRow(row)
}

// Marshal renders the spec for the dispatcher's hello payload.
func (s Spec) Marshal() ([]byte, error) { return json.Marshal(s) }

// DecodeSpec parses and validates a spec received from a dispatcher.
func DecodeSpec(b []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, fmt.Errorf("sweepgrid: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
