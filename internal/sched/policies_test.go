package sched

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/job"
)

// Synthetic apps with clean bottleneck profiles.
var (
	computeApp = app.Synthetic("cpu", app.StressVector{0.92, 0.30, 0.30, 0.20}, 200, 1000)
	membwApp   = app.Synthetic("bw", app.StressVector{0.40, 0.92, 0.40, 0.25}, 200, 1000)
	hugeMemApp = app.Synthetic("bigmem", app.StressVector{0.40, 0.60, 0.40, 0.25}, 900, 1000)
)

func testCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Nodes: 8, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1000,
	})
}

var nextTestJobID cluster.JobID = 1

func mkJob(a app.Model, nodes int, wall des.Duration) *job.Job {
	id := nextTestJobID
	nextTestJobID++
	return &job.Job{
		ID: id, Name: a.Name, App: a, Nodes: nodes,
		ReqWalltime: wall, TrueRuntime: wall, Submit: 0,
	}
}

func mkCtx(c *cluster.Cluster, queue []*job.Job, running []*RunningJob) *Context {
	return &Context{
		Now:     0,
		Cluster: c,
		Queue:   queue,
		Running: running,
		Inter:   interference.Default(),
		Share:   DefaultShareConfig(),
	}
}

// run starts a job exclusively on the given nodes and returns its RunningJob
// record, committing the allocation to the cluster.
func run(t *testing.T, c *cluster.Cluster, j *job.Job, nodes []int, end des.Time) *RunningJob {
	t.Helper()
	if err := c.Allocate(c.ExclusivePlacement(j.ID, nodes, j.App.MemPerNodeMB)); err != nil {
		t.Fatalf("allocate running job: %v", err)
	}
	j.Start(0)
	return &RunningJob{
		Job: j, NodeIDs: nodes, Exclusive: true,
		NominalEnd: end, PredictedEnd: end, Rate: 1,
	}
}

// runLayer starts a job on the primary layer of the given nodes (sharing
// world) and returns its record.
func runLayer(t *testing.T, c *cluster.Cluster, j *job.Job, nodes []int, end des.Time) *RunningJob {
	t.Helper()
	if err := c.Allocate(c.LayerPlacement(j.ID, nodes, cluster.PrimaryLayer, j.App.MemPerNodeMB)); err != nil {
		t.Fatalf("allocate layer job: %v", err)
	}
	j.Start(0)
	return &RunningJob{
		Job: j, NodeIDs: nodes, Exclusive: false,
		NominalEnd: end, PredictedEnd: end, Rate: 1,
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, DefaultShareConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := New("nope", ShareConfig{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFCFSStartsInOrder(t *testing.T) {
	c := testCluster()
	q := []*job.Job{mkJob(computeApp, 3, 100), mkJob(membwApp, 4, 100), mkJob(computeApp, 2, 100)}
	dec := (FCFS{}).Schedule(mkCtx(c, q, nil))
	// 3+4 fit in 8 nodes; the 2-node job must NOT start (head-of-line, only
	// 1 node left).
	if len(dec) != 2 {
		t.Fatalf("FCFS started %d jobs, want 2", len(dec))
	}
	if dec[0].Job != q[0] || dec[1].Job != q[1] {
		t.Fatal("FCFS started jobs out of order")
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	c := testCluster()
	// One node busy, so the full-machine head is blocked (but servable in
	// principle); strict FCFS must not start anything behind it.
	rj := mkJob(computeApp, 1, 1000)
	running := []*RunningJob{run(t, c, rj, []int{0}, 1000)}
	q := []*job.Job{mkJob(computeApp, 8, 100), mkJob(membwApp, 1, 100)}
	dec := (FCFS{}).Schedule(mkCtx(c, q, running))
	if len(dec) != 0 {
		t.Fatalf("FCFS started %d jobs behind a blocked head, want 0", len(dec))
	}
}

func TestPoliciesSkipUnfittableJobs(t *testing.T) {
	// Jobs that can never run (too many nodes, or per-node memory beyond
	// node capacity) must be skipped by every policy rather than deadlock
	// the queue.
	c := testCluster()
	tooBig := mkJob(computeApp, 9, 100) // 9 > 8 nodes
	bigMemApp := app.Synthetic("huge", app.StressVector{0.5, 0.5, 0.5, 0.5}, 5000, 1000)
	tooFat := mkJob(bigMemApp, 1, 100) // 5000 MB > 1000 MB nodes
	ok := mkJob(membwApp, 1, 100)
	q := []*job.Job{tooBig, tooFat, ok}
	for _, name := range Names() {
		pol, err := New(name, DefaultShareConfig())
		if err != nil {
			t.Fatal(err)
		}
		dec := pol.Schedule(mkCtx(testCluster(), q, nil))
		if len(dec) != 1 || dec[0].Job != ok {
			t.Fatalf("%s decisions = %d, want just the fitting job", name, len(dec))
		}
	}
	_ = c
}

func TestFirstFitSkipsBlockedHead(t *testing.T) {
	c := testCluster()
	q := []*job.Job{mkJob(computeApp, 9, 100), mkJob(membwApp, 2, 100)}
	dec := (FirstFit{}).Schedule(mkCtx(c, q, nil))
	if len(dec) != 1 || dec[0].Job != q[1] {
		t.Fatalf("FirstFit decisions = %v, want just the 2-node job", dec)
	}
}

func TestDecisionsAreCommittable(t *testing.T) {
	// Whatever a policy returns must be allocatable as-is.
	c := testCluster()
	q := []*job.Job{mkJob(computeApp, 3, 100), mkJob(membwApp, 5, 100)}
	for _, dec := range (FirstFit{}).Schedule(mkCtx(c, q, nil)) {
		if err := c.Allocate(dec.Placement); err != nil {
			t.Fatalf("decision not committable: %v", err)
		}
	}
	if c.BusyNodes() != 8 {
		t.Fatalf("BusyNodes = %d, want 8", c.BusyNodes())
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	c := testCluster()
	// Running: 6 nodes until t=1000. Queue: head needs 8 (blocked until
	// 1000), then a short 2-node job (wall 500 ≤ shadow) → backfills.
	rj := mkJob(computeApp, 6, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3, 4, 5}, 1000)}
	head := mkJob(membwApp, 8, 1000)
	short := mkJob(computeApp, 2, 500)
	dec := (EASY{}).Schedule(mkCtx(c, []*job.Job{head, short}, running))
	if len(dec) != 1 || dec[0].Job != short {
		t.Fatalf("EASY decisions = %+v, want backfilled short job", dec)
	}
}

func TestEASYRefusesDelayingBackfill(t *testing.T) {
	c := testCluster()
	rj := mkJob(computeApp, 6, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3, 4, 5}, 1000)}
	head := mkJob(membwApp, 8, 1000)
	// Long 2-node job (wall 1500 > shadow=1000) would hold 2 of the 8 nodes
	// the head needs at t=1000 → must NOT backfill.
	long := mkJob(computeApp, 2, 1500)
	dec := (EASY{}).Schedule(mkCtx(c, []*job.Job{head, long}, running))
	if len(dec) != 0 {
		t.Fatalf("EASY backfilled a head-delaying job: %+v", dec)
	}
}

func TestEASYStartsHeadWhenFits(t *testing.T) {
	c := testCluster()
	q := []*job.Job{mkJob(computeApp, 8, 100)}
	dec := (EASY{}).Schedule(mkCtx(c, q, nil))
	if len(dec) != 1 || dec[0].Job != q[0] {
		t.Fatal("EASY did not start a fitting head")
	}
}

func TestConservativeHonorsAllReservations(t *testing.T) {
	c := testCluster()
	rj := mkJob(computeApp, 6, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3, 4, 5}, 1000)}
	// Queue: J1 needs 8 (reserved at 1000, runs 1000..2000).
	// J2 needs 4, wall 1500 (reserved at 2000).
	// J3 needs 2, wall 800: under EASY it could start (doesn't delay J1);
	// conservative must also check J2's reservation — J3 on 2 idle nodes
	// until t=800 doesn't touch J2's start at 2000 → starts.
	j1 := mkJob(membwApp, 8, 1000)
	j2 := mkJob(computeApp, 4, 1500)
	j3 := mkJob(membwApp, 2, 800)
	dec := (Conservative{}).Schedule(mkCtx(c, []*job.Job{j1, j2, j3}, running))
	if len(dec) != 1 || dec[0].Job != j3 {
		t.Fatalf("conservative decisions = %+v, want just j3", dec)
	}
}

func TestConservativeBlocksWhatEASYAllows(t *testing.T) {
	// A backfill that delays the SECOND queued job is legal under EASY but
	// not under conservative.
	c := testCluster()
	rj := mkJob(computeApp, 4, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3}, 1000)}
	// 4 idle nodes; 4 more release at t=1000.
	// Head needs 6, wall 1000 → shadow 1000, reserved [1000, 2000), leaving
	// 2 nodes free in that window.
	// j2 needs 7, wall 1000 → conservative reserves it at t=2000 (head done).
	// j3 needs 2, wall 2500:
	//   EASY (head reservation only): free ≥ 2 on [0, 2500) → backfills.
	//   Conservative (j2 reserved too): only 1 node free on [2000, 2500) →
	//   j3 would delay j2 → refused.
	head := mkJob(membwApp, 6, 1000)
	j2 := mkJob(computeApp, 7, 1000)
	j3 := mkJob(membwApp, 2, 2500)
	queue := []*job.Job{head, j2, j3}

	easyDec := (EASY{}).Schedule(mkCtx(c, queue, running))
	if len(easyDec) != 1 || easyDec[0].Job != j3 {
		t.Fatalf("EASY decisions = %+v, want j3 backfilled", easyDec)
	}
	consDec := (Conservative{}).Schedule(mkCtx(c, queue, running))
	if len(consDec) != 0 {
		t.Fatalf("conservative decisions = %+v, want none (j3 delays j2)", consDec)
	}
}

func TestShareFirstFitCoAllocatesComplementaryPair(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000) // occupies all nodes' primary layers
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest := mkJob(computeApp, 2, 500)
	dec := (ShareFirstFit{Config: DefaultShareConfig()}).Schedule(
		mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 1 {
		t.Fatalf("ShareFirstFit made %d decisions, want 1 co-allocation", len(dec))
	}
	if !dec[0].Shared {
		t.Fatal("decision not marked shared")
	}
	if dec[0].EstimatedRate >= 1 || dec[0].EstimatedRate <= 0 {
		t.Fatalf("EstimatedRate = %g, want in (0,1)", dec[0].EstimatedRate)
	}
	if err := c.Allocate(dec[0].Placement); err != nil {
		t.Fatalf("co-allocation not committable: %v", err)
	}
	if c.SharedNodes() != 2 {
		t.Fatalf("SharedNodes = %d, want 2", c.SharedNodes())
	}
}

func TestShareFirstFitRejectsClashingPair(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	// Another bandwidth-saturating job: complementarity ≈ 1-(0.92+0.92-1) =
	// 0.16 < 0.40 threshold → no co-allocation, and no idle nodes → no start.
	guest := mkJob(membwApp, 2, 500)
	dec := (ShareFirstFit{Config: DefaultShareConfig()}).Schedule(
		mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 0 {
		t.Fatalf("ShareFirstFit co-allocated a clashing pair: %+v", dec)
	}
}

func TestShareFirstFitMemoryGuard(t *testing.T) {
	c := testCluster()
	host := mkJob(hugeMemApp, 8, 1000) // 900 MB of 1000 MB per node
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest := mkJob(computeApp, 2, 500) // needs 200 MB > 100 free
	dec := (ShareFirstFit{Config: DefaultShareConfig()}).Schedule(
		mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 0 {
		t.Fatalf("memory guard failed: %+v", dec)
	}
}

func TestShareFirstFitMaxDegree(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest1 := mkJob(computeApp, 8, 500)
	cfg := DefaultShareConfig()
	p := ShareFirstFit{Config: cfg}
	ctx := mkCtx(c, []*job.Job{guest1}, running)
	dec := p.Schedule(ctx)
	if len(dec) != 1 {
		t.Fatalf("first guest not placed")
	}
	if err := c.Allocate(dec[0].Placement); err != nil {
		t.Fatal(err)
	}
	guest1.Start(0)
	running = append(running, &RunningJob{
		Job: guest1, NodeIDs: dec[0].Placement.NodeIDs(),
		NominalEnd: 500, PredictedEnd: 700, Rate: 0.7,
	})
	// All nodes now have 2 jobs (degree = MaxDegree) and no free layer.
	guest2 := mkJob(computeApp, 1, 100)
	dec2 := p.Schedule(mkCtx(c, []*job.Job{guest2}, running))
	if len(dec2) != 0 {
		t.Fatalf("third tenant admitted beyond MaxDegree: %+v", dec2)
	}
}

func TestShareFirstFitPairingAwareOrdering(t *testing.T) {
	c := testCluster()
	// Two hosts: a bandwidth job on node 0, a compute job on node 1.
	bwHost := mkJob(membwApp, 1, 1000)
	cpuHost := mkJob(computeApp, 1, 1000)
	running := []*RunningJob{
		runLayer(t, c, bwHost, []int{0}, 1000),
		runLayer(t, c, cpuHost, []int{1}, 1000),
	}
	// Incoming compute job must pick node 0 (bandwidth host) when pairing-
	// aware: complementary beats clashing.
	guest := mkJob(computeApp, 1, 500)
	cfg := DefaultShareConfig()
	cfg.MinComplementarity = 0 // admit both so ordering decides
	cfg.PreferShared = true
	dec := (ShareFirstFit{Config: cfg}).Schedule(mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 1 {
		t.Fatal("guest not placed")
	}
	if got := dec[0].Placement.Nodes[0].Node; got != 0 {
		t.Fatalf("pairing-aware placement chose node %d, want 0 (complementary host)", got)
	}
}

func TestShareFirstFitPreferSharedOff(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 1, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0}, 1000)}
	guest := mkJob(computeApp, 1, 500)
	cfg := DefaultShareConfig()
	cfg.PreferShared = false
	dec := (ShareFirstFit{Config: cfg}).Schedule(mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 1 {
		t.Fatal("guest not placed")
	}
	if dec[0].Shared {
		t.Fatal("PreferShared=false still co-allocated despite idle nodes")
	}
}

func TestShareFirstFitDisabledDegradesToFirstFit(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest := mkJob(computeApp, 2, 500)
	dec := (ShareFirstFit{}).Schedule(mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 0 {
		t.Fatalf("disabled sharing still placed a job: %+v", dec)
	}
}

func TestShareBackfillCoAllocatesWithoutDelayingHead(t *testing.T) {
	c := testCluster()
	// Host A holds nodes 0–5 until t=2000; host B holds nodes 6–7 until
	// t=500. The head needs all 8 nodes → shadow 2000 (host A's release
	// binds). Co-allocating the guest on host B's nodes inflates B's end to
	// ≈ 500/rate ≪ 2000, so the head is not delayed; co-allocating on
	// host A would push A past the shadow and must be avoided. The policy
	// must therefore place the guest on nodes 6 and 7.
	hostA := mkJob(membwApp, 6, 3000)
	hostB := mkJob(membwApp, 2, 1000)
	running := []*RunningJob{
		runLayer(t, c, hostA, []int{0, 1, 2, 3, 4, 5}, 2000),
		runLayer(t, c, hostB, []int{6, 7}, 500),
	}
	head := mkJob(membwApp, 8, 1000)
	guest := mkJob(computeApp, 2, 400)
	cfg := DefaultShareConfig()
	dec := (ShareBackfill{Config: cfg}).Schedule(mkCtx(c, []*job.Job{head, guest}, running))
	if len(dec) != 1 || dec[0].Job != guest || !dec[0].Shared {
		t.Fatalf("decisions = %+v, want guest co-allocated", dec)
	}
	for _, np := range dec[0].Placement.Nodes {
		if np.Node != 6 && np.Node != 7 {
			t.Fatalf("guest placed on node %d, want host B's nodes (6, 7)", np.Node)
		}
	}
}

func TestShareBackfillGuardRejectsHeadDelay(t *testing.T) {
	c := testCluster()
	// Host ends exactly at the shadow time; any slowdown pushes it past →
	// the inflation guard must reject the co-allocation.
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	head := mkJob(membwApp, 8, 1000)
	guest := mkJob(computeApp, 2, 400)
	cfg := DefaultShareConfig()
	dec := (ShareBackfill{Config: cfg}).Schedule(mkCtx(c, []*job.Job{head, guest}, running))
	if len(dec) != 0 {
		t.Fatalf("accounting guard failed: %+v", dec)
	}
	// Ablation: with accounting off, the co-allocation goes through (and
	// the head will be delayed — the broken behaviour the ablation shows).
	cfg.InflationAccounting = false
	dec = (ShareBackfill{Config: cfg}).Schedule(mkCtx(c, []*job.Job{head, guest}, running))
	if len(dec) != 1 {
		t.Fatalf("accounting-off ablation did not co-allocate: %+v", dec)
	}
}

func TestShareBackfillDisabledDegradesToEASY(t *testing.T) {
	c := testCluster()
	rj := mkJob(computeApp, 6, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3, 4, 5}, 1000)}
	head := mkJob(membwApp, 8, 1000)
	short := mkJob(computeApp, 2, 500)
	dec := (ShareBackfill{}).Schedule(mkCtx(c, []*job.Job{head, short}, running))
	if len(dec) != 1 || dec[0].Job != short || dec[0].Shared {
		t.Fatalf("disabled ShareBackfill ≠ EASY: %+v", dec)
	}
}

func TestShareBackfillStartsFittingJobsImmediately(t *testing.T) {
	c := testCluster()
	q := []*job.Job{mkJob(computeApp, 4, 100), mkJob(membwApp, 4, 100)}
	dec := (ShareBackfill{Config: DefaultShareConfig()}).Schedule(mkCtx(c, q, nil))
	if len(dec) != 2 {
		t.Fatalf("started %d jobs on an idle cluster, want 2", len(dec))
	}
	for _, d := range dec {
		if d.Shared {
			t.Fatal("job marked shared on an idle cluster")
		}
	}
}

func TestSharePlacementUsesSecondaryLayer(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 1, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0}, 1000)}
	guest := mkJob(computeApp, 1, 500)
	cfg := DefaultShareConfig()
	dec := (ShareFirstFit{Config: cfg}).Schedule(mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 1 || !dec[0].Shared {
		t.Fatal("guest not co-allocated")
	}
	// The placement must bind the SMT sibling threads (odd indices with
	// threads-per-core 2).
	for _, th := range dec[0].Placement.Nodes[0].Threads {
		if th%2 != 1 {
			t.Fatalf("co-allocation bound thread %d, want secondary layer (odd)", th)
		}
	}
}

func TestShareConservativeBasics(t *testing.T) {
	// Degraded (disabled) form equals Conservative.
	c := testCluster()
	rj := mkJob(computeApp, 6, 2000)
	running := []*RunningJob{run(t, c, rj, []int{0, 1, 2, 3, 4, 5}, 1000)}
	head := mkJob(membwApp, 8, 1000)
	short := mkJob(computeApp, 2, 500)
	dec := (ShareConservative{}).Schedule(mkCtx(c, []*job.Job{head, short}, running))
	want := (Conservative{}).Schedule(mkCtx(c, []*job.Job{head, short}, running))
	if len(dec) != len(want) {
		t.Fatalf("disabled ShareConservative made %d decisions, Conservative %d", len(dec), len(want))
	}
}

func TestShareConservativeCoAllocates(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 500)}
	guest := mkJob(computeApp, 2, 300)
	dec := (ShareConservative{Config: DefaultShareConfig()}).Schedule(
		mkCtx(c, []*job.Job{guest}, running))
	if len(dec) != 1 || !dec[0].Shared {
		t.Fatalf("decisions = %+v, want one co-allocation", dec)
	}
}

func TestShareConservativeGuardsAllReservations(t *testing.T) {
	// Two hosts; the head's shadow binds on host A, a SECOND reservation
	// binds on host B. A co-allocation that would delay host B must be
	// rejected by ShareConservative even though ShareBackfill (guarding
	// only the head) would allow it.
	c := testCluster()
	hostA := mkJob(membwApp, 6, 3000)
	hostB := mkJob(membwApp, 2, 1000)
	running := []*RunningJob{
		runLayer(t, c, hostA, []int{0, 1, 2, 3, 4, 5}, 2000),
		runLayer(t, c, hostB, []int{6, 7}, 500),
	}
	// head needs 8 → shadow 2000 (host A binds). j2 needs 2 nodes and can
	// start at 500 when host B releases → its reservation at 500 depends on
	// host B. The guest co-allocating on host B would push B past 500.
	head := mkJob(membwApp, 8, 1000)
	j2 := mkJob(membwApp, 2, 1000)
	guest := mkJob(computeApp, 2, 400)
	cfg := DefaultShareConfig()
	queue := []*job.Job{head, j2, guest}

	easyDec := (ShareBackfill{Config: cfg}).Schedule(mkCtx(c, queue, running))
	consDec := (ShareConservative{Config: cfg}).Schedule(mkCtx(c, queue, running))
	// ShareBackfill guards only the head (shadow 2000): guest lands on
	// host B (end 500/rate < 2000) → allowed.
	if len(easyDec) != 1 || !easyDec[0].Shared {
		t.Fatalf("ShareBackfill decisions = %+v, want guest co-allocated", easyDec)
	}
	// ShareConservative also guards j2's reservation at 500: the guest on
	// host B would postpone it → rejected, and host A offends the head's
	// shadow → nothing starts.
	if len(consDec) != 0 {
		t.Fatalf("ShareConservative decisions = %+v, want none", consDec)
	}
}

func TestMinEstimatedRateGate(t *testing.T) {
	c := testCluster()
	host := mkJob(membwApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest := mkJob(computeApp, 2, 500)
	cfg := DefaultShareConfig()
	// The complementary pair's rates are ≈0.88/0.84; a floor above that
	// must block the co-allocation, a floor below must admit it.
	cfg.MinEstimatedRate = 0.95
	if dec := (ShareFirstFit{Config: cfg}).Schedule(mkCtx(c, []*job.Job{guest}, running)); len(dec) != 0 {
		t.Fatalf("rate floor 0.95 admitted the pair: %+v", dec)
	}
	cfg.MinEstimatedRate = 0.5
	if dec := (ShareFirstFit{Config: cfg}).Schedule(mkCtx(c, []*job.Job{guest}, running)); len(dec) != 1 {
		t.Fatal("rate floor 0.5 blocked an acceptable pair")
	}
}

func TestMinEstimatedRateHonorsMeasuredPairs(t *testing.T) {
	// A measured matrix declaring the pair terrible must flow through the
	// gate even when the analytic model approves.
	c := testCluster()
	hostApp := app.Synthetic("hostapp", app.StressVector{0.40, 0.92, 0.40, 0.25}, 200, 1000)
	guestApp := app.Synthetic("guestapp", app.StressVector{0.92, 0.30, 0.30, 0.20}, 200, 1000)
	host := mkJob(hostApp, 8, 1000)
	running := []*RunningJob{runLayer(t, c, host, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1000)}
	guest := mkJob(guestApp, 2, 500)

	inter := interference.Default()
	if err := inter.SetMeasured([]interference.MeasuredPair{
		{A: "hostapp", B: "guestapp", RateA: 0.2, RateB: 0.2},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultShareConfig()
	cfg.MinEstimatedRate = 0.5
	ctx := mkCtx(c, []*job.Job{guest}, running)
	ctx.Inter = inter
	if dec := (ShareFirstFit{Config: cfg}).Schedule(ctx); len(dec) != 0 {
		t.Fatalf("measured-bad pair admitted: %+v", dec)
	}
}
