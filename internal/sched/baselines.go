package sched

import (
	"repro/internal/des"
	"repro/internal/job"
)

// FCFS is strict first-come-first-served with standard (exclusive) node
// allocation: the queue head blocks everything behind it until it fits.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Schedule implements Policy.
func (FCFS) Schedule(ctx *Context) []Decision {
	var out []Decision
	claimed := newMarks(ctx)
	for _, j := range ctx.Queue {
		if !fitsMachine(ctx, j) {
			continue // can never run anywhere; do not deadlock the queue
		}
		nodes, ok := pickIdle(ctx, j.Nodes, claimed)
		if !ok {
			break // strict FCFS: the head blocks
		}
		for _, ni := range nodes {
			claimed[ni] = true
		}
		out = append(out, exclusiveDecision(ctx, j, nodes))
	}
	return out
}

// FirstFit scans the whole queue and starts any job that fits on idle nodes,
// in queue order. Unlike backfill it plans no reservations, so large jobs
// can starve under sustained small-job load.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "firstfit" }

// Schedule implements Policy.
func (FirstFit) Schedule(ctx *Context) []Decision {
	var out []Decision
	claimed := newMarks(ctx)
	for _, j := range ctx.Queue {
		if !fitsMachine(ctx, j) {
			continue
		}
		nodes, ok := pickIdle(ctx, j.Nodes, claimed)
		if !ok {
			continue // skip and try the next job
		}
		for _, ni := range nodes {
			claimed[ni] = true
		}
		out = append(out, exclusiveDecision(ctx, j, nodes))
	}
	return out
}

// EASY is aggressive backfilling: the queue head gets a reservation at the
// earliest time enough nodes drain, and later jobs may jump ahead only if
// their requested walltime provably does not delay that reservation.
type EASY struct{}

// Name implements Policy.
func (EASY) Name() string { return "easy" }

// Schedule implements Policy.
func (EASY) Schedule(ctx *Context) []Decision {
	return backfillExclusive(ctx, 1)
}

// Conservative backfilling gives every queued job a reservation, in queue
// order; a job may start now only when doing so honors all earlier
// reservations. Lower queue-jumping variance than EASY at some utilization
// cost.
type Conservative struct{}

// Name implements Policy.
func (Conservative) Name() string { return "conservative" }

// Schedule implements Policy.
func (Conservative) Schedule(ctx *Context) []Decision {
	return backfillExclusive(ctx, len(ctx.Queue))
}

// exclusiveDecision builds the standard whole-node allocation decision.
func exclusiveDecision(ctx *Context, j *job.Job, nodes []int) Decision {
	return Decision{
		Job:           j,
		Placement:     ctx.Cluster.ExclusivePlacement(j.ID, nodes, j.App.MemPerNodeMB),
		Shared:        false,
		EstimatedRate: 1,
	}
}

// backfillExclusive is the shared skeleton of EASY and Conservative:
// reservations for the first maxReservations blocked jobs, backfill for the
// rest. Every started job runs on exclusive whole nodes.
func backfillExclusive(ctx *Context, maxReservations int) []Decision {
	var out []Decision
	claimed := newMarks(ctx)

	// The capacity profile sees a node as released when its last resident's
	// predicted end passes (with one job per node under exclusive policies,
	// that is simply the job's end).
	profile := buildNodeProfile(ctx, claimed)

	reservations := 0
	for _, j := range ctx.Queue {
		if !fitsMachine(ctx, j) {
			continue
		}
		wall := j.ReqWalltime
		start, ok := profile.FindStart(j.Nodes, wall)
		if !ok {
			// Can never fit (request exceeds machine); skip.
			continue
		}
		if start <= ctx.Now {
			nodes, got := pickIdle(ctx, j.Nodes, claimed)
			if !got {
				// Profile says capacity exists but idle nodes disagree;
				// treat as blocked (can happen transiently when releases
				// land exactly now).
				if reservations < maxReservations {
					profile.Reserve(start, wall, j.Nodes)
					reservations++
				}
				continue
			}
			for _, ni := range nodes {
				claimed[ni] = true
			}
			profile.Reserve(ctx.Now, wall, j.Nodes)
			out = append(out, exclusiveDecision(ctx, j, nodes))
			continue
		}
		// Blocked: plan a reservation if the budget allows; once the budget
		// is exhausted, later jobs may only start immediately (EASY) —
		// their fit was already checked against all reservations.
		if reservations < maxReservations {
			profile.Reserve(start, wall, j.Nodes)
			reservations++
		}
	}
	return out
}

// buildNodeProfile constructs the whole-node availability profile from the
// current idle set and the running jobs' planned completion times.
func buildNodeProfile(ctx *Context, claimed nodeMarks) *Profile {
	freeNow := 0
	for _, ni := range ctx.Cluster.IdleNodes() {
		if !claimed[ni] {
			freeNow++
		}
	}
	// A node shared by several jobs becomes a whole free node only when the
	// latest resident leaves.
	releaseAt := map[int]des.Time{}
	for _, r := range ctx.Running {
		end := predictedEnd(r, ctx.Share)
		for _, ni := range r.NodeIDs {
			if end > releaseAt[ni] {
				releaseAt[ni] = end
			}
		}
	}
	byTime := map[des.Time]int{}
	for _, end := range releaseAt {
		byTime[end]++
	}
	releases := make([]Release, 0, len(byTime))
	for t, n := range byTime {
		releases = append(releases, Release{At: t, Nodes: n})
	}
	return NewProfile(ctx.Now, freeNow, releases)
}
